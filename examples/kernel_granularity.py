#!/usr/bin/env python
"""Measure granularity on real kernels, then watch it decide the cluster
question.

Chapter 3: "The amount of computation relative to the amount of movement
of data between processors is referred to as the granularity of the
application."  This example runs the three kernel families, measures their
achieved rates and flops-per-communicated-byte, and then shows the
simulator turning exactly that quantity into the cluster-vs-SMP verdicts
of Table 5.

Run:  python examples/kernel_granularity.py
"""

import numpy as np

from repro.kernels import (
    calibrate_kernels,
    demo_scene,
    initial_gaussian,
    render,
    run,
    total_energy,
    total_mass,
)
from repro.reporting.tables import render_table
from repro.simulate import compare_architectures, max_competitive_cluster_size


def main() -> None:
    print("=== 1. The kernels actually run ===\n")
    state = initial_gaussian(96)
    final = run(state, 200)
    print(f"shallow water: 200 steps on a 96x96 grid")
    print(f"  mass drift    : {abs(total_mass(final) - total_mass(state)):.2e} "
          f"(conserved to machine precision)")
    print(f"  energy ratio  : {total_energy(final) / total_energy(state):.4f} "
          f"(bounded under CFL)")
    image = render(demo_scene(), 96, 96)
    print(f"ray tracing   : 96x96 image, mean intensity {image.mean():.3f}\n")

    print("=== 2. Measured rates and granularity ===\n")
    calibrations = calibrate_kernels()
    print(render_table(
        ["kernel", "problem", "achieved Mflops", "flops per halo byte"],
        [[c.name, c.problem, round(c.mflops, 1),
          "inf (embarrassingly parallel)"
          if not np.isfinite(c.granularity_flops_per_byte)
          else round(c.granularity_flops_per_byte, 1)]
         for c in calibrations],
    ))

    print("\n=== 3. Granularity decides the cluster question ===\n")
    rows = []
    for workload in ("ray tracing", "shallow-water model",
                     "sparse linear solver"):
        comp = compare_architectures(workload)
        penalty = comp.cluster_penalty()
        rows.append([
            workload,
            max_competitive_cluster_size(workload),
            "none" if penalty == float("inf") else f"{penalty:.1f}x",
        ])
    print(render_table(
        ["workload family", "max competitive Ethernet cluster",
         "SMP advantage"],
        rows,
    ))
    print("\nCoarse grain -> clusters fine; fine grain -> 'clusters ... "
          "should not generally be\ntreated on an equal basis with tightly "
          "coupled systems of comparable CTP.'")


if __name__ == "__main__":
    main()
