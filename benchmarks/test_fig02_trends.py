"""Figure 2: HPC Applications and Technology Trends.

The framework chart: the uncontrollability frontier, the foreign
indigenous envelope, and the most powerful system available, with the
stalactite minimums of a few marquee applications overlaid as reference
levels.
"""

import numpy as np

from repro._util import year_range
from repro.apps.catalog import find_application
from repro.controllability.frontier import frontier_series
from repro.machines.catalog import max_available_mtops
from repro.reporting.figures import render_log_chart, render_series
from repro.trends.foreign import foreign_envelope_mtops


def build_figure():
    years = year_range(1990.0, 1999.5, 0.5)
    return {
        "years": years,
        "uncontrollable": frontier_series(years),
        "foreign": np.array([foreign_envelope_mtops(y) for y in years]),
        "max available": np.array([max_available_mtops(y) for y in years]),
    }


def test_fig02_trends(benchmark, emit):
    data = benchmark(build_figure)
    years = data["years"]
    stalactites = {
        name: find_application(name).min_mtops
        for name in ("JAST candidate aircraft design",
                     "Tactical weather prediction (45 km)",
                     "ATR template development")
    }
    series = render_series(
        "Figure 2: HPC applications and technology trends (Mtops)",
        years,
        {k: v for k, v in data.items() if k != "years"},
    )
    levels = "\n".join(
        f"  stalactite: {name} minimum = {v:,.0f} Mtops"
        for name, v in stalactites.items()
    )
    chart = render_log_chart(
        "Technology curves (log scale)", years,
        {k: np.maximum(v, 1.0) for k, v in data.items() if k != "years"},
    )
    emit(f"{series}\n{levels}\n\n{chart}")

    # Shape checks: all three curves rise; max available dominates.
    unc, foreign, avail = (data["uncontrollable"], data["foreign"],
                           data["max available"])
    assert unc[-1] > unc[0]
    assert np.all(avail >= unc)
    assert np.all(avail >= foreign)
