"""Bound derivation and the valid-threshold-range test (Chapters 2, 5).

The framework's arithmetic:

* **lower bound** = max(most powerful uncontrollable Western system,
  most powerful system available in a country of concern) — "if the
  threshold is set below the level of controllability, then export control
  policy will try to control the uncontrollable";
* **theoretical upper bound** = the most powerful system available
  (line D);
* **application-driven upper bound** = the smallest application minimum
  lying above the lower bound — "set the threshold just below the minimum
  of all the minimum requirements";
* a **valid range exists** iff lower < upper with enough daylight to draw
  a line with confidence.

``headline_summary`` packages the numbers the executive summary reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import check_year
from repro.obs.errors import ValidationError
from repro.obs.trace import trace
from repro.apps.catalog import APPLICATIONS
from repro.apps.requirements import ApplicationRequirement
from repro.controllability.frontier import (
    frontier_series,
    lower_bound_uncontrollable,
)
from repro.machines.catalog import max_available_mtops
from repro.trends.foreign import foreign_envelope_mtops, foreign_envelope_series

__all__ = [
    "ThresholdBounds",
    "lower_bound_mtops",
    "lower_bound_series",
    "derive_bounds",
    "application_clusters",
    "headline_summary",
]

#: Minimum multiplicative daylight between bounds for a confident line
#: ("if A and D lie close together, there is no meaningful range").
MIN_RANGE_FACTOR = 1.5


def lower_bound_mtops(year: float) -> float:
    """max(uncontrollability frontier, foreign indigenous envelope)."""
    check_year(year, "year")
    return max(
        lower_bound_uncontrollable(year).mtops,
        foreign_envelope_mtops(year),
    )


def lower_bound_series(years: np.ndarray | list[float]) -> np.ndarray:
    """The lower bound over a whole year grid in one pass.

    Array-in/array-out companion of :func:`lower_bound_mtops`: elementwise
    max of the cached uncontrollability-frontier index and the foreign
    envelope — no per-year catalog rescans.
    """
    grid = np.asarray(years, dtype=float)
    return np.maximum(frontier_series(grid), foreign_envelope_series(grid))


@dataclass(frozen=True)
class ThresholdBounds:
    """The derived range of valid thresholds at one date."""

    year: float
    uncontrollable_mtops: float
    foreign_mtops: float
    max_available_mtops: float
    #: Applications whose drifted minimum sits above the lower bound
    #: (still protectable), ascending by requirement.
    protectable_applications: tuple[ApplicationRequirement, ...]

    @property
    def lower_mtops(self) -> float:
        return max(self.uncontrollable_mtops, self.foreign_mtops)

    @property
    def upper_theoretical_mtops(self) -> float:
        return self.max_available_mtops

    @property
    def upper_application_mtops(self) -> float | None:
        """Smallest protectable application minimum (None when none left —
        the premise-one failure state)."""
        if not self.protectable_applications:
            return None
        return self.protectable_applications[0].min_at(self.year)

    @property
    def valid_range_exists(self) -> bool:
        """True when a threshold can be drawn with confidence."""
        return (
            self.lower_mtops > 0
            and self.upper_theoretical_mtops >= self.lower_mtops * MIN_RANGE_FACTOR
            and self.upper_application_mtops is not None
        )


def derive_bounds(year: float) -> ThresholdBounds:
    """Derive the bounds at one date."""
    check_year(year, "year")
    with trace("bounds.derive", year=year):
        with trace("bounds.lower"):
            lower = lower_bound_mtops(year)
        with trace("bounds.protectable_apps"):
            protectable = sorted(
                (a for a in APPLICATIONS
                 if a.year_first <= year and a.min_at(year) > lower),
                key=lambda a: a.min_at(year),
            )
        with trace("bounds.frontier"):
            uncontrollable = lower_bound_uncontrollable(year).mtops
        with trace("bounds.foreign_envelope"):
            foreign = foreign_envelope_mtops(year)
        with trace("bounds.max_available"):
            max_available = max_available_mtops(year)
        return ThresholdBounds(
            year=year,
            uncontrollable_mtops=uncontrollable,
            foreign_mtops=foreign,
            max_available_mtops=max_available,
            protectable_applications=tuple(protectable),
        )


def application_clusters(
    year: float = 1995.5,
    gap_factor: float = 1.35,
    missions: tuple | None = None,
) -> list[tuple[float, list[ApplicationRequirement]]]:
    """Group protectable applications into requirement clusters.

    Applications whose minimums sit within ``gap_factor`` of each other
    (multiplicatively) share a cluster; each cluster is reported at its
    smallest member — matching the executive summary's "a group of
    research and development applications starting roughly at the level of
    7,000 Mtops, and a group of military operations applications at 10,000
    Mtops" (those are per-mission-category groups; pass ``missions`` to
    reproduce them).
    """
    if gap_factor <= 1.0:
        raise ValidationError("gap_factor must exceed 1",
                              context={"got": gap_factor, "valid": "> 1"})
    bounds = derive_bounds(year)
    apps = list(bounds.protectable_applications)
    if missions is not None:
        allowed = set(missions)
        apps = [a for a in apps if a.mission in allowed]
    if not apps:
        return []
    clusters: list[tuple[float, list[ApplicationRequirement]]] = []
    current: list[ApplicationRequirement] = [apps[0]]
    for app in apps[1:]:
        if app.min_at(year) <= current[-1].min_at(year) * gap_factor:
            current.append(app)
        else:
            clusters.append((current[0].min_at(year), current))
            current = [app]
    clusters.append((current[0].min_at(year), current))
    return clusters


@dataclass(frozen=True)
class HeadlineSummary:
    """The executive summary's numbers, computed."""

    lower_bound_mid_1995: float
    lower_bound_late_1996_97: float
    lower_bound_end_of_decade: float
    rdte_cluster_start: float | None
    milops_cluster_start: float | None
    fraction_apps_below_lower_1995: float


def _largest_cluster_start(
    year: float, missions: tuple
) -> float | None:
    """Start of the most populous cluster in a mission-category group."""
    clusters = application_clusters(year, missions=missions)
    if not clusters:
        return None
    start, _members = max(clusters, key=lambda c: (len(c[1]), -c[0]))
    return start


def headline_summary() -> HeadlineSummary:
    """Compute the paper's headline findings.

    Paper values: lower bound 4,000-5,000 Mtops (mid-1995) rising to
    ~7,500 by late 1996/97 (the uncontrollability trend) and past 16,000
    before 2000; an RDT&E application cluster starting roughly at 7,000
    Mtops and a military-operations cluster at 10,000 Mtops; the majority
    of applications already below the lower bound.
    """
    from repro.apps.taxonomy import MissionArea

    lb95 = lower_bound_mtops(1995.5)
    # "late 1996 or 1997": the uncontrollability frontier at the turn of
    # that window (the paper's projection predates the PRC's Galaxy-III,
    # which briefly lifts the combined bound above the frontier in 1997).
    lb97 = lower_bound_uncontrollable(1996.9).mtops
    lb99 = lower_bound_mtops(1999.9)
    rdte = _largest_cluster_start(
        1995.5, (MissionArea.NUCLEAR, MissionArea.CRYPTOLOGY, MissionArea.ACW)
    )
    milops = _largest_cluster_start(1995.5, (MissionArea.MILITARY_OPERATIONS,))
    mins = np.array([a.min_at(1995.5) for a in APPLICATIONS
                     if a.year_first <= 1995.5])
    frac_below = float(np.mean(mins < lb95))
    return HeadlineSummary(
        lower_bound_mid_1995=lb95,
        lower_bound_late_1996_97=lb97,
        lower_bound_end_of_decade=lb99,
        rdte_cluster_start=rdte,
        milops_cluster_start=milops,
        fraction_apps_below_lower_1995=frac_below,
    )
