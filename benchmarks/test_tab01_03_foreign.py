"""Tables 1-3: Russian, PRC, and Indian High-Performance Computing Systems.

The per-country system tables, with CTP ratings recomputed from the chip
catalog where element data exist.
"""

from repro.machines.foreign import ForeignCountry, foreign_by_country
from repro.reporting.tables import render_table


def build_tables():
    return {
        country: foreign_by_country(country) for country in ForeignCountry
    }


def test_tab01_03_foreign_systems(benchmark, emit):
    tables = benchmark(build_tables)
    blocks = []
    for number, country in zip((1, 2, 3), ForeignCountry):
        rows = []
        for m in tables[country]:
            rows.append([
                m.vendor, m.model, f"{m.year:.1f}", m.architecture.value,
                m.n_processors,
                m.element.name if m.element else "(indigenous)",
                round(m.ctp_mtops, 1),
            ])
        blocks.append(render_table(
            ["developer", "system", "year", "architecture", "CPUs",
             "processor", "CTP (Mtops)"],
            rows,
            title=f"Table {number}: {country.value} high-performance "
                  f"computing systems",
        ))
    emit("\n\n".join(blocks))

    assert len(tables[ForeignCountry.RUSSIA]) >= 5
    assert len(tables[ForeignCountry.PRC]) >= 5
    assert len(tables[ForeignCountry.INDIA]) >= 5
    # Parallelism as the common theme: multiprocessors dominate each table.
    for country in ForeignCountry:
        multi = [m for m in tables[country] if m.n_processors > 1]
        assert len(multi) >= len(tables[country]) - 2
