"""Tile plane tests: point parity, seam exactness, invalidation precision.

The tile plane's whole contract is *bit-exactness by construction*:
every lattice cell depends only on its own ``(threshold, year)`` pair,
so a 16x16 tile's cells must equal the corresponding cells of any
monolithic grid — not approximately, byte for byte.  These tests pin
that contract at its sharpest edges (threshold-era boundary years,
frontier knife-edges, off-lattice partial rebuilds), plus the epoch
story: catalog events must invalidate exactly the planes whose inputs
changed, provably skipping the rest (``hook_runs`` bookkeeping).
"""

from __future__ import annotations

import dataclasses
import json
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.events import (
    AmendMachine,
    AmendThreshold,
    AppendMachine,
    apply_event,
    reset_catalog,
)
from repro.catalog.registry import catalog_epoch_info, current_epoch
from repro.diffusion.policy import THRESHOLD_HISTORY, evaluate_policy
from repro.diffusion.policy import threshold_at as scalar_threshold_at
from repro.diffusion.policy_grid import evaluate_policy_grid
from repro.machines.columns import machine_columns
from repro.obs.errors import ThresholdInfeasibleError, ValidationError
from repro.obs.trace import counters
from repro.scenarios import HISTORICAL, flop_cap
from repro.scenarios.grid import evaluate_scenario_grid
from repro.serve.server import ServeConfig, ServiceEngine
from repro.tiles import (
    MAX_AXIS_POINTS,
    TILE_SHAPE,
    block_slices,
    canonical_thresholds,
    canonical_years,
    clear_tile_planes,
    policy_cells,
    policy_point,
    prime_tile_plane,
    scenario_cells,
    scenario_point,
    threshold_at,
    threshold_bucket,
    tile_plane_info,
    tiled_policy_grid,
    tiled_scenario_grid,
    year_bucket,
)

#: Grid arrays that must round-trip tobytes-identically through tiles.
_POLICY_FIELDS = ("frontier_mtops", "requirements", "protected_counts",
                  "illusory_counts", "burden_units",
                  "uncontrollable_counts", "credible")
_SCENARIO_FIELDS = _POLICY_FIELDS + ("in_force_mtops", "in_force_credible")


@pytest.fixture(autouse=True)
def _restore_catalog():
    """Every test leaves the baseline catalog and cold tile planes."""
    yield
    reset_catalog()
    clear_tile_planes()


def _grid_builds() -> int:
    return counters().get("policy.grid_builds", 0)


def _assert_grid_parity(tiled, mono, fields=_POLICY_FIELDS):
    for field in fields:
        a = np.asarray(getattr(tiled, field))
        b = np.asarray(getattr(mono, field))
        assert a.dtype == b.dtype, field
        assert a.tobytes() == b.tobytes(), field


# ---------------------------------------------------------------------------

class TestGeometry:
    def test_canonical_axes_live_in_their_bucket(self):
        for bucket in (threshold_bucket(100.0), threshold_bucket(7000.0)):
            points = canonical_thresholds(bucket)
            assert len(points) == TILE_SHAPE[0]
            assert all(threshold_bucket(t) == bucket for t in points)
        bucket = year_bucket(1995.0)
        years = canonical_years(bucket)
        assert 0 < len(years) <= TILE_SHAPE[1]
        assert all(year_bucket(y) == bucket for y in years)

    def test_block_slices_cover_exactly_once(self):
        blocks = block_slices(10, 3)
        seen = [i for a, b in blocks for i in range(a, b)]
        assert seen == list(range(10))
        with pytest.raises(ValueError):
            block_slices(10, 0)


# ---------------------------------------------------------------------------

class TestPointParity:
    def test_points_match_scalar_evaluator(self):
        points = [(100.0, 1985.0), (195.0, 1992.0), (2000.0, 1995.5),
                  (7000.0, 1996.5), (20_000.0, 1998.0)]
        cells = policy_cells(points)
        for (t, y), cell in zip(points, cells):
            assert cell == evaluate_policy(t, y)

    def test_off_lattice_point_is_partial_rebuild_not_full_grid(self):
        grid_builds = _grid_builds()
        before = tile_plane_info()["policy"]
        first = policy_point(123.4, 1991.7)  # lands off the canonical axes
        assert first == evaluate_policy(123.4, 1991.7)
        info = tile_plane_info()["policy"]
        assert info["builds"] - before["builds"] == 1
        assert info["partial_builds"] == before["partial_builds"]
        # A second off-lattice point in the same bucket widens the
        # cached tile in place (partial build), never a full lattice.
        second = policy_point(131.3, 1991.9)
        assert second == evaluate_policy(131.3, 1991.9)
        info = tile_plane_info()["policy"]
        assert info["partial_builds"] - before["partial_builds"] == 1
        assert _grid_builds() == grid_builds

    def test_same_bucket_batch_coalesces_to_one_build(self):
        pairs = [(1600.0 + 10.0 * k, 1995.0 + 0.1 * k) for k in range(5)]
        assert len({(threshold_bucket(t), year_bucket(y))
                    for t, y in pairs}) == 1
        builds = tile_plane_info()["policy"]["builds"]
        cells = policy_cells(pairs)
        assert tile_plane_info()["policy"]["builds"] - builds == 1
        for (t, y), cell in zip(pairs, cells):
            assert cell == evaluate_policy(t, y)

    def test_axis_cap_resets_to_canonical_union_live(self):
        # Keep widening one tile past MAX_AXIS_POINTS: answers stay
        # exact and the axes are rebuilt instead of growing unboundedly.
        years = [1994.6 + 1.4 * k / (MAX_AXIS_POINTS + 20)
                 for k in range(MAX_AXIS_POINTS + 20)]
        for y in years:
            assert policy_point(300.0, y) == evaluate_policy(300.0, y)

    def test_validation_errors_propagate(self):
        with pytest.raises(ValidationError):
            policy_point(-5.0, 1995.0)
        with pytest.raises(ValidationError):
            policy_point(2000.0, 1895.0)


class TestThresholdAt:
    def test_matches_scalar_lookup_across_eras(self):
        for year in (1984.5, 1986.0, 1988.9, 1990.0, 1991.5,
                     1993.0, 1994.1, 1997.5):
            assert threshold_at(year) == scalar_threshold_at(year)

    def test_pre_accord_years_raise_infeasible(self):
        with pytest.raises(ThresholdInfeasibleError):
            threshold_at(1984.0)
        # ... and the failure poisons nothing: feasible lookups still work.
        assert threshold_at(1985.0) == scalar_threshold_at(1985.0)


# ---------------------------------------------------------------------------

class TestSeamParity:
    def test_tiled_grid_bit_exact_across_era_boundaries(self):
        # Axes straddle every threshold-era start and the era threshold
        # values themselves (the credibility knife-edges).
        eps = 0.05
        years = np.array(sorted(
            {era.start_year + d for era in THRESHOLD_HISTORY
             for d in (-eps, 0.0, eps)} | {1996.0, 1998.5}))
        thresholds = np.array([99.9, 100.0, 160.0, 195.0, 195.1,
                               1_499.9, 1_500.0, 7_000.0, 20_000.0])
        mono = evaluate_policy_grid(thresholds, years)
        tiled = tiled_policy_grid(thresholds, years, tile_shape=(4, 3))
        _assert_grid_parity(tiled, mono)
        # Dataclass equality at the seams, not just array bytes: cells
        # adjacent to every tile boundary reconstruct identically.
        for i in (0, 3, 4, 7, 8):
            for j in (0, 2, 3, 5, 6):
                if i < thresholds.size and j < years.size:
                    assert tiled.result_at(i, j) == mono.result_at(i, j)

    def test_assembly_reuses_cached_block_tiles(self):
        thresholds = np.geomspace(50.0, 30_000.0, 12)
        years = np.arange(1987.0, 1999.0, 1.1)
        tiled_policy_grid(thresholds, years, tile_shape=(5, 4))
        after_first = tile_plane_info()["policy"]
        tiled_policy_grid(thresholds, years, tile_shape=(5, 4))
        info = tile_plane_info()["policy"]
        # Second assembly: pure cache hits, not one new build.
        assert info["builds"] == after_first["builds"]
        assert (info["cache"]["hits"] - after_first["cache"]["hits"]
                >= len(block_slices(thresholds.size, 5))
                * len(block_slices(years.size, 4)))


_PROP_THRESHOLDS = np.geomspace(50.0, 30_000.0, 12)
_PROP_YEARS = np.arange(1987.0, 1999.0, 1.1)
_PROP_MONO = evaluate_policy_grid(_PROP_THRESHOLDS, _PROP_YEARS)


class TestTileShapeProperty:
    @settings(max_examples=25, deadline=None)
    @given(rows=st.integers(min_value=1, max_value=7),
           cols=st.integers(min_value=1, max_value=7))
    def test_any_tile_shape_assembles_the_same_columns(self, rows, cols):
        tiled = tiled_policy_grid(_PROP_THRESHOLDS, _PROP_YEARS,
                                  tile_shape=(rows, cols))
        assert (tiled.credible.tobytes()
                == _PROP_MONO.credible.tobytes())
        assert (tiled.protected_counts.tobytes()
                == _PROP_MONO.protected_counts.tobytes())
        assert (tiled.burden_units.tobytes()
                == _PROP_MONO.burden_units.tobytes())


# ---------------------------------------------------------------------------

class TestInvalidation:
    @staticmethod
    def _invalidations() -> dict[str, int]:
        return {name: info["invalidations"]
                for name, info in tile_plane_info().items()}

    def test_amend_threshold_spares_policy_tiles(self):
        policy_point(2000.0, 1995.5)
        threshold_at(1995.0)
        runs_before = catalog_epoch_info()["hook_runs"].get(
            "tiles.policy", 0)
        before = self._invalidations()
        apply_event(AmendThreshold(start_year=1994.1,
                                   threshold_mtops=7_500.0,
                                   label="amended"))
        hook_runs = catalog_epoch_info()["hook_runs"]
        # Scorecards never read THRESHOLD_HISTORY: the policy plane's
        # hook must not have run, while the era plane's must have.
        assert hook_runs.get("tiles.policy", 0) == runs_before
        after = self._invalidations()
        assert after["policy"] == before["policy"]
        assert after["era"] == before["era"] + 1
        assert after["scenario"] == before["scenario"] + 1
        assert threshold_at(1995.0) == 7_500.0
        # The surviving tile still answers, and still exactly.
        assert policy_point(2000.0, 1995.5) == evaluate_policy(2000.0,
                                                               1995.5)

    def test_machine_events_invalidate_and_reprove_parity(self):
        probe = (2000.0, 1995.5)
        policy_point(*probe)
        before = self._invalidations()["policy"]
        base = machine_columns().machines[-1]
        clone = dataclasses.replace(base, vendor="TileCo", model="TQ-1")
        apply_event(AppendMachine(machine=clone))
        assert self._invalidations()["policy"] == before + 1
        assert policy_point(*probe) == evaluate_policy(*probe)
        apply_event(AmendMachine(
            key=clone.key,
            machine=dataclasses.replace(clone, units_installed=11)))
        assert self._invalidations()["policy"] == before + 2
        assert policy_point(*probe) == evaluate_policy(*probe)

    def test_reset_catalog_sweeps_every_plane(self):
        policy_point(2000.0, 1995.5)
        scenario_point(HISTORICAL, 2000.0, 1995.5)
        before = self._invalidations()
        reset_catalog()
        after = tile_plane_info()
        assert all(after[name]["invalidations"] == before[name] + 1
                   for name in ("policy", "era", "scenario"))
        assert all(after[name]["cache"]["entries"] == 0
                   for name in ("policy", "era", "scenario"))


# ---------------------------------------------------------------------------

class TestScenarioTiles:
    def test_scenario_point_matches_monolithic_tensor(self):
        worlds = (HISTORICAL, flop_cap())
        t, y = 2_000.0, 1995.5
        grid = evaluate_scenario_grid(worlds, [t], [y])
        for w, world in enumerate(worlds):
            point = scenario_point(world, t, y)
            assert point.scenario is world
            assert point.cell == grid.result_at(w, 0, 0)
            assert (point.threshold_in_force_mtops
                    == float(grid.in_force_mtops[w, 0]))
            assert (point.in_force_credible
                    == bool(grid.in_force_credible[w, 0]))

    def test_scenario_batch_groups_by_world_and_bucket(self):
        worlds = (HISTORICAL, flop_cap())
        points = [(w, 1_600.0 + 100.0 * k, 1995.0)
                  for w in worlds for k in range(3)]
        builds = tile_plane_info()["scenario"]["builds"]
        cells = scenario_cells(points)
        # Same bucket per world: one tile build per world, not per point.
        assert (tile_plane_info()["scenario"]["builds"] - builds
                == len(worlds))
        grid = evaluate_scenario_grid(
            worlds, sorted({t for _, t, _ in points}), [1995.0])
        for (world, t, _), point in zip(points, cells):
            w = grid.world_index(world)
            i = list(grid.thresholds).index(t)
            assert point.cell == grid.result_at(w, i, 0)

    def test_tiled_scenario_grid_bit_exact(self):
        worlds = (HISTORICAL, flop_cap())
        thresholds = np.geomspace(100.0, 20_000.0, 9)
        years = np.arange(1989.0, 1998.0, 1.3)
        mono = evaluate_scenario_grid(worlds, thresholds, years)
        tiled = tiled_scenario_grid(worlds, thresholds, years,
                                    tile_shape=(4, 3))
        _assert_grid_parity(tiled, mono, fields=_SCENARIO_FIELDS)
        assert tiled.epoch == current_epoch()


# ---------------------------------------------------------------------------

class TestPriming:
    def test_prime_builds_tiles_without_full_grids(self):
        grid_builds = _grid_builds()
        tile_builds = tile_plane_info()["policy"]["builds"]
        report = prime_tile_plane()
        assert report["points"] > 0
        assert tile_plane_info()["policy"]["builds"] > tile_builds
        assert _grid_builds() == grid_builds
        # Primed coverage: the statutory mix answers from cache.
        misses = tile_plane_info()["policy"]["cache"]["misses"]
        policy_cells([(195.0, 1992.0), (1_500.0, 1995.0),
                      (7_000.0, 1996.5)])
        assert tile_plane_info()["policy"]["cache"]["misses"] == misses


# ---------------------------------------------------------------------------

class TestServeDispatch:
    def test_point_endpoints_never_build_full_grids(self):
        engine = ServiceEngine(ServeConfig(cache_size=0))
        try:
            policy_builds = _grid_builds()
            scenario_builds = counters().get("scenarios.grid_builds", 0)
            tile_builds = tile_plane_info()["policy"]["builds"]
            for t, y in ((195.0, 1992.0), (2_000.0, 1995.5),
                         (7_000.0, 1996.5)):
                status, body = engine.handle(
                    "policy", {"threshold_mtops": t, "year": y})
                assert status == 200
                cell = evaluate_policy(t, y)
                assert body["frontier_mtops"] == cell.frontier_mtops
                assert body["credible"] == cell.credible
                assert (body["protected_count"]
                        == len(cell.protected_applications))
                assert body["burden_units"] == cell.burden_units
                status, body = engine.handle(
                    "scenario", {"scenario": "flop_cap",
                                 "threshold_mtops": t, "year": y})
                assert status == 200
                assert "threshold_in_force_mtops" in body
            assert _grid_builds() == policy_builds
            assert (counters().get("scenarios.grid_builds", 0)
                    == scenario_builds)
            assert tile_plane_info()["policy"]["builds"] > tile_builds
        finally:
            engine.close()

    def test_batched_responses_match_one_at_a_time(self):
        payloads = [{"threshold_mtops": t, "year": y}
                    for t in (195.0, 2_000.0, 7_000.0)
                    for y in (1992.0, 1995.5)]
        reference = ServiceEngine(ServeConfig(max_batch=1, cache_size=0))
        try:
            expected = [reference.handle("policy", p) for p in payloads]
        finally:
            reference.close()
        assert all(status == 200 for status, _ in expected)

        engine = ServiceEngine(ServeConfig(max_batch=64, cache_size=0))
        try:
            with ThreadPoolExecutor(max_workers=8) as pool:
                got = list(pool.map(
                    lambda p: engine.handle("policy", p), payloads))
        finally:
            engine.close()
        for (status, body), (got_status, got_body) in zip(expected, got):
            assert got_status == 200
            assert json.dumps(got_body, sort_keys=True) \
                == json.dumps(body, sort_keys=True)
