"""Tests for the concrete trend modules: micros, SMPs, foreign, Top500."""

import numpy as np
import pytest

from repro.machines.foreign import ForeignCountry
from repro.machines.spec import Architecture
from repro.trends.foreign import foreign_envelope_mtops, foreign_points, foreign_trend
from repro.trends.moore import micro_mtops_trend, micro_points, projected_micro_mtops
from repro.trends.smp import smp_max_config_points, smp_systems, smp_trend, smp_vendor_lines
from repro.trends.top500 import Top500List, generate_top500, rank_trend


class TestMicroTrend:
    def test_doubling_time_commodity_pace(self):
        # Chapter 3: exponential growth at the familiar silicon pace.
        t = micro_mtops_trend(1996.5)
        assert 1.0 < t.doubling_time_years < 3.0

    def test_projection_through_study_date(self):
        assert projected_micro_mtops(1997.0) > projected_micro_mtops(1995.0)

    def test_points_labelled(self):
        assert all(p.label for p in micro_points())

    def test_insufficient_range_raises(self):
        with pytest.raises(ValueError):
            micro_mtops_trend(through=1992.0, since=1992.0)


class TestSmpTrend:
    def test_population_is_smp(self):
        for m in smp_systems():
            assert m.architecture is Architecture.SMP

    def test_max_config_points_use_ceiling(self):
        pts = {p.label: p.mtops for p in smp_max_config_points()}
        # The SPARCstation 10's point is its 4-processor ceiling, not the
        # single-processor config.
        from repro.machines.catalog import find_machine

        ss10 = find_machine("Sun SPARCstation 10")
        assert pts["Sun SPARCstation 10"] == pytest.approx(
            ss10.max_configuration().ctp_mtops
        )

    def test_two_orders_in_early_nineties(self):
        """'Performance of SMP systems has grown by two orders of magnitude
        in the three years since their introduction.'"""
        pts = smp_max_config_points(1996.0)
        early = min(p.mtops for p in pts if p.year <= 1993.0)
        late = max(p.mtops for p in pts if p.year <= 1996.0)
        assert late / early > 50.0

    def test_vendor_lines_sorted(self):
        lines = smp_vendor_lines()
        assert len(lines) >= 4  # SGI, Sun, DEC, HP, Cray...
        for pts in lines.values():
            years = [p.year for p in pts]
            assert years == sorted(years)

    def test_trend_rises(self):
        t = smp_trend(1996.0)
        assert t.growth_per_year > 1.2


class TestForeignTrend:
    def test_points_per_country(self):
        for c in ForeignCountry:
            assert len(foreign_points(c)) >= 3

    def test_envelope_is_max(self):
        year = 1995.5
        individual = [
            max((p.mtops for p in foreign_points(c) if p.year <= year),
                default=0.0)
            for c in ForeignCountry
        ]
        assert foreign_envelope_mtops(year) == pytest.approx(max(individual))

    def test_envelope_zero_before_programs(self):
        assert foreign_envelope_mtops(1950.0) == 0.0

    def test_trends_rise(self):
        for c in ForeignCountry:
            assert foreign_trend(c, through=1996.0).growth_per_year > 1.0


class TestTop500:
    def test_deterministic(self):
        a = generate_top500(1995.5, seed=3)
        b = generate_top500(1995.5, seed=3)
        assert a.mtops() == pytest.approx(b.mtops())

    def test_seed_changes_interior(self):
        a = generate_top500(1995.5, seed=1)
        b = generate_top500(1995.5, seed=2)
        assert not np.allclose(a.mtops()[1:-1], b.mtops()[1:-1])

    def test_endpoints_pinned(self):
        lst = generate_top500(1995.5, seed=7)
        assert lst.entries[0].mtops == pytest.approx(rank_trend(1, 1995.5))
        assert lst.entries[-1].mtops == pytest.approx(rank_trend(500, 1995.5))

    def test_descending(self):
        perf = generate_top500(1994.0).mtops()
        assert np.all(np.diff(perf) <= 0)

    def test_rank_trend_monotone_in_rank(self):
        assert rank_trend(1, 1995.0) > rank_trend(100, 1995.0) > rank_trend(500, 1995.0)

    def test_rank_trend_monotone_in_year(self):
        assert rank_trend(100, 1996.0) > rank_trend(100, 1993.0)

    def test_rank_trend_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            rank_trend(0, 1995.0)
        with pytest.raises(ValueError):
            rank_trend(501, 1995.0)

    def test_shares_sum_to_one(self):
        shares = generate_top500(1995.5).share_by_architecture()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_vector_share_declines(self):
        v93 = generate_top500(1993.5, seed=0).share_by_architecture().get(
            Architecture.VECTOR, 0.0)
        v99 = generate_top500(1999.5, seed=0).share_by_architecture().get(
            Architecture.VECTOR, 0.0)
        assert v99 < v93

    def test_fraction_below_monotone(self):
        lst = generate_top500(1995.5)
        assert lst.fraction_below(1_000.0) <= lst.fraction_below(10_000.0)

    def test_histogram_counts_everything(self):
        lst = generate_top500(1995.5)
        edges = 10.0 ** np.arange(1.0, 7.1, 0.5)
        assert lst.histogram(edges).sum() == 500

    def test_small_list(self):
        lst = generate_top500(1995.5, n=10)
        assert len(lst.entries) == 10

    def test_rejects_tiny_list(self):
        with pytest.raises(ValueError):
            generate_top500(1995.5, n=1)
