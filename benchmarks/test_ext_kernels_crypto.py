"""Extension experiment: grounding the abstractions in runnable code.

Two substrate validations behind the paper's computational claims:

* the kernel calibration harness — measured Mflops and granularity for
  the three workload families (the Table 5 axis, from real numpy code);
* the DES keysearch — an actual brute-force recovery on a demo keyspace,
  plus the derived word-operation count that the Chapter 4 cost model
  uses and the resulting capability table by key length.
"""

from repro.crypto.des import des_encrypt_block
from repro.crypto.keysearch import WORD_OPS_PER_KEY, brute_force
from repro.kernels.calibrate import calibrate_kernels
from repro.reporting.tables import render_table
from repro.simulate.applications import (
    keysearch_required_mtops,
    keysearch_time_days,
)

_PLAIN = 0x0123456789ABCDEF
_KEY = 0x1F2D


def build_study():
    calibrations = calibrate_kernels(sw_n=96, sw_steps=20, rt_size=96,
                                     cg_n=32, repeats=2)
    cipher = des_encrypt_block(_PLAIN, _KEY)
    search = brute_force(_PLAIN, cipher, search_bits=13)
    return calibrations, search


def test_ext_kernels_and_keysearch(benchmark, emit):
    calibrations, search = benchmark(build_study)
    text = render_table(
        ["kernel", "problem", "achieved Mflops", "granularity (flops/byte)"],
        [[c.name, c.problem, round(c.mflops, 1),
          "inf" if c.granularity_flops_per_byte == float("inf")
          else round(c.granularity_flops_per_byte, 1)]
         for c in calibrations],
        title="Kernel calibration on this host",
    )
    rows = []
    for bits in (40, 48, 56):
        need = keysearch_required_mtops(bits, 24.0)
        days_at_frontier = keysearch_time_days(bits, 4_100.0)
        rows.append([bits, round(need), round(days_at_frontier, 1)])
    text += "\n\n" + render_table(
        ["key bits", "Mtops for a 24-h break",
         "days at the mid-1995 frontier (4,100 Mtops)"],
        rows,
        title=f"Brute-force economics ({WORD_OPS_PER_KEY:.0f} word "
              f"ops/key, derived from the DES implementation)",
    )
    text += (
        f"\n\ndemo search: planted 13-bit key recovered as "
        f"0x{search.found_key:X} (parity-equivalent of 0x{_KEY:X}) after "
        f"{search.keys_tried:,} trials"
    )
    emit(text)

    # DES ignores parity bits (every 8th), so the search may legitimately
    # return a parity-equivalent of the planted key.
    parity_mask = 0x0101010101010101
    assert search.succeeded
    assert des_encrypt_block(_PLAIN, search.found_key) == des_encrypt_block(
        _PLAIN, _KEY
    )
    assert search.found_key & ~parity_mask == _KEY & ~parity_mask
    assert all(c.mflops > 1.0 for c in calibrations)
    # Export-grade 40-bit keys are frontier-breakable in days; DES-56
    # is five orders of magnitude beyond any 1995 ensemble.
    assert keysearch_time_days(40, 4_100.0) < 3.0
    assert keysearch_time_days(56, 4_100.0) > 10_000.0
