"""Tables 8-13: ACW and Military-Operations Functional Areas.

Table 8 (the four ACW functional areas), Tables 9-12 (their design
functions with CTA mappings), and Table 13 (the military-operations
areas), each with the catalog applications that exercise it.
"""

from repro.apps.catalog import APPLICATIONS
from repro.apps.taxonomy import ACW_FUNCTIONAL_AREAS, MILOPS_FUNCTIONAL_AREAS
from repro.reporting.tables import render_table


def build_tables():
    app_count = {
        area.name: sum(1 for a in APPLICATIONS
                       if a.functional_area == area.name)
        for area in ACW_FUNCTIONAL_AREAS + MILOPS_FUNCTIONAL_AREAS
    }
    return app_count


def test_tab08_13_functional_areas(benchmark, emit):
    app_count = benchmark(build_tables)
    blocks = [render_table(
        ["ACW functional area", "design functions", "catalog applications"],
        [[a.name, len(a.functions), app_count[a.name]]
         for a in ACW_FUNCTIONAL_AREAS],
        title="Table 8: ACW functional areas",
    )]
    for number, area in zip((9, 10, 11, 12), ACW_FUNCTIONAL_AREAS):
        blocks.append(render_table(
            ["design application", "computational technology areas"],
            [[fn.name, ", ".join(c.name for c in fn.ctas)]
             for fn in area.functions],
            title=f"Table {number}: {area.name} functions",
        ))
    blocks.append(render_table(
        ["military-operations functional area", "functions",
         "catalog applications"],
        [[a.name, len(a.functions), app_count[a.name]]
         for a in MILOPS_FUNCTIONAL_AREAS],
        title="Table 13: military operations functional areas",
    ))
    emit("\n\n".join(blocks))

    # Every functional area is exercised by at least one catalog
    # application.
    for area in ACW_FUNCTIONAL_AREAS + MILOPS_FUNCTIONAL_AREAS:
        if area.name == "Information warfare":
            continue  # one IW application, allowed to be thin
        assert app_count[area.name] >= 1, area.name
