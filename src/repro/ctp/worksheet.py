"""Rating worksheets: the CTP arithmetic, shown step by step.

The paper's core complaint about the old process was opacity —
"manufacturers came to feel that government licensing decisions were
arbitrary".  A worksheet makes every rating auditable: per-element rate,
word-length adjustment, the credit schedule, and the discounted sum, each
as a line a reviewer can check by hand.
"""

from __future__ import annotations

from repro.ctp.aggregate import (
    Coupling,
    CTPParameters,
    DEFAULT_PARAMETERS,
    aggregation_credits,
)
from repro.ctp.elements import ComputingElement
from repro.ctp.rates import effective_rate, theoretical_performance

__all__ = ["rating_worksheet", "machine_worksheet"]


def rating_worksheet(
    element: ComputingElement,
    n: int,
    coupling: Coupling,
    params: CTPParameters = DEFAULT_PARAMETERS,
) -> str:
    """Human-checkable derivation of a homogeneous configuration's CTP."""
    if n < 1:
        raise ValueError("n must be >= 1")
    rate = effective_rate(element)
    tp = theoretical_performance(element)
    mode = "add (concurrent units)" if element.concurrent_int_fp \
        else "max (single-issue)"
    lines = [
        f"CTP rating worksheet: {n} x {element.name}",
        "-" * 56,
        f"1. rates      fp = {element.clock_mhz:g} MHz x "
        f"{element.fp_ops_per_cycle:g}/cy = "
        f"{element.clock_mhz * element.fp_ops_per_cycle:,.1f} Mops/s",
        f"              int = {element.clock_mhz:g} MHz x "
        f"{element.int_ops_per_cycle:g}/cy = "
        f"{element.clock_mhz * element.int_ops_per_cycle:,.1f} Mops/s",
        f"              combine by {mode}: R = {rate:,.1f}",
        f"2. word length L = 1/3 + {element.word_bits:g}/96 = "
        f"{element.length_factor:.4f}",
        f"3. element TP = R x L = {tp:,.1f} Mtops",
    ]
    effective_coupling = Coupling.SINGLE if n == 1 else coupling
    credits = aggregation_credits(n, effective_coupling, params)
    credit_total = float(credits.sum())
    if n == 1:
        lines.append("4. single element: no aggregation")
    else:
        shown = ", ".join(f"{c:.3f}" for c in credits[:6])
        suffix = ", ..." if n > 6 else ""
        lines.append(
            f"4. credits ({effective_coupling.value}): [{shown}{suffix}] "
            f"sum = {credit_total:,.3f}"
        )
    lines.append(f"5. CTP = {tp:,.1f} x {credit_total:,.3f} = "
                 f"{tp * credit_total:,.1f} Mtops")
    return "\n".join(lines)


def machine_worksheet(machine_key: str) -> str:
    """Worksheet for a catalog machine (falls back to a note for
    quoted-only entries)."""
    from repro.machines.catalog import find_machine

    machine = find_machine(machine_key)
    if machine.element is None:
        return (f"{machine.key}: rated {machine.ctp_mtops:,.1f} Mtops "
                f"(paper-quoted; no element data to derive)")
    text = rating_worksheet(
        machine.element, machine.n_processors, machine.architecture.coupling
    )
    if machine.quoted_ctp_mtops is not None:
        text += (f"\n   paper-quoted rating: "
                 f"{machine.quoted_ctp_mtops:,.1f} Mtops")
    return text
