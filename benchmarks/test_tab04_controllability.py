"""Table 4: Controllability of Selected Commercial HPC Systems.

The factor-by-factor assessment, the composite index, and the
classification — reproducing Chapter 3's verdicts (Cray vector machines
and big MPPs controllable; CS6400/Challenge-class SMPs and volume
workstations uncontrollable).
"""

from repro.controllability.index import Classification, classification_table
from repro.reporting.tables import render_table


def build_table():
    return classification_table()


def test_tab04_controllability(benchmark, emit):
    rows_data = benchmark(build_table)
    rows = []
    for a in rows_data:
        s = a.scores
        rows.append([
            a.machine.key,
            round(s.size, 2), round(s.units, 2), round(s.channel, 2),
            round(s.price, 2), round(s.scalability, 2),
            round(a.index, 3), a.classification.value,
        ])
    emit(render_table(
        ["system", "size", "units", "channel", "price", "scal.",
         "index", "classification"],
        rows,
        title="Table 4: controllability of selected commercial HPC systems",
    ))

    verdicts = {a.machine.key: a.classification for a in rows_data}
    assert verdicts["Cray C916"] is Classification.CONTROLLABLE
    assert verdicts["Cray T3D (512)"] is Classification.CONTROLLABLE
    assert verdicts["Cray CS6400 (64)"] is Classification.UNCONTROLLABLE
    assert verdicts["SGI Challenge XL (36)"] is Classification.UNCONTROLLABLE
    assert verdicts["Sun SPARCstation 10"] is Classification.UNCONTROLLABLE
