"""Table 14: Summary of Representative Computational Requirements for RDT&E.

Nuclear, cryptologic, and ACW applications with minimum and actual
systems, plus the per-mission key judgments as assertions (two-thirds
below controllability; a 7,000-8,000-Mtops band; 20,000+ memory-bound
holdouts).
"""

import numpy as np

from repro.apps.catalog import applications_by_mission
from repro.apps.taxonomy import MissionArea
from repro.core.framework import lower_bound_mtops
from repro.reporting.tables import render_table

_RDTE = (MissionArea.NUCLEAR, MissionArea.CRYPTOLOGY, MissionArea.ACW)


def build_table():
    return [a for mission in _RDTE for a in applications_by_mission(mission)]


def test_tab14_rdte_requirements(benchmark, emit):
    apps = benchmark(build_table)
    lower = lower_bound_mtops(1995.5)
    rows = []
    for a in apps:
        rows.append([
            a.mission.value.split()[0], a.name, round(a.min_mtops, 1),
            round(a.actual_mtops, 1) if a.actual_mtops else "-",
            a.actual_system or "-", a.parallelizable.value,
        ])
    text = render_table(
        ["mission", "application", "min Mtops", "actual Mtops",
         "actual system", "cluster-convertible"],
        rows,
        title="Table 14: representative computational requirements for RDT&E",
    )
    text += f"\n\nlower bound of controllability (mid-1995) = {lower:,.0f}"
    emit(text)

    mins = np.array([a.min_at(1995.5) for a in apps if a.year_first <= 1995.5])
    # "More than two-thirds of the applications ... below the threshold of
    # controllability" holds for the RDT&E catalog too.
    assert np.mean(mins < lower) >= 0.5
    # The 20,000+ memory-bound group exists (acoustic/ATR/turbulent flow).
    assert (np.array([a.min_mtops for a in apps]) >= 20_000.0).sum() >= 3
