"""Market segments and growth (Chapter 3's SCS figures).

Anchor figures from the paper: a $75B PC market, a $30B low/mid-range
workstation market, a $2.5B parallel/high-end-SMP market in 1994 growing at
"over 40% per year", with commercial parallel computing alone "expected to
grow to $5.2 billion by 1998"; MPPs a small fraction of commercial
installations (SMP fits 90% of them).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import check_positive, check_year

__all__ = ["MarketSegment", "SEGMENTS", "find_segment", "segment_revenue_busd"]


@dataclass(frozen=True)
class MarketSegment:
    """One industry segment with exponential revenue growth."""

    name: str
    revenue_busd_1994: float
    growth_per_year: float
    notes: str = ""

    def __post_init__(self) -> None:
        check_positive(self.revenue_busd_1994, f"{self.name}: revenue")
        check_positive(self.growth_per_year, f"{self.name}: growth")

    def revenue_busd(self, year: float) -> float:
        """Projected revenue in billions of 1994 dollars."""
        check_year(year, "year")
        return self.revenue_busd_1994 * self.growth_per_year ** (year - 1994.0)


SEGMENTS: tuple[MarketSegment, ...] = (
    MarketSegment(
        name="personal computers", revenue_busd_1994=75.0, growth_per_year=1.15,
        notes="Decontrolled since 1985; the existence proof of "
              "uncontrollability.",
    ),
    MarketSegment(
        name="workstations", revenue_busd_1994=30.0, growth_per_year=1.10,
        notes="Low- and mid-range; the microprocessor R&D engine.",
    ),
    MarketSegment(
        name="parallel systems (SMP + MPP)", revenue_busd_1994=2.5,
        growth_per_year=1.40,
        notes="The fastest-growing segment (SCS: >40%/yr); the frontier "
              "population lives here.",
    ),
    MarketSegment(
        name="commercial MPP", revenue_busd_1994=0.5, growth_per_year=1.55,
        notes="'SMP is more appropriate than MPP in 90% of commercial "
              "installations' (Smaby).  $5.2B commercial parallel by 1998 "
              "(with SMP).",
    ),
    MarketSegment(
        name="vector supercomputers", revenue_busd_1994=1.2,
        growth_per_year=0.92,
        notes="Declining with the Cold War procurement base.",
    ),
)


_BY_NAME = {s.name: s for s in SEGMENTS}


def find_segment(name: str) -> MarketSegment:
    """Look up a segment by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown segment {name!r}; known: {sorted(_BY_NAME)}") from None


def segment_revenue_busd(name: str, year: float) -> float:
    """Projected revenue of one segment at ``year``."""
    return find_segment(name).revenue_busd(year)
