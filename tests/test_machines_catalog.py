"""Tests for the commercial machine catalog: anchor fidelity and structure."""

import pytest

from repro.machines.catalog import (
    COMMERCIAL_SYSTEMS,
    commercial_by_architecture,
    commercial_by_year,
    find_machine,
    max_available_mtops,
)
from repro.machines.spec import Architecture


class TestCatalogStructure:
    def test_nontrivial_size(self):
        assert len(COMMERCIAL_SYSTEMS) >= 40

    def test_unique_keys(self):
        keys = [m.key for m in COMMERCIAL_SYSTEMS]
        assert len(set(keys)) == len(keys)

    def test_every_entry_rateable(self):
        for m in COMMERCIAL_SYSTEMS:
            assert m.ctp_mtops > 0

    def test_find_machine(self):
        assert find_machine("Cray C916").quoted_ctp_mtops == 21125.0

    def test_find_machine_unknown(self):
        with pytest.raises(KeyError, match="unknown machine"):
            find_machine("Cray C917")

    @pytest.mark.parametrize("variant", [
        "cray c916", "CRAY C916", "Cray  C916", "  Cray C916  ",
        "cRaY\tc916",
    ])
    def test_find_machine_normalizes_case_and_whitespace(self, variant):
        assert find_machine(variant) is find_machine("Cray C916")

    def test_find_machine_miss_is_catalog_lookup_error(self):
        from repro.obs import CatalogLookupError

        with pytest.raises(CatalogLookupError) as excinfo:
            find_machine("Cray C917")
        err = excinfo.value
        assert "closest" in str(err)
        assert "Cray C916" in str(err)
        assert "Cray C916" in err.context["closest"]
        assert err.context["got"] == "Cray C917"

    def test_find_machine_miss_message_not_repr_quoted(self):
        """CatalogLookupError is a KeyError but must still print its
        message plainly, not as a repr-quoted key."""
        from repro.obs import CatalogLookupError

        try:
            find_machine("Cray C917")
        except CatalogLookupError as err:
            assert not str(err).startswith('"')

    def test_by_year_sorted_and_truncated(self):
        specs = commercial_by_year(1990.0)
        assert specs == sorted(specs, key=lambda m: (m.year, m.key))
        assert all(m.year <= 1990.0 for m in specs)

    def test_by_architecture(self):
        smps = commercial_by_architecture(Architecture.SMP)
        assert smps
        assert all(m.architecture is Architecture.SMP for m in smps)

    def test_covers_architecture_classes(self):
        present = {m.architecture for m in COMMERCIAL_SYSTEMS}
        assert Architecture.VECTOR in present
        assert Architecture.SMP in present
        assert Architecture.MPP in present
        assert Architecture.UNIPROCESSOR in present


#: Paper-quoted ratings that the CTP reconstruction must land near.
_TIGHT_ANCHORS = [
    ("DEC VAX-11/780", 0.8),
    ("Cray Y-MP/2", 958.0),
    ("Cray Cray-2/2", 1098.0),
    ("Cray C916", 21125.0),
    ("Cray C90/8", 10625.0),
    ("Cray T3D (64)", 3439.0),
    ("Cray T3D (512)", 10056.0),
    ("Intel iPSC/860 (128)", 3485.0),
    ("Intel Paragon XP/S (150)", 4864.0),
    ("Thinking Machines CM-5 (128)", 5194.0),
    ("Thinking Machines CM-5 (512)", 10457.0),
    ("Thinking Machines CM-5 (1024)", 14410.0),
    ("Sun SPARCstation 4/300", 20.8),
]


class TestAnchors:
    @pytest.mark.parametrize("key,quoted", _TIGHT_ANCHORS)
    def test_quoted_value_carried(self, key, quoted):
        assert find_machine(key).quoted_ctp_mtops == quoted

    @pytest.mark.parametrize("key,quoted", _TIGHT_ANCHORS)
    def test_formula_reproduces_quote(self, key, quoted):
        """The CTP reconstruction lands within 10% on the tight anchors."""
        computed = find_machine(key).computed_ctp_mtops()
        assert computed == pytest.approx(quoted, rel=0.10)

    def test_all_non_approx_quotes_within_factor(self):
        """Every paper-quoted, non-approximate entry with element data is
        reproduced within a factor of 1.5."""
        for m in COMMERCIAL_SYSTEMS:
            if m.approx or m.quoted_ctp_mtops is None:
                continue
            computed = m.computed_ctp_mtops()
            if computed is None:
                continue
            ratio = computed / m.quoted_ctp_mtops
            assert 1 / 1.5 < ratio < 1.5, (m.key, ratio)


class TestMaxAvailable:
    def test_monotone_nondecreasing(self):
        years = [1977.0, 1985.0, 1990.0, 1993.0, 1995.5, 1998.0]
        values = [max_available_mtops(y) for y in years]
        assert values == sorted(values)

    def test_mid_1995_exceeds_100k(self):
        # "the current state of the art, which exceeds 100,000 Mtops".
        assert max_available_mtops(1995.5) > 100_000.0

    def test_1990_dominated_by_vector_machines(self):
        assert max_available_mtops(1990.0) == pytest.approx(
            find_machine("Cray Y-MP/8").ctp_mtops
        )

    def test_before_catalog_raises(self):
        with pytest.raises(ValueError):
            max_available_mtops(1970.0)
