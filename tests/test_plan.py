"""The multi-query planner contract: CSE, fusion, parity, isolation.

The load-bearing property is byte-identity: a heterogeneous batch
executed through one fused plan must produce, slot for slot, exactly
what sequential per-request dispatch produces at the same epoch — for
successes (identical JSON serialization, which covers dict field order)
and for failures (the same exception type and message, isolated to the
slots that depend on the failing input).  Around it: the epoch
interleave rule (a plan admitted at epoch N finishes against epoch N
while a mutation queues), the MicroBatcher dedup counter, the ``POST
/batch`` envelope, the ``serve.plan`` metrics pin, and the stdio
JSON-RPC bridge.
"""

from __future__ import annotations

import io
import json
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.events import apply_event, parse_event, reset_catalog
from repro.catalog.registry import current_epoch
from repro.obs.trace import counters
from repro.serve import plan as plan_module
from repro.serve.batching import MicroBatcher
from repro.serve.client import ServeClient
from repro.serve.plan import build_plan, execute_plan, plan_stats
from repro.serve.rpc import RPC_METHODS, rpc_response, run_stdio_bridge
from repro.serve.schemas import parse_request
from repro.serve.server import ServeConfig, ServeServer, ServiceEngine


def _server(**overrides) -> ServeServer:
    config = ServeConfig(**{"port": 0, **overrides})
    return ServeServer(config).start()


# A vocabulary spanning all seven endpoints, including inputs that fail
# (year 1950 predates every threshold era), so shuffled subsets exercise
# CSE, cross-endpoint reuse, fusion, and per-slot error isolation.
_VOCAB = [
    ("rate", {"clock_mhz": 150.0, "processors": 16}),
    ("rate", {"clock_mhz": 150.0, "processors": 16}),  # duplicate: CSE
    ("rate", {"clock_mhz": 85.0, "processors": 4, "coupling": "distributed",
              "year": 1994.0}),
    ("license", {"machine": "Cray C916", "destination": "India"}),
    ("license", {"machine": "Cray T3D (64)", "destination": "Germany"}),
    ("machine", {"machine": "Cray C916"}),
    ("review", {"year": 1994.0}),
    ("review", {"year": 1995.5}),
    ("policy", {"threshold_mtops": 2000.0, "year": 1995.5}),
    ("policy", {"threshold_mtops": 195.0, "year": 1992.0}),
    ("scenario", {"scenario": "historical", "year": 1995.5}),
    ("scenario", {"scenario": "flop_cap", "year": 1993.0}),
    ("threshold_at", {"year": 1994.0}),
    ("threshold_at", {"year": 1950.0}),  # pre-era: fails its slot only
    ("threshold_at", {}),
]


def _slot_repr(result: object) -> str:
    """A comparable serialization: JSON for bodies, type+message for
    exceptions (two runs of the same failing input must agree on both)."""
    if isinstance(result, BaseException):
        return f"{type(result).__name__}: {result}"
    return json.dumps(result)


# ---------------------------------------------------------------------------
# byte-identity property
# ---------------------------------------------------------------------------

class TestPlannerParity:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.sampled_from(_VOCAB), min_size=1, max_size=16))
    def test_any_mixed_batch_matches_sequential_dispatch(self, items):
        """One fused plan over a random mixed batch == a plan-of-1 per
        request, slot for slot, at the same epoch."""
        requests = [parse_request(endpoint, dict(payload))
                    for endpoint, payload in items]
        fused = execute_plan(build_plan(requests))
        sequential = [execute_plan(build_plan([r]))[0] for r in requests]
        assert [_slot_repr(r) for r in fused] == \
               [_slot_repr(r) for r in sequential]

    def test_duplicates_collapse_and_fan_out_one_body(self):
        requests = [parse_request("rate", {"clock_mhz": 150.0,
                                           "processors": 16})
                    for _ in range(5)]
        plan = build_plan(requests)
        assert plan.cse_hits == 4
        assert plan.summary() == {"queries": 5, "unique_queries": 1,
                                  "cse_hits": 4}
        results = execute_plan(plan)
        assert all(r is results[0] for r in results)  # one shared body

    def test_review_era_reuse_is_bit_identical(self):
        """An in-plan review satisfies a same-year threshold_at / rate
        era dependency with the identical float."""
        requests = [parse_request("review", {"year": 1994.0}),
                    parse_request("threshold_at", {"year": 1994.0}),
                    parse_request("rate", {"clock_mhz": 150.0,
                                           "processors": 16,
                                           "year": 1994.0})]
        before = plan_stats()["reuse_hits"]
        review, threshold, rate = execute_plan(build_plan(requests))
        assert plan_stats()["reuse_hits"] - before == 1
        assert threshold["threshold_mtops"] == \
               review["threshold_in_force_mtops"]
        assert rate["threshold_mtops"] == review["threshold_in_force_mtops"]
        solo = execute_plan(build_plan([requests[1]]))[0]
        assert json.dumps(solo) == json.dumps(threshold)

    def test_poisoned_batch_mate_cannot_change_other_slots(self):
        """An infeasible year fails only its own slot; every other slot
        is byte-identical to running without the poisoned mate."""
        good = [parse_request("rate", {"clock_mhz": 150.0,
                                       "processors": 16}),
                parse_request("policy", {"threshold_mtops": 2000.0,
                                         "year": 1995.5})]
        bad = parse_request("threshold_at", {"year": 1950.0})
        mixed = execute_plan(build_plan([good[0], bad, good[1]]))
        alone = execute_plan(build_plan(good))
        assert isinstance(mixed[1], BaseException)
        assert json.dumps(mixed[0]) == json.dumps(alone[0])
        assert json.dumps(mixed[2]) == json.dumps(alone[1])


# ---------------------------------------------------------------------------
# epoch interleave
# ---------------------------------------------------------------------------

class TestEpochInterleave:
    def test_plan_completes_at_admission_epoch_while_amend_queues(
            self, monkeypatch):
        """A plan admitted at epoch N holds the read guard for its whole
        execution: an ``amend_threshold`` posted mid-plan queues behind
        it, and every slot matches the epoch-N sequential reference."""
        requests = [parse_request("review", {"year": 1994.5}),
                    parse_request("threshold_at", {"year": 1994.5}),
                    parse_request("rate", {"clock_mhz": 150.0,
                                           "processors": 16,
                                           "year": 1994.5})]
        try:
            epoch = current_epoch()
            reference = [json.dumps(execute_plan(build_plan([r]))[0])
                         for r in requests]

            entered, release = threading.Event(), threading.Event()
            original = plan_module.review_body

            def gated_review_body(request):
                entered.set()
                assert release.wait(5.0), "test deadlock"
                return original(request)

            monkeypatch.setattr(plan_module, "review_body",
                                gated_review_body)
            result: dict = {}

            def run():
                result["slots"] = execute_plan(build_plan(requests))

            runner = threading.Thread(target=run)
            runner.start()
            assert entered.wait(5.0)  # guard held, review in flight

            writer = threading.Thread(target=lambda: apply_event(parse_event(
                {"event": "amend_threshold", "start_year": 1994.1,
                 "threshold_mtops": 3_000.0})))
            writer.start()
            writer.join(0.2)
            # The mutation is queued behind the in-flight plan.
            assert writer.is_alive()
            assert current_epoch() == epoch

            release.set()
            runner.join(10.0)
            writer.join(10.0)
            assert not runner.is_alive() and not writer.is_alive()
            assert current_epoch() == epoch + 1

            # The plan never saw the amendment: bit-identical to the
            # epoch-N reference, reuse path included.
            assert [json.dumps(s) for s in result["slots"]] == reference
        finally:
            reset_catalog()


# ---------------------------------------------------------------------------
# MicroBatcher dedup
# ---------------------------------------------------------------------------

class _KeyedRequest:
    def __init__(self, key: tuple, value: int) -> None:
        self.cache_key = key
        self.value = value


class TestBatcherDedup:
    def test_intra_batch_duplicates_dispatch_once(self):
        release, entered = threading.Event(), threading.Event()
        seen: list[list[int]] = []

        def dispatch(requests):
            if not entered.is_set():
                entered.set()
                assert release.wait(5.0)
            seen.append([r.value for r in requests])
            return [r.value * 2 for r in requests]

        batcher = MicroBatcher("t", dispatch, max_batch=8, queue_limit=64)
        before = counters().get("serve.batch.dedup_hits", 0)
        try:
            first = batcher.submit(_KeyedRequest(("k", 0), 0))
            assert entered.wait(5.0)
            backlog = [batcher.submit(_KeyedRequest(("k", i % 2), i % 2))
                       for i in range(1, 6)]
            release.set()
            assert first.result(5.0) == 0
            assert [f.result(5.0) for f in backlog] == [2, 0, 2, 0, 2]
        finally:
            batcher.stop()
        # The 5-deep backlog held 2 unique keys: one dispatch of 2.
        assert seen == [[0], [1, 0]]
        stats = batcher.stats()
        assert stats["dedup_hits"] == 3
        assert stats["completed"] == 6
        assert counters()["serve.batch.dedup_hits"] - before == 3

    def test_opaque_requests_never_dedup(self):
        """No ``cache_key`` attribute -> every request keeps its slot."""
        release, entered = threading.Event(), threading.Event()

        def dispatch(requests):
            if not entered.is_set():
                entered.set()
                assert release.wait(5.0)
            return list(requests)

        batcher = MicroBatcher("t", dispatch, max_batch=8, queue_limit=64)
        try:
            first = batcher.submit(7)
            assert entered.wait(5.0)
            backlog = [batcher.submit(7) for _ in range(3)]
            release.set()
            assert first.result(5.0) == 7
            assert [f.result(5.0) for f in backlog] == [7, 7, 7]
        finally:
            batcher.stop()
        assert batcher.stats()["dedup_hits"] == 0

    def test_exception_result_fails_only_its_future(self):
        """A dispatch may return a BaseException in one slot; the other
        slots' futures still resolve."""
        def dispatch(requests):
            return [ValueError("poisoned") if r == "bad" else r
                    for r in requests]

        batcher = MicroBatcher("t", dispatch, max_batch=4, queue_limit=8)
        try:
            good, bad = batcher.submit("good"), batcher.submit("bad")
            assert good.result(5.0) == "good"
            with pytest.raises(ValueError, match="poisoned"):
                bad.result(5.0)
        finally:
            batcher.stop()


# ---------------------------------------------------------------------------
# POST /batch
# ---------------------------------------------------------------------------

class TestBatchEndpoint:
    @pytest.fixture(scope="class")
    def served(self):
        server = _server(cache_size=0)
        client = ServeClient(port=server.port)
        yield client
        client.close()
        server.close()

    def test_mixed_batch_matches_solo_requests(self, served):
        items = [{"endpoint": endpoint, **payload}
                 for endpoint, payload in _VOCAB]
        response = served.batch(items)
        assert response.status == 200
        body = response.body
        assert body["endpoint"] == "batch"
        assert body["count"] == len(items)
        assert body["plan"]["cse_hits"] >= 1  # the duplicate rate
        assert len(body["results"]) == len(items)
        for item, slot in zip(items, body["results"]):
            fields = {k: v for k, v in item.items() if k != "endpoint"}
            solo = served.request("POST", f"/{item['endpoint']}", fields)
            assert slot["status"] == solo.status
            assert json.dumps(slot["body"]) == json.dumps(solo.body)

    def test_errors_isolated_per_sub_request(self, served):
        body = served.batch([
            {"endpoint": "rate", "clock_mhz": 150.0, "processors": 16},
            {"endpoint": "threshold_at", "year": 1901.0},
            {"endpoint": "nope"},
            "not-an-object",
            {"endpoint": "policy", "threshold_mtops": 2000.0,
             "year": 1995.5},
        ]).require_ok()
        statuses = [slot["status"] for slot in body["results"]]
        assert statuses == [200, 400, 400, 400, 200]
        for slot in body["results"]:
            if slot["status"] != 200:
                assert "error" in slot["body"]  # taxonomy JSON, always

    def test_envelope_validation(self, served):
        assert served.request("POST", "/batch", {"requests": "x"}).status \
               == 400
        assert served.request("POST", "/batch", {"nope": []}).status == 400
        assert served.request("POST", "/batch", [1, 2]).status == 400

    def test_oversized_batch_rejected(self, served):
        """The envelope is capped at queue_limit sub-requests — a 400
        (the request itself is malformed-by-size), not a retryable 429."""
        too_many = [{"endpoint": "threshold_at", "year": 1994.0}] * 10_000
        response = served.request("POST", "/batch", {"requests": too_many})
        assert response.status == 400
        assert response.body["error"]["type"] == "ValidationError"

    def test_batch_listed_and_plan_metrics_pinned(self, served):
        endpoints = served.healthz().require_ok()["endpoints"]
        assert "batch" in endpoints and "threshold_at" in endpoints
        served.batch([{"endpoint": "rate", "clock_mhz": 150.0}] * 3)
        plan = served.metrics().require_ok()["serve"]["plan"]
        assert {"plans", "queries", "unique_queries", "cse_hits",
                "reuse_hits", "ops", "ops_fused",
                "fanout_histogram"} <= set(plan)
        assert plan["plans"] >= 1
        assert plan["cse_hits"] >= 2

    def test_batch_cache_hits_at_admission_epoch(self):
        server = _server(cache_size=64)
        client = ServeClient(port=server.port)
        try:
            item = {"endpoint": "rate", "clock_mhz": 150.0,
                    "processors": 16}
            first = client.batch([item]).require_ok()
            again = client.batch([item, item]).require_ok()
        finally:
            client.close()
            server.close()
        assert again["plan"]["cache_hits"] >= 1
        assert json.dumps(again["results"][0]) == \
               json.dumps(first["results"][0])
        assert json.dumps(again["results"][1]) == \
               json.dumps(first["results"][0])


# ---------------------------------------------------------------------------
# stdio JSON-RPC bridge
# ---------------------------------------------------------------------------

class TestRpcBridge:
    @pytest.fixture(scope="class")
    def engine(self):
        engine = ServiceEngine(ServeConfig(cache_size=0))
        yield engine
        engine.close()

    def test_rate_config_matches_http_body(self, engine):
        response = rpc_response(engine, {
            "jsonrpc": "2.0", "id": 1, "method": "rate_config",
            "params": {"clock_mhz": 150.0, "processors": 16}})
        status, body = engine.handle("rate", {"clock_mhz": 150.0,
                                              "processors": 16})
        assert status == 200
        assert response == {"jsonrpc": "2.0", "id": 1, "result": body}

    def test_listings_take_no_params(self, engine):
        listing = rpc_response(engine, {"jsonrpc": "2.0", "id": 2,
                                        "method": "list_machines"})
        assert listing["result"]["machines"]
        assert "catalog_epoch" in listing["result"]
        rejected = rpc_response(engine, {
            "jsonrpc": "2.0", "id": 3, "method": "list_machines",
            "params": {"x": 1}})
        assert rejected["error"]["code"] == -32602

    def test_batch_method_forwards_to_planner(self, engine):
        response = rpc_response(engine, {
            "jsonrpc": "2.0", "id": 4, "method": "batch",
            "params": {"requests": [
                {"endpoint": "rate", "clock_mhz": 150.0},
                {"endpoint": "rate", "clock_mhz": 150.0}]}})
        result = response["result"]
        assert result["count"] == 2
        assert result["plan"]["cse_hits"] == 1

    def test_error_code_mapping(self, engine):
        invalid = rpc_response(engine, {
            "jsonrpc": "2.0", "id": 5, "method": "threshold_at",
            "params": {"year": 1901.0}})
        assert invalid["error"]["code"] == -32602
        assert invalid["error"]["data"]["type"]  # taxonomy rides as data
        unknown = rpc_response(engine, {"jsonrpc": "2.0", "id": 6,
                                        "method": "shred_catalog"})
        assert unknown["error"]["code"] == -32601
        assert set(unknown["error"]["data"]["valid"]) == set(RPC_METHODS)
        not_object = rpc_response(engine, [1, 2, 3])
        assert not_object["error"]["code"] == -32600

    def test_notifications_get_no_response(self, engine):
        assert rpc_response(engine, {"jsonrpc": "2.0",
                                     "method": "threshold_at",
                                     "params": {"year": 1994.0}}) is None

    def test_stdio_loop_survives_garbage(self, engine):
        lines = "\n".join([
            json.dumps({"jsonrpc": "2.0", "id": 1,
                        "method": "threshold_at",
                        "params": {"year": 1994.0}}),
            "",
            "{this is not json",
            json.dumps({"jsonrpc": "2.0", "id": 2,
                        "method": "list_thresholds"}),
        ]) + "\n"
        out = io.StringIO()
        served = run_stdio_bridge(engine, stdin=io.StringIO(lines),
                                  stdout=out)
        assert served == 3  # blank line skipped, garbage still counted
        responses = [json.loads(line) for line in
                     out.getvalue().splitlines()]
        assert responses[0]["result"]["threshold_mtops"] > 0
        assert responses[1]["error"]["code"] == -32700
        assert responses[2]["result"]["eras"]
