"""Hammer tests for the shared mutable state the serving layer leans on.

The serving layer runs the analytical core from many threads at once, so
the process-wide caches and metrics must hold their invariants under
contention: the credit-sum cache may never hand a wrong row to anybody,
the ``obs`` counters must not lose increments, and concurrent profiled
spans must all be accounted for.  Each test drives real concurrency
through a ``ThreadPoolExecutor`` and checks *exact* outcomes, not
just "didn't crash".
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.ctp import Coupling
from repro.ctp.batch import (
    CREDIT_CACHE_MAX_ROWS,
    clear_credit_cache,
    credit_cache_info,
    credit_sums,
)
from repro.obs.trace import (
    counter_inc,
    counters,
    profile,
    reset_counters,
    trace,
)


class TestCreditCacheUnderContention:
    def test_concurrent_values_match_single_thread(self):
        """16 threads × mixed couplings/sizes: every returned prefix-sum
        row equals the single-threaded answer bit for bit, and the cache
        bookkeeping stays exact."""
        clear_credit_cache()
        couplings = (Coupling.SHARED, Coupling.DISTRIBUTED, Coupling.CLUSTER)
        # Interleaved sizes force regrows to race with reads.
        work = [(couplings[i % 3], 1 + ((i * 7) % 96)) for i in range(480)]
        expected = {
            (coupling, n): np.array(credit_sums(n, coupling))
            for coupling, n in set(work)
        }
        clear_credit_cache()

        def probe(item):
            coupling, n = item
            row = credit_sums(n, coupling)
            assert row.size == n
            assert not row.flags.writeable
            return np.array_equal(row, expected[(coupling, n)])

        with ThreadPoolExecutor(max_workers=16) as pool:
            results = list(pool.map(probe, work))
        assert all(results)

        info = credit_cache_info()
        assert info["entries"] <= CREDIT_CACHE_MAX_ROWS
        # Three couplings at the default parameters -> exactly 3 rows.
        assert info["entries"] == 3
        # Every call is accounted for exactly once.
        assert (info["hits"] + info["misses"] + info["regrows"]
                == len(work))
        assert info["misses"] == 3  # one cold miss per coupling

    def test_clear_is_safe_amid_readers(self):
        clear_credit_cache()

        def churn(i: int) -> bool:
            if i % 10 == 0:
                clear_credit_cache()
                return True
            row = credit_sums(1 + i % 40, Coupling.SHARED)
            return row.size == 1 + i % 40

        with ThreadPoolExecutor(max_workers=8) as pool:
            assert all(pool.map(churn, range(200)))
        clear_credit_cache()
        assert credit_cache_info()["entries"] == 0


class TestCountersUnderContention:
    def test_no_lost_increments(self):
        reset_counters("hammer.")
        n_threads, per_thread = 16, 500

        def spin(_: int) -> None:
            for _ in range(per_thread):
                counter_inc("hammer.ticks")
                counter_inc("hammer.weighted", 3)

        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            list(pool.map(spin, range(n_threads)))
        snapshot = counters()
        assert snapshot["hammer.ticks"] == n_threads * per_thread
        assert snapshot["hammer.weighted"] == 3 * n_threads * per_thread
        reset_counters("hammer.")
        assert "hammer.ticks" not in counters()


class TestProfileUnderContention:
    def test_spans_from_all_threads_are_collected(self):
        """Each thread's spans nest under that thread's own root; no span
        is lost and no stack leaks across threads."""
        n_threads, per_thread = 8, 25
        barrier = threading.Barrier(n_threads)

        def work(idx: int) -> None:
            barrier.wait()
            for j in range(per_thread):
                with trace(f"hammer.outer.{idx}"):
                    with trace("hammer.inner", j=j):
                        pass

        with profile() as prof:
            with ThreadPoolExecutor(max_workers=n_threads) as pool:
                list(pool.map(work, range(n_threads)))

        def count(spans) -> int:
            return sum(1 + count(span.children) for span in spans)

        assert count(prof.roots) == 2 * n_threads * per_thread
        assert not prof.stack  # the profiling thread's stack is empty
        outers = [span for root in prof.roots
                  for span in ([root] if root.name.startswith("hammer.outer")
                               else root.children)
                  if span.name.startswith("hammer.outer")]
        assert len(outers) == n_threads * per_thread
        assert all(len(span.children) == 1 for span in outers)
