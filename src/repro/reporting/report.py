"""Full annual-review report generation.

``generate_review_report`` assembles everything a review cycle produces —
premises, bounds, Table 4, clusters, threshold options, sensitivity, and
the forward look — into one markdown document: the artifact the paper's
recommended "open, repeatable" process would actually file each year.
"""

from __future__ import annotations

from repro._util import check_year
from repro.controllability.index import classification_table
from repro.core.framework import application_clusters, derive_bounds
from repro.core.premises import evaluate_premises
from repro.core.review import run_annual_review
from repro.core.scenarios import erosion_report
from repro.core.sensitivity import bound_sensitivity
from repro.core.threshold import ThresholdPolicy, select_threshold

__all__ = ["generate_review_report"]


def _md_table(headers: list[str], rows: list[list[object]]) -> str:
    def fmt(v: object) -> str:
        if isinstance(v, float):
            return f"{v:,.0f}" if abs(v) >= 10 else f"{v:,.3g}"
        return str(v)

    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(fmt(c) for c in row) + " |")
    return "\n".join(lines)


def generate_review_report(
    year: float = 1995.5,
    sensitivity_samples: int = 100,
) -> str:
    """One self-contained markdown review document for ``year``."""
    check_year(year, "year")
    review = run_annual_review(year)
    bounds = derive_bounds(year)
    premises = evaluate_premises(year)
    sensitivity = bound_sensitivity(year, n_samples=sensitivity_samples)
    sections: list[str] = []

    sections.append(
        f"# High-performance computing export-control review, {year:.1f}\n\n"
        f"Methodology: Goodman/Wolcott/Burkhart (1995), as implemented by "
        f"the `repro` library."
    )

    verdicts = []
    for report in (premises.premise1, premises.premise2, premises.premise3):
        verdicts.append([f"Premise {report.number}",
                         "HOLDS" if report.holds else "FAILS",
                         report.statement])
    sections.append("## The basic premises\n\n" + _md_table(
        ["premise", "verdict", "statement"], verdicts))
    sections.append(
        f"**Policy justified:** {'yes' if premises.policy_justified else 'no'}"
    )

    sections.append("## Bounds\n\n" + _md_table(
        ["quantity", "Mtops"],
        [
            ["most powerful uncontrollable system", bounds.uncontrollable_mtops],
            ["foreign indigenous envelope", bounds.foreign_mtops],
            ["lower bound (line A)", bounds.lower_mtops],
            ["smallest protectable application minimum",
             bounds.upper_application_mtops or float("nan")],
            ["most powerful system available (line D)",
             bounds.upper_theoretical_mtops],
        ],
    ))
    sections.append(
        f"Lower-bound robustness over {sensitivity_samples} factor "
        f"weightings: median {sensitivity.median:,.0f} Mtops, 90% interval "
        f"[{sensitivity.quantile(0.05):,.0f}, "
        f"{sensitivity.quantile(0.95):,.0f}]."
    )

    sections.append("## Controllability of current systems (Table 4)\n\n"
                    + _md_table(
        ["system", "index", "classification"],
        [[a.machine.key, round(a.index, 3), a.classification.value]
         for a in classification_table()],
    ))

    cluster_rows = []
    for start, members in application_clusters(year):
        cluster_rows.append([
            f"{start:,.0f}",
            len(members),
            "; ".join(m.name for m in members[:3])
            + ("" if len(members) <= 3 else " ..."),
        ])
    sections.append("## Protectable application clusters\n\n" + _md_table(
        ["starts at (Mtops)", "applications", "examples"], cluster_rows))

    policy_rows = []
    for policy in ThresholdPolicy:
        choice = select_threshold(year, policy)
        policy_rows.append([
            policy.value, choice.threshold_mtops,
            len(choice.applications_given_up), choice.units_decontrolled,
        ])
    sections.append("## Threshold options\n\n" + _md_table(
        ["policy", "threshold (Mtops)", "apps given up",
         "units decontrolled"], policy_rows))
    sections.append(
        f"Threshold in force: {review.threshold_in_force:,.0f} Mtops "
        f"({'STALE — below the lower bound' if review.threshold_is_stale else 'current'})."
    )

    erosion = erosion_report()
    sections.append(
        "## Forward look\n\n"
        f"- Premise-1 failure, no new stalactites: "
        f"{erosion.premise1.failure_year or 'beyond horizon'}\n"
        f"- Controllable-range gap (line D / line A): "
        f"{erosion.gap_1995:.1f}x (1995) -> {erosion.gap_1999:.1f}x (1999)\n"
        f"- Conclusion: the regime "
        f"{'weakens over the longer term' if erosion.weakens_over_time else 'remains stable'}"
        f" — review again within twelve months."
    )

    return "\n\n".join(sections) + "\n"
