"""Execution-time model: compute + communication + serial sections.

The model is BSP-flavored.  Per run:

* serial time — the Amdahl remainder on one node;
* parallel compute time — parallel work divided across nodes;
* communication time — per step, every node moves its pattern-determined
  volume; on shared media (Ethernet, FDDI, the SMP bus) the aggregate
  volume serializes over the one channel, on switched fabrics nodes
  overlap.

Shared-memory machines "communicate" halo traffic over the memory bus at
bus bandwidth — physically what cache-coherent data sharing costs — so an
SMP pays far less than a LAN cluster for the same logical pattern, which is
precisely the paper's Table 5 ordering.

Memory feasibility is part of the result: a workload with a closely-coupled
memory floor does not *run* on machines whose (per-node or pooled) memory
cannot hold it, no matter the rating — the paper's turbulent-flow example.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.obs.trace import counter_inc
from repro.simulate.architectures import MachineModel
from repro.simulate.workloads import Workload

__all__ = [
    "ExecutionResult",
    "simulate_execution",
    "speedup_curve",
    "efficiency_curve",
]


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of one simulated run."""

    workload: Workload
    machine: MachineModel
    feasible: bool
    infeasible_reason: str | None
    serial_time_s: float
    compute_time_s: float
    comm_time_s: float

    @property
    def time_s(self) -> float:
        """Wall-clock time (inf when infeasible)."""
        if not self.feasible:
            return float("inf")
        return self.serial_time_s + self.compute_time_s + self.comm_time_s

    @property
    def delivered_mops_per_s(self) -> float:
        """Useful work rate actually achieved."""
        t = self.time_s
        return 0.0 if not np.isfinite(t) else self.workload.total_mops / t

    @property
    def efficiency(self) -> float:
        """Delivered rate over aggregate sustained rate.

        Mathematically this lies in [0, 1]; the value is reported
        *unclamped* so a model violation (a result whose components
        imply more delivered work than the machine can sustain) shows up
        instead of being silently truncated.  Values above 1 bump the
        ``simulate.efficiency_above_unity`` counter.
        """
        if not self.feasible:
            return 0.0
        eff = self.delivered_mops_per_s / self.machine.aggregate_mops_per_s
        if eff > 1.0:
            counter_inc("simulate.efficiency_above_unity")
        return eff


def _memory_check(workload: Workload, machine: MachineModel) -> str | None:
    """None when the workload fits, else the reason it does not."""
    if machine.shared_memory:
        pool = machine.total_memory_mb
    else:
        # A hierarchical machine's closely-coupled pool is one hypernode.
        pool = machine.node_memory_mb * machine.hypernode_size
    if workload.min_memory_mb > pool:
        return (
            f"needs {workload.min_memory_mb:.0f} MB closely coupled; "
            f"{'pool' if machine.shared_memory else 'hypernode'} has "
            f"{pool:.0f} MB"
        )
    per_node = workload.data_mb / machine.n_nodes
    if per_node > machine.node_memory_mb:
        return (
            f"working set {per_node:.0f} MB/node exceeds "
            f"{machine.node_memory_mb:.0f} MB"
        )
    return None


def _hierarchical_step_time(workload: Workload, machine: MachineModel) -> float:
    """Per-step communication on an Exemplar-style hierarchical machine.

    Processes within one hypernode exchange halos over the shared-memory
    bus; only the traffic that crosses a hypernode boundary rides the
    distributed fabric.  The inter-hypernode volume is what the pattern
    would generate if the domain were decomposed at hypernode granularity
    — the standard surface-to-volume accounting.
    """
    from repro.simulate.interconnect import SMP_BUS

    p = machine.n_nodes
    n_hyper = p // machine.hypernode_size
    pattern = workload.pattern
    total_volume = p * pattern.volume_per_node_mb(workload.data_mb, p)
    if n_hyper > 1:
        inter_per_hypernode = pattern.volume_per_node_mb(
            workload.data_mb, n_hyper
        )
        inter_messages = pattern.messages_per_node(n_hyper)
    else:
        inter_per_hypernode = 0.0
        inter_messages = 0.0
    intra_total = max(total_volume - n_hyper * inter_per_hypernode, 0.0)
    # Intra-hypernode traffic serializes over each hypernode's bus;
    # hypernodes operate in parallel.
    intra_time = (intra_total / n_hyper) / SMP_BUS.bandwidth_mbps
    fabric = machine.interconnect
    inter_time = inter_per_hypernode / fabric.bandwidth_mbps \
        + inter_messages * fabric.latency_us * 1e-6
    return intra_time + inter_time


def simulate_execution(workload: Workload, machine: MachineModel) -> ExecutionResult:
    """Simulate one run of ``workload`` on ``machine``."""
    reason = _memory_check(workload, machine)
    if reason is not None:
        return ExecutionResult(
            workload=workload, machine=machine, feasible=False,
            infeasible_reason=reason,
            serial_time_s=0.0, compute_time_s=0.0, comm_time_s=0.0,
        )

    p = machine.n_nodes
    f = workload.parallel_fraction
    rate = machine.node_mops_per_s
    serial = workload.total_mops * (1.0 - f) / rate
    compute = workload.total_mops * f / (rate * p)

    if p == 1:
        comm = 0.0
    elif machine.hypernode_size > 1:
        comm = workload.steps * _hierarchical_step_time(workload, machine)
    else:
        volume = workload.pattern.volume_per_node_mb(workload.data_mb, p)
        messages = workload.pattern.messages_per_node(p)
        net = machine.interconnect
        if net.shared_medium:
            # All nodes' traffic serializes over the one channel.
            per_step = (p * volume) / net.bandwidth_mbps \
                + messages * net.latency_us * 1e-6
        else:
            per_step = volume / net.bandwidth_mbps \
                + messages * net.latency_us * 1e-6
        comm = workload.steps * per_step

    return ExecutionResult(
        workload=workload, machine=machine, feasible=True,
        infeasible_reason=None,
        serial_time_s=serial, compute_time_s=compute, comm_time_s=comm,
    )


def speedup_curve(
    workload: Workload,
    machine: MachineModel,
    node_counts: Sequence[int],
) -> np.ndarray:
    """Speedup versus the same machine at its base size, per node count.

    One whole-array sweep rather than a per-point scalar loop (the
    original loop survives as
    :func:`repro.perf.reference.speedup_curve_scalar`).  The base size
    is one node for flat machines and one hypernode for hierarchical
    ones.  Infeasible points (including node counts the machine cannot
    take) yield 0 speedup; non-positive or non-integer node counts raise
    :class:`~repro.obs.errors.ValidationError`.
    """
    from repro.simulate.sweep import sweep

    result = sweep(machine, workload, node_counts)
    return np.ascontiguousarray(result.speedups[0, 0, :])


def efficiency_curve(
    workload: Workload,
    machine: MachineModel,
    node_counts: Sequence[int],
) -> np.ndarray:
    """Parallel efficiency (speedup / n) per node count."""
    from repro.simulate.sweep import validate_node_counts

    counts = validate_node_counts(node_counts)
    s = speedup_curve(workload, machine, counts)
    return s / counts.astype(float)
