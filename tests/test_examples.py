"""Smoke tests: every example script runs to completion and prints its
headline content.

Run as subprocesses so the examples are exercised exactly as a user would
run them.
"""

import subprocess
import sys
from pathlib import Path

import pytest

_EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

#: (script, substring that must appear in its stdout).
_EXPECTATIONS = {
    "quickstart.py": "Recommended thresholds",
    "threshold_review_1990s.py": "Annual reviews, 1992-1999",
    "cluster_vs_supercomputer.py": "Largest competitive cluster",
    "covert_acquisition.py": "Assimilation lags",
    "rate_a_machine.py": "Rating machines under the CTP metric",
    "keysearch_demo.py": "recovered key",
    "kernel_granularity.py": "mass drift",
    "policy_epilogue.py": "Staleness sawtooth",
}


def _run(script: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(_EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=300,
    )


def test_every_example_covered():
    scripts = {p.name for p in _EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(_EXPECTATIONS), (
        "examples and expectations out of sync"
    )


@pytest.mark.parametrize("script,needle", sorted(_EXPECTATIONS.items()))
def test_example_runs(script, needle):
    result = _run(script)
    assert result.returncode == 0, result.stderr[-2000:]
    assert needle in result.stdout
