"""The annual review procedure (Chapter 5 recommendations).

"Perform annual reviews of the export control regime, applying a
methodology that is open, repeatable, and based on reliable data."  An
:class:`AnnualReview` runs the whole pipeline for one date: premises,
bounds, cluster structure, a recommended threshold under a chosen policy,
and the comparison against the threshold actually in force — including the
staleness diagnosis (the 195-Mtops threshold lingering years below the
frontier is the historical cautionary tale).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro._util import check_year
from repro.obs.trace import trace
from repro.core.framework import ThresholdBounds, application_clusters, derive_bounds
from repro.core.premises import PremisesAssessment, evaluate_premises
from repro.core.threshold import SelectedThreshold, ThresholdPolicy, select_threshold
from repro.diffusion.policy import threshold_at

__all__ = ["AnnualReview", "run_annual_review", "review_series"]


@dataclass(frozen=True)
class AnnualReview:
    """The complete output of one review cycle."""

    year: float
    premises: PremisesAssessment
    bounds: ThresholdBounds
    clusters: tuple[tuple[float, int], ...]
    recommendation: SelectedThreshold
    threshold_in_force: float

    @property
    def threshold_is_stale(self) -> bool:
        """True when the threshold in force sits below the lower bound —
        the regime is "trying to control the uncontrollable"."""
        return self.threshold_in_force < self.bounds.lower_mtops

    @property
    def recommended_change_factor(self) -> float:
        """Recommended threshold over the one in force."""
        return self.recommendation.threshold_mtops / self.threshold_in_force


def run_annual_review(
    year: float = 1995.5,
    policy: ThresholdPolicy = ThresholdPolicy.CONTROL_WHAT_CAN_BE_CONTROLLED,
) -> AnnualReview:
    """Run the full review pipeline for one date."""
    check_year(year, "year")
    with trace("review.run", year=year, policy=policy.name.lower()):
        bounds = derive_bounds(year)
        with trace("review.clusters"):
            clusters = tuple(
                (start, len(members))
                for start, members in application_clusters(year)
            )
        with trace("review.premises"):
            premises = evaluate_premises(year)
        with trace("review.recommendation"):
            recommendation = select_threshold(year, policy)
        return AnnualReview(
            year=year,
            premises=premises,
            bounds=bounds,
            clusters=clusters,
            recommendation=recommendation,
            threshold_in_force=threshold_at(year),
        )


def review_series(
    years: Sequence[float],
    policy: ThresholdPolicy = ThresholdPolicy.CONTROL_WHAT_CAN_BE_CONTROLLED,
) -> list[AnnualReview]:
    """Run the review for each year — the recommended cadence is at most
    twelve months between iterations."""
    return [run_annual_review(float(y), policy) for y in years]
