"""Product-line configurations of a machine family.

Chapter 3's scalability discussion is about *families*, not single boxes:
"an entry-level version (below current control thresholds and easily
upgradable to maximum configuration) may be obtained for a few hundred
thousand dollars".  This module expands a catalog entry into its sellable
configurations — entry size up to the family maximum by doublings — with
interpolated prices, so threshold analyses can see exactly which
configurations of a family fall on each side of a control line.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import check_positive
from repro.machines.spec import MachineSpec

__all__ = ["Configuration", "family_configurations", "split_by_threshold"]

#: Entry configurations are two processors (note 47's entry-level systems).
_ENTRY_PROCESSORS = 2


@dataclass(frozen=True)
class Configuration:
    """One sellable configuration of a family."""

    family: MachineSpec
    n_processors: int
    ctp_mtops: float
    price_usd: float | None

    @property
    def label(self) -> str:
        return f"{self.family.vendor} {self.family.model} @ {self.n_processors}p"


def _interpolated_price(machine: MachineSpec, n: int,
                        entry_n: int, max_n: int) -> float | None:
    """Linear price interpolation between entry and maximum configuration."""
    if machine.entry_price_usd is None:
        return None
    if machine.max_price_usd is None or max_n == entry_n:
        return machine.entry_price_usd
    fraction = (n - entry_n) / (max_n - entry_n)
    return machine.entry_price_usd + fraction * (
        machine.max_price_usd - machine.entry_price_usd
    )


def family_configurations(machine: MachineSpec) -> list[Configuration]:
    """The family's configurations: entry size doubling up to the maximum.

    Requires element data (quoted-only entries cannot be rescaled).  The
    family maximum is always included even when it is not a doubling.
    """
    if machine.element is None:
        raise ValueError(f"{machine.key}: needs element data to enumerate "
                         f"configurations")
    max_n = machine.max_processors or machine.n_processors
    entry_n = min(_ENTRY_PROCESSORS, max_n)
    sizes = []
    n = entry_n
    while n < max_n:
        sizes.append(n)
        n *= 2
    sizes.append(max_n)
    out = []
    for size in sizes:
        spec = machine.at_processors(size)
        out.append(Configuration(
            family=machine,
            n_processors=size,
            ctp_mtops=spec.ctp_mtops,
            price_usd=_interpolated_price(machine, size, entry_n, max_n),
        ))
    return out


def split_by_threshold(
    machine: MachineSpec,
    threshold_mtops: float,
) -> tuple[list[Configuration], list[Configuration]]:
    """Partition a family's configurations into (below, at-or-above) a
    control threshold.

    The Chapter 3 loophole in one call: when the *below* list is non-empty
    and the *above* list is reachable by field upgrade, the threshold is
    enforceable only on paper.
    """
    check_positive(threshold_mtops, "threshold_mtops")
    configurations = family_configurations(machine)
    below = [c for c in configurations if c.ctp_mtops < threshold_mtops]
    above = [c for c in configurations if c.ctp_mtops >= threshold_mtops]
    return below, above
