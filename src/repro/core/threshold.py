"""Snapshot threshold analysis and selection policies (Figures 3 and 11).

A :class:`Snapshot` overlays the two distributions of Figure 3 — installed
systems and application minimum requirements — with lines A (lower bound of
controllability) and D (most powerful system available).  Three selection
policies from Chapter 2:

* ``CONTROL_WHAT_CAN_BE_CONTROLLED`` — the threshold sits at line A:
  "that which can be controlled should be controlled";
* ``APPLICATION_DRIVEN`` — "set the threshold just below the minimum of
  all the minimum requirements" that lie above A;
* ``ECONOMIC`` — climb above A while the market decontrolled per
  application given up stays favorable (line B, not line C: "thresholds
  just above a hump in the applications distribution should be avoided").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro._util import check_year
from repro.obs.errors import ValidationError
from repro.apps.catalog import APPLICATIONS
from repro.apps.requirements import ApplicationRequirement
from repro.core.framework import ThresholdBounds, derive_bounds
from repro.market.installed import installed_distribution, installed_units_above

__all__ = [
    "ThresholdPolicy",
    "Snapshot",
    "SelectedThreshold",
    "snapshot",
    "select_threshold",
]


class ThresholdPolicy(enum.Enum):
    """Chapter 2's three threshold-selection perspectives."""

    CONTROL_WHAT_CAN_BE_CONTROLLED = "control what can be controlled"
    APPLICATION_DRIVEN = "application-driven"
    ECONOMIC = "economic balance"


@dataclass(frozen=True)
class Snapshot:
    """The Figure 11 overlay at one date."""

    year: float
    bounds: ThresholdBounds
    bin_edges: np.ndarray
    installed_counts: np.ndarray
    application_counts: np.ndarray

    @property
    def line_a_mtops(self) -> float:
        """Lower bound of controllability."""
        return self.bounds.lower_mtops

    @property
    def line_d_mtops(self) -> float:
        """Most powerful system available."""
        return self.bounds.upper_theoretical_mtops

    def bin_centers(self) -> np.ndarray:
        return np.sqrt(self.bin_edges[:-1] * self.bin_edges[1:])


def snapshot(year: float = 1995.5) -> Snapshot:
    """Build the Figure 11 snapshot: both distributions plus lines A/D."""
    check_year(year, "year")
    bounds = derive_bounds(year)
    edges, installed = installed_distribution(year)
    mins = np.array(
        [a.min_at(year) for a in APPLICATIONS if a.year_first <= year]
    )
    app_counts = np.histogram(mins, bins=edges)[0]
    return Snapshot(
        year=year,
        bounds=bounds,
        bin_edges=edges,
        installed_counts=installed,
        application_counts=app_counts,
    )


@dataclass(frozen=True)
class SelectedThreshold:
    """A recommended threshold with its consequences."""

    year: float
    policy: ThresholdPolicy
    threshold_mtops: float
    #: Applications decontrolled by this choice (minimums between the
    #: lower bound and the threshold) — the security price paid.
    applications_given_up: tuple[ApplicationRequirement, ...]
    #: Installed units decontrolled relative to a threshold at line A —
    #: the economic benefit bought.
    units_decontrolled: float
    rationale: str


def _apps_between(year: float, low: float, high: float) -> tuple[ApplicationRequirement, ...]:
    return tuple(
        a for a in APPLICATIONS
        if a.year_first <= year and low < a.min_at(year) <= high
    )


def select_threshold(
    year: float = 1995.5,
    policy: ThresholdPolicy = ThresholdPolicy.CONTROL_WHAT_CAN_BE_CONTROLLED,
    margin: float = 0.95,
) -> SelectedThreshold:
    """Apply one selection policy to the snapshot at ``year``.

    ``margin`` places application-driven thresholds just *below* the
    requirement they protect.
    """
    if not 0.0 < margin <= 1.0:
        raise ValidationError("margin must be in (0, 1]",
                              context={"got": margin, "valid": "(0, 1]"})
    bounds = derive_bounds(year)
    line_a = bounds.lower_mtops

    if policy is ThresholdPolicy.CONTROL_WHAT_CAN_BE_CONTROLLED:
        threshold = line_a
        rationale = (
            "Threshold at the lower bound of controllability: everything "
            "that can be controlled, is."
        )
    elif policy is ThresholdPolicy.APPLICATION_DRIVEN:
        upper = bounds.upper_application_mtops
        if upper is None:
            threshold = line_a
            rationale = (
                "No application minimum lies above the lower bound; "
                "fall back to the controllability line."
            )
        else:
            threshold = upper * margin
            rationale = (
                f"Just below the smallest protectable requirement "
                f"({upper:,.0f} Mtops): all applications that can be "
                f"protected, are."
            )
    elif policy is ThresholdPolicy.ECONOMIC:
        # Climb from line A step by step; each step to the next
        # application level is taken only while the *marginal* market
        # decontrolled buys at least `min_units_per_app` installations per
        # application given up at that step (the B-not-C rule: stop below
        # a hump in the applications distribution).
        min_units_per_app = 100.0
        candidates = sorted(
            {a.min_at(year) for a in bounds.protectable_applications}
        )
        threshold = line_a
        accepted_level = line_a
        given_up = 0
        for level in candidates:
            marginal_units = installed_units_above(
                accepted_level, year
            ) - installed_units_above(level, year)
            # Passing `level` gives up every application between the last
            # accepted level and this one, inclusive of this one.
            marginal_apps = len(_apps_between(year, accepted_level, level))
            if marginal_units >= min_units_per_app * max(marginal_apps, 1):
                accepted_level = level
                # The threshold sits just above the level given up.
                threshold = level * 1.02
                given_up += marginal_apps
            else:
                break
        rationale = (
            f"Climbed while each step decontrolled >= "
            f"{min_units_per_app:.0f} units per application given up; "
            f"stopped before the applications hump ({given_up} given up)."
        )
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown policy {policy!r}")

    threshold = float(max(threshold, line_a))
    return SelectedThreshold(
        year=year,
        policy=policy,
        threshold_mtops=threshold,
        applications_given_up=_apps_between(year, line_a, threshold),
        units_decontrolled=float(
            installed_units_above(line_a, year)
            - installed_units_above(threshold, year)
        ) if threshold > line_a else 0.0,
        rationale=rationale,
    )
