"""Application stalactites and their computing-range envelopes (Figures 1-2).

A stalactite hangs from the year an application was first performed down to
its minimum computational requirement.  Around it sit three curves:

* the minimum requirement, drifting slowly downward (software improves);
* the system actually used, which rises with the maximum available
  ("the first time the application is successfully performed, the actual
  system may coincide with the lower bound or the maximum (usually the
  latter)");
* the maximum available, the most powerful system on the market.

Figure 1 draws this picture for the F-22 design; Figure 2 overlays
stalactites with the uncontrollability and foreign-availability technology
curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro._util import check_year
from repro.apps.catalog import find_application
from repro.apps.requirements import ApplicationRequirement
from repro.machines.catalog import max_available_mtops

__all__ = ["ComputingRange", "Stalactite", "f22_stalactite"]


@dataclass(frozen=True)
class ComputingRange:
    """The Figure 1 envelope at one date."""

    year: float
    minimum_mtops: float
    actual_mtops: float
    maximum_available_mtops: float

    def __post_init__(self) -> None:
        if not (
            self.minimum_mtops
            <= self.actual_mtops * (1 + 1e-9)
            and self.actual_mtops
            <= self.maximum_available_mtops * (1 + 1e-9)
        ):
            raise ValueError(
                "range must satisfy minimum <= actual <= maximum "
                f"(got {self.minimum_mtops}, {self.actual_mtops}, "
                f"{self.maximum_available_mtops})"
            )


@dataclass(frozen=True)
class Stalactite:
    """One application's computing range over time."""

    application: ApplicationRequirement

    def minimum_at(self, year: float) -> float:
        """Drifted minimum requirement."""
        return self.application.min_at(year)

    def actual_at(self, year: float) -> float:
        """System actually used at ``year``.

        Before first performance there is no actual system (ValueError).
        At first performance it is the cataloged actual machine; it then
        rises proportionally with the maximum available (programs upgrade
        as budgets allow) without ever falling below the original system.
        """
        check_year(year, "year")
        app = self.application
        if year < app.year_first:
            raise ValueError(
                f"{app.name} was first performed in {app.year_first}; no "
                f"actual system exists at {year}"
            )
        base = app.actual_mtops if app.actual_mtops is not None else app.min_mtops
        growth = max_available_mtops(year) / max_available_mtops(app.year_first)
        actual = base * max(growth, 1.0)
        return float(min(actual, max_available_mtops(year)))

    def range_at(self, year: float) -> ComputingRange:
        """The full envelope at one date."""
        return ComputingRange(
            year=year,
            minimum_mtops=min(self.minimum_at(year), self.actual_at(year)),
            actual_mtops=self.actual_at(year),
            maximum_available_mtops=max_available_mtops(year),
        )

    def series(self, years: Sequence[float]) -> list[ComputingRange]:
        """Envelope over a year grid (Figure 1's bands)."""
        return [self.range_at(float(y)) for y in np.asarray(years, dtype=float)]


def f22_stalactite() -> Stalactite:
    """The Figure 1 subject."""
    return Stalactite(find_application("F-22 design"))
