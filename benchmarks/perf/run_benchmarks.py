"""Standalone benchmark runner: ``python benchmarks/perf/run_benchmarks.py``.

Equivalent to ``python -m repro bench``; kept here so the perf harness is
discoverable next to the paper-artifact benchmarks.  Pass ``--quick`` for
the CI smoke configuration.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "src"))


def main() -> int:
    from repro.perf.workloads import run_benchmarks

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--output", type=str,
                        default=str(REPO_ROOT / "BENCH_perf.json"))
    args = parser.parse_args()
    payload = run_benchmarks(quick=args.quick, output=args.output)
    for w in payload["workloads"]:
        print(f"{w['name']:<26} {w['speedup']:>10.1f}x "
              f"(scalar {w['scalar']['best_seconds'] * 1e3:.2f} ms, "
              f"batch {w['batch']['best_seconds'] * 1e3:.2f} ms)")
    print(json.dumps({"wrote": args.output}))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
