"""repro.store — versioned, mmap-shared snapshots of the columnar stores.

``repro snapshot`` serializes every derived read-only structure the
serving tier needs — machine columns, the frontier bisect index, the
requirement matrix, installed-base suffix tables, credit prefix sums —
into a directory of raw ``.npy`` arrays plus a content-hashed manifest.
:func:`load_snapshot` memory-maps them back and installs them through
each store's ``install_*`` hook, so a serving process (or a whole
pre-forked fleet sharing the parent's mappings) cold-starts with zero
columnar rebuilds.  A hash mismatch against the live catalog raises
:class:`~repro.obs.errors.SnapshotStaleError` instead of serving stale
answers.
"""

from repro.store.snapshot import (
    BUILD_COUNTERS,
    DEFAULT_SNAPSHOT_DIR,
    DEFAULT_SNAPSHOT_YEARS,
    FORMAT_VERSION,
    SnapshotInfo,
    active_manifest_hash,
    active_snapshot,
    build_counter_totals,
    build_snapshot,
    clear_store_caches,
    live_content_hash,
    load_snapshot,
    verify_active_snapshot,
)

__all__ = [
    "BUILD_COUNTERS",
    "DEFAULT_SNAPSHOT_DIR",
    "DEFAULT_SNAPSHOT_YEARS",
    "FORMAT_VERSION",
    "SnapshotInfo",
    "active_manifest_hash",
    "active_snapshot",
    "build_counter_totals",
    "build_snapshot",
    "clear_store_caches",
    "live_content_hash",
    "load_snapshot",
    "verify_active_snapshot",
]
