"""Tests for the DES implementation: known-answer vectors, structure, and
round-trip properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.des import (
    bits_to_int,
    des_decrypt_block,
    des_encrypt_block,
    encrypt_blocks,
    int_to_bits,
    key_schedule_bits,
)

#: Classical DES known-answer tests.
_KAT = [
    # (plaintext, key, ciphertext)
    (0x0123456789ABCDEF, 0x133457799BBCDFF1, 0x85E813540F0AB405),
    (0x0000000000000000, 0x0000000000000000, 0x8CA64DE9C1B123A7),
    (0xFFFFFFFFFFFFFFFF, 0xFFFFFFFFFFFFFFFF, 0x7359B2163E4EDC58),
]


class TestBitHelpers:
    def test_roundtrip(self):
        assert bits_to_int(int_to_bits(0xDEADBEEF, 64)) == 0xDEADBEEF

    def test_msb_first(self):
        bits = int_to_bits(0x8000000000000000, 64)
        assert bits[0] and not bits[1:].any()

    def test_width_check(self):
        with pytest.raises(ValueError):
            int_to_bits(256, 8)
        with pytest.raises(ValueError):
            int_to_bits(-1, 8)


class TestKnownAnswers:
    @pytest.mark.parametrize("plain,key,cipher", _KAT)
    def test_encrypt(self, plain, key, cipher):
        assert des_encrypt_block(plain, key) == cipher

    @pytest.mark.parametrize("plain,key,cipher", _KAT)
    def test_decrypt(self, plain, key, cipher):
        assert des_decrypt_block(cipher, key) == plain


class TestKeySchedule:
    def test_shape(self):
        rk = key_schedule_bits(int_to_bits(0x133457799BBCDFF1, 64))
        assert rk.shape == (16, 48)

    def test_first_round_key_classic(self):
        # The canonical worked example: K1 for key 0x133457799BBCDFF1 is
        # 0b000110_110000_001011_101111_111111_000111_000001_110010.
        rk = key_schedule_bits(int_to_bits(0x133457799BBCDFF1, 64))
        k1 = bits_to_int(rk[0])
        assert k1 == 0b000110110000001011101111111111000111000001110010

    def test_parity_bits_ignored(self):
        # Flipping a parity bit (bit 8, LSB of the first byte) must not
        # change the schedule.
        a = key_schedule_bits(int_to_bits(0x0123456789ABCDEF, 64))
        b = key_schedule_bits(int_to_bits(0x0023456789ABCDEF, 64))
        assert np.array_equal(a, b)

    def test_batched(self):
        keys = np.stack([int_to_bits(0, 64), int_to_bits(2**64 - 1, 64)])
        rk = key_schedule_bits(keys)
        assert rk.shape == (2, 16, 48)
        assert not rk[0].any()
        assert rk[1].all()


class TestVectorization:
    def test_many_keys_one_plaintext(self):
        plain, key, cipher = _KAT[0]
        keys = np.stack([int_to_bits(key, 64), int_to_bits(0, 64),
                         int_to_bits(key ^ 0x10, 64)])
        out = encrypt_blocks(int_to_bits(plain, 64), keys)
        assert out.shape == (3, 64)
        assert bits_to_int(out[0]) == cipher
        assert bits_to_int(out[1]) != cipher

    def test_matches_scalar(self):
        rng = np.random.default_rng(7)
        plain = int(rng.integers(0, 2**63))
        keys = [int(rng.integers(0, 2**63)) for _ in range(4)]
        batch = encrypt_blocks(
            int_to_bits(plain, 64),
            np.stack([int_to_bits(k, 64) for k in keys]),
        )
        for i, k in enumerate(keys):
            assert bits_to_int(batch[i]) == des_encrypt_block(plain, k)

    def test_block_width_check(self):
        with pytest.raises(ValueError):
            encrypt_blocks(np.zeros(32, dtype=bool), int_to_bits(0, 64))
        with pytest.raises(ValueError):
            key_schedule_bits(np.zeros(32, dtype=bool))


@given(st.integers(min_value=0, max_value=2**64 - 1),
       st.integers(min_value=0, max_value=2**64 - 1))
@settings(max_examples=25, deadline=None)
def test_roundtrip_property(plain, key):
    """decrypt(encrypt(p, k), k) == p for arbitrary 64-bit inputs."""
    assert des_decrypt_block(des_encrypt_block(plain, key), key) == plain


@given(st.integers(min_value=0, max_value=2**64 - 1),
       st.integers(min_value=0, max_value=2**64 - 1))
@settings(max_examples=10, deadline=None)
def test_complementation_property(plain, key):
    """DES's complementation property: E_k(p) complement equals
    E_{~k}(~p) — a strong structural check on the implementation."""
    mask = 2**64 - 1
    lhs = des_encrypt_block(plain, key) ^ mask
    rhs = des_encrypt_block(plain ^ mask, key ^ mask)
    assert lhs == rhs


def test_avalanche():
    """Flipping one plaintext bit flips roughly half the ciphertext bits."""
    plain, key, _ = _KAT[0]
    base = des_encrypt_block(plain, key)
    flipped = des_encrypt_block(plain ^ 1, key)
    distance = bin(base ^ flipped).count("1")
    assert 16 <= distance <= 48
