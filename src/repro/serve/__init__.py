"""repro.serve — the micro-batching request service.

The analytical core answers exactly the queries a licensing office issues
thousands of times a day — CTP ratings, license decisions, threshold
reviews — and PR 1's batch kernels answer them fastest in bulk.  This
package turns many small concurrent requests into few large batch calls:

* :mod:`repro.serve.schemas` — JSON payloads -> canonical, cacheable
  request objects (validated up front, never inside a batch);
* :mod:`repro.serve.batching` — the micro-batching queue: bounded,
  deadline-aware, greedy-coalescing (:class:`MicroBatcher`);
* :mod:`repro.serve.cache` — the LRU response cache keyed on canonical
  payloads;
* :mod:`repro.serve.plan` — the multi-query planner: a heterogeneous
  batch compiled into few fused columnar ops (CSE on canonical keys,
  cross-endpoint reuse, per-slot error isolation) behind ``POST
  /batch`` and every per-endpoint micro-batcher;
* :mod:`repro.serve.rpc` — the ``repro mcp`` stdio JSON-RPC 2.0
  bridge for MCP hosts and shell pipelines;
* :mod:`repro.serve.server` — the transport-free
  :class:`ServiceEngine` plus the stdlib ``ThreadingHTTPServer`` front
  end (``repro serve``);
* :mod:`repro.serve.prefork` — the pre-forked worker fleet sharing one
  port over mmap-shared snapshot state (``repro serve --workers N``);
* :mod:`repro.serve.client` — the stdlib client used by tests, CI, and
  the serving benchmarks (stale keep-alive connections retry once,
  transparently).

See DESIGN.md, "Serving architecture" for the backpressure /
graceful-degradation contract (429 / 504 / structured 400s).
"""

from repro.serve.batching import MicroBatcher
from repro.serve.cache import MISS, LRUCache
from repro.serve.client import ServeClient, ServeResponse
from repro.serve.plan import (
    QueryPlan,
    build_plan,
    execute_plan,
    plan_stats,
)
from repro.serve.prefork import (
    PreforkServer,
    reuseport_available,
    run_prefork_server,
)
from repro.serve.rpc import rpc_response, run_stdio_bridge
from repro.serve.schemas import (
    ENDPOINTS,
    LicenseRequest,
    MachineRequest,
    RateRequest,
    ReviewRequest,
    ThresholdAtRequest,
    parse_request,
)
from repro.serve.server import (
    ServeConfig,
    ServeServer,
    ServiceEngine,
    error_body,
    run_server,
)

__all__ = [
    "MicroBatcher",
    "LRUCache",
    "MISS",
    "ServeClient",
    "ServeResponse",
    "ENDPOINTS",
    "RateRequest",
    "LicenseRequest",
    "MachineRequest",
    "ReviewRequest",
    "ThresholdAtRequest",
    "parse_request",
    "ServeConfig",
    "ServeServer",
    "ServiceEngine",
    "error_body",
    "run_server",
    "PreforkServer",
    "reuseport_available",
    "run_prefork_server",
    "QueryPlan",
    "build_plan",
    "execute_plan",
    "plan_stats",
    "rpc_response",
    "run_stdio_bridge",
]
