"""Tables 6-7: Computational Technology Areas and Computational Functions.

The S&T and DT&E computational taxonomies, with the synthetic HPCMO
database's per-discipline project counts as the usage column the study's
database review implies.
"""

from collections import Counter

from repro.apps.hpcmo import generate_hpcmo
from repro.apps.taxonomy import CF, CTA
from repro.reporting.tables import render_table


def build_tables():
    db = generate_hpcmo(seed=0)
    counts = Counter(p.discipline for p in db.projects)
    return counts


def test_tab06_07_taxonomies(benchmark, emit):
    counts = benchmark(build_tables)
    cta_rows = [
        [c.name, c.value, counts.get(c, 0)]
        for c in CTA if c is not CTA.CRYPTOLOGY
    ]
    cf_rows = [[c.name, c.value, counts.get(c, 0)] for c in CF]
    text = render_table(
        ["CTA", "computational technology area", "projects"],
        cta_rows,
        title="Table 6: computational technology areas for S&T projects",
    )
    text += "\n\n" + render_table(
        ["CF", "computational function", "projects"],
        cf_rows,
        title="Table 7: computational functions for DT&E projects",
    )
    text += ("\n\nCryptology stands alone as the fourteenth computational "
             "discipline (Chapter 4).")
    emit(text)

    assert len(cta_rows) == 9
    assert len(cf_rows) == 4
    # CFD leads S&T usage ("one of the most frequently encountered").
    cfd = counts.get(CTA.CFD, 0)
    assert cfd == max(counts.get(c, 0) for c in CTA)
