"""Figure 10: Distribution of Minimum Computational Requirements.

The combined minimum-requirement population: the named-application catalog
plus the synthetic HPCMO projects, binned over Mtops, with the mid-1995
lower bound of controllability marked.
"""

import numpy as np

from repro.apps.catalog import min_requirements_mtops
from repro.apps.hpcmo import generate_hpcmo
from repro.core.framework import lower_bound_mtops
from repro.reporting.tables import render_table

_EDGES = 10.0 ** np.arange(-1.0, 5.51, 0.5)


def build_figure():
    named = np.array(min_requirements_mtops(1995.5))
    db = generate_hpcmo(seed=0)
    hpcmo = db.min_mtops()
    named_counts = np.histogram(named, bins=_EDGES)[0]
    hpcmo_counts = np.histogram(hpcmo, bins=_EDGES)[0]
    return named, named_counts, hpcmo_counts


def test_fig10_minimum_requirements(benchmark, emit):
    named, named_counts, hpcmo_counts = benchmark(build_figure)
    lower = lower_bound_mtops(1995.5)
    rows = [
        [f"{_EDGES[i]:,.1f} - {_EDGES[i + 1]:,.1f}", int(named_counts[i]),
         int(hpcmo_counts[i])]
        for i in range(named_counts.size)
    ]
    text = render_table(
        ["minimum requirement band (Mtops)", "named applications",
         "HPCMO projects"],
        rows,
        title="Figure 10: distribution of minimum computational requirements "
              "(mid-1995, drifted)",
    )
    text += f"\n\nlower bound of controllability = {lower:,.0f} Mtops"
    emit(text)

    # The named catalog has a protectable tail above the bound; the HPCMO
    # population is overwhelmingly below it.
    assert (named > lower).sum() >= 10
    assert hpcmo_counts[: np.searchsorted(_EDGES, lower) - 1].sum() \
        > 0.66 * hpcmo_counts.sum()
