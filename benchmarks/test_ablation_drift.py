"""Ablation: the downward drift of application minimums.

Chapter 2 says minimums "tend to drift downward" as software improves.
Sweeping the drift rate shows what it buys: with no drift the premise-1
failure year (when the frontier overtakes every current stalactite) moves
later; with aggressive drift it moves earlier.  The drift choice does not
move the mid-1995 bounds (those are hardware-side).
"""

from repro.apps.catalog import APPLICATIONS
from repro.core.framework import lower_bound_mtops
from repro.core.scenarios import _lower_bound_projected
from repro.reporting.tables import render_table

_RATES = (0.0, 0.04, 0.08, 0.15)


def _failure_year(rate: float, horizon: float = 2020.0) -> float | None:
    year = 1995.5
    while year <= horizon:
        live = [a.min_at(year, rate=rate) for a in APPLICATIONS
                if a.year_first <= year]
        if live and _lower_bound_projected(year) > max(live):
            return year
        year += 0.25
    return None


def build_sweep():
    return {rate: _failure_year(rate) for rate in _RATES}


def test_ablation_drift_rate(benchmark, emit):
    sweep = benchmark(build_sweep)
    rows = [
        [f"{rate:.0%}/yr",
         f"{sweep[rate]:.2f}" if sweep[rate] else "beyond 2020"]
        for rate in _RATES
    ]
    text = render_table(
        ["drift rate", "premise-1 failure year"],
        rows,
        title="Ablation: software-improvement drift vs regime lifetime",
    )
    text += (f"\n\nmid-1995 lower bound (drift-independent): "
             f"{lower_bound_mtops(1995.5):,.0f} Mtops")
    emit(text)

    # Faster drift -> earlier failure (monotone within the sweep).
    years = [sweep[r] or 2050.0 for r in _RATES]
    assert years == sorted(years, reverse=True)
    # The hardware-side bound is untouched by the drift choice.
    assert 4_000.0 <= lower_bound_mtops(1995.5) <= 5_000.0
