"""Tests for the networked-systems / building-block study (Chapter 6)."""

import pytest

from repro.diffusion.networks import (
    building_block_year,
    cstac_ctp,
    network_ctp,
    premise3_collapse_year,
)


class TestRatings:
    def test_network_ctp_below_cstac(self):
        # The paper calls the flat-75% CSTAC rating "overly optimistic";
        # the conservative rule must rate any real cluster far lower.
        ours = network_ctp(500.0, 64)
        naive = cstac_ctp(500.0, 64)
        assert ours < 0.25 * naive

    def test_single_node_identity(self):
        assert network_ctp(500.0, 1) == pytest.approx(500.0)

    def test_better_interconnect_rates_higher(self):
        slow = network_ctp(500.0, 64, interconnect_beta=0.1)
        fast = network_ctp(500.0, 64, interconnect_beta=0.9)
        assert fast > slow

    def test_cstac_linear(self):
        assert cstac_ctp(100.0, 32) == pytest.approx(2_400.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            network_ctp(0.0, 4)
        with pytest.raises(ValueError):
            network_ctp(100.0, 0)
        with pytest.raises(ValueError):
            cstac_ctp(100.0, 0)


class TestBuildingBlocks:
    def test_1500_threshold_crossed_early(self):
        # A 64-node commodity cluster rates above the in-force 1,500-Mtops
        # definition by the early-to-mid 1990s even under the conservative
        # rule — the definitional problem Chapter 6 warns about.
        s = building_block_year(1_500.0, 64)
        assert s.crossing_year < 1995.5

    def test_frontier_crossed_mid_decade(self):
        s = building_block_year(4_100.0, 64)
        assert 1994.0 <= s.crossing_year <= 1999.0

    def test_cstac_always_earlier(self):
        s = building_block_year(10_000.0, 64)
        assert s.cstac_crossing_year < s.crossing_year
        assert s.cstac_earlier_by_years > 0

    def test_more_nodes_cross_sooner(self):
        small = building_block_year(10_000.0, 16)
        big = building_block_year(10_000.0, 256)
        assert big.crossing_year < small.crossing_year

    def test_higher_threshold_later(self):
        low = building_block_year(2_000.0, 64)
        high = building_block_year(20_000.0, 64)
        assert high.crossing_year > low.crossing_year

    def test_validation(self):
        with pytest.raises(ValueError):
            building_block_year(0.0, 64)
        with pytest.raises(ValueError):
            building_block_year(1_000.0, 0)


class TestCollapse:
    def test_collapse_within_horizon(self):
        """The premise-3 failure scenario: commodity stacks close to
        within 2x of the best integrated machine around the turn of the
        decade."""
        year = premise3_collapse_year()
        assert year is not None
        assert 1997.0 <= year <= 2005.0

    def test_wider_gap_collapses_sooner(self):
        loose = premise3_collapse_year(gap_factor=4.0)
        tight = premise3_collapse_year(gap_factor=1.5)
        assert loose <= tight

    def test_none_when_horizon_too_short(self):
        assert premise3_collapse_year(gap_factor=1.01,
                                      n_nodes=4,
                                      horizon=1996.0) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            premise3_collapse_year(gap_factor=1.0)
