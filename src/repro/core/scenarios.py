"""Premise-failure scenarios and the erosion conjecture (Chapters 2, 6).

Chapter 2 closes with the ways the regime could collapse; Chapter 6
conjectures that "the efficacy of the current control regime will weaken
significantly over the longer term".  These projections make the
conjecture concrete:

* **Premise 1 failure** — the year the rising lower bound overtakes every
  *current* application minimum (no new stalactites assumed): after this,
  nothing the regime protects requires controllable hardware.
* **Premise 3 failure** — the gap between the most powerful available
  system (line D) and the lower bound (line A) compresses until "there is
  no meaningful range of controllability".
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro._util import check_year
from repro.obs.errors import ValidationError
from repro.apps.catalog import APPLICATIONS, drifted_min_matrix, requirement_arrays
from repro.controllability.frontier import (
    projected_frontier_mtops,
    projected_frontier_series,
)
from repro.core.framework import lower_bound_mtops, lower_bound_series
from repro.machines.catalog import max_available_mtops_series

__all__ = [
    "ScenarioOutcome",
    "premise1_failure_year",
    "premise1_with_renewal",
    "premise3_gap_series",
    "erosion_report",
]


@dataclass(frozen=True)
class ScenarioOutcome:
    """Projected failure year for one premise (None = no failure within
    the horizon)."""

    premise: int
    failure_year: float | None
    description: str


def _lower_bound_projected(year: float, catalog_through: float = 1999.9) -> float:
    """Catalog-driven lower bound within coverage; trend projection after."""
    if year <= catalog_through:
        return lower_bound_mtops(year)
    return max(
        lower_bound_mtops(catalog_through),
        projected_frontier_mtops(year),
    )


def _lower_bound_projected_series(
    years: np.ndarray, catalog_through: float = 1999.9
) -> np.ndarray:
    """:func:`_lower_bound_projected` over a whole grid in one pass: the
    catalog-backed series within coverage, a single SMP-trend fit (not one
    per grid point) beyond it."""
    grid = np.asarray(years, dtype=float)
    out = np.empty(grid.shape)
    within = grid <= catalog_through
    out[within] = lower_bound_series(grid[within])
    beyond = ~within
    if beyond.any():
        out[beyond] = np.maximum(
            lower_bound_mtops(catalog_through),
            projected_frontier_series(grid[beyond]),
        )
    return out


def premise1_failure_year(
    start: float = 1995.5,
    horizon: float = 2015.0,
    step: float = 0.25,
    exclude_memory_bound: bool = False,
) -> float | None:
    """First year the lower bound exceeds every current application minimum.

    ``exclude_memory_bound=True`` drops the applications whose real gate is
    closely-coupled memory rather than operation rate — the paper's point
    that CTP stops being the binding measure for exactly those.
    """
    check_year(start, "start")
    check_year(horizon, "horizon")
    apps = tuple(
        a for a in APPLICATIONS
        if not (exclude_memory_bound and a.memory_bound)
    )
    years = np.arange(start, horizon + 1e-9, step)
    if not apps or years.size == 0:
        return None
    _mins, firsts = requirement_arrays(apps)
    live = firsts[:, None] <= years[None, :]
    live_max = np.where(live, drifted_min_matrix(years, apps), -np.inf).max(axis=0)
    bounds = _lower_bound_projected_series(years)
    failed = live.any(axis=0) & (bounds > live_max)
    if not failed.any():
        return None
    return float(years[int(np.argmax(failed))])


def premise1_with_renewal(
    new_app_interval_years: float = 1.0,
    frontier_multiple: float = 2.0,
    start: float = 1995.5,
    horizon: float = 2015.0,
    step: float = 0.25,
) -> ScenarioOutcome:
    """Premise 1 when new stalactites keep emerging (Chapter 2's caveat).

    The failure scenario "might take place if new applications with very
    high minimum computational requirements do not emerge".  Here they do:
    every ``new_app_interval_years`` a new application appears whose
    minimum is ``frontier_multiple`` times the then-current lower bound
    (problem sizes grow with the machines — note 27's other direction).
    Each new stalactite then drifts downward like any other.

    Whether the justification renews depends on the race between the
    frontier's growth and the birth cadence: a new 2x-frontier stalactite
    stays above the rising bound for only ~15 months, so annual births
    sustain premise 1 indefinitely while biennial births leave uncovered
    windows.  The erosion conjecture is really a conjecture about
    *application demand*, not about hardware.
    """
    check_year(start, "start")
    check_year(horizon, "horizon")
    if new_app_interval_years <= 0:
        raise ValidationError("new_app_interval_years must be positive",
                              context={"got": new_app_interval_years,
                                       "valid": "> 0"})
    if frontier_multiple <= 0:
        raise ValidationError("frontier_multiple must be positive",
                              context={"got": frontier_multiple,
                                       "valid": "> 0"})
    from repro.apps.requirements import DRIFT_RATE_PER_YEAR

    # Same accumulated grid as the seed loop (year += step), so results
    # are bit-identical; the bound series and the catalog-app live maxima
    # are precomputed in one pass each.  Only the synthetic stalactites
    # are inherently sequential (each birth level depends on the bound at
    # its birth year), and there are at most a handful of them.
    grid: list[float] = []
    year = start
    while year <= horizon:
        grid.append(float(year))
        year += step
    years = np.array(grid)
    bounds = _lower_bound_projected_series(years)
    _mins, firsts = requirement_arrays(APPLICATIONS)
    live_any = (firsts[:, None] <= years[None, :]).any(axis=0)
    live_max = np.where(
        firsts[:, None] <= years[None, :], drifted_min_matrix(years), -np.inf
    ).max(axis=0)

    synthetic: list[tuple[float, float]] = []  # (year_first, min at birth)
    next_birth = start
    failure = None
    for i, year in enumerate(grid):
        bound = float(bounds[i])
        if year >= next_birth:
            synthetic.append((year, frontier_multiple * bound))
            next_birth += new_app_interval_years
        best = live_max[i] if live_any[i] else -np.inf
        for born, born_min in synthetic:
            drifted = born_min * max(
                (1.0 - DRIFT_RATE_PER_YEAR) ** (year - born), 0.3
            )
            best = max(best, drifted)
        if best > -np.inf and bound > best:
            failure = year
            break
    return ScenarioOutcome(
        premise=1,
        failure_year=failure,
        description=(
            f"new applications every {new_app_interval_years:g} years at "
            f"{frontier_multiple:g}x the frontier"
        ),
    )


def premise3_gap_series(
    years: Sequence[float] | np.ndarray,
) -> np.ndarray:
    """Gap factor line D / line A over a year grid.

    A value near 1 means the building-block world has arrived: "the most
    powerful systems" are just big stacks of uncontrollable parts.
    """
    grid = np.asarray(years, dtype=float)
    lower = lower_bound_series(grid)
    upper = max_available_mtops_series(grid)
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.where(lower == 0.0, np.inf, upper / lower)
    return out


@dataclass(frozen=True)
class ErosionReport:
    """The Chapter 6 longer-term picture, computed."""

    premise1: ScenarioOutcome
    premise1_without_memory_bound: ScenarioOutcome
    gap_1995: float
    gap_1999: float

    @property
    def weakens_over_time(self) -> bool:
        """The erosion conjecture: the controllable range narrows and/or
        premise 1 eventually fails."""
        gap_narrows = self.gap_1999 < self.gap_1995
        return gap_narrows or self.premise1.failure_year is not None


def erosion_report(horizon: float = 2015.0) -> ErosionReport:
    """Compute the erosion picture out to ``horizon``."""
    y1 = premise1_failure_year(horizon=horizon)
    y1m = premise1_failure_year(horizon=horizon, exclude_memory_bound=True)
    gaps = premise3_gap_series([1995.5, 1999.5])
    return ErosionReport(
        premise1=ScenarioOutcome(
            premise=1,
            failure_year=y1,
            description="lower bound overtakes every current application "
                        "minimum (no new stalactites assumed)",
        ),
        premise1_without_memory_bound=ScenarioOutcome(
            premise=1,
            failure_year=y1m,
            description="as above, ignoring applications whose true gate "
                        "is closely-coupled memory (which CTP mis-measures)",
        ),
        gap_1995=float(gaps[0]),
        gap_1999=float(gaps[1]),
    )
