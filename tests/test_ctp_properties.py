"""Property-based tests (hypothesis) for the CTP metric.

These pin the invariants the export-control use of the metric depends on:
ratings are positive, monotone in every capability dimension, and
aggregation order-independent.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ctp import (
    ComputingElement,
    Coupling,
    aggregate,
    aggregate_homogeneous,
    ctp_homogeneous,
    word_length_factor,
)

clocks = st.floats(min_value=1.0, max_value=1000.0, allow_nan=False)
words = st.floats(min_value=4.0, max_value=128.0)
opses = st.floats(min_value=0.1, max_value=16.0)
tps = st.floats(min_value=0.1, max_value=1e5)
counts = st.integers(min_value=1, max_value=512)
couplings = st.sampled_from(
    [Coupling.SHARED, Coupling.DISTRIBUTED, Coupling.CLUSTER]
)


def _ce(clock, word, fp, integer, concurrent):
    return ComputingElement("h", clock_mhz=clock, word_bits=word,
                            fp_ops_per_cycle=fp, int_ops_per_cycle=integer,
                            concurrent_int_fp=concurrent)


@given(words, words)
def test_word_length_factor_monotone(w1, w2):
    # Weak monotonicity always; strict once the gap is beyond float noise
    # in the w/96 term.
    if w1 < w2:
        assert word_length_factor(w1) <= word_length_factor(w2)
        if w2 - w1 > 1e-9:
            assert word_length_factor(w1) < word_length_factor(w2)
    elif w1 > w2:
        assert word_length_factor(w1) >= word_length_factor(w2)


@given(clocks, words, opses, opses, st.booleans(), counts, couplings)
@settings(max_examples=150)
def test_ctp_positive(clock, word, fp, integer, concurrent, n, coupling):
    value = ctp_homogeneous(_ce(clock, word, fp, integer, concurrent), n, coupling)
    assert value > 0
    assert np.isfinite(value)


@given(clocks, words, opses, opses, st.booleans(), counts, couplings)
@settings(max_examples=100)
def test_adding_processor_never_decreases_ctp(clock, word, fp, integer,
                                              concurrent, n, coupling):
    ce = _ce(clock, word, fp, integer, concurrent)
    v_n = ctp_homogeneous(ce, n, coupling)
    v_n1 = ctp_homogeneous(ce, n + 1, coupling)
    assert v_n1 > v_n


@given(clocks, words, opses, opses, st.booleans(), counts, couplings)
@settings(max_examples=100)
def test_faster_clock_never_decreases_ctp(clock, word, fp, integer,
                                          concurrent, n, coupling):
    ce = _ce(clock, word, fp, integer, concurrent)
    faster = ce.scaled_clock(clock * 2.0)
    assert ctp_homogeneous(faster, n, coupling) > ctp_homogeneous(ce, n, coupling)


@given(st.lists(tps, min_size=1, max_size=32), couplings)
@settings(max_examples=100)
def test_aggregate_permutation_invariant(values, coupling):
    rng = np.random.default_rng(0)
    shuffled = list(values)
    rng.shuffle(shuffled)
    a = aggregate(values, coupling)
    b = aggregate(shuffled, coupling)
    assert a == b or abs(a - b) < 1e-9 * max(a, b)


@given(st.lists(tps, min_size=1, max_size=32), couplings)
@settings(max_examples=100)
def test_aggregate_bounds(values, coupling):
    """CTP is at least the largest element and at most the plain sum."""
    total = aggregate(values, coupling)
    assert total >= max(values) * (1 - 1e-12)
    assert total <= sum(values) * (1 + 1e-12)


@given(tps, counts)
@settings(max_examples=100)
def test_shared_dominates_distributed_dominates_cluster(tp, n):
    shared = aggregate_homogeneous(tp, n, Coupling.SHARED)
    dist = aggregate_homogeneous(tp, n, Coupling.DISTRIBUTED)
    cluster = aggregate_homogeneous(tp, n, Coupling.CLUSTER)
    assert shared >= dist - 1e-9
    assert dist >= cluster - 1e-9


@given(tps, counts, couplings)
@settings(max_examples=100)
def test_homogeneous_matches_explicit_list(tp, n, coupling):
    a = aggregate_homogeneous(tp, n, coupling)
    b = aggregate([tp] * n, coupling)
    assert a == b or abs(a - b) < 1e-9 * a
