"""Invalid-input sweep: the library raises only ReproError subclasses.

Every public entry point in :mod:`repro.ctp`, :mod:`repro.machines`, and
:mod:`repro.core`, fed a representative bad input, must fail with a
typed :class:`repro.obs.ReproError` subclass carrying a context payload
— never a bare ``ValueError``/``KeyError`` and never an unrelated
traceback (``TypeError``, ``IndexError``).  The legacy bases still hold
(``ValidationError`` *is a* ``ValueError``), so old ``except`` clauses
keep working; this sweep pins the new, more specific contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.framework import derive_bounds
from repro.core.review import run_annual_review
from repro.core.sensitivity import bound_sensitivity, classification_stability
from repro.core.threshold import select_threshold
from repro.ctp import (
    ComputingElement,
    Coupling,
    aggregate,
    ctp,
    ctp_homogeneous,
)
from repro.ctp.batch import (
    aggregate_batch,
    clear_credit_cache,
    credit_sums,
    ctp_batch,
    ctp_homogeneous_batch,
    theoretical_performance_batch,
)
from repro.machines.catalog import find_machine, max_available_mtops
from repro.machines.microprocessors import find_micro
from repro.obs import CatalogLookupError, ReproError, ValidationError


def _element(**overrides) -> ComputingElement:
    spec = dict(name="t", clock_mhz=100.0, word_bits=64.0,
                fp_ops_per_cycle=1.0, int_ops_per_cycle=1.0,
                concurrent_int_fp=False)
    spec.update(overrides)
    return ComputingElement(**spec)


#: (label, zero-argument callable that must raise a ReproError subclass)
_INVALID_CALLS = [
    # repro.ctp — element construction
    ("element_negative_clock", lambda: _element(clock_mhz=-1.0)),
    ("element_zero_clock", lambda: _element(clock_mhz=0.0)),
    ("element_negative_word", lambda: _element(word_bits=-32.0)),
    ("element_no_arithmetic",
     lambda: _element(fp_ops_per_cycle=0.0, int_ops_per_cycle=0.0)),
    # repro.ctp — scalar aggregation/rating
    ("aggregate_empty", lambda: aggregate([], Coupling.SHARED)),
    ("aggregate_nonpositive_tp",
     lambda: aggregate([100.0, -5.0], Coupling.SHARED)),
    ("aggregate_bad_beta",
     lambda: aggregate([100.0] * 2, Coupling.CLUSTER, interconnect_beta=0.0)),
    ("ctp_empty_configuration", lambda: ctp([], Coupling.SHARED)),
    ("ctp_homogeneous_zero_n",
     lambda: ctp_homogeneous(_element(), 0, Coupling.SHARED)),
    ("ctp_homogeneous_negative_n",
     lambda: ctp_homogeneous(_element(), -3, Coupling.SHARED)),
    # repro.ctp — batch layer
    ("aggregate_batch_empty_row",
     lambda: aggregate_batch([[100.0], []], Coupling.SHARED)),
    ("aggregate_batch_nonpositive",
     lambda: aggregate_batch([[100.0, -1.0]], Coupling.SHARED)),
    ("ctp_batch_empty_configuration",
     lambda: ctp_batch([[_element()], []], Coupling.SHARED)),
    ("ctp_homogeneous_batch_zero_n",
     lambda: ctp_homogeneous_batch([_element()], np.array([0]),
                                   Coupling.SHARED)),
    ("credit_sums_zero_n", lambda: credit_sums(0, Coupling.SHARED)),
    # repro.machines
    ("find_machine_unknown", lambda: find_machine("Cray C917")),
    ("find_micro_unknown", lambda: find_micro("Alpha 99999")),
    ("find_machine_empty_key", lambda: find_machine("")),
    ("max_available_prehistory", lambda: max_available_mtops(1900.0)),
    # repro.core
    ("derive_bounds_absurd_year", lambda: derive_bounds(-5.0)),
    ("run_annual_review_absurd_year", lambda: run_annual_review(12.0)),
    ("select_threshold_absurd_year", lambda: select_threshold(12.0)),
    ("bound_sensitivity_zero_samples",
     lambda: bound_sensitivity(1995.5, n_samples=0)),
    ("bound_sensitivity_bad_concentration",
     lambda: bound_sensitivity(1995.5, 10, concentration=-1.0)),
    ("classification_stability_bad_concentration",
     lambda: classification_stability(10, concentration=0.0)),
]


class TestOnlyTypedErrors:
    @pytest.mark.parametrize(
        "label,call", _INVALID_CALLS, ids=[c[0] for c in _INVALID_CALLS])
    def test_raises_repro_error_with_context(self, label, call):
        with pytest.raises(ReproError) as excinfo:
            call()
        err = excinfo.value
        assert err.context, f"{label}: ReproError raised without context"
        assert err.diagnostic().startswith(str(err))

    def test_lookup_errors_are_catalog_lookup(self):
        with pytest.raises(CatalogLookupError):
            find_machine("nonexistent")
        with pytest.raises(CatalogLookupError):
            find_micro("nonexistent")

    def test_legacy_value_error_clause_still_catches(self):
        """Pre-taxonomy caller code that catches ValueError keeps working."""
        with pytest.raises(ValueError):
            aggregate([], Coupling.SHARED)

    def test_legacy_key_error_clause_still_catches(self):
        with pytest.raises(KeyError):
            find_machine("nonexistent")


class TestEmptyBatchEdges:
    """Zero-configuration batches: valid no-ops, not errors."""

    def test_theoretical_performance_batch_empty(self):
        out = theoretical_performance_batch([])
        assert out.shape == (0,)

    def test_aggregate_batch_no_rows(self):
        out = aggregate_batch([], Coupling.SHARED)
        assert np.asarray(out).shape == (0,)

    def test_ctp_batch_no_configurations(self):
        out = ctp_batch([], Coupling.DISTRIBUTED)
        assert np.asarray(out).shape == (0,)

    def test_ctp_homogeneous_batch_no_rows(self):
        out = ctp_homogeneous_batch([], np.array([], dtype=int),
                                    Coupling.SHARED)
        assert np.asarray(out).shape == (0,)

    def test_empty_configuration_inside_batch_is_validation_error(self):
        with pytest.raises(ValidationError):
            ctp_batch([[]], Coupling.SHARED)

    def teardown_method(self):
        clear_credit_cache()
