"""Table 15: Summary of Representative Computational Requirements for
Military Operations.

The operations-side applications (C4I, sensors, meteorology, simulation)
with their timing classes — the group whose real-time and embedded
constraints CTP-based controls fit worst.
"""

from repro.apps.catalog import applications_by_mission
from repro.apps.taxonomy import MissionArea, Parallelizability, TimingClass
from repro.reporting.tables import render_table


def build_table():
    return applications_by_mission(MissionArea.MILITARY_OPERATIONS)


def test_tab15_military_operations(benchmark, emit):
    apps = benchmark(build_table)
    rows = [
        [a.name, round(a.min_mtops, 1),
         round(a.actual_mtops, 1) if a.actual_mtops else "-",
         a.timing.value, a.parallelizable.value]
        for a in apps
    ]
    emit(render_table(
        ["application", "min Mtops", "actual Mtops", "timing",
         "cluster-convertible"],
        rows,
        title="Table 15: representative computational requirements for "
              "military operations",
    ))

    assert len(apps) >= 10
    # Real-time dominates operations ("processing must occur in
    # real-time").
    real_time = [a for a in apps if a.timing is TimingClass.REAL_TIME]
    assert len(real_time) > len(apps) / 2
    # The 10,000-Mtops operations group: weather, SIRST-deployed class.
    heavy = [a for a in apps if a.min_mtops >= 7_000.0]
    assert len(heavy) >= 4
    # And the size/weight/power-constrained ones cannot take the cluster
    # escape route.
    assert any(a.parallelizable is Parallelizability.NO for a in heavy)
