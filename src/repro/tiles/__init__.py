"""Tiled lazy grid evaluation with an epoch-keyed cross-request cache.

The Chapter-5 policy lattice and the scenario tensor were batch
engines: one cell costs a full ``(thresholds x years)`` or
``(scenario x threshold x year)`` build.  This package decomposes both
lattices into fixed-size tiles (:mod:`repro.tiles.geometry`), evaluates
tiles lazily on first touch through the existing column-overlay
broadcasts, and caches them in LRU-bounded, sub-epoch-keyed planes
registered with the catalog invalidation registry
(:mod:`repro.tiles.store`) — precise ``invalidate_for`` per event kind,
nuclear on ``invalidate_all``.

Point APIs (:func:`policy_point`, :func:`threshold_at`,
:func:`scenario_point`) touch exactly one tile; batch point APIs
(:func:`policy_cells`, :func:`scenario_cells`) coalesce same-tile
queries into one build, which is what the serve MicroBatcher dispatches
through; sweep APIs (:class:`TiledPolicyGrid`,
:func:`tiled_policy_grid`, :func:`tiled_scenario_grid`) assemble tiles
into grids **bit-exact** against ``evaluate_policy_grid`` /
``evaluate_scenario_grid``.  None of them ever trigger a full-lattice
build.
"""

from repro.tiles.geometry import (
    MAX_AXIS_POINTS,
    TILE_SHAPE,
    YEAR_SPAN,
    block_slices,
    canonical_thresholds,
    canonical_years,
    threshold_bucket,
    year_bucket,
)
from repro.tiles.policy import (
    PolicyTile,
    TiledPolicyGrid,
    policy_cells,
    policy_point,
    prime_tile_plane,
    threshold_at,
    tiled_policy_grid,
)
from repro.tiles.scenario import (
    ScenarioPoint,
    ScenarioTile,
    scenario_cells,
    scenario_point,
    tiled_scenario_grid,
)
from repro.tiles.store import TilePlane, clear_tile_planes, tile_plane_info

__all__ = [
    "MAX_AXIS_POINTS",
    "TILE_SHAPE",
    "YEAR_SPAN",
    "PolicyTile",
    "ScenarioPoint",
    "ScenarioTile",
    "TiledPolicyGrid",
    "TilePlane",
    "block_slices",
    "canonical_thresholds",
    "canonical_years",
    "clear_tile_planes",
    "policy_cells",
    "policy_point",
    "prime_tile_plane",
    "scenario_cells",
    "scenario_point",
    "threshold_at",
    "threshold_bucket",
    "tile_plane_info",
    "tiled_policy_grid",
    "tiled_scenario_grid",
    "year_bucket",
]
