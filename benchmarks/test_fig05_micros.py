"""Figure 5: Advances in 64-bit Microprocessors.

The single-chip Mtops point cloud by introduction year with the fitted
exponential, doubling at the commodity-silicon pace.
"""

from repro.reporting.tables import render_table
from repro.trends.moore import micro_mtops_trend, micro_points


def build_figure():
    points = micro_points(1996.5)
    trend = micro_mtops_trend(1996.5)
    return points, trend


def test_fig05_microprocessors(benchmark, emit):
    points, trend = benchmark(build_figure)
    rows = [[p.label, f"{p.year:.1f}", round(p.mtops)] for p in points]
    text = render_table(
        ["microprocessor", "year", "Mtops"],
        rows,
        title="Figure 5: advances in 64-bit microprocessors",
    )
    text += (
        f"\n\nfitted trend: x{trend.growth_per_year:.2f} per year "
        f"(doubling every {trend.doubling_time_years:.1f} years), "
        f"fit residual {trend.residual_std:.2f} decades"
    )
    emit(text)

    assert len(points) >= 12
    assert 1.0 < trend.doubling_time_years < 3.0
    # The era claim: 1995 single chips beat late-80s supercomputer CPUs.
    latest = max(p.mtops for p in points)
    assert latest > 1_000.0
