"""Tests for snapshot analysis, threshold policies, scenarios, reviews."""

import numpy as np
import pytest

from repro.core.review import run_annual_review, review_series
from repro.core.scenarios import (
    erosion_report,
    premise1_failure_year,
    premise3_gap_series,
)
from repro.core.stalactite import ComputingRange, f22_stalactite
from repro.core.threshold import ThresholdPolicy, select_threshold, snapshot


class TestSnapshot:
    def test_lines_ordered(self):
        s = snapshot(1995.5)
        assert s.line_a_mtops < s.line_d_mtops

    def test_histograms_aligned(self):
        s = snapshot(1995.5)
        assert s.installed_counts.shape == s.application_counts.shape
        assert s.bin_centers().shape == s.installed_counts.shape

    def test_application_counts_complete(self):
        s = snapshot(1995.5)
        from repro.apps.catalog import APPLICATIONS

        live = [a for a in APPLICATIONS if a.year_first <= 1995.5]
        assert s.application_counts.sum() == len(live)

    def test_installed_hump_below_line_a(self):
        # The installations hump sits below the controllability line —
        # the Figure 3 geometry that makes a threshold worth drawing.
        s = snapshot(1995.5)
        centers = s.bin_centers()
        peak_center = centers[np.argmax(s.installed_counts)]
        assert peak_center < s.line_a_mtops


class TestSelectThreshold:
    def test_control_all_at_line_a(self):
        s = select_threshold(1995.5, ThresholdPolicy.CONTROL_WHAT_CAN_BE_CONTROLLED)
        assert s.threshold_mtops == pytest.approx(snapshot(1995.5).line_a_mtops)
        assert not s.applications_given_up

    def test_application_driven_protects_everything(self):
        s = select_threshold(1995.5, ThresholdPolicy.APPLICATION_DRIVEN)
        assert not s.applications_given_up
        # Sits above line A (decontrolling some market) but below the
        # smallest protectable requirement.
        b = snapshot(1995.5).bounds
        assert snapshot(1995.5).line_a_mtops <= s.threshold_mtops
        assert s.threshold_mtops < b.upper_application_mtops

    def test_economic_gives_up_little(self):
        s = select_threshold(1995.5, ThresholdPolicy.ECONOMIC)
        # B-not-C: a few applications at most, never the big clusters.
        assert len(s.applications_given_up) <= 3
        assert s.units_decontrolled > 0

    def test_all_policies_at_or_above_lower_bound(self):
        line_a = snapshot(1995.5).line_a_mtops
        for policy in ThresholdPolicy:
            s = select_threshold(1995.5, policy)
            assert s.threshold_mtops >= line_a * (1 - 1e-9)

    def test_rationales_present(self):
        for policy in ThresholdPolicy:
            assert select_threshold(1995.5, policy).rationale

    def test_margin_validation(self):
        with pytest.raises(ValueError):
            select_threshold(1995.5, margin=0.0)


class TestStalactite:
    def test_range_ordering_invariant(self):
        st = f22_stalactite()
        for year in (1991.0, 1993.0, 1995.5):
            r = st.range_at(year)
            assert r.minimum_mtops <= r.actual_mtops <= r.maximum_available_mtops

    def test_actual_rises_with_market(self):
        st = f22_stalactite()
        assert st.actual_at(1995.5) > st.actual_at(1991.0)

    def test_minimum_drifts_down(self):
        st = f22_stalactite()
        assert st.minimum_at(1995.5) < st.minimum_at(1991.0)

    def test_before_first_performance_raises(self):
        with pytest.raises(ValueError):
            f22_stalactite().actual_at(1985.0)

    def test_series(self):
        ranges = f22_stalactite().series([1991.0, 1995.5])
        assert len(ranges) == 2
        assert all(isinstance(r, ComputingRange) for r in ranges)

    def test_computing_range_validation(self):
        with pytest.raises(ValueError):
            ComputingRange(year=1995.0, minimum_mtops=100.0,
                           actual_mtops=50.0, maximum_available_mtops=200.0)


class TestScenarios:
    def test_premise1_eventually_fails(self):
        """Chapter 6's erosion conjecture: with no new stalactites, the
        rising frontier overtakes every current application minimum."""
        year = premise1_failure_year(horizon=2015.0)
        assert year is not None
        assert 1998.0 < year <= 2015.0

    def test_memory_bound_exclusion_accelerates(self):
        with_mem = premise1_failure_year(horizon=2015.0)
        without = premise1_failure_year(horizon=2015.0,
                                        exclude_memory_bound=True)
        assert without <= with_mem

    def test_gap_series_shrinks(self):
        gaps = premise3_gap_series([1995.5, 1999.5])
        assert gaps[1] < gaps[0]

    def test_erosion_report(self):
        report = erosion_report()
        assert report.weakens_over_time
        assert report.gap_1999 < report.gap_1995


class TestAnnualReview:
    def test_1995_review(self):
        r = run_annual_review(1995.5)
        assert r.premises.all_hold
        assert r.threshold_in_force == 1_500.0
        assert r.threshold_is_stale  # 1,500 sits below the ~4,100 frontier
        assert r.recommended_change_factor > 2.0

    def test_1992_review_already_stale(self):
        # The fresh 195-Mtops threshold of 1991 was already below the
        # foreign envelope (Russia's MKP) and barely above the SS10's
        # family ceiling: the regime was on the edge from day one.
        r = run_annual_review(1992.6)
        assert r.threshold_in_force == 195.0
        assert r.bounds.foreign_mtops >= 1_000.0
        assert r.threshold_is_stale

    def test_series_monotone_recommendations(self):
        reviews = review_series([1994.5, 1995.5, 1996.5, 1997.5])
        recs = [r.recommendation.threshold_mtops for r in reviews]
        assert recs == sorted(recs)

    def test_clusters_recorded(self):
        r = run_annual_review(1995.5)
        assert r.clusters
        assert all(n >= 1 for _, n in r.clusters)
