"""Tests for interconnects, workloads, and machine models."""

import pytest

from repro.machines.spec import Architecture
from repro.simulate.architectures import (
    SUSTAINED_FRACTION,
    cluster_machine,
    mpp_machine,
    smp_machine,
    vector_machine,
)
from repro.simulate.interconnect import (
    ATM_155,
    ETHERNET_10,
    FDDI,
    HIPPI,
    INTERCONNECTS,
    PARAGON_MESH,
    SMP_BUS,
    T3D_TORUS,
    Interconnect,
)
from repro.simulate.workloads import CommPattern, Workload, WORKLOAD_SUITE, find_workload


class TestInterconnect:
    def test_transfer_time_components(self):
        net = Interconnect("t", bandwidth_mbps=10.0, latency_us=100.0)
        # 10 MB at 10 MB/s + 2 messages at 100 us.
        assert net.transfer_time_s(10.0, 2.0) == pytest.approx(1.0 + 2e-4)

    def test_transfer_rejects_negative(self):
        with pytest.raises(ValueError):
            ETHERNET_10.transfer_time_s(-1.0)

    def test_shared_medium_divides(self):
        assert ETHERNET_10.effective_bandwidth_mbps(10) == pytest.approx(
            ETHERNET_10.bandwidth_mbps / 10
        )

    def test_switched_fabric_scales(self):
        assert T3D_TORUS.effective_bandwidth_mbps(100) == T3D_TORUS.bandwidth_mbps

    def test_lan_vs_mpp_one_to_two_orders(self):
        # "bandwidth and latency that are 1-2 orders of magnitude inferior
        # to the interconnects used in more tightly coupled systems".
        assert PARAGON_MESH.bandwidth_mbps / FDDI.bandwidth_mbps >= 10.0
        assert FDDI.latency_us / T3D_TORUS.latency_us >= 100.0

    def test_commodity_lans_not_controllable(self):
        for net in (ETHERNET_10, FDDI, ATM_155, HIPPI):
            assert not net.controllable_component
        for net in (SMP_BUS, PARAGON_MESH, T3D_TORUS):
            assert net.controllable_component

    def test_catalog_complete(self):
        assert len(INTERCONNECTS) == 8


class TestCommPatterns:
    def test_single_node_no_comm(self):
        for pattern in CommPattern:
            assert pattern.volume_per_node_mb(100.0, 1) == 0.0
            assert pattern.messages_per_node(1) == 0.0

    def test_embarrassing_no_comm_at_any_p(self):
        assert CommPattern.EMBARRASSING.volume_per_node_mb(100.0, 64) == 0.0

    def test_halo_2d_scales_as_sqrt(self):
        v4 = CommPattern.HALO_2D.volume_per_node_mb(100.0, 4)
        v16 = CommPattern.HALO_2D.volume_per_node_mb(100.0, 16)
        assert v4 / v16 == pytest.approx(2.0)

    def test_halo_3d_scales_as_two_thirds(self):
        v8 = CommPattern.HALO_3D.volume_per_node_mb(100.0, 8)
        v64 = CommPattern.HALO_3D.volume_per_node_mb(100.0, 64)
        assert v8 / v64 == pytest.approx(4.0)

    def test_all_to_all_messages_grow(self):
        assert CommPattern.ALL_TO_ALL.messages_per_node(32) == 31.0

    def test_irregular_latency_bound(self):
        assert CommPattern.IRREGULAR.messages_per_node(16) == 50.0

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            CommPattern.HALO_2D.volume_per_node_mb(100.0, 0)


class TestWorkloads:
    def test_suite_unique(self):
        names = [w.name for w in WORKLOAD_SUITE]
        assert len(set(names)) == len(names)

    def test_find(self):
        assert find_workload("weather prediction").pattern is CommPattern.HALO_3D

    def test_find_unknown(self):
        with pytest.raises(KeyError):
            find_workload("bitcoin mining")

    def test_granularity(self):
        w = Workload("g", total_mops=1_000.0, data_mb=10.0, steps=100,
                     pattern=CommPattern.HALO_2D)
        assert w.granularity_mops_per_step == pytest.approx(10.0)

    def test_turbulent_flow_memory_floor(self):
        w = find_workload("turbulent-flow CSM")
        # ">= 128 million 64-bit words" = 1 GB closely coupled.
        assert w.min_memory_mb >= 1_024.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Workload("bad", total_mops=0.0, data_mb=1.0, steps=1,
                     pattern=CommPattern.EMBARRASSING)
        with pytest.raises(ValueError):
            Workload("bad", total_mops=1.0, data_mb=1.0, steps=0,
                     pattern=CommPattern.EMBARRASSING)
        with pytest.raises(ValueError):
            Workload("bad", total_mops=1.0, data_mb=1.0, steps=1,
                     pattern=CommPattern.EMBARRASSING, parallel_fraction=1.5)


class TestMachineFactories:
    def test_sustained_fractions_ordered(self):
        # Vector machines sustain the largest fraction of peak.
        assert SUSTAINED_FRACTION[Architecture.VECTOR] > SUSTAINED_FRACTION[
            Architecture.SMP
        ] >= SUSTAINED_FRACTION[Architecture.AD_HOC_CLUSTER]

    def test_smp_shares_memory(self):
        m = smp_machine(8)
        assert m.shared_memory
        assert m.total_memory_mb == pytest.approx(8 * m.node_memory_mb)

    def test_mpp_distributed(self):
        assert not mpp_machine(64).shared_memory

    def test_cluster_kinds(self):
        assert cluster_machine(8).architecture is Architecture.AD_HOC_CLUSTER
        assert cluster_machine(8, dedicated=True).architecture is (
            Architecture.DEDICATED_CLUSTER
        )

    def test_vector_fastest_nodes(self):
        assert vector_machine(1).node_mops_per_s > smp_machine(1).node_mops_per_s

    def test_with_nodes(self):
        m = mpp_machine(64).with_nodes(128)
        assert m.n_nodes == 128
        assert m.aggregate_mops_per_s == pytest.approx(
            2 * mpp_machine(64).aggregate_mops_per_s
        )

    def test_with_nodes_rejects_zero(self):
        with pytest.raises(ValueError):
            smp_machine(4).with_nodes(0)
