"""Extension experiment: the networked-systems study Chapter 6 calls for.

"Conduct a study of the implications of networked computing systems on the
export control regime."  This bench runs that study: cluster ratings of
commodity building blocks under the conservative and CSTAC rules,
threshold-crossing years, and the premise-3 collapse projection.
"""

from repro.diffusion.networks import (
    building_block_year,
    cstac_ctp,
    network_ctp,
    premise3_collapse_year,
)
from repro.reporting.tables import render_table
from repro.trends.moore import projected_micro_mtops

_THRESHOLDS = (1_500.0, 4_100.0, 7_500.0, 16_000.0)
_NODE_COUNTS = (16, 64, 256)


def build_study():
    scenarios = {
        (t, n): building_block_year(t, n)
        for t in _THRESHOLDS for n in _NODE_COUNTS
    }
    collapse = premise3_collapse_year()
    return scenarios, collapse


def test_ext_networked_systems(benchmark, emit):
    scenarios, collapse = benchmark(build_study)
    rows = [
        [f"{t:,.0f}", n, f"{s.crossing_year:.1f}",
         f"{s.cstac_crossing_year:.1f}",
         round(s.node_mtops_at_crossing, 1)]
        for (t, n), s in sorted(scenarios.items())
    ]
    text = render_table(
        ["threshold (Mtops)", "cluster nodes", "crossing year",
         "CSTAC crossing", "node Mtops needed"],
        rows,
        title="Building-block threshold crossings (commodity micro trend, "
              "fit through mid-1995)",
    )
    node_1995 = projected_micro_mtops(1995.5)
    text += (
        f"\n\ncommodity node in mid-1995: ~{node_1995:,.0f} Mtops"
        f"\n256-node cluster rating (conservative rule): "
        f"{network_ctp(node_1995, 256):,.0f} Mtops"
        f"\nsame under the CSTAC flat-75% rule: "
        f"{cstac_ctp(node_1995, 256):,.0f} Mtops (note 55: 'overly "
        f"optimistic')"
        f"\npremise-3 collapse (within 2x of best integrated system): "
        f"{collapse:.1f}"
    )
    emit(text)

    # The 1,500-Mtops definition is already breached by modest clusters.
    assert scenarios[(1_500.0, 64)].crossing_year < 1995.5
    # The CSTAC rule always crosses earlier (it flatters clusters).
    for s in scenarios.values():
        assert s.cstac_crossing_year <= s.crossing_year
    assert collapse is not None and collapse <= 2005.0
