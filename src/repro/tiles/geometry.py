"""Tile geometry over the continuous (threshold, year) policy domain.

The policy and scenario lattices are unbounded and continuous — agentic
clients ask about *any* positive threshold and *any* year in
``[YEAR_MIN, YEAR_MAX]`` — so tiles cannot be indexed by array offsets
the way a fixed grid would be.  Instead the domain itself is bucketed:

* **threshold buckets** are half-decades in ``log10`` space (``width
  0.5``: ``[100, ~316)``, ``[~316, 1000)``, ...), matching how the
  paper's candidate thresholds spread over four orders of magnitude;
* **year buckets** span :data:`YEAR_SPAN` (2.0) years, anchored at the
  catalog's ``YEAR_MIN`` (1940.0), matching the cadence of the CoCom /
  Wassenaar review cycles the queries cluster around.

Each bucket seeds a canonical :data:`TILE_SHAPE` lattice (16 log-spaced
thresholds x 16 evenly spaced years), and query coordinates that fall
off the canonical lattice are unioned into the tile's axes on a partial
rebuild (see :mod:`repro.tiles.store`).  Bucket identity only has to be
*deterministic* per float — a coordinate that lands one bucket over due
to ``log10`` rounding still gets an exact axis entry, so answers never
depend on which bucket serves them.

:func:`block_slices` is the discrete sibling used by the sweep-assembly
path: it partitions an explicit axis into fixed-size index blocks.
"""

from __future__ import annotations

import math

from repro._util import YEAR_MAX, YEAR_MIN

__all__ = [
    "TILE_SHAPE",
    "MAX_AXIS_POINTS",
    "YEAR_SPAN",
    "threshold_bucket",
    "year_bucket",
    "canonical_thresholds",
    "canonical_years",
    "block_slices",
]

#: Canonical tile extent: (threshold points, year points) per bucket.
TILE_SHAPE: tuple[int, int] = (16, 16)

#: Partial rebuilds union query coordinates into a tile's axes; beyond
#: this many points per axis the tile resets to canonical + the live
#: request, bounding both tile memory and rebuild cost.
MAX_AXIS_POINTS = 64

#: Half-decade threshold buckets in log10 space.
_LOG_WIDTH = 0.5

#: Year-bucket span and anchor (the catalog's earliest valid year).
YEAR_SPAN = 2.0
_YEAR_ANCHOR = YEAR_MIN


def threshold_bucket(threshold_mtops: float) -> int:
    """The half-decade bucket index containing ``threshold_mtops``."""
    return math.floor(math.log10(threshold_mtops) / _LOG_WIDTH)


def year_bucket(year: float) -> int:
    """The :data:`YEAR_SPAN`-wide bucket index containing ``year``."""
    return math.floor((year - _YEAR_ANCHOR) / YEAR_SPAN)


def canonical_thresholds(bucket: int) -> tuple[float, ...]:
    """The canonical log-spaced threshold lattice for one bucket."""
    n = TILE_SHAPE[0]
    return tuple(10.0 ** ((bucket + k / n) * _LOG_WIDTH) for k in range(n))


def canonical_years(bucket: int) -> tuple[float, ...]:
    """The canonical evenly spaced year lattice for one bucket.

    Clipped to the catalog's valid ``[YEAR_MIN, YEAR_MAX]`` range so a
    query at the domain edge never drags an invalid canonical point
    into a tile build.
    """
    n = TILE_SHAPE[1]
    start = _YEAR_ANCHOR + bucket * YEAR_SPAN
    step = YEAR_SPAN / n
    return tuple(
        y for k in range(n)
        if YEAR_MIN <= (y := start + k * step) <= YEAR_MAX
    )


def block_slices(size: int, block: int) -> list[tuple[int, int]]:
    """Partition ``range(size)`` into ``[a, b)`` blocks of width
    ``block`` (last block ragged)."""
    if block < 1:
        raise ValueError(f"block width must be >= 1, got {block}")
    return [(a, min(a + block, size)) for a in range(0, size, block)]
