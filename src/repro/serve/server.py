"""HTTP/JSON front end and the service engine behind it.

Two layers, separable on purpose:

* :class:`ServiceEngine` — the transport-free core: parse -> response
  cache -> micro-batched dispatch -> structured status/body.  Tests and
  the ``serve_load`` benchmark drive this layer directly.
* :class:`ServeServer` / :func:`run_server` — a stdlib
  ``ThreadingHTTPServer`` front end (no new dependencies) exposing::

      POST /rate      rate a configuration (micro-batched)
      POST /license   one license decision  (micro-batched)
      POST /policy    Chapter-5 policy scorecard (micro-batched)
      POST /scenario  counterfactual-world scorecard (micro-batched)
      POST /machine   catalog lookup + controllability assessment
      POST /review    the annual review for a date
      POST /threshold_at     the control threshold in force at a date
      POST /batch     a heterogeneous list of sub-requests fused into
                      one multi-query plan (errors isolated per slot)
      POST /catalog/append   apply one catalog mutation event (epoch bump)
      GET  /healthz   liveness + config echo
      GET  /metrics   metrics_snapshot() + queue/batch/cache/latency state

Request handling rules (the contract the test suite pins):

* every error path returns structured JSON shaped like
  ``{"error": {"type", "message", "context"}}`` derived from the
  :class:`ReproError` taxonomy — a traceback never reaches a response
  body;
* a full queue is ``429`` with a ``Retry-After`` header; a missed
  deadline is ``504``; malformed input is ``400``; an unknown path is
  ``404``; a wrong method is ``405``;
* ``/rate``, ``/license``, ``/policy``, and ``/scenario`` coalesce
  concurrent requests through the shared multi-query planner
  (:mod:`repro.serve.plan`), which compiles every micro-batch into
  fused columnar ops (one :func:`repro.ctp.batch.ctp_homogeneous_batch`
  per coupling, one controllability matrix pass, one tile-bucket
  regroup); results are bit-identical to dispatching each request
  alone, because every per-request value depends only on that request's
  row (for ``/policy`` and ``/scenario``, its grid/tensor cell — and
  both grid engines are bit-exact per cell);
* ``/batch`` runs a heterogeneous list of sub-requests as one plan —
  CSE across duplicates, cross-endpoint reuse, one read-guard epoch —
  and returns per-slot ``{"status", "body"}`` pairs byte-identical to
  issuing each sub-request alone; a sub-request failure never fails the
  envelope.
"""

from __future__ import annotations

import json
import math
import threading
import time
from collections import deque
from concurrent.futures import TimeoutError as _FutureTimeout
from dataclasses import asdict, dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.controllability.index import CLASS_BY_CODE
from repro.obs.errors import (
    DeadlineExceededError,
    ReproError,
    ServiceOverloadedError,
    ValidationError,
)
from repro.catalog.registry import (
    current_epoch,
    register_invalidation_hook,
    unregister_invalidation_hook,
)
from repro.obs.trace import counter_inc, trace
from repro.serve.batching import MicroBatcher
from repro.serve.cache import MISS, LRUCache
from repro.serve.plan import (
    build_plan,
    execute_plan,
    machine_body,
    plan_stats,
    review_body,
    threshold_at_body,
)
from repro.serve.schemas import (
    ENDPOINTS,
    GET_ENDPOINTS,
    MachineRequest,
    ReviewRequest,
    ThresholdAtRequest,
    parse_request,
)

__all__ = ["ServeConfig", "ServiceEngine", "ServeServer", "run_server",
           "error_body"]


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one serving process."""

    host: str = "127.0.0.1"
    port: int = 8040
    max_batch: int = 64
    max_wait_ms: float = 0.0
    queue_limit: int = 1024
    cache_size: int = 1024
    deadline_ms: float = 5000.0
    drain_timeout: float = 5.0

    def __post_init__(self) -> None:
        if not self.drain_timeout >= 0:
            raise ValidationError("drain_timeout must be >= 0",
                                  context={"got": self.drain_timeout,
                                           "valid": ">= 0"})
        if self.max_batch < 1:
            raise ValidationError("max_batch must be >= 1",
                                  context={"got": self.max_batch,
                                           "valid": ">= 1"})
        if self.queue_limit < 1:
            raise ValidationError("queue_limit must be >= 1",
                                  context={"got": self.queue_limit,
                                           "valid": ">= 1"})
        if self.max_wait_ms < 0 or self.deadline_ms <= 0:
            raise ValidationError(
                "max_wait_ms must be >= 0 and deadline_ms > 0",
                context={"max_wait_ms": self.max_wait_ms,
                         "deadline_ms": self.deadline_ms},
            )
        if self.cache_size < 0:
            raise ValidationError("cache_size must be >= 0",
                                  context={"got": self.cache_size,
                                           "valid": ">= 0"})


def error_body(exc: ReproError) -> dict:
    """The structured JSON body of one taxonomy error."""
    return {
        "error": {
            "type": type(exc).__name__,
            "message": exc.message,
            "context": {k: _jsonable(v) for k, v in exc.context.items()},
        }
    }


def _jsonable(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)


class LatencyRecorder:
    """Per-endpoint latency reservoirs (bounded, thread-safe)."""

    def __init__(self, window: int = 2048) -> None:
        self._window = window
        self._lock = threading.Lock()
        self._samples: dict[str, deque[float]] = {}
        self._counts: dict[str, int] = {}

    def record(self, endpoint: str, seconds: float) -> None:
        with self._lock:
            bucket = self._samples.get(endpoint)
            if bucket is None:
                bucket = self._samples[endpoint] = deque(maxlen=self._window)
            bucket.append(seconds)
            self._counts[endpoint] = self._counts.get(endpoint, 0) + 1

    def quantiles(self) -> dict:
        """``{endpoint: {count, p50_ms, p95_ms}}`` over the window."""
        with self._lock:
            snapshot = {name: list(bucket)
                        for name, bucket in self._samples.items()}
            counts = dict(self._counts)
        out = {}
        for name, samples in snapshot.items():
            ordered = sorted(samples)
            out[name] = {
                "count": counts[name],
                "p50_ms": _quantile(ordered, 0.50) * 1e3,
                "p95_ms": _quantile(ordered, 0.95) * 1e3,
            }
        return out


def _quantile(ordered: list[float], q: float) -> float:
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[index]


class ServiceEngine:
    """Transport-free serving core: parse, cache, batch, respond."""

    def __init__(self, config: ServeConfig | None = None,
                 worker_id: int | None = None) -> None:
        self.config = config or ServeConfig()
        self.worker_id = worker_id
        self.cache = LRUCache(self.config.cache_size)
        self.latency = LatencyRecorder()
        # Every micro-batched endpoint dispatches through the shared
        # multi-query planner (one fused plan per drained batch), so
        # fusion happens even across concurrent single-endpoint clients.
        self.batchers: dict[str, MicroBatcher] = {
            name: MicroBatcher(
                name, self._dispatch_plan,
                max_batch=self.config.max_batch,
                max_wait_ms=self.config.max_wait_ms,
                queue_limit=self.config.queue_limit,
            )
            for name in ("rate", "license", "policy", "scenario")
        }
        self._handlers = {
            "rate": self._rate,
            "license": self._license,
            "machine": self._machine,
            "review": self._review,
            "policy": self._policy,
            "scenario": self._scenario,
            "threshold_at": self._threshold_at,
        }
        self._started_at = time.monotonic()
        self._closed = False
        # Catalog mutations purge this engine's response cache through
        # the invalidation registry: the epoch-prefixed keys already
        # prevent stale *hits*, the purge reclaims the dead entries.
        self._purge_hook = f"serve.cache.engine.{id(self)}"
        register_invalidation_hook(
            self._purge_hook,
            lambda epoch: self.cache.purge_below_epoch(epoch),
            kinds=("append_machine", "amend_machine", "amend_threshold"),
        )

    def close(self, drain_timeout: float | None = None) -> None:
        """Stop the batch workers, draining queued work first (idempotent).

        Each batcher's worker finishes in-flight and queued requests
        before exiting, bounded by ``drain_timeout`` seconds (default:
        the config's ``drain_timeout``) — graceful shutdown never strands
        an accepted request silently, and never hangs forever either.
        """
        if self._closed:
            return
        self._closed = True
        unregister_invalidation_hook(self._purge_hook)
        if drain_timeout is None:
            drain_timeout = self.config.drain_timeout
        for batcher in self.batchers.values():
            batcher.stop(timeout=drain_timeout)

    # -- request handling ---------------------------------------------------

    def handle(self, endpoint: str, payload: object) -> tuple[int, dict]:
        """Serve one request; returns ``(http_status, body)``.

        Never raises: every failure mode maps to a structured JSON error
        body (400 bad input, 429 shed load, 504 missed deadline, 500 for
        anything unforeseen — still JSON, never a traceback).
        """
        start = time.perf_counter()
        counter_inc("serve.requests")
        counter_inc(f"serve.requests.{endpoint}")
        try:
            with trace(f"serve.{endpoint}"):
                if endpoint == "catalog_append":
                    return 200, self._catalog_append(payload)
                if endpoint == "batch":
                    return 200, self._batch(payload)
                request = parse_request(endpoint, payload)
                # The canonical key is prefixed with the catalog epoch in
                # force at admission: a mutation event bumps the epoch, so
                # responses computed before it can never satisfy requests
                # arriving after it.
                key = (current_epoch(), *request.cache_key)
                body = self.cache.get(key)
                if body is MISS:
                    body = self._handlers[endpoint](request)
                    self.cache.put(key, body)
                return 200, body
        except ServiceOverloadedError as exc:
            counter_inc("serve.responses.429")
            return 429, error_body(exc)
        except DeadlineExceededError as exc:
            counter_inc("serve.responses.504")
            return 504, error_body(exc)
        except ReproError as exc:
            counter_inc("serve.responses.400")
            return 400, error_body(exc)
        except Exception as exc:  # noqa: BLE001 — no traceback may escape
            counter_inc("serve.responses.500")
            return 500, {"error": {"type": "InternalError",
                                   "message": str(exc), "context": {}}}
        finally:
            self.latency.record(endpoint, time.perf_counter() - start)

    def _await(self, future) -> dict:
        """Wait out a batched dispatch within the request deadline."""
        budget = self.config.deadline_ms / 1000.0
        try:
            # Small grace beyond the deadline: the worker enforces queue
            # expiry itself and a dispatch in flight is about to land.
            # (concurrent.futures.TimeoutError is not a builtin
            # TimeoutError subclass before 3.11, hence the tuple.)
            return future.result(timeout=budget + 0.1)
        except (_FutureTimeout, TimeoutError) as exc:
            if isinstance(exc, ReproError):
                raise  # DeadlineExceededError set by the worker
            raise DeadlineExceededError(
                "request missed its deadline awaiting dispatch",
                context={"deadline_ms": self.config.deadline_ms},
            ) from None

    def _rate(self, request: RateRequest) -> dict:
        deadline = self.config.deadline_ms / 1000.0
        return self._await(
            self.batchers["rate"].submit(request, deadline_s=deadline))

    def _license(self, request: LicenseRequest) -> dict:
        deadline = self.config.deadline_ms / 1000.0
        return self._await(
            self.batchers["license"].submit(request, deadline_s=deadline))

    def _policy(self, request: PolicyRequest) -> dict:
        deadline = self.config.deadline_ms / 1000.0
        return self._await(
            self.batchers["policy"].submit(request, deadline_s=deadline))

    def _scenario(self, request: ScenarioRequest) -> dict:
        deadline = self.config.deadline_ms / 1000.0
        return self._await(
            self.batchers["scenario"].submit(request, deadline_s=deadline))

    # -- batched dispatcher (worker thread) ---------------------------------

    def _dispatch_plan(self, requests: list) -> list:
        """Serve one drained micro-batch as one fused query plan.

        All four batchers share this dispatcher: the planner compiles
        whatever mix it is handed into fused columnar ops (one
        ``ctp_homogeneous_batch`` per coupling, one controllability
        matrix pass, one tile-bucket regroup per plane) and scatters
        per-request bodies bit-identical to one-at-a-time dispatch.  The
        MicroBatcher already holds the catalog read guard for the whole
        dispatch (the guard is not reentrant), and fans a
        ``BaseException`` result out as that request's own failure — a
        poisoned batch-mate never fails its neighbors.
        """
        return execute_plan(build_plan(requests), caller_holds_guard=True)

    # -- direct (unbatched) handlers ----------------------------------------

    def _machine(self, request: MachineRequest) -> dict:
        return machine_body(request)

    def _review(self, request: ReviewRequest) -> dict:
        return review_body(request)

    def _threshold_at(self, request: ThresholdAtRequest) -> dict:
        return threshold_at_body(request)

    # -- the /batch envelope ------------------------------------------------

    @staticmethod
    def _sub_response(exc: BaseException) -> tuple[int, dict]:
        """Status + body for one failed sub-request — the same mapping
        :meth:`handle` applies, so a slot is byte-identical to issuing
        the sub-request alone."""
        if isinstance(exc, ServiceOverloadedError):
            return 429, error_body(exc)
        if isinstance(exc, DeadlineExceededError):
            return 504, error_body(exc)
        if isinstance(exc, ReproError):
            return 400, error_body(exc)
        return 500, {"error": {"type": "InternalError",
                               "message": str(exc), "context": {}}}

    def _batch(self, payload: object) -> dict:
        """Run a heterogeneous sub-request list as one fused plan.

        The envelope never fails for a sub-request's sake: every slot
        reports its own ``{"status", "body"}`` pair, byte-identical to
        issuing that sub-request alone at the same epoch (parse errors
        included).  Cached slots are answered from the LRU exactly as
        single requests would be; the misses execute as one plan under
        one read-guard acquisition.
        """
        if not isinstance(payload, dict):
            raise ValidationError(
                "/batch body must be a JSON object",
                context={"got": type(payload).__name__, "valid": "object"},
            )
        unknown = sorted(set(payload) - {"requests"})
        if unknown:
            raise ValidationError(
                f"unknown /batch field(s): {', '.join(map(str, unknown))}",
                context={"got": unknown, "valid": ["requests"]},
            )
        items = payload.get("requests")
        if not isinstance(items, list):
            raise ValidationError(
                "/batch requires a 'requests' list",
                context={"got": type(items).__name__, "valid": "list"},
            )
        if len(items) > self.config.queue_limit:
            raise ValidationError(
                "/batch request list exceeds the queue limit",
                context={"got": len(items),
                         "valid": f"<= {self.config.queue_limit}"},
            )
        counter_inc("serve.batch.sub_requests", len(items))
        epoch = current_epoch()
        results: list[dict | None] = [None] * len(items)
        pending: list[tuple[int, tuple, object]] = []
        cache_hits = 0
        for i, item in enumerate(items):
            try:
                if not isinstance(item, dict):
                    raise ValidationError(
                        f"/batch requests[{i}] must be a JSON object",
                        context={"slot": i, "got": type(item).__name__,
                                 "valid": "object"},
                    )
                endpoint = item.get("endpoint")
                if endpoint not in ENDPOINTS:
                    raise ValidationError(
                        f"/batch requests[{i}].endpoint must be one of "
                        f"{', '.join(sorted(ENDPOINTS))}",
                        context={"slot": i, "got": endpoint,
                                 "valid": sorted(ENDPOINTS)},
                    )
                fields = {k: v for k, v in item.items() if k != "endpoint"}
                request = parse_request(endpoint, fields)
            except ReproError as exc:
                results[i] = {"status": 400, "body": error_body(exc)}
                continue
            key = (epoch, *request.cache_key)
            body = self.cache.get(key)
            if body is not MISS:
                cache_hits += 1
                results[i] = {"status": 200, "body": body}
            else:
                pending.append((i, key, request))
        summary = {"queries": 0, "unique_queries": 0, "cse_hits": 0}
        if pending:
            plan = build_plan([request for _, _, request in pending])
            outcomes = execute_plan(plan)
            summary = plan.summary()
            for (i, key, _), outcome in zip(pending, outcomes):
                if isinstance(outcome, BaseException):
                    status, body = self._sub_response(outcome)
                    results[i] = {"status": status, "body": body}
                else:
                    self.cache.put(key, outcome)
                    results[i] = {"status": 200, "body": outcome}
        summary["cache_hits"] = cache_hits
        return {
            "endpoint": "batch",
            "count": len(items),
            "results": results,
            "plan": summary,
        }

    # -- catalog mutation ---------------------------------------------------

    def _catalog_append(self, payload: object) -> dict:
        """Apply one catalog event through the event-sourced mutation
        path.

        Never cached and never batched: ``apply_event`` serializes under
        the catalog write guard, drains in-flight batches, patches the
        columnar stores incrementally, and bumps the epoch (which purges
        this engine's response cache through the invalidation registry).
        Replaying an already-applied event is an explicit no-op
        (``applied: false``), so a client may POST the same event to
        every worker of a pre-fork fleet to converge all processes.
        """
        from repro.catalog import events as catalog_events

        if not isinstance(payload, dict):
            raise ValidationError(
                "catalog/append body must be a JSON object",
                context={"got": type(payload).__name__, "valid": "object"},
            )
        event = catalog_events.parse_event(payload)
        outcome = catalog_events.apply_event(event)
        return {
            "endpoint": "catalog_append",
            **outcome.as_dict(),
            **self._identity(),
        }

    # -- introspection ------------------------------------------------------

    def _identity(self) -> dict:
        """Who is answering: process, worker slot, and snapshot version.

        ``pid`` is read at call time, so an engine constructed before a
        fork reports each worker's own pid.  ``snapshot_manifest_hash``
        is ``None`` for a fresh in-process build; in a fleet, a worker
        whose hash differs from its peers is serving skewed data.
        """
        import os

        from repro.store import active_manifest_hash

        return {
            "pid": os.getpid(),
            "worker_id": self.worker_id,
            "snapshot_manifest_hash": active_manifest_hash(),
        }

    def list_machines(self) -> dict:
        """Read-only catalog listing off the shared machine columns.

        Served straight from :func:`repro.machines.columns
        .machine_columns` (snapshot-installed or in-process build alike)
        and tagged with the catalog epoch in force, so agentic clients
        can correlate a listing with subsequent point queries.
        """
        from repro.machines.columns import machine_columns

        counter_inc("serve.requests.machines")
        cols = machine_columns()
        machines = []
        for k, m in enumerate(cols.machines):
            units = float(cols.units_installed[k])
            machines.append({
                "key": m.key,
                "country": m.country,
                "year": float(cols.intro_years[k]),
                "entry_mtops": float(cols.entry_mtops[k]),
                "max_config_mtops": float(cols.max_config_mtops[k]),
                "reachable_mtops": float(cols.reachable_mtops[k]),
                "field_upgradable": bool(cols.field_upgradable[k]),
                "units_installed": None if math.isnan(units) else units,
                "controllability_index":
                    float(cols.controllability_index[k]),
                "classification":
                    CLASS_BY_CODE[int(cols.class_codes[k])].value,
                "uncontrollable": bool(cols.uncontrollable[k]),
            })
        return {
            "endpoint": "machines",
            "catalog_epoch": current_epoch(),
            "count": len(machines),
            "machines": machines,
            **self._identity(),
        }

    def list_thresholds(self) -> dict:
        """Read-only listing of the threshold-era history in force.

        Reads ``THRESHOLD_HISTORY`` through the policy module at call
        time (an ``amend_threshold`` event swaps it), epoch-tagged like
        :meth:`list_machines`.
        """
        from repro.diffusion import policy as _policy

        counter_inc("serve.requests.thresholds")
        eras = [
            {
                "start_year": era.start_year,
                "threshold_mtops": era.threshold_mtops,
                "label": era.label,
            }
            for era in _policy.THRESHOLD_HISTORY
        ]
        return {
            "endpoint": "thresholds",
            "catalog_epoch": current_epoch(),
            "count": len(eras),
            "eras": eras,
            **self._identity(),
        }

    def healthz(self) -> dict:
        return {
            "status": "ok",
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "endpoints": sorted(ENDPOINTS) + sorted(GET_ENDPOINTS)
            + ["batch", "catalog/append", "healthz", "metrics"],
            "queue_depth": {name: batcher.depth()
                            for name, batcher in self.batchers.items()},
            "config": asdict(self.config),
            **self._identity(),
        }

    def metrics(self) -> dict:
        """The global metrics snapshot plus serving-layer state."""
        from repro.obs.trace import metrics_snapshot
        from repro.tiles import tile_plane_info

        snapshot = metrics_snapshot()
        snapshot["serve"] = {
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "config": asdict(self.config),
            "cache": self.cache.info(),
            "tiles": tile_plane_info(),
            "catalog_epoch": current_epoch(),
            "batchers": {name: batcher.stats()
                         for name, batcher in self.batchers.items()},
            "plan": plan_stats(),
            "latency": self.latency.quantiles(),
            **self._identity(),
        }
        return snapshot


# ---------------------------------------------------------------------------
# HTTP layer
# ---------------------------------------------------------------------------

_MAX_BODY_BYTES = 1_000_000
_POST_PATHS = {f"/{name}": name for name in ENDPOINTS}
_POST_PATHS["/batch"] = "batch"
_POST_PATHS["/catalog/append"] = "catalog_append"
_GET_PATHS = ("/healthz", "/metrics") + tuple(
    f"/{name}" for name in GET_ENDPOINTS)


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests into the engine; JSON in, JSON out."""

    engine: ServiceEngine  # bound per server via a subclass attribute
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass  # metrics replace the default stderr chatter

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        path = self.path.split("?", 1)[0]
        if path == "/healthz":
            self._send(200, self.engine.healthz())
        elif path == "/metrics":
            self._send(200, self.engine.metrics())
        elif path == "/machines":
            self._send(200, self.engine.list_machines())
        elif path == "/thresholds":
            self._send(200, self.engine.list_thresholds())
        elif path in _POST_PATHS:
            self._method_not_allowed("POST")
        else:
            self._not_found(path)

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        path = self.path.split("?", 1)[0]
        endpoint = _POST_PATHS.get(path)
        if endpoint is None:
            # Consume the unread body so the keep-alive stream stays in
            # sync for the next request on this connection.
            self._drain_body()
            if path in _GET_PATHS:
                self._method_not_allowed("GET")
            else:
                self._not_found(path)
            return
        try:
            payload = self._read_json()
        except ReproError as exc:
            self._send(400, error_body(exc))
            return
        status, body = self.engine.handle(endpoint, payload)
        headers = {}
        if status == 429:
            retry = body.get("error", {}).get("context", {}) \
                        .get("retry_after_s", 1)
            headers["Retry-After"] = str(max(1, math.ceil(float(retry))))
        self._send(status, body, headers)

    # -- helpers ------------------------------------------------------------

    def _drain_body(self) -> None:
        """Read and discard an unconsumed request body (keep-alive
        hygiene); oversized bodies force the connection closed instead."""
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            length = 0
        if 0 < length <= _MAX_BODY_BYTES:
            self.rfile.read(length)
        elif length > _MAX_BODY_BYTES:
            self.close_connection = True

    def _read_json(self) -> object:
        length = self.headers.get("Content-Length")
        try:
            length = int(length)
        except (TypeError, ValueError):
            self.close_connection = True
            raise ValidationError(
                "Content-Length header is required",
                context={"got": length, "valid": "integer byte count"},
            ) from None
        if length > _MAX_BODY_BYTES:
            self.close_connection = True
            raise ValidationError(
                "request body too large",
                context={"got": length, "valid": f"<= {_MAX_BODY_BYTES}"},
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except (ValueError, UnicodeDecodeError):
            raise ValidationError(
                "request body is not valid JSON",
                context={"got_bytes": length, "valid": "JSON object"},
            ) from None

    def _not_found(self, path: str) -> None:
        counter_inc("serve.responses.404")
        self._send(404, error_body(ValidationError(
            f"unknown path {path!r}",
            context={"got": path,
                     "valid": sorted(_POST_PATHS) + list(_GET_PATHS)},
        )))

    def _method_not_allowed(self, allowed: str) -> None:
        counter_inc("serve.responses.405")
        self._send(405, error_body(ValidationError(
            f"method not allowed on {self.path}",
            context={"got": self.command, "valid": allowed},
        )), {"Allow": allowed})

    def _send(self, status: int, body: dict,
              headers: dict[str, str] | None = None) -> None:
        data = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        try:
            self.wfile.write(data)
        except BrokenPipeError:
            pass  # client went away mid-response


class ServeServer:
    """An in-process serving stack: engine + threaded HTTP server.

    ``port=0`` binds an ephemeral port (tests);
    :attr:`port`/:attr:`url` report the bound address.  Usable as a
    context manager; :meth:`close` is idempotent and stops both the HTTP
    loop and the batch workers.
    """

    def __init__(self, config: ServeConfig | None = None,
                 worker_id: int | None = None,
                 listen_socket: object | None = None) -> None:
        self.config = config or ServeConfig()
        self.engine = ServiceEngine(self.config, worker_id=worker_id)
        handler = type("_BoundHandler", (_Handler,),
                       {"engine": self.engine})
        if listen_socket is not None:
            # Pre-fork path: adopt an already-bound, already-listening
            # socket (inherited from the parent or SO_REUSEPORT-bound by
            # the worker) instead of binding a fresh one.
            self.httpd = ThreadingHTTPServer(
                (self.config.host, self.config.port), handler,
                bind_and_activate=False)
            self.httpd.socket.close()  # replace the unused auto-socket
            self.httpd.socket = listen_socket  # type: ignore[assignment]
            self.httpd.server_address = listen_socket.getsockname()
        else:
            self.httpd = ThreadingHTTPServer(
                (self.config.host, self.config.port), handler)
        self.httpd.daemon_threads = True
        self._thread: threading.Thread | None = None
        self._closed = False

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def start(self) -> "ServeServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.httpd.serve_forever,
                kwargs={"poll_interval": 0.05},
                daemon=True, name="repro-serve-http")
            self._thread.start()
        return self

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(5.0)
        self.engine.close()

    def __enter__(self) -> "ServeServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.close()


def run_server(config: ServeConfig | None = None) -> str:
    """Run the server until SIGINT/SIGTERM; returns a shutdown message.

    The CLI entry point: prints the listening address eagerly (flushed,
    so a piped CI job sees it before the first request), serves in a
    background thread, and shuts down gracefully — in-flight batches
    drain before the process exits.
    """
    import signal

    server = ServeServer(config)
    stop = threading.Event()

    def _on_signal(signum: int, frame: object) -> None:
        stop.set()

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        previous[signum] = signal.signal(signum, _on_signal)
    try:
        server.start()
        print(f"repro serve listening on {server.url} "
              f"(max_batch={server.config.max_batch}, "
              f"queue_limit={server.config.queue_limit})", flush=True)
        stop.wait()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        server.close()
    return "serve: shut down cleanly"
