"""Process-parallel fan-out driver for embarrassingly parallel workloads.

The paper's observation that a brute-force keysearch partitions "without
reference to the activities of the other processors" names exactly the
workloads this module parallelizes: independent chunks, no communication,
results reassembled in order.  The driver mirrors
:func:`repro.crypto.keysearch.keyspace_partition` — contiguous chunks
covering the work exactly once — and dispatches them over a
``concurrent.futures.ProcessPoolExecutor``.

Design rules, all load-bearing for determinism:

* **Chunking is independent of the worker count.**  A chunk layout is a
  function of the input size (and an explicit ``chunk_size``/``n_chunks``
  knob), never of ``max_workers``, so ``max_workers=1`` and
  ``max_workers=N`` produce bit-identical results.
* **Results are collected in submission order** (futures are resolved in
  the order the chunks were created), not completion order.
* **``max_workers=1`` is a true serial fallback** — the chunks run in
  the calling process with no executor, so the driver works on machines
  where process pools are unavailable and adds nothing to debugging.

Observability: the driver counts ``parallel.chunks_dispatched``,
``parallel.serial_fallback`` and ``parallel.worker_busy_ms`` (summed
in-chunk wall time, measured inside the workers), and records a
``parallel.run_chunks`` span whose ``utilization`` tag is the busy time
over ``workers x wall`` — 1.0 means every worker computed the whole
time.  Counters bumped *inside* worker processes stay in those
processes; only the driver's own counters are visible to the parent.

Worker functions must be module-level (picklable) callables.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from collections.abc import Callable, Sequence

import numpy as np

from repro.obs.errors import ValidationError
from repro.obs.trace import counter_inc, trace

__all__ = [
    "partition_chunks",
    "run_chunks",
    "parallel_map",
    "ParallelKeysearchResult",
    "parallel_keysearch",
    "parallel_bound_sensitivity",
    "sweep_parallel",
    "scenario_worlds_parallel",
]


def partition_chunks(n_items: int, n_chunks: int) -> list[tuple[int, int]]:
    """Split ``n_items`` into at most ``n_chunks`` contiguous ranges.

    Mirrors :func:`repro.crypto.keysearch.keyspace_partition`: the ranges
    cover ``[0, n_items)`` exactly once, sizes differ by at most one, and
    empty ranges are dropped (so fewer than ``n_chunks`` ranges come back
    when there is less work than chunks).
    """
    if n_items < 0:
        raise ValidationError("n_items must be >= 0",
                              context={"got": n_items, "valid": ">= 0"})
    if n_chunks < 1:
        raise ValidationError("n_chunks must be >= 1",
                              context={"got": n_chunks, "valid": ">= 1"})
    base, extra = divmod(n_items, n_chunks)
    ranges = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        ranges.append((start, start + size))
        start += size
    assert start == n_items
    return [r for r in ranges if r[0] < r[1]]


def _timed_chunk(fn: Callable, args: tuple) -> tuple[float, object]:
    """Worker-side wrapper: run one chunk and report its busy time."""
    start = time.perf_counter()
    result = fn(*args)
    return time.perf_counter() - start, result


def run_chunks(
    fn: Callable,
    chunk_args: Sequence[tuple],
    max_workers: int = 1,
) -> list:
    """Run ``fn(*args)`` for every args tuple; results in input order.

    ``fn`` must be a module-level (picklable) callable.  With
    ``max_workers=1`` (or a single chunk) everything runs serially in
    the calling process.
    """
    if max_workers < 1:
        raise ValidationError("max_workers must be >= 1",
                              context={"got": max_workers, "valid": ">= 1"})
    chunk_args = list(chunk_args)
    if not chunk_args:
        return []
    counter_inc("parallel.chunks_dispatched", len(chunk_args))
    workers = min(max_workers, len(chunk_args))
    with trace("parallel.run_chunks", chunks=len(chunk_args),
               workers=workers) as span:
        wall_start = time.perf_counter()
        if workers == 1:
            counter_inc("parallel.serial_fallback")
            timed = [_timed_chunk(fn, args) for args in chunk_args]
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [pool.submit(_timed_chunk, fn, args)
                           for args in chunk_args]
                # Resolved in submission order: deterministic reassembly.
                timed = [f.result() for f in futures]
        wall = time.perf_counter() - wall_start
        busy = sum(elapsed for elapsed, _ in timed)
        counter_inc("parallel.worker_busy_ms", busy * 1e3)
        if span is not None and wall > 0:
            span.tags["utilization"] = round(busy / (wall * workers), 3)
    return [result for _, result in timed]


def _map_chunk(fn: Callable, items: list) -> list:
    return [fn(item) for item in items]


def parallel_map(
    fn: Callable,
    items: Sequence,
    max_workers: int = 1,
    chunk_size: int | None = None,
) -> list:
    """``[fn(x) for x in items]`` with chunked process fan-out.

    ``fn`` must be a module-level (picklable) callable.  The output
    order always matches the input order, whatever the worker count.
    """
    items = list(items)
    if not items:
        return []
    if chunk_size is None:
        ranges = partition_chunks(len(items), max(4 * max_workers, 1))
    else:
        if chunk_size < 1:
            raise ValidationError("chunk_size must be >= 1",
                                  context={"got": chunk_size,
                                           "valid": ">= 1"})
        ranges = [(a, min(a + chunk_size, len(items)))
                  for a in range(0, len(items), chunk_size)]
    chunks = run_chunks(_map_chunk,
                        [(fn, items[a:b]) for a, b in ranges], max_workers)
    return [result for chunk in chunks for result in chunk]


# ---------------------------------------------------------------------------
# Keysearch: the paper's canonical zero-communication workload
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ParallelKeysearchResult:
    """Outcome of an exhaustive parallel keysearch."""

    found_keys: tuple[int, ...]
    keys_tried: int
    chunks: int

    @property
    def found_key(self) -> int | None:
        """The smallest matching key (DES parity-flip equivalents mean
        there may be several), or ``None``."""
        return self.found_keys[0] if self.found_keys else None

    @property
    def succeeded(self) -> bool:
        return bool(self.found_keys)


def _keysearch_chunk(
    plaintext: int, ciphertext: int, base_key: int, search_bits: int,
    start: int, stop: int, batch_size: int,
) -> list[int]:
    """Exhaustively scan offsets ``[start, stop)``; all matches returned."""
    from repro.crypto.des import encrypt_blocks, int_to_bits
    from repro.crypto.keysearch import _candidate_bits

    plain_bits = int_to_bits(plaintext, 64)
    cipher_bits = int_to_bits(ciphertext, 64)
    mask = (1 << search_bits) - 1
    found: list[int] = []
    for s in range(start, stop, batch_size):
        offsets = np.arange(s, min(s + batch_size, stop), dtype=np.int64)
        keys = _candidate_bits(base_key, offsets, search_bits)
        out = encrypt_blocks(plain_bits, keys)
        hits = np.all(out == cipher_bits, axis=-1)
        if hits.any():
            found.extend(int((base_key & ~mask) | int(offset))
                         for offset in offsets[hits])
    return found


def parallel_keysearch(
    plaintext: int,
    ciphertext: int,
    base_key: int = 0,
    search_bits: int = 16,
    max_workers: int = 1,
    n_chunks: int | None = None,
    batch_size: int = 4_096,
) -> ParallelKeysearchResult:
    """Exhaustive brute-force search of the low ``search_bits`` keyspace.

    Unlike :func:`repro.crypto.keysearch.brute_force` (which stops at the
    first hit), every chunk scans its full range — which is what makes
    the result independent of both the worker count and the chunk
    layout: ``found_keys`` lists *all* matching keys in ascending order
    and ``keys_tried`` always equals ``2**search_bits``.
    """
    if not 1 <= search_bits <= 40:
        raise ValidationError(
            "search_bits must be in [1, 40] (demo-scale)",
            context={"got": search_bits, "valid": "[1, 40]"},
        )
    if batch_size < 1:
        raise ValidationError("batch_size must be >= 1",
                              context={"got": batch_size, "valid": ">= 1"})
    total = 1 << search_bits
    if n_chunks is None:
        # Worker-independent default so the whole result object —
        # including the chunk count — is identical for 1 vs N workers.
        n_chunks = 16
    ranges = partition_chunks(total, n_chunks)
    chunk_args = [
        (plaintext, ciphertext, base_key, search_bits, start, stop,
         batch_size)
        for start, stop in ranges
    ]
    with trace("parallel.keysearch", search_bits=search_bits,
               workers=max_workers, chunks=len(ranges)):
        results = run_chunks(_keysearch_chunk, chunk_args, max_workers)
    found = tuple(sorted(key for chunk in results for key in chunk))
    return ParallelKeysearchResult(found_keys=found, keys_tried=total,
                                   chunks=len(ranges))


# ---------------------------------------------------------------------------
# Monte-Carlo sensitivity draws
# ---------------------------------------------------------------------------


def _mc_chunk(year: float, seed: int, n_samples: int, start: int, stop: int,
              concentration: float) -> np.ndarray:
    """One chunk of lower-bound Monte-Carlo draws, seeded by its range."""
    from repro.controllability.index import index_matrix
    from repro.core.sensitivity import _eligible_population, \
        sample_weights_batch

    rng = np.random.default_rng(
        np.random.SeedSequence([seed, n_samples, start, stop]))
    n = stop - start
    weights, low, _high = sample_weights_batch(rng, n, concentration)
    _machines, scores, ratings = _eligible_population(year)
    if ratings.size == 0:
        return np.zeros(n)
    indices = index_matrix(weights, scores)
    uncontrollable = indices < low[:, None]
    return np.where(uncontrollable, ratings[None, :], 0.0).max(axis=1)


def parallel_bound_sensitivity(
    year: float = 1995.5,
    n_samples: int = 200,
    seed: int = 0,
    concentration: float = 60.0,
    max_workers: int = 1,
    chunk_size: int = 64,
):
    """Monte-Carlo the lower bound with chunk-parallel draws.

    Each chunk draws its share of the samples from its own
    ``SeedSequence([seed, n_samples, start, stop])`` stream, so the
    sample vector is a pure function of ``(year, n_samples, seed,
    concentration, chunk_size)`` — **not** of ``max_workers``.  (The
    chunked streams differ from the single-stream draws of
    :func:`repro.core.sensitivity.bound_sensitivity`; both sample the
    same distribution.)
    """
    from repro._util import check_year
    from repro.core.sensitivity import BoundSensitivity

    check_year(year, "year")
    if n_samples < 1:
        raise ValidationError("n_samples must be >= 1",
                              context={"got": n_samples, "valid": ">= 1"})
    if chunk_size < 1:
        raise ValidationError("chunk_size must be >= 1",
                              context={"got": chunk_size, "valid": ">= 1"})
    ranges = [(start, min(start + chunk_size, n_samples))
              for start in range(0, n_samples, chunk_size)]
    chunk_args = [(year, seed, n_samples, start, stop, concentration)
                  for start, stop in ranges]
    with trace("parallel.bound_sensitivity", samples=n_samples,
               workers=max_workers, chunks=len(ranges)):
        chunks = run_chunks(_mc_chunk, chunk_args, max_workers)
    return BoundSensitivity(year=year,
                            samples_mtops=np.concatenate(chunks))


# ---------------------------------------------------------------------------
# Design-space sweep slabs
# ---------------------------------------------------------------------------


def _sweep_slab(machines: tuple, workloads: tuple,
                node_counts: np.ndarray):
    from repro.simulate.sweep import sweep

    return sweep(machines, workloads, node_counts)


def sweep_parallel(
    machines,
    workloads,
    node_counts,
    max_workers: int = 1,
    n_chunks: int | None = None,
):
    """:func:`repro.simulate.sweep.sweep` with the machine axis fanned
    out over worker processes.

    Every grid point is independent of every other, so slabbing the
    machine axis and concatenating preserves bit-exactness: the result
    equals the single-process sweep exactly, for any worker count or
    slab layout.
    """
    from repro.simulate.sweep import SweepResult, sweep, \
        validate_node_counts
    from repro.simulate.architectures import MachineModel
    from repro.simulate.workloads import Workload

    if isinstance(machines, MachineModel):
        machines = (machines,)
    if isinstance(workloads, Workload):
        workloads = (workloads,)
    machines = tuple(machines)
    workloads = tuple(workloads)
    counts = validate_node_counts(node_counts)
    if max_workers == 1:
        return sweep(machines, workloads, counts)
    if not machines:
        raise ValidationError("machines must be non-empty",
                              context={"got": 0, "valid": ">= 1 machine"})
    if n_chunks is None:
        n_chunks = len(machines)
    slabs = partition_chunks(len(machines), n_chunks)
    chunk_args = [(machines[a:b], workloads, counts) for a, b in slabs]
    with trace("parallel.sweep", machines=len(machines),
               workers=max_workers, slabs=len(slabs)):
        parts = run_chunks(_sweep_slab, chunk_args, max_workers)
    return SweepResult(
        machines=machines,
        workloads=workloads,
        node_counts=counts,
        feasible=np.concatenate([p.feasible for p in parts]),
        reason_codes=np.concatenate([p.reason_codes for p in parts]),
        serial_time_s=np.concatenate([p.serial_time_s for p in parts]),
        compute_time_s=np.concatenate([p.compute_time_s for p in parts]),
        comm_time_s=np.concatenate([p.comm_time_s for p in parts]),
        times_s=np.concatenate([p.times_s for p in parts]),
        speedups=np.concatenate([p.speedups for p in parts]),
        efficiencies=np.concatenate([p.efficiencies for p in parts]),
        baseline_nodes=np.concatenate([p.baseline_nodes for p in parts]),
        baseline_times_s=np.concatenate(
            [p.baseline_times_s for p in parts]),
    )


# ---------------------------------------------------------------------------
# Scenario-world tensor slabs
# ---------------------------------------------------------------------------


def scenario_worlds_parallel(
    scenarios,
    thresholds,
    years,
    max_workers: int = 1,
    n_chunks: int | None = None,
):
    """:func:`repro.scenarios.grid.evaluate_scenario_grid` with the
    *scenario* axis fanned out over worker processes.

    Worlds are independent of one another, so slabbing the world axis
    and stacking preserves bit-exactness: the tensor equals the
    single-process build exactly, for any worker count or chunk layout.
    (Thin alias so parallel callers discover the fan-out here alongside
    the other drivers; the chunking itself lives in the grid engine.)
    """
    from repro.scenarios.grid import evaluate_scenario_grid

    return evaluate_scenario_grid(scenarios, thresholds, years,
                                  max_workers=max_workers,
                                  n_chunks=n_chunks)
