"""Figure 1: Range of Computational Power for the F-22 Design.

Regenerates the three curves of the paper's first figure: the minimum
computational requirement, the system actually used, and the maximum
available, from the application's first performance (1991) through the
study date.
"""

from repro._util import year_range
from repro.core.stalactite import f22_stalactite
from repro.reporting.figures import render_series


def build_figure():
    stalactite = f22_stalactite()
    years = year_range(1991.0, 1995.5, 0.5)
    ranges = stalactite.series(years)
    return years, ranges


def test_fig01_f22_range(benchmark, emit):
    years, ranges = benchmark(build_figure)
    text = render_series(
        "Figure 1: Range of computational power for the F-22 design (Mtops)",
        years,
        {
            "minimum": [r.minimum_mtops for r in ranges],
            "actual": [r.actual_mtops for r in ranges],
            "max available": [r.maximum_available_mtops for r in ranges],
        },
    )
    emit(text)
    first, last = ranges[0], ranges[-1]
    # The F-22 was designed on the 958-Mtops Y-MP/2, near but not at the
    # 1991 maximum; the envelope orders min <= actual <= max throughout.
    assert first.actual_mtops >= 900.0
    for r in ranges:
        assert r.minimum_mtops <= r.actual_mtops <= r.maximum_available_mtops
    assert last.maximum_available_mtops > first.maximum_available_mtops
