"""The policy-grid engine's contract: bit-parity with the scalar path.

``evaluate_policy_grid`` promises *equality*, not tolerance: every cell
of every array, and every reconstructed ``PolicyEffectiveness``
(membership tuples included), must equal what ``evaluate_policy`` returns
for that (threshold, year) — including the knife-edge where a candidate
threshold lands exactly on the frontier.  The same standard applies to
the batched acquisition Monte-Carlo (per-draw RNG parity under a shared
seed), batched license decisions, the threshold-history series, and the
served ``/policy`` endpoint (16 threads through the micro-batcher ==
a sequential ``max_batch=1`` engine).
"""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diffusion.acquisition import (
    acquisition_premium,
    acquisition_premium_batch,
    clear_acquisition_caches,
    simulate_acquisitions,
    simulate_acquisitions_batch,
)
from repro.diffusion.policy import (
    ExportControlPolicy,
    THRESHOLD_HISTORY,
    evaluate_policy,
    threshold_at,
)
from repro.diffusion.policy_grid import (
    evaluate_policy_grid,
    license_decision_batch,
    threshold_at_series,
)
from repro.machines.catalog import COMMERCIAL_SYSTEMS
from repro.machines.columns import (
    clear_machine_columns,
    machine_columns,
    machine_columns_info,
)
from repro.market.installed import (
    clear_installed_index,
    installed_units_above,
    installed_units_above_batch,
)
from repro.obs.errors import ThresholdInfeasibleError, ValidationError
from repro.serve.client import ServeClient
from repro.serve.server import ServeConfig, ServeServer, ServiceEngine

# A dense lattice crossing every threshold era and the frontier's moving
# range, plus values far below/above everything in the catalog.
DENSE_THRESHOLDS = [10.0, 100.0, 160.0, 195.0, 500.0, 1500.0, 2000.0,
                    4087.5, 7000.0, 12500.0, 50_000.0, 500_000.0]
DENSE_YEARS = [1987.0, 1989.5, 1992.0, 1994.1, 1995.5, 1997.0, 1999.0]


# ---------------------------------------------------------------------------
# grid vs scalar
# ---------------------------------------------------------------------------

class TestGridParity:
    def test_dense_lattice_matches_scalar_exactly(self):
        grid = evaluate_policy_grid(DENSE_THRESHOLDS, DENSE_YEARS)
        assert grid.shape == (len(DENSE_THRESHOLDS), len(DENSE_YEARS))
        for i, threshold in enumerate(DENSE_THRESHOLDS):
            for j, year in enumerate(DENSE_YEARS):
                expected = evaluate_policy(threshold, year)
                # Full-dataclass equality: counts, burden, frontier, AND
                # the exact membership tuples.
                assert grid.result_at(i, j) == expected
                assert grid.frontier_mtops[j] == expected.frontier_mtops
                assert grid.protected_counts[i, j] == len(
                    expected.protected_applications)
                assert grid.illusory_counts[i, j] == len(
                    expected.illusory_applications)
                assert grid.burden_units[i, j] == expected.burden_units
                assert grid.uncontrollable_counts[i, j] == len(
                    expected.uncontrollable_covered_systems)
                assert bool(grid.credible[i, j]) == expected.credible

    def test_threshold_exactly_on_frontier_boundary(self):
        """threshold == frontier is the knife-edge: >= on one side of the
        protected test, < on the burden test.  Pin it exactly."""
        year = 1995.5
        grid_probe = evaluate_policy_grid([1.0], [year])
        frontier = float(grid_probe.frontier_mtops[0])
        grid = evaluate_policy_grid(
            [np.nextafter(frontier, 0.0), frontier,
             np.nextafter(frontier, np.inf)], [year])
        for i, threshold in enumerate(grid.thresholds):
            assert grid.result_at(i, 0) == evaluate_policy(
                float(threshold), year)
        # On-frontier is credible and carries zero illusory burden.
        assert bool(grid.credible[1, 0])
        assert grid.burden_units[1, 0] == 0.0
        assert not bool(grid.credible[0, 0])

    def test_empty_and_singleton_grids(self):
        empty = evaluate_policy_grid([], [])
        assert empty.shape == (0, 0)
        assert empty.burden_units.shape == (0, 0)

        one = evaluate_policy_grid([2000.0], [1995.5])
        assert one.shape == (1, 1)
        assert one.result_at(0, 0) == evaluate_policy(2000.0, 1995.5)

    def test_slabbed_parallel_grid_identical_to_serial(self):
        thresholds = np.geomspace(10.0, 100_000.0, 23)
        years = [1990.0, 1995.5, 1998.0]
        serial = evaluate_policy_grid(thresholds, years)
        parallel = evaluate_policy_grid(thresholds, years, max_workers=4)
        for name in ("frontier_mtops", "protected_counts",
                     "illusory_counts", "burden_units",
                     "uncontrollable_counts", "credible"):
            assert np.array_equal(getattr(serial, name),
                                  getattr(parallel, name)), name

    def test_arrays_are_frozen(self):
        grid = evaluate_policy_grid([2000.0], [1995.5])
        with pytest.raises(ValueError):
            grid.burden_units[0, 0] = 1.0

    def test_rejects_bad_axes(self):
        with pytest.raises(ValidationError):
            evaluate_policy_grid([-5.0], [1995.5])
        with pytest.raises(ValidationError):
            evaluate_policy_grid([2000.0], [1890.0])


@settings(max_examples=30, deadline=None)
@given(
    year=st.floats(min_value=1986.0, max_value=1999.5),
    thresholds=st.lists(st.floats(min_value=1.0, max_value=1e6),
                        min_size=2, max_size=8),
)
def test_credibility_monotone_in_threshold(year, thresholds):
    """At a fixed date, raising the candidate threshold can only move a
    policy toward credibility: credible = (threshold >= frontier) and the
    frontier doesn't depend on the threshold."""
    axis = sorted(set(thresholds))
    grid = evaluate_policy_grid(axis, [year])
    credible = grid.credible[:, 0]
    assert np.array_equal(credible, np.sort(credible))  # False... then True
    for i, threshold in enumerate(axis):
        assert bool(credible[i]) == evaluate_policy(threshold, year).credible


# ---------------------------------------------------------------------------
# threshold series + installed-base batch
# ---------------------------------------------------------------------------

class TestSeriesAndInstalled:
    def test_threshold_series_matches_scalar(self):
        years = np.arange(1984.5, 1999.9, 0.37)
        series = threshold_at_series(years)
        assert series.tolist() == [threshold_at(float(y)) for y in years]

    def test_threshold_series_hits_every_era_start(self):
        starts = [era.start_year for era in THRESHOLD_HISTORY]
        series = threshold_at_series(starts)
        assert series.tolist() == [era.threshold_mtops
                                   for era in THRESHOLD_HISTORY]

    def test_threshold_before_history_raises(self):
        with pytest.raises(ThresholdInfeasibleError):
            threshold_at(1984.0)
        with pytest.raises(ThresholdInfeasibleError):
            threshold_at_series([1995.5, 1984.0])

    def test_installed_batch_matches_scalar(self):
        year = 1995.5
        thresholds = [0.5, 100.0, 195.0, 1500.0, 4087.5, 1e7]
        batch = installed_units_above_batch(thresholds, year)
        assert batch.tolist() == [installed_units_above(t, year)
                                  for t in thresholds]
        clear_installed_index()
        assert installed_units_above_batch(thresholds, year).tolist() \
            == batch.tolist()


# ---------------------------------------------------------------------------
# license decisions
# ---------------------------------------------------------------------------

class TestLicenseBatch:
    def test_batch_matches_policy_object(self):
        machines = sorted(COMMERCIAL_SYSTEMS, key=lambda m: m.key)[:10]
        destinations = ["India", "Germany", "China", "Russia", "Iraq"] * 2
        for threshold in (195.0, 2000.0, 7000.0):
            policy = ExportControlPolicy(threshold)
            expected = [policy.license_decision(m, d)
                        for m, d in zip(machines, destinations)]
            got = license_decision_batch(machines, destinations, threshold)
            assert got == expected

    def test_batch_rejects_mismatched_lengths(self):
        machines = [COMMERCIAL_SYSTEMS[0]]
        with pytest.raises(ValidationError):
            license_decision_batch(machines, ["India", "China"], 2000.0)


# ---------------------------------------------------------------------------
# acquisition Monte-Carlo
# ---------------------------------------------------------------------------

class TestAcquisitionBatch:
    def test_premium_batch_matches_scalar(self):
        targets = [1.0, 50.0, 500.0, 4000.0, 25_000.0, 5e6]
        for year in (1988.0, 1993.0, 1997.5):
            batch = acquisition_premium_batch(targets, year)
            assert batch == [acquisition_premium(t, year) for t in targets]

    def test_simulation_batch_matches_scalar_per_draw(self):
        """One shared RNG matrix vs one private stream per target: the
        scalar path seeds per (seed, n_attempts), so both consume the
        identical stream and every statistic matches bit for bit."""
        targets = [10.0, 900.0, 20_000.0, 1e7]
        stats = simulate_acquisitions_batch(targets, 1995.5,
                                            n_attempts=200, seed=7)
        for target, got in zip(targets, stats):
            assert got == simulate_acquisitions(target, 1995.5,
                                                n_attempts=200, seed=7)

    def test_simulation_batch_rejects_bad_attempts(self):
        with pytest.raises(ValidationError):
            simulate_acquisitions_batch([100.0], 1995.5, n_attempts=0)

    def test_market_cache_survives_clearing(self):
        baseline = acquisition_premium_batch([500.0], 1995.5)
        clear_acquisition_caches()
        assert acquisition_premium_batch([500.0], 1995.5) == baseline


# ---------------------------------------------------------------------------
# columnar store
# ---------------------------------------------------------------------------

class TestMachineColumns:
    def test_columns_match_catalog(self):
        cols = machine_columns()
        assert cols.size == len(COMMERCIAL_SYSTEMS)
        for k, machine in enumerate(cols.machines):
            assert cols.intro_years[k] == machine.year
            assert cols.entry_mtops[k] == machine.ctp_mtops
            assert cols.index_by_key[machine.key] == k

    def test_cache_hooks_rebuild_identically(self):
        first = machine_columns()
        hits_before = machine_columns_info()["hits"]
        assert machine_columns() is first  # memoized
        assert machine_columns_info()["hits"] == hits_before + 1
        clear_machine_columns()
        rebuilt = machine_columns()
        assert rebuilt is not first
        assert np.array_equal(rebuilt.reachable_mtops, first.reachable_mtops)


# ---------------------------------------------------------------------------
# served /policy endpoint
# ---------------------------------------------------------------------------

def _policy_payloads() -> list[dict]:
    return [{"threshold_mtops": float(t), "year": y}
            for t in (100.0, 500.0, 2000.0, 10_000.0)
            for y in (1989.0, 1992.0, 1995.5, 1998.0)]


class TestPolicyEndpoint:
    def test_sixteen_threads_match_sequential_engine(self):
        """16 threads through the live micro-batching server must agree
        bit-for-bit with a sequential max_batch=1 engine, and the batcher
        must actually coalesce (some batch bigger than one)."""
        work = _policy_payloads() * 2

        reference = ServiceEngine(ServeConfig(max_batch=1, cache_size=0))
        try:
            expected = [reference.handle("policy", p) for p in work]
        finally:
            reference.close()
        assert all(status == 200 for status, _ in expected)

        config = ServeConfig(port=0, max_batch=64, cache_size=0,
                             max_wait_ms=2.0)
        server = ServeServer(config).start()
        client = ServeClient(port=server.port)
        try:
            with ThreadPoolExecutor(max_workers=16) as pool:
                got = list(pool.map(
                    lambda p: client.request("POST", "/policy", p), work))
            histogram = server.engine.metrics()["serve"]["batchers"][
                "policy"]["batch_size_histogram"]
        finally:
            client.close()
            server.close()

        for (status, body), response in zip(expected, got):
            assert response.status == 200
            # JSON round-trips floats exactly: bit-identity.
            assert response.body == json.loads(json.dumps(body))
        assert any(int(size) > 1 for size in histogram), histogram

    def test_default_threshold_resolves_to_in_force(self):
        engine = ServiceEngine(ServeConfig())
        try:
            status, body = engine.handle("policy", {"year": 1995.5})
        finally:
            engine.close()
        assert status == 200
        assert body["threshold_mtops"] == threshold_at(1995.5)

    def test_malformed_payloads_return_taxonomy_errors(self):
        engine = ServiceEngine(ServeConfig())
        try:
            for payload in ({"threshold_mtops": -1.0},
                            {"year": "next year"},
                            {"thresold_mtops": 100.0}):
                status, body = engine.handle("policy", payload)
                assert status == 400
                assert body["error"]["type"] == "ValidationError"
        finally:
            engine.close()
