#!/usr/bin/env python
"""What happened next: the framework vs the actual policy record.

The study fed the 1995 interagency review.  This example replays the
framework against the thresholds the U.S. actually adopted afterwards
(the January 1996 tiered reform, the 1999 and 2000 uplifts), and shows
the safeguard economics that pushed restricted buyers toward indigenous
programs.

Run:  python examples/policy_epilogue.py
"""

from repro._util import year_range
from repro.core.epilogue import (
    EPILOGUE_THRESHOLDS,
    compare_with_history,
    staleness_series,
)
from repro.core.threshold import ThresholdPolicy
from repro.diffusion.policy import SafeguardTier
from repro.diffusion.safeguards import indigenous_incentive, plan_for_tier
from repro.reporting.figures import render_log_chart
from repro.reporting.tables import render_table


def main() -> None:
    print(render_table(
        ["effective", "civil (Mtops)", "military (Mtops)", "regime"],
        [[f"{e.start_year:.1f}", e.civil_mtops, e.military_mtops, e.label]
         for e in EPILOGUE_THRESHOLDS],
        title="The actual tier-3 threshold record (reconstructed)",
    ))

    years = [1995.5, 1996.5, 1997.5, 1998.5, 1999.8]
    comparisons = compare_with_history(years, ThresholdPolicy.ECONOMIC)
    print()
    print(render_table(
        ["year", "framework recommends", "actual civil", "actual military",
         "verdict"],
        [[f"{c.year:.1f}", round(c.recommended_mtops),
          round(c.actual_civil_mtops), round(c.actual_military_mtops),
          ("rec. within adopted pair"
           if c.recommendation_within_actual_pair
           else ("actual regime STALE" if c.actual_military_stale
                 else "actual regime leads"))]
         for c in comparisons],
        title="Framework vs history",
    ))

    grid = year_range(1995.0, 1999.9, 0.25)
    sawtooth = staleness_series(grid)
    print()
    print(render_log_chart(
        "Staleness sawtooth: frontier / actual military threshold "
        "(1.0 = current)",
        grid,
        {"staleness": [f for _, f in sawtooth]},
        height=10,
    ))
    print("\nAnnual reviews (the paper's recommendation) would have "
          "flattened this sawtooth;\nthe actual cadence let the regime go "
          "stale twice in four years.\n")

    print(render_table(
        ["tier", "annual cost (% of price)", "misuse detection",
         "usability retained", "indigenous pull (vs 10% domestic option)"],
        [[t.value,
          f"{plan_for_tier(t).annual_cost_fraction:.0%}",
          f"{plan_for_tier(t).detection_probability:.0%}",
          f"{plan_for_tier(t).usability_fraction:.0%}",
          f"{indigenous_incentive(t, 0.10):.0%}"]
         for t in (SafeguardTier.MAJOR_ALLY, SafeguardTier.SAFEGUARDS_PLAN,
                   SafeguardTier.GOVERNMENT_CERTIFICATION)],
        title="Safeguard economics (the Indian X-MP lesson)",
    ))
    print("\nHeavy safeguards protect the export and simultaneously make a "
          "weaker domestic\nmachine the rational choice — which is how "
          "India ended up building Params.")


if __name__ == "__main__":
    main()
