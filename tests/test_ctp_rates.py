"""Unit tests for effective rates and theoretical performance."""

import pytest

from repro.ctp.elements import ComputingElement
from repro.ctp.rates import effective_rate, rate_from_timings, theoretical_performance


def _ce(clock=100.0, word=64.0, fp=1.0, integer=1.0, concurrent=False):
    return ComputingElement("t", clock_mhz=clock, word_bits=word,
                            fp_ops_per_cycle=fp, int_ops_per_cycle=integer,
                            concurrent_int_fp=concurrent)


class TestEffectiveRate:
    def test_max_of_units_when_not_concurrent(self):
        assert effective_rate(_ce(fp=2.0, integer=1.0)) == pytest.approx(200.0)
        assert effective_rate(_ce(fp=0.5, integer=1.0)) == pytest.approx(100.0)

    def test_sum_when_concurrent(self):
        assert effective_rate(_ce(fp=2.0, integer=1.0, concurrent=True)) \
            == pytest.approx(300.0)

    def test_scales_with_clock(self):
        slow = effective_rate(_ce(clock=50.0))
        fast = effective_rate(_ce(clock=100.0))
        assert fast == pytest.approx(2.0 * slow)

    def test_fp_less_element_uses_integer_rate(self):
        assert effective_rate(_ce(fp=0.0, integer=2.0)) == pytest.approx(200.0)


class TestRateFromTimings:
    def test_single_op(self):
        # 1 us per op -> 1 Mops.
        assert rate_from_timings({"fp_add": 1.0}) == pytest.approx(1.0)

    def test_fastest_governs(self):
        assert rate_from_timings({"a": 1.0, "b": 0.5}) == pytest.approx(2.0)

    def test_concurrent_sums(self):
        assert rate_from_timings({"a": 1.0, "b": 0.5}, concurrent=True) \
            == pytest.approx(3.0)

    def test_vax_780_anchor(self):
        # ~1 MIPS machine: 1 us per instruction.
        rate = rate_from_timings({"fixed": 0.83})
        assert rate == pytest.approx(1.2, rel=0.01)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            rate_from_timings({})

    def test_rejects_nonpositive_time(self):
        with pytest.raises(ValueError):
            rate_from_timings({"a": 0.0})


class TestTheoreticalPerformance:
    def test_64_bit_equals_rate(self):
        ce = _ce(word=64.0)
        assert theoretical_performance(ce) == pytest.approx(effective_rate(ce))

    def test_32_bit_discounted(self):
        ce64 = _ce(word=64.0)
        ce32 = _ce(word=32.0)
        assert theoretical_performance(ce32) == pytest.approx(
            theoretical_performance(ce64) * 2.0 / 3.0
        )

    def test_alpha_21064_anchor(self):
        # 150 MHz, 1 fp + 1 int concurrent, 64-bit -> 300 Mtops.
        ce = _ce(clock=150.0, fp=1.0, integer=1.0, concurrent=True)
        assert theoretical_performance(ce) == pytest.approx(300.0)
