"""Composite controllability index and Table 4 classifications.

The index is a weighted average of the five product-attribute scores.
Classification thresholds are calibrated so the reconstruction reproduces
Chapter 3's verdicts: Cray vector machines and the big MPPs classify
CONTROLLABLE; the Cray CS6400 and the SGI Challenge/PowerChallenge series —
"the most powerful uncontrollable systems available in mid-1995" — classify
UNCONTROLLABLE, along with volume workstations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro._util import check_fraction
from repro.controllability.factors import FactorScores
from repro.machines.spec import MachineSpec

__all__ = [
    "Classification",
    "ControllabilityWeights",
    "DEFAULT_WEIGHTS",
    "ControllabilityAssessment",
    "assess",
    "classification_table",
]


class Classification(enum.Enum):
    """Three-way controllability verdict."""

    CONTROLLABLE = "controllable"
    MARGINAL = "marginal"
    UNCONTROLLABLE = "uncontrollable"


@dataclass(frozen=True)
class ControllabilityWeights:
    """Relative weight of each factor in the composite index.

    Weights must sum to 1.  The installed base carries the most weight —
    "at some point it becomes economically infeasible for companies to
    monitor and verify this information" — followed equally by footprint,
    channel structure, and upgrade headroom.
    """

    size: float = 0.20
    units: float = 0.25
    channel: float = 0.20
    price: float = 0.15
    scalability: float = 0.20
    #: Index below which a product is UNCONTROLLABLE.
    uncontrollable_below: float = 0.50
    #: Index at or above which a product is CONTROLLABLE.
    controllable_at: float = 0.70

    def __post_init__(self) -> None:
        total = self.size + self.units + self.channel + self.price + self.scalability
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"factor weights must sum to 1, got {total}")
        check_fraction(self.uncontrollable_below, "uncontrollable_below")
        check_fraction(self.controllable_at, "controllable_at")
        if self.uncontrollable_below >= self.controllable_at:
            raise ValueError("uncontrollable_below must be < controllable_at")


DEFAULT_WEIGHTS = ControllabilityWeights()


@dataclass(frozen=True)
class ControllabilityAssessment:
    """Result of assessing one machine."""

    machine: MachineSpec
    scores: FactorScores
    index: float
    classification: Classification

    @property
    def is_uncontrollable(self) -> bool:
        return self.classification is Classification.UNCONTROLLABLE


def assess(
    machine: MachineSpec,
    weights: ControllabilityWeights = DEFAULT_WEIGHTS,
) -> ControllabilityAssessment:
    """Score, combine, and classify one machine."""
    scores = FactorScores.of(machine)
    index = (
        weights.size * scores.size
        + weights.units * scores.units
        + weights.channel * scores.channel
        + weights.price * scores.price
        + weights.scalability * scores.scalability
    )
    if index < weights.uncontrollable_below:
        cls = Classification.UNCONTROLLABLE
    elif index < weights.controllable_at:
        cls = Classification.MARGINAL
    else:
        cls = Classification.CONTROLLABLE
    return ControllabilityAssessment(
        machine=machine, scores=scores, index=float(index), classification=cls
    )


#: The systems Chapter 3's Table 4 discusses, by catalog key.
TABLE4_SYSTEMS: tuple[str, ...] = (
    "Cray C916",
    "Cray T3D (512)",
    "Intel Paragon XP/S (150)",
    "Thinking Machines CM-5 (128)",
    "IBM SP2 (16)",
    "Convex Exemplar SPP1000 (16)",
    "Cray CS6400 (64)",
    "SGI Challenge XL (36)",
    "SGI PowerChallenge (4)",
    "DEC AlphaServer 8400 (12)",
    "Sun SPARCstation 10",
)


def classification_table(
    weights: ControllabilityWeights = DEFAULT_WEIGHTS,
) -> list[ControllabilityAssessment]:
    """Assess the Table 4 population (most → least controllable)."""
    from repro.machines.catalog import find_machine

    rows = [assess(find_machine(key), weights) for key in TABLE4_SYSTEMS]
    return sorted(rows, key=lambda a: -a.index)
