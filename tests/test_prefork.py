"""The pre-forked fleet contract: one port, N workers, same answers.

Covers both sharding modes (``SO_REUSEPORT`` and the inherited-socket
fallback), the control-plane fan-out (fleet ``healthz``/``metrics``
with per-worker identity and snapshot-skew detection), graceful
SIGTERM-style shutdown with exit code 0 from every worker, and the
:class:`ServeClient` stale keep-alive retry semantics.

Fork hygiene: every fleet here uses ``port=0`` and exactly 2 workers,
and is closed in a ``finally``/fixture teardown so no child outlives
its test.
"""

from __future__ import annotations

import json
import os
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.obs.errors import ValidationError
from repro.serve import (
    PreforkServer,
    ServeClient,
    ServeConfig,
    ServeServer,
    reuseport_available,
)
from repro.serve.client import STALE_CONNECTION_ERRORS
from repro.store import build_snapshot, clear_store_caches, load_snapshot


def _fleet(n_workers: int = 2, **overrides) -> PreforkServer:
    config = ServeConfig(**{"port": 0, "drain_timeout": 2.0, **overrides})
    return PreforkServer(config, n_workers=n_workers).start(
        ready_timeout=30.0)


def _fresh_get(port: int, path: str) -> dict:
    """One GET on its own connection (so the kernel picks a worker)."""
    client = ServeClient(port=port)
    try:
        return client.request("GET", path).require_ok()
    finally:
        client.close()


def _probe_payloads() -> list[tuple[str, dict]]:
    couplings = ("shared", "distributed", "cluster")
    return [
        ("rate", {"clock_mhz": 50.0 + 11.0 * i, "word_bits": 64,
                  "processors": (1, 4, 17, 64)[i % 4],
                  "coupling": couplings[i % 3], "year": 1995.5})
        for i in range(8)
    ] + [
        ("rate", {"clock_mhz": 150.0, "coupling": "single"}),
    ] + [
        ("policy", {"threshold_mtops": t, "year": y})
        for t in (195.0, 2000.0) for y in (1992.0, 1995.5)
    ]


class TestFleet:
    @pytest.fixture(scope="class")
    def fleet(self):
        server = _fleet()
        yield server
        server.close()

    def test_identity_fields_in_healthz(self, fleet):
        body = _fresh_get(fleet.port, "/healthz")
        assert body["status"] == "ok"
        assert body["pid"] > 0
        assert body["worker_id"] in (0, 1)
        assert "snapshot_manifest_hash" in body

    def test_requests_distribute_across_workers(self, fleet):
        pids = {_fresh_get(fleet.port, "/healthz")["pid"]
                for _ in range(24)}
        assert len(pids) == 2
        assert os.getpid() not in pids

    def test_rate_served_through_shared_port(self, fleet):
        client = ServeClient(port=fleet.port)
        try:
            body = client.rate(clock_mhz=150.0,
                               processors=16).require_ok()
        finally:
            client.close()
        assert body["ctp_mtops"] > 0

    def test_fleet_healthz_rollup(self, fleet):
        report = fleet.healthz(timeout=5.0)
        assert report["status"] == "ok"
        assert report["n_live"] == 2
        assert {row["healthz"]["worker_id"]
                for row in report["workers"]} == {0, 1}
        assert {row["healthz"]["pid"] for row in report["workers"]} == {
            row["pid"] for row in report["workers"]}

    def test_fleet_metrics_rollup(self, fleet):
        client = ServeClient(port=fleet.port)
        try:
            for _ in range(4):
                client.rate(clock_mhz=100.0, processors=4).require_ok()
        finally:
            client.close()
        report = fleet.metrics(timeout=5.0)
        assert report["snapshot_skew"] is False
        assert report["requests_total"] >= 4
        assert set(report["workers"]) == {"0", "1"}

    def test_fleet_plan_stats_rollup(self, fleet):
        """``serve.plan`` counters sum across the fleet: a /batch with
        duplicate sub-requests must surface plans and cse_hits in the
        parent roll-up no matter which worker served it."""
        client = ServeClient(port=fleet.port)
        try:
            # Params no other test issues: a prior test's response in
            # the worker's LRU would turn these slots into cache hits
            # and zero the plan's cse_hits.
            body = client.batch([
                {"endpoint": "rate", "clock_mhz": 151.0, "processors": 8},
                {"endpoint": "rate", "clock_mhz": 151.0, "processors": 8},
                {"endpoint": "threshold_at", "year": 1993.25},
            ]).require_ok()
        finally:
            client.close()
        assert body["plan"]["cse_hits"] == 1
        report = fleet.metrics(timeout=5.0)
        plan = report["plan"]
        assert set(plan) == {"plans", "ops_fused", "cse_hits", "reuse_hits"}
        assert plan["plans"] >= 1
        assert plan["cse_hits"] >= 1


class TestParity:
    def test_fleet_bodies_identical_to_single_process(self):
        work = _probe_payloads()
        single = ServeServer(ServeConfig(port=0, cache_size=0)).start()
        try:
            client = ServeClient(port=single.port)
            expected = [client.request("POST", f"/{endpoint}",
                                       payload).require_ok()
                        for endpoint, payload in work]
            client.close()
        finally:
            single.close()

        fleet = _fleet(cache_size=0)
        try:
            client = ServeClient(port=fleet.port)
            got = [client.request("POST", f"/{endpoint}",
                                  payload).require_ok()
                   for endpoint, payload in work]
            client.close()
        finally:
            fleet.close()
        # Compute bodies carry no per-process identity, so bit identity
        # holds across the process models.
        assert json.dumps(expected, sort_keys=True) == json.dumps(
            got, sort_keys=True)


class TestShutdown:
    def test_close_drains_to_exit_zero(self):
        fleet = _fleet()
        pids = [worker.pid for worker in fleet.workers]
        fleet.close()
        assert fleet.exit_codes() == {0: 0, 1: 0}
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)

    def test_close_is_idempotent(self):
        fleet = _fleet()
        fleet.close()
        fleet.close()
        assert fleet.exit_codes() == {0: 0, 1: 0}

    def test_context_manager_closes(self):
        config = ServeConfig(port=0, drain_timeout=2.0)
        with PreforkServer(config, n_workers=2) as fleet:
            assert _fresh_get(fleet.port, "/healthz")["status"] == "ok"
        assert fleet.exit_codes() == {0: 0, 1: 0}


class TestInheritedMode:
    def test_fallback_serves_and_exits_clean(self, monkeypatch):
        monkeypatch.setattr("repro.serve.prefork.reuseport_available",
                            lambda: False)
        fleet = _fleet()
        try:
            assert fleet.mode == "inherited"
            pids = {_fresh_get(fleet.port, "/healthz")["pid"]
                    for _ in range(24)}
            assert len(pids) == 2
        finally:
            fleet.close()
        assert fleet.exit_codes() == {0: 0, 1: 0}


class TestSnapshotIdentity:
    def test_workers_report_parent_snapshot_hash(self, tmp_path):
        info = build_snapshot(tmp_path / "snapshot")
        try:
            load_snapshot(tmp_path / "snapshot")
            fleet = _fleet()
            try:
                body = _fresh_get(fleet.port, "/healthz")
                assert (body["snapshot_manifest_hash"]
                        == info.manifest_hash)
                assert fleet.metrics()["snapshot_skew"] is False
            finally:
                fleet.close()
        finally:
            clear_store_caches()


class TestValidation:
    def test_zero_workers_rejected(self):
        with pytest.raises(ValidationError):
            PreforkServer(ServeConfig(port=0), n_workers=0)

    def test_negative_drain_timeout_rejected(self):
        with pytest.raises(ValidationError):
            ServeConfig(drain_timeout=-0.5)

    def test_reuseport_detection_matches_platform(self):
        assert reuseport_available() == hasattr(socket, "SO_REUSEPORT")


# ---------------------------------------------------------------------------
# ServeClient stale keep-alive retry
# ---------------------------------------------------------------------------


class _YankedKeepAliveHandler(BaseHTTPRequestHandler):
    """Promises HTTP/1.1 keep-alive, then closes after every response —
    the exact server behavior that strands a pooled client connection."""

    protocol_version = "HTTP/1.1"

    def do_GET(self):  # noqa: N802 — BaseHTTPRequestHandler API
        body = json.dumps({"n": self.server.hits}).encode("utf-8")
        self.server.hits += 1
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        self.close_connection = True

    def log_message(self, *args):  # silence test output
        pass


class TestClientStaleRetry:
    @pytest.fixture()
    def yanking_server(self):
        httpd = ThreadingHTTPServer(("127.0.0.1", 0),
                                    _YankedKeepAliveHandler)
        httpd.hits = 0
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        yield httpd
        httpd.shutdown()
        httpd.server_close()
        thread.join(timeout=5)

    def test_stale_pooled_connection_retried_once(self, yanking_server):
        client = ServeClient(port=yanking_server.server_address[1])
        try:
            first = client.request("GET", "/probe")
            assert first.ok and first.body == {"n": 0}
            assert client.stale_retries == 0
            # The server closed the pooled connection after responding;
            # the next request hits the corpse, then retries fresh.
            second = client.request("GET", "/probe")
            assert second.ok and second.body == {"n": 1}
            assert client.stale_retries == 1
            third = client.request("GET", "/probe")
            assert third.ok and third.body == {"n": 2}
            assert client.stale_retries == 2
        finally:
            client.close()

    def test_fresh_connection_refusal_raises_immediately(self):
        # A bound-but-never-listening socket refuses connections
        # deterministically without racing other port users.
        placeholder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        placeholder.bind(("127.0.0.1", 0))
        port = placeholder.getsockname()[1]
        client = ServeClient(port=port, timeout=2.0)
        try:
            with pytest.raises(ConnectionError):
                client.request("GET", "/probe")
            assert client.stale_retries == 0
        finally:
            client.close()
            placeholder.close()

    def test_fresh_connection_disconnect_not_retried(self):
        # Accepts, then slams the door before any response: the same
        # exception type as a stale pooled connection, but on a
        # never-used connection — must raise, not double-send.
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        accepted = []

        def _slam():
            conn, _ = listener.accept()
            accepted.append(True)
            conn.close()

        thread = threading.Thread(target=_slam, daemon=True)
        thread.start()
        client = ServeClient(port=listener.getsockname()[1], timeout=2.0)
        try:
            with pytest.raises(STALE_CONNECTION_ERRORS):
                client.request("GET", "/probe")
        finally:
            client.close()
            listener.close()
            thread.join(timeout=5)
        assert accepted == [True]
        assert client.stale_retries == 0
