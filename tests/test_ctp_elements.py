"""Unit tests for the CTP word-length factor and computing elements."""

import pytest

from repro.ctp.elements import ComputingElement, word_length_factor


class TestWordLengthFactor:
    def test_64_bit_is_unity(self):
        assert word_length_factor(64) == pytest.approx(1.0)

    def test_32_bit(self):
        assert word_length_factor(32) == pytest.approx(2.0 / 3.0)

    def test_16_bit(self):
        assert word_length_factor(16) == pytest.approx(0.5)

    def test_8_bit(self):
        assert word_length_factor(8) == pytest.approx(5.0 / 12.0)

    def test_128_bit_extends(self):
        assert word_length_factor(128) == pytest.approx(1.0 / 3.0 + 128 / 96)

    def test_monotone(self):
        assert word_length_factor(48) < word_length_factor(64)

    @pytest.mark.parametrize("bad", [0.0, -8.0])
    def test_rejects_nonpositive(self, bad):
        with pytest.raises(ValueError):
            word_length_factor(bad)


class TestComputingElement:
    def test_basic_construction(self):
        ce = ComputingElement("x", clock_mhz=100.0)
        assert ce.length_factor == pytest.approx(1.0)

    def test_rejects_zero_clock(self):
        with pytest.raises(ValueError):
            ComputingElement("x", clock_mhz=0.0)

    def test_rejects_no_arithmetic(self):
        with pytest.raises(ValueError, match="no arithmetic"):
            ComputingElement("x", clock_mhz=50.0, fp_ops_per_cycle=0.0,
                             int_ops_per_cycle=0.0)

    def test_integer_only_element_allowed(self):
        ce = ComputingElement("int-only", clock_mhz=50.0, fp_ops_per_cycle=0.0,
                              int_ops_per_cycle=1.0)
        assert ce.fp_ops_per_cycle == 0.0

    def test_scaled_clock_preserves_microarchitecture(self):
        ce = ComputingElement("a", clock_mhz=150.0, word_bits=64.0,
                              fp_ops_per_cycle=2.0, int_ops_per_cycle=2.0,
                              concurrent_int_fp=True)
        faster = ce.scaled_clock(300.0)
        assert faster.clock_mhz == 300.0
        assert faster.fp_ops_per_cycle == ce.fp_ops_per_cycle
        assert faster.concurrent_int_fp is ce.concurrent_int_fp

    def test_scaled_clock_rejects_nonpositive(self):
        ce = ComputingElement("a", clock_mhz=150.0)
        with pytest.raises(ValueError):
            ce.scaled_clock(0.0)

    def test_frozen(self):
        ce = ComputingElement("a", clock_mhz=10.0)
        with pytest.raises(AttributeError):
            ce.clock_mhz = 20.0

    def test_notes_not_compared(self):
        a = ComputingElement("a", clock_mhz=10.0, notes="one")
        b = ComputingElement("a", clock_mhz=10.0, notes="two")
        assert a == b
