"""Ablation: threshold-selection policy.

Chapter 2's three perspectives, scored on their consequences at the 1995
snapshot: applications given up (security cost) and installed units
decontrolled (economic benefit) — plus the historical 1,500-Mtops choice
for contrast.
"""

from repro.core.threshold import ThresholdPolicy, select_threshold
from repro.diffusion.policy import evaluate_policy
from repro.reporting.tables import render_table


def build_sweep():
    choices = {p: select_threshold(1995.5, p) for p in ThresholdPolicy}
    historical = evaluate_policy(1_500.0, 1995.5)
    return choices, historical


def test_ablation_threshold_policy(benchmark, emit):
    choices, historical = benchmark(build_sweep)
    rows = []
    for policy, s in choices.items():
        pe = evaluate_policy(s.threshold_mtops, 1995.5)
        rows.append([
            policy.value, round(s.threshold_mtops),
            len(s.applications_given_up), round(s.units_decontrolled),
            len(pe.protected_applications),
            "yes" if pe.credible else "NO",
        ])
    rows.append([
        "(historical 1,500 Mtops)", 1_500,
        0, 0, len(historical.protected_applications),
        "yes" if historical.credible else "NO",
    ])
    emit(render_table(
        ["policy", "threshold", "apps given up", "units decontrolled",
         "apps protected", "credible"],
        rows,
        title="Ablation: threshold policy consequences, mid-1995",
    ))

    control_all = choices[ThresholdPolicy.CONTROL_WHAT_CAN_BE_CONTROLLED]
    app_driven = choices[ThresholdPolicy.APPLICATION_DRIVEN]
    economic = choices[ThresholdPolicy.ECONOMIC]
    # The orderings the chapter predicts.
    assert control_all.threshold_mtops <= app_driven.threshold_mtops
    assert app_driven.units_decontrolled >= control_all.units_decontrolled
    assert len(economic.applications_given_up) <= 3
    # All three beat the stale historical threshold on credibility.
    assert not historical.credible
    for s in choices.values():
        assert evaluate_policy(s.threshold_mtops, 1995.5).credible
