"""The open-loop load generator: determinism, honesty, knee detection.

The harness's whole claim is *coordinated-omission avoidance*: latency
runs from the scheduled Poisson arrival, so a server that falls behind
is charged for the queueing it caused instead of quietly thinning the
offered load.  These tests pin that with a deliberately rate-limited
``send`` (a lock held for a fixed service time), plus the deterministic
schedule contract and the knee-detection rules on synthetic results.

Real sleeps here are bounded: the slow-server run offers ~2x a ~100 rps
capacity for 0.25 s, so the whole module stays well under a second of
wall clock beyond interpreter overhead.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.obs.errors import ValidationError
from repro.perf.loadgen import (
    LoadgenResult,
    arrival_offsets,
    open_loop_run,
    rate_sweep,
    saturation_knee,
)


def _result(offered: float, achieved: float, errors: int = 0,
            scheduled: float | None = None) -> LoadgenResult:
    return LoadgenResult(
        offered_rps=offered,
        scheduled_rps=offered if scheduled is None else scheduled,
        achieved_rps=achieved, duration_s=1.0,
        sent=int(offered), completed=int(achieved), errors=errors,
        p50_ms=1.0, p95_ms=2.0, p99_ms=3.0, max_ms=4.0)


class TestArrivals:
    def test_deterministic_per_seed(self):
        assert np.array_equal(arrival_offsets(100.0, 50, seed=7),
                              arrival_offsets(100.0, 50, seed=7))
        assert not np.array_equal(arrival_offsets(100.0, 50, seed=7),
                                  arrival_offsets(100.0, 50, seed=8))

    def test_offsets_increase_at_roughly_the_rate(self):
        offsets = arrival_offsets(200.0, 2000, seed=0)
        assert np.all(np.diff(offsets) >= 0)
        # Mean gap of 2000 exponential draws sits within 10% of 1/rate.
        assert offsets[-1] / 2000 == pytest.approx(1 / 200.0, rel=0.1)

    def test_bad_inputs_rejected(self):
        with pytest.raises(ValidationError):
            arrival_offsets(0.0, 10)
        with pytest.raises(ValidationError):
            arrival_offsets(100.0, 0)


class TestOpenLoopRun:
    def test_fast_server_sustains(self):
        result = open_loop_run(lambda p: True, [{"x": 1}],
                               rate_rps=400.0, duration_s=0.2, seed=0)
        assert result.sent == result.completed == 80
        assert result.errors == 0
        assert result.sustained
        assert result.p50_ms <= result.p95_ms <= result.p99_ms
        assert result.p99_ms <= result.max_ms

    def test_payloads_cycle_evenly(self):
        seen = []
        lock = threading.Lock()

        def send(payload):
            with lock:
                seen.append(payload["i"])
            return True

        payloads = [{"i": i} for i in range(3)]
        result = open_loop_run(send, payloads, rate_rps=500.0,
                               duration_s=0.05, seed=0)
        assert result.sent == len(seen) == 25
        # 25 requests over a 3-payload cycle: 9/8/8.
        assert sorted(seen.count(i) for i in range(3)) == [8, 8, 9]

    def test_falsy_and_raising_sends_count_as_errors(self):
        calls = iter(range(1000))

        def flaky(payload):
            n = next(calls)
            if n % 3 == 0:
                return False
            if n % 3 == 1:
                raise RuntimeError("boom")
            return True

        result = open_loop_run(flaky, [{}], rate_rps=300.0,
                               duration_s=0.1, seed=0)
        assert result.sent == 30
        assert result.errors == 20
        assert result.completed == 10
        assert not result.sustained

    def test_slow_server_charged_from_scheduled_arrival(self):
        # A lock held ~5 ms per request caps the server near 200 rps;
        # offering ~400 rps must show achieved < scheduled and latency
        # well above the 5 ms service time (the queueing is charged).
        gate = threading.Lock()

        def slow(payload):
            with gate:
                time.sleep(0.005)
            return True

        result = open_loop_run(slow, [{}], rate_rps=400.0,
                               duration_s=0.25, seed=0)
        assert result.errors == 0
        assert result.achieved_rps < 0.9 * result.scheduled_rps
        assert not result.sustained
        assert result.p95_ms > 5.0

    def test_bad_inputs_rejected(self):
        with pytest.raises(ValidationError):
            open_loop_run(lambda p: True, [], rate_rps=10.0)
        with pytest.raises(ValidationError):
            open_loop_run(lambda p: True, [{}], rate_rps=10.0,
                          duration_s=0.0)


class TestSweepAndKnee:
    def test_sweep_sorts_rates_ascending(self):
        results = rate_sweep(lambda p: True, [{}],
                             rates_rps=[300.0, 100.0, 200.0],
                             duration_s=0.05, seed=0)
        assert [r.offered_rps for r in results] == [100.0, 200.0, 300.0]

    def test_knee_is_first_unsustained_rate(self):
        results = [_result(100.0, 99.0), _result(200.0, 150.0),
                   _result(400.0, 160.0)]
        assert saturation_knee(results) == 200.0

    def test_errors_mark_the_knee_even_at_full_rate(self):
        results = [_result(100.0, 100.0), _result(200.0, 200.0, errors=3)]
        assert saturation_knee(results) == 200.0

    def test_all_sustained_means_knee_beyond_sweep(self):
        results = [_result(100.0, 99.0), _result(200.0, 195.0)]
        assert saturation_knee(results) is None

    def test_knee_judged_against_realized_schedule(self):
        # The Poisson draw landed 15% hot (scheduled 115 for nominal
        # 100); achieving 104 of 115 would fail a naive achieved/offered
        # test but is a sustained realized schedule.
        hot = _result(100.0, 104.0, scheduled=115.0)
        assert hot.sustained
        assert saturation_knee([hot]) is None

    def test_tolerance_validated(self):
        with pytest.raises(ValidationError):
            saturation_knee([], tolerance=0.0)
        with pytest.raises(ValidationError):
            saturation_knee([], tolerance=1.5)

    def test_live_knee_detected_on_rate_limited_server(self):
        gate = threading.Lock()

        def slow(payload):
            with gate:
                time.sleep(0.004)
            return True

        results = rate_sweep(slow, [{}], rates_rps=[50.0, 450.0],
                             duration_s=0.2, seed=0)
        assert results[0].sustained
        assert saturation_knee(results) == 450.0


class TestResultShape:
    def test_as_dict_round_trips_every_field(self):
        result = _result(100.0, 99.0)
        payload = result.as_dict()
        assert payload["offered_rps"] == 100.0
        assert payload["scheduled_rps"] == 100.0
        assert set(payload) == {
            "offered_rps", "scheduled_rps", "achieved_rps", "duration_s",
            "sent", "completed", "errors", "p50_ms", "p95_ms", "p99_ms",
            "max_ms"}
