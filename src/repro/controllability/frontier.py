"""The uncontrollability frontier: the lower bound of Chapter 3.

Two rules turn per-product assessments into a time series:

1. **Classification** — only products whose composite index falls below the
   uncontrollable threshold join the frontier population (volume SMPs and
   workstations; never vendor-direct machine-room systems).
2. **The two-year lag** — "such systems become uncontrollable as they reach
   the end of their product cycle, approximately two years after they are
   first shipped" — so a product introduced at year *t* joins the
   population at *t + 2*.

Products are rated at their *maximum* configuration because field
upgradability makes the entry configuration meaningless for control
purposes.  Beyond catalog coverage the frontier is projected along the SMP
top-of-line trend, shifted right by the same lag.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from collections.abc import Sequence

import numpy as np

from repro._util import check_year
from repro.controllability.index import (
    Classification,
    ControllabilityWeights,
    DEFAULT_WEIGHTS,
    assess,
)
from repro.catalog.registry import register_invalidation_hook
from repro.machines import catalog as _catalog
from repro.machines.catalog import max_config_mtops
from repro.machines.spec import MachineSpec
from repro.obs.errors import TrendFitError
from repro.obs.trace import counter_inc, trace
from repro.trends.curves import ExponentialTrend, fit_exponential
from repro.trends.smp import smp_trend

__all__ = [
    "UNCONTROLLABILITY_LAG_YEARS",
    "FrontierPoint",
    "uncontrollable_population",
    "lower_bound_uncontrollable",
    "frontier_series",
    "frontier_trend",
    "projected_frontier_mtops",
    "projected_frontier_series",
    "install_frontier_index",
    "clear_frontier_indexes",
    "frontier_index_info",
    "patched_frontier_index",
    "prepare_frontier_patch",
    "commit_frontier_patch",
]

#: "...approximately two years after they are first shipped" (Chapter 3).
UNCONTROLLABILITY_LAG_YEARS = 2.0


@dataclass(frozen=True)
class FrontierPoint:
    """The frontier value at one date, with its defining machine."""

    year: float
    mtops: float
    machine: MachineSpec | None


@lru_cache(maxsize=256)
def _classified_population(
    weights: ControllabilityWeights,
    include_marginal: bool,
) -> tuple[MachineSpec, ...]:
    """Catalog machines whose composite index qualifies under ``weights``,
    sorted by (year, key).  One assessment pass per distinct weighting —
    the year/lag filter is applied at query time, so every year on a grid
    shares this work."""
    allowed = {Classification.UNCONTROLLABLE}
    if include_marginal:
        allowed.add(Classification.MARGINAL)
    return tuple(
        m
        for m in sorted(_catalog.COMMERCIAL_SYSTEMS,
                        key=lambda m: (m.year, m.key))
        if assess(m, weights).classification in allowed
    )


@dataclass(frozen=True)
class _FrontierIndex:
    """Precomputed frontier: qualify dates, running-max ratings, and the
    machine that set each plateau.  A frontier query is one bisect.

    ``population`` carries the qualifying machines in index order — it is
    what lets mutation events patch the index incrementally (splice one
    member, recompute the running-max/leader suffix) instead of
    re-assessing the whole catalog.  ``None`` marks an index whose
    population is unknown (legacy snapshot): such an index cannot be
    patched and is dropped for lazy rebuild on mutation.
    """

    qualify_years: np.ndarray       # sorted: machine year + lag
    running_max: np.ndarray         # running max of max-config ratings
    leaders: tuple[MachineSpec, ...]  # machine defining the plateau
    population: tuple[MachineSpec, ...] | None = None


# Snapshot-installed indexes (repro.store) take precedence over the
# lazily-built ones: loading costs zero catalog re-assessments.
_INSTALLED_INDEXES: dict[tuple[ControllabilityWeights, float],
                         _FrontierIndex] = {}


def _frontier_index(
    weights: ControllabilityWeights,
    lag_years: float,
) -> _FrontierIndex:
    installed = _INSTALLED_INDEXES.get((weights, lag_years))
    if installed is not None:
        return installed
    return _build_frontier_index(weights, lag_years)


def install_frontier_index(
    weights: ControllabilityWeights,
    lag_years: float,
    qualify_years: np.ndarray,
    running_max: np.ndarray,
    leader_rows: np.ndarray,
    population_rows: np.ndarray | None = None,
) -> None:
    """Install a precomputed frontier index (snapshot load path).

    ``leader_rows`` and ``population_rows`` hold catalog row numbers
    (order of ``COMMERCIAL_SYSTEMS``) so the machine objects are rejoined
    from the live catalog without re-running any assessment.  Omitting
    ``population_rows`` installs an unpatchable index (dropped and
    rebuilt lazily on the first mutation event).
    """
    counter_inc("frontier.index_installs")
    machines = tuple(_catalog.COMMERCIAL_SYSTEMS)
    _INSTALLED_INDEXES[(weights, float(lag_years))] = _FrontierIndex(
        qualify_years=qualify_years,
        running_max=running_max,
        leaders=tuple(machines[int(row)] for row in leader_rows),
        population=None if population_rows is None else tuple(
            machines[int(row)] for row in population_rows),
    )


def clear_frontier_indexes() -> None:
    """Drop installed and memoized frontier indexes (tests and ablation
    hygiene)."""
    _INSTALLED_INDEXES.clear()
    _build_frontier_index.cache_clear()
    _classified_population.cache_clear()


# Nuclear-path registration only (kinds=()): event applies patch the
# installed indexes in place via commit_frontier_patch instead of
# dropping them.
register_invalidation_hook(
    "controllability.frontier", lambda epoch: clear_frontier_indexes())


@lru_cache(maxsize=256)
def _build_frontier_index(
    weights: ControllabilityWeights,
    lag_years: float,
) -> _FrontierIndex:
    counter_inc("frontier.index_builds")
    machines = _classified_population(weights, False)
    qualify = np.array([m.year + lag_years for m in machines])
    ratings = [max_config_mtops(m) for m in machines]
    running = np.maximum.accumulate(np.array(ratings)) if machines else np.empty(0)
    leaders: list[MachineSpec] = []
    best = 0.0
    leader: MachineSpec | None = None
    for m, rating in zip(machines, ratings):
        if rating > best:
            best = rating
            leader = m
        leaders.append(leader)
    qualify.setflags(write=False)
    running.setflags(write=False)
    return _FrontierIndex(
        qualify_years=qualify,
        running_max=running,
        leaders=tuple(leaders),
        population=machines,
    )


def patched_frontier_index(
    index: _FrontierIndex,
    weights: ControllabilityWeights,
    lag_years: float,
    machine: MachineSpec,
    removed_key: str | None = None,
) -> "_FrontierIndex | None":
    """``index`` with ``removed_key`` dropped and ``machine`` spliced in
    (if it classifies UNCONTROLLABLE under ``weights``).

    Only the suffix from the touched position is recomputed: the running
    maximum is a sequential fold, so seeding it with the unchanged prefix
    value (and the prefix leader) reproduces a full rebuild bit for bit —
    including the strict ``>`` plateau rule, under which a machine whose
    rating ties the current running max does **not** displace the
    incumbent leader.  Returns ``None`` when the index carries no
    population (unpatchable; caller drops it for lazy rebuild), or the
    index unchanged when the event does not touch this population.
    """
    if index.population is None:
        return None
    population = list(index.population)
    start = len(population)
    removed = False
    if removed_key is not None:
        for i, member in enumerate(population):
            if member.key == removed_key:
                del population[i]
                start = i
                removed = True
                break
    qualifies = (
        assess(machine, weights).classification
        is Classification.UNCONTROLLABLE
    )
    if qualifies:
        import bisect

        keys = [(m.year, m.key) for m in population]
        pos = bisect.bisect_left(keys, (machine.year, machine.key))
        population.insert(pos, machine)
        start = min(start, pos)
    if not removed and not qualifies:
        return index
    counter_inc("frontier.index_patches")
    members = tuple(population)
    tail = members[start:]
    tail_years = [m.year + lag_years for m in tail]
    tail_ratings = [max_config_mtops(m) for m in tail]
    if start:
        seed = float(index.running_max[start - 1])
        tail_running = np.maximum.accumulate(
            np.concatenate([[seed], tail_ratings]))[1:]
        best = seed
        leader: MachineSpec | None = index.leaders[start - 1]
    else:
        tail_running = (np.maximum.accumulate(np.array(tail_ratings))
                        if tail else np.empty(0))
        best = 0.0
        leader = None
    leaders = list(index.leaders[:start])
    for m, rating in zip(tail, tail_ratings):
        if rating > best:
            best = rating
            leader = m
        leaders.append(leader)
    qualify = np.concatenate([index.qualify_years[:start], tail_years]) \
        if members else np.empty(0)
    running = np.concatenate([index.running_max[:start], tail_running]) \
        if members else np.empty(0)
    qualify.setflags(write=False)
    running.setflags(write=False)
    return _FrontierIndex(
        qualify_years=qualify,
        running_max=running,
        leaders=tuple(leaders),
        population=members,
    )


def prepare_frontier_patch() -> dict:
    """Snapshot the patchable frontier indexes **before** a catalog
    mutation (repro.catalog.events calls this under its write guard).

    The default-weights/default-lag index is materialized here if it is
    not already cached, so the hot index every serve endpoint touches is
    always maintained incrementally rather than rebuilt.
    """
    bases = dict(_INSTALLED_INDEXES)
    default_key = (DEFAULT_WEIGHTS, UNCONTROLLABILITY_LAG_YEARS)
    if default_key not in bases:
        bases[default_key] = _frontier_index(*default_key)
    return bases


def commit_frontier_patch(
    bases: dict,
    machine: MachineSpec,
    removed_key: str | None = None,
) -> None:
    """Apply a mutation to every pre-captured frontier index and drop the
    memoized builders (exotic weightings rebuild lazily from the patched
    catalog)."""
    _build_frontier_index.cache_clear()
    _classified_population.cache_clear()
    for (weights, lag_years), base in bases.items():
        patched = patched_frontier_index(
            base, weights, lag_years, machine, removed_key)
        if patched is None:
            _INSTALLED_INDEXES.pop((weights, lag_years), None)
        else:
            _INSTALLED_INDEXES[(weights, lag_years)] = patched


def uncontrollable_population(
    year: float,
    weights: ControllabilityWeights = DEFAULT_WEIGHTS,
    lag_years: float = UNCONTROLLABILITY_LAG_YEARS,
    include_marginal: bool = False,
) -> list[MachineSpec]:
    """Catalog machines that are uncontrollable at ``year``.

    A machine qualifies when its composite index classifies it
    UNCONTROLLABLE (optionally MARGINAL) and it has been on the market for
    at least ``lag_years``.
    """
    check_year(year, "year")
    return [
        m for m in _classified_population(weights, include_marginal)
        if m.year + lag_years <= year
    ]


def lower_bound_uncontrollable(
    year: float,
    weights: ControllabilityWeights = DEFAULT_WEIGHTS,
    lag_years: float = UNCONTROLLABILITY_LAG_YEARS,
) -> FrontierPoint:
    """Performance of the most powerful uncontrollable system at ``year``.

    Each qualifying product is rated at its maximum configuration.  Years
    before any product qualifies get a zero frontier (everything was
    controllable in, say, 1980).
    """
    check_year(year, "year")
    counter_inc("frontier.bisect_lookups")
    index = _frontier_index(weights, lag_years)
    i = int(np.searchsorted(index.qualify_years, year, side="right")) - 1
    if i < 0:
        return FrontierPoint(year=year, mtops=0.0, machine=None)
    return FrontierPoint(
        year=year,
        mtops=float(index.running_max[i]),
        machine=index.leaders[i],
    )


def frontier_series(
    years: Sequence[float] | np.ndarray,
    weights: ControllabilityWeights = DEFAULT_WEIGHTS,
    lag_years: float = UNCONTROLLABILITY_LAG_YEARS,
) -> np.ndarray:
    """Frontier values on a year grid — one bisect per grid point against
    the cached running-max index (no per-year catalog re-assessment)."""
    grid = np.asarray(years, dtype=float)
    # Tags are attached through the yielded span (not trace kwargs) so the
    # profiling-off path skips the kwargs-dict construction: this function
    # runs in ~15us and the <5% instrumentation budget is ~100ns-tight.
    with trace("frontier.series") as span:
        if span is not None:
            span.tags["points"] = int(grid.size)
        counter_inc("frontier.grid_points", grid.size)
        index = _frontier_index(weights, lag_years)
        idx = np.searchsorted(index.qualify_years, grid, side="right") - 1
        out = np.zeros(grid.shape)
        mask = idx >= 0
        if index.running_max.size:
            out[mask] = index.running_max[idx[mask]]
        return out


def frontier_trend(
    fit_from: float = 1992.0,
    fit_through: float = 1999.9,
    weights: ControllabilityWeights = DEFAULT_WEIGHTS,
    lag_years: float = UNCONTROLLABILITY_LAG_YEARS,
) -> ExponentialTrend:
    """Exponential fit of the frontier over its catalog-supported span."""
    years = np.arange(fit_from, fit_through, 0.25)
    values = frontier_series(years, weights, lag_years)
    mask = values > 0
    if mask.sum() < 2:
        raise TrendFitError(
            "frontier has fewer than two positive samples to fit",
            context={"fit_from": fit_from, "fit_through": fit_through,
                     "positive_samples": int(mask.sum()), "valid": ">= 2"},
        )
    return fit_exponential(years[mask], values[mask])


def projected_frontier_mtops(
    year: float,
    fit_through: float = 1995.5,
    lag_years: float = UNCONTROLLABILITY_LAG_YEARS,
) -> float:
    """Frontier projected beyond catalog coverage.

    Uses the SMP top-of-line trend fitted through ``fit_through`` (what the
    study's authors could see), shifted right by the uncontrollability lag.
    Within catalog coverage prefer :func:`lower_bound_uncontrollable`.
    """
    check_year(year, "year")
    return float(smp_trend(fit_through).shifted(lag_years).value(year))


def projected_frontier_series(
    years: Sequence[float] | np.ndarray,
    fit_through: float = 1995.5,
    lag_years: float = UNCONTROLLABILITY_LAG_YEARS,
) -> np.ndarray:
    """Projected frontier over a year grid: the SMP trend is fitted once
    and evaluated on the whole grid, instead of refitting per year as
    repeated :func:`projected_frontier_mtops` calls would."""
    grid = np.asarray(years, dtype=float)
    if grid.size == 0:
        return np.zeros(grid.shape)
    return np.asarray(smp_trend(fit_through).shifted(lag_years).value(grid))


def frontier_index_info() -> dict[str, int]:
    """Introspection for :func:`repro.obs.metrics_snapshot`: how many
    weighting-specific frontier indexes are cached, and how hard the
    bisect path has been exercised."""
    from repro.obs.trace import counters

    stats = counters()
    cache = _build_frontier_index.cache_info()
    return {
        "cached_indexes": int(cache.currsize),
        "installed_indexes": len(_INSTALLED_INDEXES),
        "index_builds": int(stats.get("frontier.index_builds", 0)),
        "index_installs": int(stats.get("frontier.index_installs", 0)),
        "bisect_lookups": int(stats.get("frontier.bisect_lookups", 0)),
        "grid_points": int(stats.get("frontier.grid_points", 0)),
    }
