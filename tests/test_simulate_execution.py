"""Tests for the execution-time model and its qualitative claims."""

import numpy as np
import pytest

from repro.simulate.architectures import cluster_machine, smp_machine, vector_machine
from repro.obs.trace import counters
from repro.simulate.execution import (
    ExecutionResult,
    efficiency_curve,
    simulate_execution,
    speedup_curve,
)
from repro.simulate.interconnect import ATM_155, ETHERNET_10
from repro.simulate.workloads import CommPattern, Workload, find_workload


def _workload(**kw):
    defaults = dict(name="t", total_mops=1e5, data_mb=100.0, steps=100,
                    pattern=CommPattern.HALO_2D, parallel_fraction=0.99)
    defaults.update(kw)
    return Workload(**defaults)


class TestExecution:
    def test_time_components_positive(self):
        r = simulate_execution(_workload(), smp_machine(8))
        assert r.feasible
        assert r.serial_time_s >= 0
        assert r.compute_time_s > 0
        assert r.comm_time_s >= 0
        assert r.time_s == pytest.approx(
            r.serial_time_s + r.compute_time_s + r.comm_time_s
        )

    def test_single_node_no_comm(self):
        r = simulate_execution(_workload(), smp_machine(1))
        assert r.comm_time_s == 0.0

    def test_delivered_rate_bounded(self):
        r = simulate_execution(_workload(), smp_machine(8))
        assert 0.0 < r.efficiency <= 1.0
        assert r.delivered_mops_per_s <= r.machine.aggregate_mops_per_s * (1 + 1e-9)

    def test_memory_infeasibility_per_node(self):
        big = _workload(data_mb=10_000.0)
        r = simulate_execution(big, cluster_machine(4))
        assert not r.feasible
        assert "working set" in r.infeasible_reason
        assert r.time_s == float("inf")
        assert r.efficiency == 0.0

    def test_memory_floor_infeasible_on_cluster_feasible_on_smp(self):
        w = find_workload("turbulent-flow CSM")
        cluster = simulate_execution(w, cluster_machine(64))
        smp = simulate_execution(w, vector_machine(16))
        assert not cluster.feasible
        assert "closely coupled" in cluster.infeasible_reason
        assert smp.feasible

    def test_shared_medium_serializes(self):
        w = _workload(steps=1_000)
        shared = simulate_execution(w, cluster_machine(16, network=ETHERNET_10))
        switched = simulate_execution(
            w, cluster_machine(16, network=ATM_155, dedicated=True)
        )
        assert shared.comm_time_s > switched.comm_time_s

    def test_more_bandwidth_never_slower(self):
        w = _workload(steps=2_000)
        slow = simulate_execution(w, cluster_machine(16, network=ETHERNET_10))
        fast = simulate_execution(
            w, cluster_machine(16, network=ATM_155, dedicated=False)
        )
        # Same topology class (ad hoc); ATM has more bandwidth and less
        # latency, so communication cannot be slower.
        assert fast.comm_time_s <= slow.comm_time_s


class TestCurves:
    def test_speedup_at_one_is_one(self):
        s = speedup_curve(_workload(), smp_machine(1), [1])
        assert s[0] == pytest.approx(1.0)

    def test_speedup_bounded_by_p(self):
        ns = [1, 2, 4, 8, 16, 32]
        s = speedup_curve(_workload(), smp_machine(1), ns)
        assert np.all(s <= np.asarray(ns) + 1e-9)

    def test_amdahl_ceiling(self):
        w = _workload(parallel_fraction=0.9, pattern=CommPattern.EMBARRASSING)
        s = speedup_curve(w, smp_machine(1), [1024])
        assert s[0] < 1.0 / (1.0 - 0.9) + 1e-6

    def test_efficiency_decreasing_for_fine_grain(self):
        # Big-memory nodes so the 800-MB working set fits at every size.
        w = find_workload("shallow-water model")
        eff = efficiency_curve(
            w,
            cluster_machine(1, node_memory_mb=1_024.0, network=ETHERNET_10),
            [2, 8, 32],
        )
        assert eff[0] > eff[-1] > 0.0

    def test_embarrassing_scales(self):
        w = find_workload("keysearch")
        eff = efficiency_curve(w, cluster_machine(1, network=ETHERNET_10),
                               [2, 64, 256])
        assert np.all(eff > 0.95)

    def test_infeasible_base_returns_zeros(self):
        w = _workload(min_memory_mb=1e6)
        s = speedup_curve(w, cluster_machine(1), [2, 4])
        assert np.all(s == 0.0)


class TestEfficiencyUnclamped:
    def test_model_violation_reported_not_truncated(self):
        # Components implying more delivered work than the machine can
        # sustain must come back > 1, not silently clamped to 1.0, and
        # must bump the anomaly counter.
        w = _workload(total_mops=1e6)
        m = smp_machine(4)
        time_s = 0.5 * (w.total_mops / m.aggregate_mops_per_s)
        r = ExecutionResult(workload=w, machine=m, feasible=True,
                            infeasible_reason=None, serial_time_s=0.0,
                            compute_time_s=time_s, comm_time_s=0.0)
        before = counters().get("simulate.efficiency_above_unity", 0)
        eff = r.efficiency
        assert eff == r.delivered_mops_per_s / m.aggregate_mops_per_s
        assert eff > 1.0
        assert counters().get("simulate.efficiency_above_unity", 0) \
            == before + 1

    def test_physical_results_unchanged(self):
        r = simulate_execution(_workload(), smp_machine(8))
        assert r.feasible and 0.0 < r.efficiency <= 1.0
