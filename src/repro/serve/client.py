"""Stdlib HTTP client for the serving API.

Used by the test suite, the CI smoke job, and the serving benchmarks,
so it stays dependency-free (``http.client`` only).  Each thread gets
its own persistent keep-alive connection (HTTP/1.1), which is what makes
the client safe to hammer from a ``ThreadPoolExecutor``.

Keep-alive has one well-known failure mode: the server may close an idle
pooled connection between requests (worker restart, idle timeout), and
the *next* request on it fails with ``RemoteDisconnected`` or a reset —
through no fault of the request itself.  That exact case is retried
transparently, exactly once, on a fresh connection, and counted
(``stale_retries`` / the ``serve_client.stale_retries`` counter).  A
failure on a *fresh* connection is a real connectivity error and raises
immediately — retrying those would mask a down server and double-send
on ambiguous transport errors.

Responses come back as :class:`ServeResponse` — status, parsed JSON
body, and headers — rather than raising on 4xx/5xx, because the error
statuses (400/429/504) are part of the API contract the callers assert
on.
"""

from __future__ import annotations

import http.client
import json
import threading
from dataclasses import dataclass, field

from repro.obs.errors import ServiceOverloadedError, ValidationError
from repro.obs.trace import counter_inc

__all__ = ["ServeResponse", "ServeClient", "STALE_CONNECTION_ERRORS"]

#: Transport errors that signal a dead *pooled* connection (the server
#: closed its end between requests) rather than a failing server: these
#: — and only these, and only on a previously-used connection — are
#: retried once.
STALE_CONNECTION_ERRORS = (
    http.client.RemoteDisconnected,
    ConnectionResetError,
    BrokenPipeError,
    ConnectionAbortedError,
)


@dataclass(frozen=True)
class ServeResponse:
    """One HTTP exchange with the serving API."""

    status: int
    body: dict
    headers: dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def require_ok(self) -> dict:
        """The body, or a raised :class:`ServiceOverloadedError` /
        :class:`ValidationError` mirroring the server's verdict."""
        if self.ok:
            return self.body
        error = self.body.get("error", {})
        message = error.get("message", f"HTTP {self.status}")
        context = dict(error.get("context", {}))
        context["http_status"] = self.status
        if self.status == 429:
            raise ServiceOverloadedError(message, context=context)
        raise ValidationError(message, context=context)


class ServeClient:
    """A thread-safe JSON client bound to one serving address."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8040,
                 timeout: float = 10.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._connections: list[http.client.HTTPConnection] = []
        #: Transparent retries performed on stale pooled connections.
        self.stale_retries = 0

    # -- transport ----------------------------------------------------------

    def _connection(self) -> tuple[http.client.HTTPConnection, bool]:
        """The thread's pooled connection, plus whether any request has
        already succeeded on it (the stale-retry eligibility bit)."""
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
            self._local.conn = conn
            self._local.used = False
            with self._lock:
                self._connections.append(conn)
        return conn, bool(getattr(self._local, "used", False))

    def _drop_connection(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
            self._local.conn = None
            with self._lock:
                if conn in self._connections:
                    self._connections.remove(conn)

    def request(self, method: str, path: str,
                payload: object | None = None) -> ServeResponse:
        """One HTTP exchange.

        A stale-keep-alive failure (the server closed the pooled
        connection between requests) is retried exactly once on a fresh
        connection; any other transport error — including the same
        exception types on a never-used connection — propagates, since
        there the server is actually unreachable or misbehaving.
        """
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for attempt in (1, 2):
            conn, used = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                self._local.used = True
                break
            except STALE_CONNECTION_ERRORS:
                self._drop_connection()
                if attempt == 2 or not used:
                    raise
                self.stale_retries += 1
                counter_inc("serve_client.stale_retries")
            except (http.client.HTTPException, ConnectionError, OSError):
                self._drop_connection()
                raise
        try:
            parsed = json.loads(raw) if raw else {}
        except ValueError:
            parsed = {"raw": raw.decode("utf-8", "replace")}
        if not isinstance(parsed, dict):
            parsed = {"value": parsed}
        return ServeResponse(
            status=response.status, body=parsed,
            headers={k: v for k, v in response.getheaders()},
        )

    def close(self) -> None:
        """Close every connection this client ever opened, including
        those belonging to worker threads that have since exited."""
        self._drop_connection()
        with self._lock:
            connections, self._connections = self._connections, []
        for conn in connections:
            try:
                conn.close()
            except OSError:
                pass

    # -- endpoints ----------------------------------------------------------

    def rate(self, **fields: object) -> ServeResponse:
        """POST /rate — e.g. ``client.rate(clock_mhz=150, processors=16)``."""
        return self.request("POST", "/rate", fields)

    def license(self, machine: str, destination: str,
                **fields: object) -> ServeResponse:
        """POST /license for one machine/destination pair."""
        return self.request("POST", "/license",
                            {"machine": machine, "destination": destination,
                             **fields})

    def machine(self, key: str) -> ServeResponse:
        """POST /machine — catalog lookup plus assessment."""
        return self.request("POST", "/machine", {"machine": key})

    def policy(self, **fields: object) -> ServeResponse:
        """POST /policy — e.g. ``client.policy(threshold_mtops=2000,
        year=1995.5)``."""
        return self.request("POST", "/policy", fields)

    def review(self, **fields: object) -> ServeResponse:
        """POST /review — e.g. ``client.review(year=1995.5)``."""
        return self.request("POST", "/review", fields)

    def scenario(self, **fields: object) -> ServeResponse:
        """POST /scenario — e.g. ``client.scenario(scenario="flop_cap",
        year=1995.5)``; ``scenario`` is a preset name or a full wire-form
        object."""
        return self.request("POST", "/scenario", fields)

    def threshold_at(self, **fields: object) -> ServeResponse:
        """POST /threshold_at — e.g. ``client.threshold_at(year=1994.0)``."""
        return self.request("POST", "/threshold_at", fields)

    def batch(self, requests: list[dict]) -> ServeResponse:
        """POST /batch — one fused multi-query plan.

        ``requests`` is a list of flattened sub-requests, each carrying
        its ``"endpoint"`` alongside that endpoint's own fields, e.g.
        ``[{"endpoint": "rate", "clock_mhz": 150}, {"endpoint":
        "review", "year": 1994.0}]``.  The response body holds one
        ``{"status", "body"}`` pair per slot (errors isolated per
        sub-request) plus the plan's CSE/fusion summary.
        """
        return self.request("POST", "/batch", {"requests": requests})

    def catalog_append(self, event: dict) -> ServeResponse:
        """POST /catalog/append — apply one catalog mutation event.

        ``event`` is the wire form (``{"event": "append_machine",
        "machine": {...}}`` etc.).  Replays are explicit no-ops
        (``applied: false``), so the same event may be POSTed once per
        worker of a pre-fork fleet to converge every process.
        """
        return self.request("POST", "/catalog/append", event)

    def healthz(self) -> ServeResponse:
        return self.request("GET", "/healthz")

    def metrics(self) -> ServeResponse:
        return self.request("GET", "/metrics")

    def machines(self) -> ServeResponse:
        """GET /machines — the epoch-tagged catalog listing."""
        return self.request("GET", "/machines")

    def thresholds(self) -> ServeResponse:
        """GET /thresholds — the epoch-tagged threshold-era history."""
        return self.request("GET", "/thresholds")
