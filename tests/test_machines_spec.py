"""Unit tests for MachineSpec and the architecture taxonomy."""

import pytest

from repro.ctp.aggregate import Coupling
from repro.ctp.elements import ComputingElement
from repro.machines.spec import (
    Architecture,
    DistributionChannel,
    MachineSpec,
    SizeClass,
)


def _element():
    return ComputingElement("node", clock_mhz=100.0, word_bits=64.0,
                            fp_ops_per_cycle=1.0, int_ops_per_cycle=1.0,
                            concurrent_int_fp=True)


def _spec(**kw):
    defaults = dict(
        vendor="V", model="M", country="USA", year=1994.0,
        architecture=Architecture.SMP, n_processors=4, element=_element(),
    )
    defaults.update(kw)
    return MachineSpec(**defaults)


class TestArchitecture:
    def test_couplings(self):
        assert Architecture.UNIPROCESSOR.coupling is Coupling.SINGLE
        assert Architecture.VECTOR.coupling is Coupling.SHARED
        assert Architecture.SMP.coupling is Coupling.SHARED
        assert Architecture.MPP.coupling is Coupling.DISTRIBUTED
        assert Architecture.DEDICATED_CLUSTER.coupling is Coupling.CLUSTER
        assert Architecture.AD_HOC_CLUSTER.coupling is Coupling.CLUSTER

    def test_tightness_ranks_unique_and_ordered(self):
        ranks = [a.tightness_rank for a in Architecture]
        assert len(set(ranks)) == len(ranks)
        assert Architecture.VECTOR.tightness_rank < Architecture.SMP.tightness_rank
        assert (Architecture.SMP.tightness_rank
                < Architecture.AD_HOC_CLUSTER.tightness_rank)


class TestMachineSpec:
    def test_computed_ctp(self):
        spec = _spec()
        # 4-way SMP of 200-Mtops elements: 200 * (1 + 3*0.75).
        assert spec.computed_ctp_mtops() == pytest.approx(650.0)
        assert spec.ctp_mtops == pytest.approx(650.0)

    def test_quoted_overrides_computed(self):
        spec = _spec(quoted_ctp_mtops=999.0)
        assert spec.ctp_mtops == 999.0
        assert spec.computed_ctp_mtops() == pytest.approx(650.0)

    def test_quoted_only_entry_allowed(self):
        spec = _spec(element=None, quoted_ctp_mtops=500.0)
        assert spec.computed_ctp_mtops() is None
        assert spec.ctp_mtops == 500.0

    def test_rejects_unrateable(self):
        with pytest.raises(ValueError, match="rateable"):
            _spec(element=None, quoted_ctp_mtops=None)

    def test_rejects_zero_processors(self):
        with pytest.raises(ValueError):
            _spec(n_processors=0)

    def test_rejects_max_below_current(self):
        with pytest.raises(ValueError):
            _spec(n_processors=8, max_processors=4)

    def test_at_processors_drops_quote(self):
        spec = _spec(quoted_ctp_mtops=999.0, max_processors=16)
        scaled = spec.at_processors(8)
        assert scaled.quoted_ctp_mtops is None
        assert scaled.ctp_mtops == pytest.approx(200.0 * (1 + 7 * 0.75))

    def test_at_processors_respects_family_max(self):
        spec = _spec(max_processors=8)
        with pytest.raises(ValueError, match="family maximum"):
            spec.at_processors(16)

    def test_at_processors_requires_element(self):
        spec = _spec(element=None, quoted_ctp_mtops=500.0)
        with pytest.raises(ValueError):
            spec.at_processors(8)

    def test_max_configuration(self):
        spec = _spec(max_processors=16)
        top = spec.max_configuration()
        assert top.n_processors == 16
        assert top.ctp_mtops > spec.ctp_mtops

    def test_max_configuration_identity_when_at_max(self):
        spec = _spec(max_processors=4)
        assert spec.max_configuration() is spec

    def test_max_configuration_identity_when_unknown(self):
        spec = _spec(max_processors=None)
        assert spec.max_configuration() is spec

    def test_key(self):
        assert _spec().key == "V M"

    def test_year_validation(self):
        with pytest.raises(ValueError):
            _spec(year=123.0)

    def test_defaults(self):
        spec = _spec()
        assert spec.channel is DistributionChannel.DIRECT
        assert spec.size_class is SizeClass.ROOM
        assert spec.field_upgradable is False
        assert spec.product_cycle_years == 2.0
