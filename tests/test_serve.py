"""The serving-layer contract: parity, batching, backpressure, errors.

The load-bearing suite is the concurrency parity test — N client threads
hammering a live micro-batching server must produce responses
bit-identical to a sequential pass through a ``max_batch=1`` engine,
because every per-request value depends only on that request's row in
the batch kernels.  Around it: the cache-hit path, 429 queue overflow
(with ``Retry-After``), 504 deadline expiry, and the rule that every
error path returns structured taxonomy JSON — never a traceback.

No test here sleeps longer than 100 ms; coordination uses events.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.ctp import ComputingElement, Coupling, ctp_homogeneous
from repro.machines.catalog import COMMERCIAL_SYSTEMS
from repro.obs.errors import (
    DeadlineExceededError,
    ServiceOverloadedError,
    ValidationError,
)
from repro.serve.batching import MicroBatcher
from repro.serve.cache import MISS, LRUCache
from repro.serve.client import ServeClient
from repro.serve.server import ServeConfig, ServeServer, ServiceEngine


def _server(**overrides) -> ServeServer:
    config = ServeConfig(**{"port": 0, **overrides})
    return ServeServer(config).start()


def _rate_payloads() -> list[dict]:
    """A deterministic mix covering every coupling and the batch sizes
    where cumsum-vs-pairwise summation could plausibly diverge."""
    payloads = []
    for i in range(24):
        coupling = ("shared", "distributed", "cluster")[i % 3]
        payloads.append({
            "clock_mhz": 50.0 + 11.0 * i,
            "word_bits": 64 if i % 2 else 32,
            "fp_per_cycle": 1 + (i % 3),
            "concurrent": i % 4 == 0,
            "processors": (1, 4, 17, 64)[i % 4],
            "coupling": coupling,
            "year": 1995.5,
        })
    payloads.append({"clock_mhz": 150.0, "coupling": "single"})
    return payloads


def _license_payloads() -> list[dict]:
    machines = sorted(m.key for m in COMMERCIAL_SYSTEMS)[:6]
    destinations = ("India", "Germany", "China", "Russia")
    return [{"machine": key, "destination": destinations[i % 4]}
            for i, key in enumerate(machines)]


# ---------------------------------------------------------------------------
# concurrency parity
# ---------------------------------------------------------------------------

class TestParity:
    def test_threaded_responses_match_sequential_reference(self):
        """16 threads of mixed /rate + /license against the batching
        server == a sequential pass through a max_batch=1 engine."""
        work = ([("rate", p) for p in _rate_payloads()]
                + [("license", p) for p in _license_payloads()]) * 2

        reference_engine = ServiceEngine(
            ServeConfig(max_batch=1, cache_size=0))
        try:
            expected = [reference_engine.handle(endpoint, payload)
                        for endpoint, payload in work]
        finally:
            reference_engine.close()
        assert all(status == 200 for status, _ in expected)

        server = _server(max_batch=64, cache_size=0)
        client = ServeClient(port=server.port)
        try:
            def call(item):
                endpoint, payload = item
                return client.request("POST", f"/{endpoint}", payload)

            with ThreadPoolExecutor(max_workers=16) as pool:
                got = list(pool.map(call, work))
        finally:
            client.close()
            server.close()

        for (status, body), response in zip(expected, got):
            assert response.status == 200
            # HTTP responses round-trip through json; floats survive
            # exactly, so this is a bit-identity check.
            assert response.body == json.loads(json.dumps(body))

    def test_shared_rating_exactly_matches_scalar(self):
        """SHARED credit sums are binary-exact, so a served rating equals
        the scalar ctp_homogeneous result to the last bit."""
        server = _server()
        client = ServeClient(port=server.port)
        try:
            body = client.rate(clock_mhz=150.0, processors=16).require_ok()
        finally:
            client.close()
            server.close()
        element = ComputingElement(
            name="serve", clock_mhz=150.0, word_bits=64.0,
            fp_ops_per_cycle=1.0, int_ops_per_cycle=1.0,
            concurrent_int_fp=False)
        assert body["ctp_mtops"] == ctp_homogeneous(element, 16,
                                                    Coupling.SHARED)
        assert body["supercomputer"] is True


# ---------------------------------------------------------------------------
# cache behavior
# ---------------------------------------------------------------------------

class TestResponseCache:
    def test_repeated_payload_hits_cache(self):
        server = _server()
        client = ServeClient(port=server.port)
        try:
            first = client.rate(clock_mhz=100.0, processors=4).require_ok()
            before = server.engine.cache.info()
            second = client.rate(clock_mhz=100.0, processors=4).require_ok()
            after = server.engine.cache.info()
        finally:
            client.close()
            server.close()
        assert second == first
        assert after["hits"] == before["hits"] + 1

    def test_canonicalization_collapses_equivalent_payloads(self):
        """Explicit defaults and an explicit in-force threshold share the
        cache entry of the spartan spelling."""
        server = _server()
        client = ServeClient(port=server.port)
        try:
            client.rate(clock_mhz=100.0).require_ok()
            before = server.engine.cache.info()
            client.rate(clock_mhz=100.0, processors=1, word_bits=64,
                        coupling="shared", year=1995.5).require_ok()
            after = server.engine.cache.info()
        finally:
            client.close()
            server.close()
        assert after["hits"] == before["hits"] + 1


# ---------------------------------------------------------------------------
# backpressure and deadlines over HTTP
# ---------------------------------------------------------------------------

def _gate_dispatch(server: ServeServer, name: str):
    """Block the named batcher's dispatch until the returned event is
    set; the second event fires once the worker is inside a dispatch."""
    release, entered = threading.Event(), threading.Event()
    batcher = server.engine.batchers[name]
    original = batcher._dispatch

    def gated(requests):
        entered.set()
        assert release.wait(5.0), "gate never released"
        return original(requests)

    batcher._dispatch = gated
    return release, entered


class TestBackpressure:
    def test_full_queue_returns_429_with_retry_after(self):
        server = _server(max_batch=1, queue_limit=1, cache_size=0)
        release, entered = _gate_dispatch(server, "rate")
        client = ServeClient(port=server.port)
        try:
            with ThreadPoolExecutor(max_workers=2) as pool:
                blocked = pool.submit(
                    lambda: client.rate(clock_mhz=100.0))
                assert entered.wait(5.0)  # worker holds request A
                queued = pool.submit(
                    lambda: client.rate(clock_mhz=101.0))
                # Wait (bounded) for request B to occupy the queue slot.
                deadline = time.monotonic() + 5.0
                while (server.engine.batchers["rate"].depth() < 1
                       and time.monotonic() < deadline):
                    time.sleep(0.005)
                assert server.engine.batchers["rate"].depth() == 1

                shed = ServeClient(port=server.port)
                response = shed.rate(clock_mhz=102.0)
                shed.close()
                assert response.status == 429
                assert response.body["error"]["type"] == \
                    "ServiceOverloadedError"
                assert response.body["error"]["context"]["queue_limit"] == 1
                assert int(response.headers["Retry-After"]) >= 1
                with pytest.raises(ServiceOverloadedError):
                    response.require_ok()

                release.set()
                assert blocked.result().status == 200
                assert queued.result().status == 200
        finally:
            client.close()
            server.close()

    def test_expired_queue_wait_returns_504(self):
        server = _server(max_batch=1, queue_limit=8, cache_size=0,
                         deadline_ms=40.0)
        release, entered = _gate_dispatch(server, "rate")
        client = ServeClient(port=server.port)
        try:
            with ThreadPoolExecutor(max_workers=2) as pool:
                blocked = pool.submit(lambda: client.rate(clock_mhz=100.0))
                assert entered.wait(5.0)
                late = pool.submit(lambda: client.rate(clock_mhz=101.0))
                deadline = time.monotonic() + 5.0
                while (server.engine.batchers["rate"].depth() < 1
                       and time.monotonic() < deadline):
                    time.sleep(0.005)
                assert server.engine.batchers["rate"].depth() == 1
                time.sleep(0.05)  # let the queued request's 40ms lapse
                release.set()
                response = late.result()
                assert response.status == 504
                assert response.body["error"]["type"] == \
                    "DeadlineExceededError"
                blocked.result()
        finally:
            client.close()
            server.close()


# ---------------------------------------------------------------------------
# error paths: structured JSON, correct statuses, no tracebacks
# ---------------------------------------------------------------------------

_BAD_POSTS = [
    ("missing_required", "/rate", {}, 400, "ValidationError"),
    ("unknown_field", "/rate", {"clock_mhz": 100, "procesors": 2},
     400, "ValidationError"),
    ("bad_coupling", "/rate", {"clock_mhz": 100, "coupling": "warp"},
     400, "ValidationError"),
    ("single_multiprocessor", "/rate",
     {"clock_mhz": 100, "processors": 2, "coupling": "single"},
     400, "ValidationError"),
    ("negative_clock", "/rate", {"clock_mhz": -5}, 400, "ValidationError"),
    ("non_object_payload", "/rate", [1, 2, 3], 400, "ValidationError"),
    ("unknown_machine", "/license",
     {"machine": "Cray C917", "destination": "India"},
     400, "CatalogLookupError"),
    ("bad_year", "/review", {"year": 1776.0}, 400, "ValidationError"),
    ("unknown_path", "/nope", {"clock_mhz": 100}, 404, "ValidationError"),
    ("post_to_get_path", "/healthz", {}, 405, "ValidationError"),
]


class TestErrorPaths:
    @pytest.fixture(scope="class")
    def server(self):
        server = _server()
        yield server
        server.close()

    @pytest.mark.parametrize(
        "path,payload,status,error_type",
        [case[1:] for case in _BAD_POSTS],
        ids=[case[0] for case in _BAD_POSTS])
    def test_bad_posts_return_structured_json(self, server, path, payload,
                                              status, error_type):
        client = ServeClient(port=server.port)
        try:
            response = client.request("POST", path, payload)
        finally:
            client.close()
        assert response.status == status
        error = response.body["error"]
        assert error["type"] == error_type
        assert set(error) == {"type", "message", "context"}
        assert "Traceback" not in json.dumps(response.body)

    def test_get_on_post_path_is_405_with_allow(self, server):
        client = ServeClient(port=server.port)
        try:
            response = client.request("GET", "/rate")
        finally:
            client.close()
        assert response.status == 405
        assert response.headers["Allow"] == "POST"

    def test_invalid_json_body_is_structured_400(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=5.0)
        try:
            conn.request("POST", "/rate", body=b"{not json",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            body = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 400
        assert body["error"]["type"] == "ValidationError"

    def test_keep_alive_survives_error_responses(self, server):
        """A 404/405 must drain the request body, or the reused
        connection desyncs and the next request fails (regression)."""
        client = ServeClient(port=server.port)
        try:
            assert client.rate(clock_mhz=100.0).status == 200
            assert client.request("POST", "/nope",
                                  {"clock_mhz": 100}).status == 404
            assert client.request("POST", "/metrics", {"x": 1}).status == 405
            assert client.rate(clock_mhz=100.0).status == 200
        finally:
            client.close()

    def test_unknown_machine_suggests_alternatives(self, server):
        client = ServeClient(port=server.port)
        try:
            response = client.machine("Cray C917")
        finally:
            client.close()
        assert response.status == 400
        assert response.body["error"]["context"]  # carries suggestions

    def test_internal_error_is_json_not_traceback(self):
        engine = ServiceEngine(ServeConfig())
        try:
            def boom(request):
                raise RuntimeError("wires crossed")

            engine._handlers["machine"] = boom
            status, body = engine.handle("machine",
                                         {"machine": "Cray C916"})
        finally:
            engine.close()
        assert status == 500
        assert body["error"]["type"] == "InternalError"
        assert "Traceback" not in json.dumps(body)


# ---------------------------------------------------------------------------
# introspection endpoints
# ---------------------------------------------------------------------------

class TestIntrospection:
    def test_healthz_shape(self):
        server = _server(max_batch=32)
        client = ServeClient(port=server.port)
        try:
            body = client.healthz().require_ok()
        finally:
            client.close()
            server.close()
        assert body["status"] == "ok"
        assert body["config"]["max_batch"] == 32
        assert set(body["queue_depth"]) == {"rate", "license", "policy",
                                            "scenario"}
        assert "rate" in body["endpoints"]

    def test_metrics_shape_after_traffic(self):
        server = _server()
        client = ServeClient(port=server.port)
        try:
            client.rate(clock_mhz=100.0).require_ok()
            client.rate(clock_mhz=100.0).require_ok()
            body = client.metrics().require_ok()
        finally:
            client.close()
            server.close()
        serve = body["serve"]
        assert set(serve) >= {"config", "cache", "batchers", "latency"}
        rate_stats = serve["batchers"]["rate"]
        assert rate_stats["dispatches"] >= 1
        assert sum(rate_stats["batch_size_histogram"].values()) \
            == rate_stats["dispatches"]
        assert serve["cache"]["hits"] >= 1
        assert serve["latency"]["rate"]["count"] == 2
        assert serve["latency"]["rate"]["p95_ms"] >= \
            serve["latency"]["rate"]["p50_ms"] >= 0.0
        assert "counters" in body  # the global metrics_snapshot rides along
        assert "credit_cache" in body

    def test_metrics_include_tile_planes(self):
        server = _server()
        client = ServeClient(port=server.port)
        try:
            client.policy(threshold_mtops=2000.0, year=1995.5).require_ok()
            body = client.metrics().require_ok()
        finally:
            client.close()
            server.close()
        tiles = body["serve"]["tiles"]
        assert set(tiles) >= {"policy", "era", "scenario"}
        assert tiles["policy"]["builds"] >= 1
        assert set(tiles["policy"]["cache"]) >= {"hits", "misses",
                                                 "evictions"}

    def test_get_machines_is_epoch_tagged(self):
        server = _server()
        client = ServeClient(port=server.port)
        try:
            body = client.machines().require_ok()
        finally:
            client.close()
            server.close()
        from repro.catalog.registry import current_epoch

        assert body["endpoint"] == "machines"
        assert body["count"] == len(body["machines"]) > 0
        assert body["catalog_epoch"] == current_epoch()
        sample = body["machines"][0]
        assert {"key", "country", "year", "reachable_mtops",
                "classification", "uncontrollable"} <= set(sample)

    def test_get_thresholds_matches_history(self):
        from repro.catalog.registry import current_epoch
        from repro.diffusion.policy import THRESHOLD_HISTORY

        server = _server()
        client = ServeClient(port=server.port)
        try:
            body = client.thresholds().require_ok()
        finally:
            client.close()
            server.close()
        assert body["endpoint"] == "thresholds"
        assert body["catalog_epoch"] == current_epoch()
        assert [era["start_year"] for era in body["eras"]] \
            == [era.start_year for era in THRESHOLD_HISTORY]
        assert [era["threshold_mtops"] for era in body["eras"]] \
            == [era.threshold_mtops for era in THRESHOLD_HISTORY]

    def test_healthz_lists_get_endpoints(self):
        server = _server()
        client = ServeClient(port=server.port)
        try:
            body = client.healthz().require_ok()
        finally:
            client.close()
            server.close()
        assert "machines" in body["endpoints"]
        assert "thresholds" in body["endpoints"]


# ---------------------------------------------------------------------------
# MicroBatcher unit behavior
# ---------------------------------------------------------------------------

class TestMicroBatcher:
    def test_backlog_coalesces_into_one_dispatch(self):
        release, entered = threading.Event(), threading.Event()
        sizes = []

        def dispatch(requests):
            if not entered.is_set():
                entered.set()
                assert release.wait(5.0)
            sizes.append(len(requests))
            return [r * 2 for r in requests]

        batcher = MicroBatcher("t", dispatch, max_batch=8, queue_limit=64)
        try:
            first = batcher.submit(1)
            assert entered.wait(5.0)  # worker busy with the first item
            backlog = [batcher.submit(i) for i in range(2, 7)]
            release.set()
            assert first.result(5.0) == 2
            assert [f.result(5.0) for f in backlog] == [4, 6, 8, 10, 12]
        finally:
            batcher.stop()
        assert sizes == [1, 5]  # the backlog drained as one batch
        stats = batcher.stats()
        assert stats["batch_size_histogram"] == {"1": 1, "5": 1}
        assert stats["completed"] == 6
        assert stats["mean_batch_size"] == 3.0

    def test_max_batch_bounds_a_dispatch(self):
        release, entered = threading.Event(), threading.Event()

        def dispatch(requests):
            if not entered.is_set():
                entered.set()
                assert release.wait(5.0)
            return list(requests)

        batcher = MicroBatcher("t", dispatch, max_batch=3, queue_limit=64)
        try:
            futures = [batcher.submit(0)]
            assert entered.wait(5.0)
            futures += [batcher.submit(i) for i in range(1, 8)]
            release.set()
            assert [f.result(5.0) for f in futures] == list(range(8))
        finally:
            batcher.stop()
        assert max(int(size)
                   for size in batcher.stats()["batch_size_histogram"]) <= 3

    def test_overflow_raises_service_overloaded(self):
        release, entered = threading.Event(), threading.Event()

        def dispatch(requests):
            entered.set()
            assert release.wait(5.0)
            return list(requests)

        batcher = MicroBatcher("t", dispatch, max_batch=1, queue_limit=1)
        try:
            held = batcher.submit(1)
            assert entered.wait(5.0)
            queued = batcher.submit(2)  # fills the single queue slot
            with pytest.raises(ServiceOverloadedError) as excinfo:
                batcher.submit(3)
            assert excinfo.value.context["queue_limit"] == 1
            assert batcher.stats()["overflows"] == 1
            release.set()
            assert held.result(5.0) == 1
            assert queued.result(5.0) == 2
        finally:
            batcher.stop()

    def test_expired_request_fails_with_deadline_error(self):
        release, entered = threading.Event(), threading.Event()

        def dispatch(requests):
            entered.set()
            assert release.wait(5.0)
            return list(requests)

        batcher = MicroBatcher("t", dispatch, max_batch=1, queue_limit=8)
        try:
            held = batcher.submit(1)
            assert entered.wait(5.0)
            doomed = batcher.submit(2, deadline_s=0.02)
            time.sleep(0.04)
            release.set()
            with pytest.raises(DeadlineExceededError):
                doomed.result(5.0)
            assert held.result(5.0) == 1
            assert batcher.stats()["expired"] == 1
        finally:
            batcher.stop()

    def test_dispatch_exception_fans_out_to_futures(self):
        def dispatch(requests):
            raise RuntimeError("kernel fault")

        batcher = MicroBatcher("t", dispatch, max_batch=4, queue_limit=8)
        try:
            future = batcher.submit(1)
            with pytest.raises(RuntimeError, match="kernel fault"):
                future.result(5.0)
        finally:
            batcher.stop()

    def test_result_count_mismatch_is_validation_error(self):
        batcher = MicroBatcher("t", lambda requests: [], max_batch=4,
                               queue_limit=8)
        try:
            future = batcher.submit(1)
            with pytest.raises(ValidationError):
                future.result(5.0)
        finally:
            batcher.stop()

    def test_submit_after_stop_is_rejected(self):
        batcher = MicroBatcher("t", lambda requests: list(requests))
        batcher.stop()
        with pytest.raises(ServiceOverloadedError):
            batcher.submit(1)

    def test_linger_still_serves_a_lone_request(self):
        """max_wait_ms bounds the wait for a fuller batch; a lone request
        is not held past it."""
        batcher = MicroBatcher("t", lambda requests: list(requests),
                               max_batch=64, max_wait_ms=20.0)
        try:
            start = time.perf_counter()
            assert batcher.submit(7).result(5.0) == 7
            assert time.perf_counter() - start < 1.0
        finally:
            batcher.stop()

    def test_invalid_parameters_rejected(self):
        for kwargs in ({"max_batch": 0}, {"queue_limit": 0},
                       {"max_wait_ms": -1.0}):
            with pytest.raises(ValidationError):
                MicroBatcher("t", lambda requests: list(requests),
                             start=False, **kwargs)


# ---------------------------------------------------------------------------
# LRU cache unit behavior
# ---------------------------------------------------------------------------

class TestLRUCache:
    def test_eviction_order_respects_recency(self):
        cache = LRUCache(2, counter_prefix="test.cache")
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" is now oldest
        cache.put("c", 3)
        assert cache.get("b") is MISS
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.info()["evictions"] == 1

    def test_zero_capacity_disables_caching(self):
        cache = LRUCache(0, counter_prefix="test.cache")
        cache.put("a", 1)
        assert cache.get("a") is MISS
        assert len(cache) == 0

    def test_info_counts_are_exact(self):
        cache = LRUCache(4, counter_prefix="test.cache")
        assert cache.get("a") is MISS
        cache.put("a", 1)
        assert cache.get("a") == 1
        info = cache.info()
        assert (info["hits"], info["misses"]) == (1, 1)
        assert info["hit_rate"] == 0.5
        cache.clear()
        assert len(cache) == 0
        assert cache.info()["hits"] == 1  # counters survive clear

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValidationError):
            LRUCache(-1)


# ---------------------------------------------------------------------------
# config validation
# ---------------------------------------------------------------------------

class TestServeConfig:
    @pytest.mark.parametrize("overrides", [
        {"max_batch": 0},
        {"queue_limit": 0},
        {"max_wait_ms": -1.0},
        {"deadline_ms": 0.0},
        {"cache_size": -1},
    ])
    def test_bad_config_rejected(self, overrides):
        with pytest.raises(ValidationError):
            ServeConfig(**overrides)
