"""Figure 6: Performance of "Uncontrollable" Symmetrical Multiprocessor
Systems.

Per-vendor top-of-line SMP points (at maximum configuration), the fitted
envelope, and the same envelope shifted right by the two-year market-
maturity lag — the uncontrollability frontier itself.
"""

from repro.controllability.frontier import UNCONTROLLABILITY_LAG_YEARS
from repro.reporting.tables import render_table
from repro.trends.smp import smp_trend, smp_vendor_lines


def build_figure():
    lines = smp_vendor_lines(1997.0)
    trend = smp_trend(1997.0)
    return lines, trend


def test_fig06_uncontrollable_smps(benchmark, emit):
    lines, trend = benchmark(build_figure)
    rows = []
    for vendor, points in lines.items():
        for p in points:
            rows.append([vendor, p.label, f"{p.year:.1f}", round(p.mtops),
                         f"{p.year + UNCONTROLLABILITY_LAG_YEARS:.1f}"])
    text = render_table(
        ["vendor", "system (max config)", "introduced", "CTP (Mtops)",
         "uncontrollable by"],
        rows,
        title='Figure 6: performance of "uncontrollable" SMP systems',
    )
    text += (
        f"\n\nenvelope trend: x{trend.growth_per_year:.2f}/yr; shifted "
        f"{UNCONTROLLABILITY_LAG_YEARS:.0f} years for market maturity"
    )
    emit(text)

    assert len(lines) >= 4  # the vendor "spaghetti"
    all_points = [p for pts in lines.values() for p in pts]
    # Two orders of magnitude growth across the early-90s SMP wave.
    assert max(p.mtops for p in all_points) / min(p.mtops for p in all_points) > 50
