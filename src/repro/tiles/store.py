"""Epoch-keyed, LRU-bounded tile planes wired into the catalog registry.

A :class:`TilePlane` is one family of lazily built tiles (policy
scorecards, era lookups, scenario worlds) wrapped around the serve
layer's :class:`~repro.serve.cache.LRUCache` — which contributes the
hit/miss/eviction counters (``tiles.<plane>.cache.*``) for free — plus
the pieces the response cache does not have:

* a **plane sub-epoch** prefixed onto every tile key.  Each plane
  registers an invalidation hook under exactly the event kinds that can
  stale its tiles (``tiles.policy`` under the machine events only — an
  ``amend_threshold`` rewrites the era table, not a scorecard — while
  ``tiles.scenario`` is stale under every kind because scenario answers
  carry the in-force threshold).  The hook bumps the sub-epoch and drops
  the store, so the precise ``invalidate_for`` path clears only the
  affected planes and the nuclear ``invalidate_all`` sweep clears all of
  them;
* a **plane lock** making fetch-or-build single-flight: concurrent
  point queries landing in the same tile wait for one build instead of
  racing duplicates (builds are small — a 16x16 bucket — so holding the
  lock across a build is cheaper than build-twice-and-race);
* **build / partial-build counters** distinguishing first-touch builds
  from axis-union rebuilds triggered by off-lattice query coordinates.

:func:`tile_plane_info` snapshots every plane for ``/metrics``;
:func:`clear_tile_planes` is the manual reset used by benchmarks and
tests (catalog events never need it — the hooks fire automatically).
"""

from __future__ import annotations

import threading
from typing import Callable, Hashable

from repro.catalog.registry import register_invalidation_hook
from repro.obs.trace import counter_inc, trace
from repro.serve.cache import LRUCache, MISS

__all__ = [
    "TilePlane",
    "tile_plane_info",
    "clear_tile_planes",
]

#: Default tile capacity per plane.  A tile is one bucket (~16x16 cells
#: plus its requirement-matrix reference), so 256 tiles bound a plane to
#: a few megabytes while covering far more buckets than any realistic
#: agentic working set.
_DEFAULT_CAPACITY = 256

#: Every constructed plane, for the /metrics snapshot and manual resets.
_PLANES: dict[str, "TilePlane"] = {}


class TilePlane:
    """One named family of tiles behind a sub-epoch and an LRU bound."""

    def __init__(self, name: str, *, kinds: tuple[str, ...],
                 capacity: int = _DEFAULT_CAPACITY) -> None:
        self.name = name
        self.kinds = tuple(kinds)
        self.cache = LRUCache(capacity,
                              counter_prefix=f"tiles.{name}.cache")
        self.lock = threading.RLock()
        self._sub_epoch = 0
        self._builds = 0
        self._partial_builds = 0
        self._invalidations = 0
        _PLANES[name] = self
        register_invalidation_hook(
            f"tiles.{name}", self._on_invalidate, kinds=self.kinds)

    # -- invalidation -------------------------------------------------

    def _on_invalidate(self, epoch: int) -> None:
        """Registry hook: stale every tile in this plane.

        Bumping the sub-epoch (under the plane lock) also defeats the
        race where an in-flight build keyed before the event stores
        after it: the stale entry lands under the old prefix, is never
        fetched again, and ages out of the LRU.
        """
        with self.lock:
            self._sub_epoch += 1
            self._invalidations += 1
            self.cache.clear()
        counter_inc(f"tiles.{self.name}.invalidations")

    def clear(self) -> None:
        """Manual reset (benchmarks/tests); counts as an invalidation."""
        self._on_invalidate(0)

    # -- fetch / store ------------------------------------------------

    def _full_key(self, key: tuple) -> tuple:
        return (self._sub_epoch,) + tuple(key)

    def fetch(self, key: tuple) -> object:
        """The cached tile at ``key`` or :data:`~repro.serve.cache.MISS`
        (ticks the plane's hit/miss counters).  Call under ``lock`` when
        a miss will be followed by :meth:`store`."""
        with self.lock:
            return self.cache.get(self._full_key(key))

    def store(self, key: tuple, tile: object, *,
              partial: bool = False) -> None:
        """Insert a freshly built tile, counting the build kind."""
        with self.lock:
            if partial:
                self._partial_builds += 1
                counter_inc(f"tiles.{self.name}.partial_builds")
            else:
                self._builds += 1
                counter_inc(f"tiles.{self.name}.builds")
            self.cache.put(self._full_key(key), tile)

    def get_or_build(self, key: tuple,
                     build: Callable[[], object]) -> object:
        """Single-flight fetch-or-build for tiles whose axes are fixed
        by their key (the sweep-assembly block tiles)."""
        with self.lock:
            tile = self.fetch(key)
            if tile is not MISS:
                return tile
            with trace(f"tiles.{self.name}.build") as span:
                if span is not None:
                    span.tags["key"] = repr(key[:1])
                tile = build()
            self.store(key, tile)
            return tile

    # -- introspection ------------------------------------------------

    def info(self) -> dict:
        """Snapshot for ``/metrics``: builds, partial builds,
        invalidations, sub-epoch, and the LRU's own statistics."""
        with self.lock:
            return {
                "sub_epoch": self._sub_epoch,
                "builds": self._builds,
                "partial_builds": self._partial_builds,
                "invalidations": self._invalidations,
                "kinds": self.kinds,
                "cache": self.cache.info(),
            }


def tile_plane_info() -> dict[str, dict]:
    """Per-plane statistics for every constructed tile plane."""
    return {name: plane.info() for name, plane in sorted(_PLANES.items())}


def clear_tile_planes() -> None:
    """Drop every tile in every plane (manual reset; catalog events
    invalidate automatically through the registry hooks)."""
    for plane in _PLANES.values():
        plane.clear()


def _covering_tile(
    plane: TilePlane,
    key: tuple[Hashable, ...],
    need_axes: tuple[tuple[float, ...], ...],
    canonical_axes: tuple[tuple[float, ...], ...],
    covers: Callable[[object, tuple[tuple[float, ...], ...]], bool],
    build: Callable[..., object],
    max_axis_points: int,
) -> object:
    """Fetch the bucket tile at ``key``, (re)building until it covers
    every coordinate in ``need_axes``.

    First touch builds canonical-union-needed axes; an off-lattice
    coordinate against an existing tile triggers a **partial build**
    over the union of the tile's current axes and the new coordinates.
    Either way the requested floats become exact axis entries, so the
    answer read out of the tile is the bit-exact grid cell.  Axes that
    would exceed ``max_axis_points`` reset to canonical + the live
    request instead of growing without bound.
    """
    with plane.lock:
        tile = plane.fetch(key)
        if tile is not MISS and covers(tile, need_axes):
            return tile
        if tile is MISS:
            axes = tuple(
                tuple(sorted(set(canonical) | set(need)))
                for canonical, need in zip(canonical_axes, need_axes)
            )
            partial = False
        else:
            axes = tuple(
                tuple(sorted(set(existing) | set(need)))
                for existing, need in zip(tile.axes, need_axes)
            )
            if any(len(axis) > max_axis_points for axis in axes):
                axes = tuple(
                    tuple(sorted(set(canonical) | set(need)))
                    for canonical, need in zip(canonical_axes, need_axes)
                )
            partial = True
        with trace(f"tiles.{plane.name}.build") as span:
            if span is not None:
                span.tags["key"] = repr(key)
                span.tags["partial"] = partial
            tile = build(*axes)
        plane.store(key, tile, partial=partial)
        return tile
