"""Tiled lazy evaluation of the Chapter-5 policy lattice.

Point queries (:func:`policy_point`, :func:`threshold_at`) touch exactly
one tile: the (threshold, year) coordinate maps to a geometry bucket,
the bucket's tile is fetched from the plane store or built on first
touch via the *same* broadcasts ``evaluate_policy_grid`` runs
(:func:`repro.diffusion.policy_grid._grid_counts` over the tile's small
axes), and the answer is read out with ``PolicyGrid.result_at`` — so a
tile cell is the bit-exact scalar scorecard by the same argument the
monolithic grid makes: every per-cell quantity (requirement column,
frontier bisect, burden suffix lookups, uncontrollable predicates)
depends only on its own ``(threshold, year)``.

Sweeps go through :class:`TiledPolicyGrid`, which partitions explicit
axes into index blocks, builds/reuses one tile per block through the
same plane store, and :meth:`~TiledPolicyGrid.materialize`\\ s a
``PolicyGrid`` that is **tobytes-identical** to
``evaluate_policy_grid`` over the same axes — per-cell independence
makes block assembly exact, and the frontier/requirements/credible
companions are computed by the identical expressions.

Neither path ever calls ``evaluate_policy_grid`` (the
``policy.grid_builds`` counter stays untouched), which is what lets the
serve fleet assert "zero full-lattice builds" under a pure point-query
mix.

Invalidation is precise: policy scorecards read machine columns, the
installed-base suffix tables, and the requirement matrix — none of
which an ``amend_threshold`` event touches — so the ``tiles.policy``
plane registers under the machine event kinds only (the same precision
``market.installed.suffix`` uses), while the era-lookup plane backing
:func:`threshold_at` is stale under ``amend_threshold`` alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

import numpy as np

from repro._util import check_positive, check_year
from repro.catalog.registry import current_epoch
from repro.controllability.frontier import frontier_series
from repro.diffusion import policy as _policy
from repro.diffusion.columns import requirement_matrix
from repro.diffusion.policy import PolicyEffectiveness
from repro.diffusion.policy_grid import (
    PolicyGrid,
    _grid_counts,
    _validated_axes,
    threshold_at_series,
)
from repro.obs.errors import ValidationError
from repro.obs.trace import counter_inc, trace
from repro.tiles.geometry import (
    MAX_AXIS_POINTS,
    TILE_SHAPE,
    block_slices,
    canonical_thresholds,
    canonical_years,
    threshold_bucket,
    year_bucket,
)
from repro.tiles.store import TilePlane, _covering_tile

__all__ = [
    "PolicyTile",
    "TiledPolicyGrid",
    "policy_point",
    "policy_cells",
    "threshold_at",
    "tiled_policy_grid",
    "prime_tile_plane",
]

#: Scorecard tiles: stale only under machine mutations (an
#: ``amend_threshold`` rewrites the era table, never a scorecard cell).
POLICY_PLANE = TilePlane(
    "policy", kinds=("append_machine", "amend_machine"))

#: Era-lookup tiles for :func:`threshold_at`: stale only under
#: ``amend_threshold``.
ERA_PLANE = TilePlane("era", kinds=("amend_threshold",))


@dataclass(frozen=True)
class PolicyTile:
    """One lazily built sub-grid plus float -> axis-offset indexes."""

    grid: PolicyGrid
    row: Mapping[float, int] = field(repr=False)
    col: Mapping[float, int] = field(repr=False)

    @property
    def axes(self) -> tuple[tuple[float, ...], tuple[float, ...]]:
        return (tuple(self.row), tuple(self.col))


@dataclass(frozen=True)
class _EraTile:
    """One bucket of :func:`threshold_at` lookups (year axis only)."""

    values: np.ndarray
    col: Mapping[float, int] = field(repr=False)

    @property
    def axes(self) -> tuple[tuple[float, ...]]:
        return (tuple(self.col),)


def _build_policy_tile(
    t_axis: Sequence[float], y_axis: Sequence[float]
) -> PolicyTile:
    """Evaluate one tile with the monolithic grid's own broadcasts.

    Deliberately not a call to ``evaluate_policy_grid``: the tile plane
    must leave ``policy.grid_builds`` at zero so the serve smoke can
    assert a point-query mix never triggered a full-lattice build.
    """
    t = np.array(t_axis, dtype=float)
    y = np.array(y_axis, dtype=float)
    years_key = tuple(float(v) for v in y_axis)
    counter_inc("tiles.policy.cells", t.size * y.size)
    frontier, protected, illusory, burden, uncontrollable = _grid_counts(
        t, years_key)
    requirements = requirement_matrix(years_key)
    credible = t[:, None] >= frontier[None, :]
    for arr in (t, y, frontier, protected, illusory, burden,
                uncontrollable, credible):
        arr.setflags(write=False)
    grid = PolicyGrid(
        thresholds=t,
        years=y,
        frontier_mtops=frontier,
        requirements=requirements,
        protected_counts=protected,
        illusory_counts=illusory,
        burden_units=burden,
        uncontrollable_counts=uncontrollable,
        credible=credible,
        epoch=current_epoch(),
    )
    return PolicyTile(
        grid=grid,
        row={float(v): k for k, v in enumerate(t_axis)},
        col={float(v): k for k, v in enumerate(y_axis)},
    )


def _tile_covers(tile: PolicyTile,
                 need_axes: tuple[tuple[float, ...], ...]) -> bool:
    need_t, need_y = need_axes
    return (all(v in tile.row for v in need_t)
            and all(v in tile.col for v in need_y))


def policy_cells(
    points: Sequence[tuple[float, float]],
) -> list[PolicyEffectiveness]:
    """Scalar scorecards for a batch of (threshold, year) points.

    Points are grouped by geometry bucket; each group costs at most one
    tile build (first touch) or one partial rebuild (off-lattice
    coordinates against an existing tile), and repeat buckets are pure
    cache hits.  This grouping is what turns a micro-batch of
    concurrent point queries landing in the same tile into a single
    build.
    """
    pts: list[tuple[float, float]] = []
    for threshold, year in points:
        t = float(threshold)
        y = float(year)
        check_positive(t, "threshold_mtops")
        check_year(y, "year")
        pts.append((t, y))
    counter_inc("tiles.policy.point_queries", len(pts))
    groups: dict[tuple[int, int], list[int]] = {}
    for idx, (t, y) in enumerate(pts):
        bucket = (threshold_bucket(t), year_bucket(y))
        groups.setdefault(bucket, []).append(idx)
    out: list[PolicyEffectiveness | None] = [None] * len(pts)
    with trace("tiles.policy.points") as span:
        if span is not None:
            span.tags["points"] = len(pts)
            span.tags["buckets"] = len(groups)
        for (bi, bj), members in groups.items():
            need_t = tuple(sorted({pts[k][0] for k in members}))
            need_y = tuple(sorted({pts[k][1] for k in members}))
            tile = _covering_tile(
                POLICY_PLANE,
                ("b", bi, bj),
                (need_t, need_y),
                (canonical_thresholds(bi), canonical_years(bj)),
                _tile_covers,
                _build_policy_tile,
                MAX_AXIS_POINTS,
            )
            for k in members:
                t, y = pts[k]
                out[k] = tile.grid.result_at(tile.row[t], tile.col[y])
    return out  # type: ignore[return-value]


def policy_point(threshold_mtops: float, year: float) -> PolicyEffectiveness:
    """The exact scalar scorecard at one point, through the tile plane.

    Bit-exact against ``evaluate_policy(threshold_mtops, year)`` — and
    against the matching cell of any ``evaluate_policy_grid`` build —
    at roughly the cost of one 16x16 tile on first touch and a cache
    hit thereafter.
    """
    return policy_cells([(threshold_mtops, year)])[0]


def _build_era_tile(y_axis: Sequence[float]) -> _EraTile:
    counter_inc("tiles.era.cells", len(y_axis))
    values = threshold_at_series(np.array(y_axis, dtype=float))
    return _EraTile(
        values=values,
        col={float(v): k for k, v in enumerate(y_axis)},
    )


def _era_covers(tile: _EraTile,
                need_axes: tuple[tuple[float, ...], ...]) -> bool:
    return all(v in tile.col for v in need_axes[0])


def threshold_at(year: float) -> float:
    """:func:`repro.diffusion.policy.threshold_at` through the tile
    plane: one era tile per year bucket instead of a bisect per call.

    Years before the first era raise the same
    :class:`~repro.obs.errors.ThresholdInfeasibleError` the scalar
    lookup does (the infeasible year stays on the tile axes, so the
    underlying ``threshold_at_series`` raises during the build).
    """
    y = float(year)
    check_year(y, "year")
    counter_inc("tiles.era.point_queries")
    bj = year_bucket(y)
    first_era = _policy.THRESHOLD_HISTORY[0].start_year
    canonical = tuple(v for v in canonical_years(bj) if v >= first_era)
    tile = _covering_tile(
        ERA_PLANE,
        ("b", bj),
        ((y,),),
        (canonical,),
        _era_covers,
        _build_era_tile,
        MAX_AXIS_POINTS,
    )
    return float(tile.values[tile.col[y]])


class TiledPolicyGrid:
    """A (thresholds x years) sweep assembled from plane-cached tiles.

    The explicit axes are partitioned into ``tile_shape`` index blocks;
    each block is one tile in the shared plane store, built on first
    touch and reused across every sweep (and every other
    ``TiledPolicyGrid``) that covers the same axis slices.
    :meth:`result_at` reads one tile; :meth:`materialize` assembles the
    full ``PolicyGrid``, bit-exact against ``evaluate_policy_grid``.
    """

    def __init__(
        self,
        thresholds: Sequence[float] | np.ndarray,
        years: Sequence[float] | np.ndarray,
        tile_shape: tuple[int, int] = TILE_SHAPE,
    ) -> None:
        t, y = _validated_axes(thresholds, years)
        rows, cols = int(tile_shape[0]), int(tile_shape[1])
        if rows < 1 or cols < 1:
            raise ValidationError(
                "tile_shape entries must be >= 1",
                context={"got": tuple(tile_shape), "valid": ">= (1, 1)"},
            )
        self.thresholds = t
        self.years = y
        self.tile_shape = (rows, cols)
        self._t_blocks = block_slices(t.size, rows)
        self._y_blocks = block_slices(y.size, cols)

    @property
    def shape(self) -> tuple[int, int]:
        return (int(self.thresholds.size), int(self.years.size))

    @property
    def n_tiles(self) -> int:
        return len(self._t_blocks) * len(self._y_blocks)

    def _block_tile(self, ta: int, tb: int, ya: int, yb: int) -> PolicyTile:
        t_key = tuple(float(v) for v in self.thresholds[ta:tb])
        y_key = tuple(float(v) for v in self.years[ya:yb])
        return POLICY_PLANE.get_or_build(
            ("x", t_key, y_key),
            lambda: _build_policy_tile(t_key, y_key),
        )

    def result_at(self, i: int, j: int) -> PolicyEffectiveness:
        """The exact scalar scorecard at cell ``(i, j)``, served from
        the single tile containing it."""
        n_t, n_y = self.shape
        if i < 0:
            i += n_t
        if j < 0:
            j += n_y
        if not (0 <= i < n_t and 0 <= j < n_y):
            raise IndexError(f"cell ({i}, {j}) outside grid {self.shape}")
        ta, tb = self._t_blocks[i // self.tile_shape[0]]
        ya, yb = self._y_blocks[j // self.tile_shape[1]]
        tile = self._block_tile(ta, tb, ya, yb)
        return tile.grid.result_at(i - ta, j - ya)

    def materialize(self) -> PolicyGrid:
        """Assemble the full grid from tiles — tobytes-identical to
        ``evaluate_policy_grid(self.thresholds, self.years)``.

        Per-cell independence of the underlying broadcasts makes block
        assembly exact; the frontier, requirement matrix, and
        credibility companions are computed by the very expressions the
        monolithic build uses.
        """
        counter_inc("tiles.policy.assemblies")
        n_t, n_y = self.shape
        protected = np.empty((n_t, n_y), dtype=np.int64)
        illusory = np.empty((n_t, n_y), dtype=np.int64)
        burden = np.empty((n_t, n_y))
        uncontrollable = np.empty((n_t, n_y), dtype=np.int64)
        with trace("tiles.policy.assemble") as span:
            if span is not None:
                span.tags["tiles"] = self.n_tiles
                span.tags["cells"] = n_t * n_y
            for ta, tb in self._t_blocks:
                for ya, yb in self._y_blocks:
                    tile = self._block_tile(ta, tb, ya, yb)
                    protected[ta:tb, ya:yb] = tile.grid.protected_counts
                    illusory[ta:tb, ya:yb] = tile.grid.illusory_counts
                    burden[ta:tb, ya:yb] = tile.grid.burden_units
                    uncontrollable[ta:tb, ya:yb] = (
                        tile.grid.uncontrollable_counts)
            t, y = self.thresholds, self.years
            years_key = tuple(float(v) for v in y)
            frontier = frontier_series(y)
            requirements = requirement_matrix(years_key)
            credible = t[:, None] >= frontier[None, :]
            for arr in (t, y, frontier, protected, illusory, burden,
                        uncontrollable, credible):
                arr.setflags(write=False)
            return PolicyGrid(
                thresholds=t,
                years=y,
                frontier_mtops=frontier,
                requirements=requirements,
                protected_counts=protected,
                illusory_counts=illusory,
                burden_units=burden,
                uncontrollable_counts=uncontrollable,
                credible=credible,
                epoch=current_epoch(),
            )


def tiled_policy_grid(
    thresholds: Sequence[float] | np.ndarray,
    years: Sequence[float] | np.ndarray,
    tile_shape: tuple[int, int] = TILE_SHAPE,
) -> PolicyGrid:
    """One-shot tile-assembled sweep, bit-exact vs
    ``evaluate_policy_grid`` over the same axes."""
    return TiledPolicyGrid(thresholds, years, tile_shape).materialize()


def prime_tile_plane(
    thresholds: Sequence[float] | None = None,
    years: Sequence[float] | None = None,
) -> dict:
    """Pre-build the tiles covering the hot agentic query region.

    Defaults to the paper's era thresholds plus the 2,000/7,000-Mtops
    candidates, crossed with half-year review dates 1990–1998.  The
    prefork parent calls this once before forking, so every worker
    inherits a warm plane through copy-on-write instead of each paying
    the first-touch builds.
    """
    if thresholds is None:
        thresholds = tuple(
            era.threshold_mtops for era in _policy.THRESHOLD_HISTORY
        ) + (2000.0, 7000.0)
    if years is None:
        years = tuple(1990.0 + 0.5 * k for k in range(17))
    before = POLICY_PLANE.info()["builds"] + ERA_PLANE.info()["builds"]
    pairs = [(float(t), float(y)) for t in thresholds for y in years]
    policy_cells(pairs)
    first_era = _policy.THRESHOLD_HISTORY[0].start_year
    for y in years:
        if float(y) >= first_era:
            threshold_at(float(y))
    built = (POLICY_PLANE.info()["builds"] + ERA_PLANE.info()["builds"]
             - before)
    counter_inc("tiles.primed")
    return {"points": len(pairs), "tiles_built": built}
