"""Tests for the ASCII table/series/chart renderers."""

import numpy as np
import pytest

from repro.reporting.figures import render_log_chart, render_series
from repro.reporting.tables import render_table


class TestRenderTable:
    def test_basic(self):
        out = render_table(["name", "mtops"], [["Cray C916", 21125.0]])
        assert "Cray C916" in out
        assert "21,125" in out
        lines = out.splitlines()
        assert len(lines) == 3  # header, separator, row

    def test_title(self):
        out = render_table(["a"], [[1]], title="Table 4")
        assert out.splitlines()[0] == "Table 4"

    def test_numeric_right_aligned(self):
        out = render_table(["n"], [[1.0], [100.0]])
        rows = out.splitlines()[2:]
        assert rows[0].endswith("1")
        assert rows[1].endswith("100")

    def test_short_rows_padded(self):
        out = render_table(["a", "b"], [["x"]])
        assert "x" in out

    def test_too_long_row_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a"], [["x", "y"]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            render_table([], [])

    def test_nan_and_inf(self):
        out = render_table(["v"], [[float("nan")], [float("inf")]])
        assert "-" in out
        assert "inf" in out


class TestRenderSeries:
    def test_columns(self):
        out = render_series("Figure", [1990.0, 1991.0],
                            {"frontier": [100.0, 200.0]})
        assert "Figure" in out
        assert "frontier" in out
        assert "1990.00" in out

    def test_nan_rendered_as_dash(self):
        out = render_series("f", [1990.0], {"x": [float("nan")]})
        assert out.splitlines()[-1].strip().endswith("-")

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            render_series("f", [1990.0], {"x": [1.0, 2.0]})


class TestLogChart:
    def test_renders(self):
        years = np.arange(1990, 2000)
        out = render_log_chart("chart", years,
                               {"a": 10.0 ** (years - 1988),
                                "b": np.full(years.size, 500.0)})
        assert "chart" in out
        assert "*" in out and "o" in out
        assert "log10" in out

    def test_small_chart_rejected(self):
        with pytest.raises(ValueError):
            render_log_chart("c", [1990, 1991], {"a": [1, 2]}, height=1)

    def test_no_positive_data_rejected(self):
        with pytest.raises(ValueError):
            render_log_chart("c", [1990.0], {"a": [np.nan]})
