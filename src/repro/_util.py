"""Small shared utilities: decimal-year handling and argument validation.

Dates throughout the library are *decimal years* (e.g. ``1995.5`` means
mid-1995), matching the paper's timeline granularity.  Performance values are
Mtops (millions of theoretical operations per second) unless a name says
otherwise (``mflops``, ``mips``).

All validators raise :class:`repro.obs.ValidationError` (a ``ValueError``
subclass) with a context payload naming the offending value and the valid
range, so the CLI can print actionable one-line diagnostics.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

from repro.obs.errors import ValidationError

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_fraction",
    "check_year",
    "geometric_interp",
    "log_midpoint",
    "year_range",
]

#: The paper's analysis window.  Years far outside this range almost always
#: indicate a units bug (e.g. passing Mtops where a year is expected).
YEAR_MIN = 1940.0
YEAR_MAX = 2050.0


def check_positive(value: float, name: str) -> float:
    """Return ``value`` if strictly positive, else raise ``ValidationError``."""
    value = float(value)
    if not math.isfinite(value) or value <= 0.0:
        raise ValidationError(
            f"{name} must be a finite positive number, got {value!r}",
            context={"name": name, "got": value, "valid": "> 0"},
        )
    return value


def check_non_negative(value: float, name: str) -> float:
    """Return ``value`` if >= 0, else raise ``ValidationError``."""
    value = float(value)
    if not math.isfinite(value) or value < 0.0:
        raise ValidationError(
            f"{name} must be a finite non-negative number, got {value!r}",
            context={"name": name, "got": value, "valid": ">= 0"},
        )
    return value


def check_fraction(value: float, name: str) -> float:
    """Return ``value`` if within [0, 1], else raise ``ValidationError``."""
    value = float(value)
    if not math.isfinite(value) or not 0.0 <= value <= 1.0:
        raise ValidationError(
            f"{name} must lie in [0, 1], got {value!r}",
            context={"name": name, "got": value, "valid": "[0, 1]"},
        )
    return value


def check_year(value: float, name: str = "year") -> float:
    """Validate a decimal year; guards against unit mix-ups."""
    value = float(value)
    if not math.isfinite(value) or not YEAR_MIN <= value <= YEAR_MAX:
        raise ValidationError(
            f"{name} must be a decimal year in [{YEAR_MIN}, {YEAR_MAX}], "
            f"got {value!r}",
            context={"name": name, "got": value,
                     "valid": f"[{YEAR_MIN}, {YEAR_MAX}]"},
        )
    return value


def geometric_interp(x0: float, y0: float, x1: float, y1: float, x: float) -> float:
    """Interpolate geometrically (linear in log-space) between two points.

    Performance trends in the paper are exponential, so interpolation
    between catalog anchor points is done in log space.
    """
    y0 = check_positive(y0, "y0")
    y1 = check_positive(y1, "y1")
    if x1 == x0:
        if y0 != y1:
            raise ValidationError(
                "degenerate interpolation: x0 == x1 but y0 != y1",
                context={"x0": x0, "y0": y0, "y1": y1},
            )
        return y0
    t = (x - x0) / (x1 - x0)
    return math.exp(math.log(y0) * (1.0 - t) + math.log(y1) * t)


def log_midpoint(a: float, b: float) -> float:
    """Geometric mean of two positive numbers (midpoint on a log axis)."""
    return math.sqrt(check_positive(a, "a") * check_positive(b, "b"))


def year_range(start: float, stop: float, step: float = 0.25) -> list[float]:
    """Inclusive range of decimal years with a fixed step.

    The endpoint is included when it lands within floating-point noise of a
    step multiple, which keeps snapshot loops like ``year_range(1993, 1997)``
    intuitive.
    """
    check_year(start, "start")
    check_year(stop, "stop")
    check_positive(step, "step")
    if stop < start:
        raise ValidationError(
            f"stop ({stop}) must be >= start ({start})",
            context={"start": start, "stop": stop},
        )
    n = int(round((stop - start) / step))
    years = [start + i * step for i in range(n + 1)]
    # Guard against accumulating past `stop` by more than float noise.
    while years and years[-1] > stop + 1e-9:
        years.pop()
    return years


def as_sorted_unique(values: Iterable[float]) -> list[float]:
    """Sorted unique floats, used to normalize user-supplied grids."""
    return sorted(set(float(v) for v in values))


def weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    """Weighted arithmetic mean with validation."""
    if len(values) != len(weights):
        raise ValidationError(
            "values and weights must have the same length",
            context={"values": len(values), "weights": len(weights)},
        )
    total = sum(weights)
    if total <= 0:
        raise ValidationError(
            "weights must sum to a positive number",
            context={"got": total, "valid": "> 0"},
        )
    return sum(v * w for v, w in zip(values, weights)) / total
