"""Integration tests: the paper's headline sentences as executable checks.

Each test quotes the claim it verifies.  These exercise the whole pipeline
(catalogs -> controllability -> frontier -> applications -> framework), so
a regression anywhere upstream shows up here.
"""

import numpy as np
import pytest

import repro
from repro.apps.foreign_capability import foreign_capability_table
from repro.controllability.frontier import lower_bound_uncontrollable
from repro.core.framework import derive_bounds, headline_summary
from repro.core.scenarios import erosion_report
from repro.diffusion.policy import evaluate_policy, threshold_at
from repro.simulate.cluster_study import compare_architectures
from repro.trends.top500 import generate_top500


class TestExecutiveSummary:
    def test_lower_bound_sequence(self):
        """'Our analysis produces a lower bound (mid-1995) of 4,000-5,000
        Mtops -- which is likely to rise to approximately 7,500 Mtops by
        late 1996 or 1997 and exceed 16,000 Mtops before the end of the
        decade.'"""
        hs = headline_summary()
        assert 4_000.0 <= hs.lower_bound_mid_1995 <= 5_000.0
        # ~7,500 within the late-96/97 window (reconstruction: the bound
        # crosses 7,500 between 1996.9 and 1997.5).
        assert lower_bound_uncontrollable(1996.9).mtops <= 7_500.0
        assert lower_bound_uncontrollable(1997.5).mtops >= 7_500.0
        assert hs.lower_bound_end_of_decade > 16_000.0

    def test_application_groups(self):
        """'There seems to be a group of research and development
        applications starting roughly at the level of 7,000 Mtops, and a
        group of military operations applications at 10,000 Mtops.'"""
        hs = headline_summary()
        assert hs.rdte_cluster_start == pytest.approx(7_000.0, rel=0.25)
        assert hs.milops_cluster_start == pytest.approx(10_000.0, rel=0.35)

    def test_premises_viable_short_term(self):
        """'The basic premises underlying the export control regime
        continue to be viable, at least in the short term.'"""
        assert repro.evaluate_premises(1995.5).all_hold

    def test_efficacy_weakens_long_term(self):
        """'Preliminary analysis suggests that the efficacy of the current
        control regime will weaken significantly over the longer term.'"""
        report = erosion_report()
        assert report.weakens_over_time
        assert report.premise1.failure_year is not None

    def test_majority_already_uncontrollable(self):
        """'The majority of national security applications of HPC are
        already possible (at least from the standpoint of the necessary
        computing) at uncontrollable levels, or will be so before the end
        of the decade.'"""
        assert headline_summary().fraction_apps_below_lower_1995 >= 0.5
        bounds_2000 = derive_bounds(1999.9)
        from repro.apps.catalog import APPLICATIONS

        mins = [a.min_at(1999.9) for a in APPLICATIONS]
        frac = np.mean([m < bounds_2000.lower_mtops for m in mins])
        assert frac >= 0.75


class TestChapterClaims:
    def test_current_threshold_obsolete(self):
        """Chapter 5's implication: the 1,500-Mtops definition in force in
        1995 sat far below the derived lower bound."""
        assert threshold_at(1995.5) == 1_500.0
        pe = evaluate_policy(1_500.0, 1995.5)
        assert not pe.credible
        assert pe.frontier_mtops / 1_500.0 > 2.0

    def test_most_apps_below_current_threshold_band(self):
        """Chapter 4: 'The computational requirements for most of these
        programs fall well below the uncontrollability level; many are
        lower than current export control thresholds.'"""
        from repro.apps.hpcmo import generate_hpcmo

        db = generate_hpcmo(seed=0)
        assert db.fraction_below(4_100.0, "min") > 2.0 / 3.0
        assert db.fraction_below(1_500.0, "min") > 0.5

    def test_cluster_not_equal_basis(self):
        """Chapter 3: 'clusters ... should not generally be treated on an
        equal basis with tightly coupled systems of comparable CTP.'"""
        comp = compare_architectures("weather prediction")
        assert comp.cluster_penalty() > 3.0

    def test_spectrum_threshold_transfer(self):
        """'A threshold based on machines with an SMP architecture can
        certainly be applied to distributed-memory systems and workstation
        clusters' — SMP efficiency dominates down-spectrum on every suite
        workload."""
        from repro.simulate.workloads import WORKLOAD_SUITE

        for w in WORKLOAD_SUITE:
            assert compare_architectures(w.name).spectrum_ordering_holds(), w.name

    def test_top500_mostly_below_frontier_by_late_decade(self):
        """Chapter 6 (Figure 13): the lower bound of controllability climbs
        into the Top500, swallowing most of the list."""
        for year in (1995.5, 1999.5):
            frontier = lower_bound_uncontrollable(year).mtops
            lst = generate_top500(year, seed=0)
            assert lst.fraction_below(frontier) >= 0.7

    def test_foreign_capability_grid_consistency(self):
        """Table 16 integration: every cell's verdict is consistent with
        its own inputs."""
        for cell in foreign_capability_table(1995.5):
            if cell.enabled:
                assert cell.computing_available and not cell.other_gates
            if cell.computing_source == "indigenous":
                assert cell.indigenous_mtops >= cell.required_mtops


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_quickstart_flow(self):
        review = repro.run_annual_review(1995.5)
        assert 4_000.0 <= review.bounds.lower_mtops <= 5_000.0
        assert review.premises.all_hold
        choice = repro.select_threshold(1995.5, repro.ThresholdPolicy.ECONOMIC)
        assert choice.threshold_mtops >= review.bounds.lower_mtops

    def test_ctp_exposed(self):
        element = repro.ComputingElement("demo", clock_mhz=100.0)
        assert repro.ctp_homogeneous(element, 4, repro.Coupling.SHARED) > 0

    def test_catalogs_exposed(self):
        assert len(repro.COMMERCIAL_SYSTEMS) > 0
        assert len(repro.FOREIGN_SYSTEMS) > 0
