"""Figure 8: Performance Distribution of S&T Applications (1994).

Histogram of the synthetic HPCMO science-and-technology projects over the
machines they currently run on.
"""

import numpy as np

from repro.apps.hpcmo import generate_hpcmo
from repro.reporting.tables import render_table

_EDGES = 10.0 ** np.arange(0.0, 5.51, 0.5)


def build_figure():
    db = generate_hpcmo(seed=0, year=1994.0)
    counts = db.histogram(db.current_mtops("S&T"), _EDGES)
    return db, counts


def test_fig08_snt_distribution(benchmark, emit):
    db, counts = benchmark(build_figure)
    rows = [
        [f"{_EDGES[i]:,.0f} - {_EDGES[i + 1]:,.0f}", int(counts[i])]
        for i in range(counts.size)
    ]
    emit(render_table(
        ["performance band (Mtops)", "S&T projects"],
        rows,
        title="Figure 8: performance distribution of S&T applications (1994)",
    ))

    n_st = len(db.of_kind("S&T"))
    assert counts.sum() >= 0.95 * n_st  # a few outliers may fall outside
    # The bulk sits below 1,500 Mtops ("many are lower than current export
    # control thresholds").
    below_1500 = counts[: np.searchsorted(_EDGES, 1_500.0) - 1].sum()
    assert below_1500 / counts.sum() > 0.6
