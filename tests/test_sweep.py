"""The sweep engine and the parallel fan-out driver.

The central contract under test is *bit-exactness*: the vectorized sweep
replicates the scalar model's operation order, so every grid point —
times, efficiencies, components, feasibility, reason strings — must
equal ``simulate_execution`` with ``==``, not ``isclose``.  The same
contract applies to the parallel driver: 1 worker and N workers must
return identical objects.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.obs.errors import ValidationError
from repro.parallel import (
    parallel_bound_sensitivity,
    parallel_keysearch,
    parallel_map,
    partition_chunks,
    run_chunks,
    sweep_parallel,
)
from repro.perf import reference as ref
from repro.simulate.architectures import hierarchical_machine
from repro.simulate.execution import (
    efficiency_curve,
    simulate_execution,
    speedup_curve,
)
from repro.simulate.sweep import (
    InfeasibleReason,
    default_machine_catalog,
    sweep,
    validate_node_counts,
)
from repro.simulate.workloads import WORKLOAD_SUITE, find_workload

#: Deliberately awkward counts: odd primes (SIMD-pow territory), powers of
#: two, hypernode multiples and non-multiples, and a big tail.
PARITY_COUNTS = [1, 2, 3, 5, 7, 8, 12, 16, 24, 31, 57, 64, 95, 113,
                 128, 167, 200, 256]


# ---------------------------------------------------------------------------
# Bit-exact parity against the scalar model
# ---------------------------------------------------------------------------


def test_sweep_matches_scalar_model_bit_exactly():
    machines = default_machine_catalog()
    grid = sweep(machines, WORKLOAD_SUITE, PARITY_COUNTS)
    for i, machine in enumerate(machines):
        for k, n in enumerate(PARITY_COUNTS):
            if n % machine.hypernode_size:
                for j in range(len(WORKLOAD_SUITE)):
                    assert not grid.feasible[i, j, k]
                    assert grid.reason_codes[i, j, k] == \
                        InfeasibleReason.NODE_GRID
                    assert math.isinf(grid.times_s[i, j, k])
                continue
            configured = machine.with_nodes(n)
            for j, workload in enumerate(WORKLOAD_SUITE):
                r = simulate_execution(workload, configured)
                point = (machine.name, workload.name, n)
                assert bool(grid.feasible[i, j, k]) == r.feasible, point
                assert grid.times_s[i, j, k] == r.time_s, point
                assert grid.efficiencies[i, j, k] == r.efficiency, point
                assert grid.serial_time_s[i, j, k] == r.serial_time_s, point
                assert grid.compute_time_s[i, j, k] == r.compute_time_s, \
                    point
                assert grid.comm_time_s[i, j, k] == r.comm_time_s, point
                assert grid.reason_text(i, j, k) == r.infeasible_reason, \
                    point


def test_sweep_speedups_match_scalar_baseline():
    machines = default_machine_catalog()
    grid = sweep(machines, WORKLOAD_SUITE, PARITY_COUNTS)
    for i, machine in enumerate(machines):
        base_machine = machine.with_nodes(machine.hypernode_size)
        for j, workload in enumerate(WORKLOAD_SUITE):
            base = simulate_execution(workload, base_machine)
            assert grid.baseline_nodes[i] == machine.hypernode_size
            assert grid.baseline_times_s[i, j] == base.time_s
            for k, n in enumerate(PARITY_COUNTS):
                expected = 0.0
                if base.feasible and grid.feasible[i, j, k]:
                    expected = base.time_s / grid.times_s[i, j, k]
                assert grid.speedups[i, j, k] == expected


def test_result_at_reconstructs_scalar_result():
    machines = default_machine_catalog()
    grid = sweep(machines, WORKLOAD_SUITE, [16])
    for i, machine in enumerate(machines):
        for j, workload in enumerate(WORKLOAD_SUITE):
            want = simulate_execution(workload, machine.with_nodes(16))
            assert grid.result_at(i, j, 0) == want


def test_result_at_node_grid_point_raises():
    grid = sweep(hierarchical_machine(8, 8), WORKLOAD_SUITE[0], [3])
    assert grid.reason_codes[0, 0, 0] == InfeasibleReason.NODE_GRID
    with pytest.raises(ValidationError):
        grid.result_at(0, 0, 0)


def test_infeasible_reason_strings_cover_both_memory_cases():
    machines = default_machine_catalog()
    grid = sweep(machines, WORKLOAD_SUITE, PARITY_COUNTS)
    codes = set(np.unique(grid.reason_codes))
    # The suite + catalog is rich enough to hit every failure mode.
    assert {InfeasibleReason.NONE, InfeasibleReason.MIN_MEMORY,
            InfeasibleReason.NODE_MEMORY,
            InfeasibleReason.NODE_GRID} <= {InfeasibleReason(c)
                                            for c in codes}


def test_sweep_accepts_scalar_machine_and_workload():
    grid = sweep(default_machine_catalog()[0], WORKLOAD_SUITE[0], [4])
    assert grid.shape == (1, 1, 1)


def test_sweep_grid_scalar_reference_agrees():
    machines = default_machine_catalog()
    counts = np.array(PARITY_COUNTS)
    grid = sweep(machines, WORKLOAD_SUITE, counts)
    scalar = ref.sweep_grid_scalar(machines, WORKLOAD_SUITE, counts)
    assert np.array_equal(grid.feasible, scalar["feasible"])
    feas = grid.feasible
    assert np.array_equal(grid.times_s[feas], scalar["times_s"][feas])
    assert np.array_equal(grid.efficiencies[feas],
                          scalar["efficiencies"][feas])


# ---------------------------------------------------------------------------
# Rebuilt curve APIs
# ---------------------------------------------------------------------------


def test_speedup_curve_matches_scalar_reference():
    workload = find_workload("molecular dynamics")
    machine = default_machine_catalog()[3]  # ATM cluster
    counts = [1, 2, 4, 8, 16, 32, 64]
    got = speedup_curve(workload, machine, counts)
    want = ref.speedup_curve_scalar(workload, machine, counts)
    assert np.array_equal(got, want)


def test_efficiency_curve_matches_scalar_reference():
    workload = find_workload("weather prediction")
    machine = default_machine_catalog()[1]  # SMP
    counts = [1, 2, 4, 8, 16]
    got = efficiency_curve(workload, machine, counts)
    want = ref.efficiency_curve_scalar(workload, machine, counts)
    assert np.array_equal(got, want)


# ---------------------------------------------------------------------------
# node_counts validation
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("bad", [
    [], [0], [-4], [1.5], [np.nan], [np.inf], [[1, 2]], [1, 2, 0],
])
def test_validate_node_counts_rejects(bad):
    with pytest.raises(ValidationError):
        validate_node_counts(bad)


def test_validate_node_counts_accepts_integral_floats():
    counts = validate_node_counts([1.0, 2.0, 16.0])
    assert counts.dtype == np.int64
    assert counts.tolist() == [1, 2, 16]


@pytest.mark.parametrize("curve", [speedup_curve, efficiency_curve])
def test_curves_validate_node_counts(curve):
    workload = WORKLOAD_SUITE[0]
    machine = default_machine_catalog()[0]
    with pytest.raises(ValidationError):
        curve(workload, machine, [1, 0, 4])
    with pytest.raises(ValidationError):
        curve(workload, machine, [2.5])


def test_sweep_rejects_empty_machines_and_workloads():
    with pytest.raises(ValidationError):
        sweep((), WORKLOAD_SUITE[0], [1])
    with pytest.raises(ValidationError):
        sweep(default_machine_catalog()[0], (), [1])


# ---------------------------------------------------------------------------
# Parallel driver: chunking
# ---------------------------------------------------------------------------


def test_partition_chunks_covers_exactly():
    for n_items in (0, 1, 5, 16, 17, 100):
        for n_chunks in (1, 3, 16, 200):
            ranges = partition_chunks(n_items, n_chunks)
            flat = [i for a, b in ranges for i in range(a, b)]
            assert flat == list(range(n_items))
            sizes = [b - a for a, b in ranges]
            assert all(s > 0 for s in sizes)
            if sizes:
                assert max(sizes) - min(sizes) <= 1


def test_partition_chunks_rejects_bad_args():
    with pytest.raises(ValidationError):
        partition_chunks(-1, 4)
    with pytest.raises(ValidationError):
        partition_chunks(10, 0)


def test_run_chunks_empty_and_parallel_map_edges():
    assert run_chunks(math.sqrt, [], max_workers=4) == []
    assert parallel_map(math.sqrt, [], max_workers=2) == []
    items = list(range(17))
    want = [math.sqrt(x) for x in items]
    assert parallel_map(math.sqrt, items, max_workers=1) == want
    assert parallel_map(math.sqrt, items, max_workers=2,
                        chunk_size=1) == want
    assert parallel_map(math.sqrt, items, max_workers=2,
                        chunk_size=100) == want
    with pytest.raises(ValidationError):
        parallel_map(math.sqrt, items, max_workers=2, chunk_size=0)
    with pytest.raises(ValidationError):
        run_chunks(math.sqrt, [(4.0,)], max_workers=0)


# ---------------------------------------------------------------------------
# Parallel driver: determinism, 1 worker vs N
# ---------------------------------------------------------------------------

_PLAINTEXT = 0x0123456789ABCDEF
_PLANTED = 0x155  # low 10 bits


def _ciphertext() -> int:
    from repro.crypto.des import des_encrypt_block

    return des_encrypt_block(_PLAINTEXT, _PLANTED)


def test_parallel_keysearch_identical_across_worker_counts():
    ciphertext = _ciphertext()
    serial = parallel_keysearch(_PLAINTEXT, ciphertext, search_bits=10,
                                max_workers=1)
    fanned = parallel_keysearch(_PLAINTEXT, ciphertext, search_bits=10,
                                max_workers=2)
    assert serial == fanned
    assert serial.succeeded
    assert _PLANTED in serial.found_keys
    assert serial.keys_tried == 1 << 10


def test_parallel_keysearch_invariant_to_chunk_layout():
    ciphertext = _ciphertext()
    a = parallel_keysearch(_PLAINTEXT, ciphertext, search_bits=10,
                           max_workers=1, n_chunks=3)
    b = parallel_keysearch(_PLAINTEXT, ciphertext, search_bits=10,
                           max_workers=2, n_chunks=7)
    assert a.found_keys == b.found_keys
    assert a.keys_tried == b.keys_tried


def test_parallel_keysearch_validates():
    with pytest.raises(ValidationError):
        parallel_keysearch(0, 0, search_bits=0)
    with pytest.raises(ValidationError):
        parallel_keysearch(0, 0, search_bits=10, batch_size=0)


def test_parallel_bound_sensitivity_identical_across_worker_counts():
    serial = parallel_bound_sensitivity(n_samples=40, chunk_size=16,
                                        max_workers=1)
    fanned = parallel_bound_sensitivity(n_samples=40, chunk_size=16,
                                        max_workers=2)
    assert np.array_equal(serial.samples_mtops, fanned.samples_mtops)
    assert serial.samples_mtops.size == 40
    assert (serial.samples_mtops > 0).all()


def test_sweep_parallel_bit_identical_to_sweep():
    machines = default_machine_catalog()
    counts = PARITY_COUNTS[:10]
    plain = sweep(machines, WORKLOAD_SUITE, counts)
    fanned = sweep_parallel(machines, WORKLOAD_SUITE, counts,
                            max_workers=2)
    for name in ("feasible", "reason_codes", "serial_time_s",
                 "compute_time_s", "comm_time_s", "times_s", "speedups",
                 "efficiencies", "baseline_nodes", "baseline_times_s"):
        assert np.array_equal(getattr(plain, name), getattr(fanned, name),
                              equal_nan=True), name
