"""Application drift columns and the scalar-parity requirement matrix.

The policy grid needs every application's drifted minimum at every grid
year.  :func:`repro.apps.catalog.drifted_min_matrix` computes the same
quantity as a numpy broadcast, but its fractional power
``(1 - rate) ** elapsed`` runs through libmvec's SIMD ``pow``, which can
differ from Python's scalar ``pow`` by 1-2 ulp — fatal for a grid that
must be *bit-exact* against ``evaluate_policy`` (the sweep engine dodged
the same trap for HALO_3D's power law).  So the requirement matrix here
evaluates each drift factor with Python-scalar arithmetic — exactly the
expression :func:`repro.apps.requirements.drifted_min_mtops` uses — and
memoizes the result per year grid.  Factors are shared across
applications with equal elapsed time, so a build costs one scalar ``pow``
per distinct ``(year - year_first)`` value, not per matrix cell.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.apps.catalog import APPLICATIONS
from repro.apps.requirements import (
    DRIFT_FLOOR_FRACTION,
    DRIFT_RATE_PER_YEAR,
    ApplicationRequirement,
)
from repro.obs.trace import counter_inc, trace

__all__ = [
    "application_columns",
    "requirement_matrix",
    "install_application_columns",
    "install_requirement_matrix",
    "clear_requirement_matrices",
]

# Snapshot-installed state (repro.store): application columns and
# per-year-grid requirement matrices loaded from disk take precedence
# over the lazily-built equivalents — zero scalar ``pow`` calls at load.
_INSTALLED_APPS: tuple[tuple[ApplicationRequirement, ...],
                       np.ndarray, np.ndarray] | None = None
_INSTALLED_MATRICES: dict[tuple[float, ...], np.ndarray] = {}


@lru_cache(maxsize=1)
def _build_application_columns() -> tuple[
    tuple[ApplicationRequirement, ...], np.ndarray, np.ndarray
]:
    counter_inc("columns.application_builds")
    apps = tuple(APPLICATIONS)
    base = np.array([a.min_mtops for a in apps])
    firsts = np.array([a.year_first for a in apps])
    base.setflags(write=False)
    firsts.setflags(write=False)
    return apps, base, firsts


def application_columns() -> tuple[
    tuple[ApplicationRequirement, ...], np.ndarray, np.ndarray
]:
    """``(apps, base_mtops, year_first)`` in ``APPLICATIONS`` order.

    The ``(base_mtops, drift_rate)`` parameters of every stalactite as
    read-only columns; row ``a`` describes ``apps[a]``, so masks over the
    requirement matrix reconstruct the exact application tuples the
    scalar policy loop builds.  Snapshot-installed columns, when present,
    short-circuit the build.
    """
    if _INSTALLED_APPS is not None:
        return _INSTALLED_APPS
    return _build_application_columns()


def install_application_columns(base: np.ndarray,
                                firsts: np.ndarray) -> None:
    """Install precomputed application columns (snapshot load path)."""
    global _INSTALLED_APPS
    counter_inc("columns.application_installs")
    _INSTALLED_APPS = (tuple(APPLICATIONS), base, firsts)


def install_requirement_matrix(years: tuple[float, ...],
                               matrix: np.ndarray) -> None:
    """Install one precomputed ``(n_apps, n_years)`` requirement matrix
    for a year grid (snapshot load path)."""
    counter_inc("columns.requirement_installs")
    _INSTALLED_MATRICES[tuple(float(y) for y in years)] = matrix


def requirement_matrix(years: tuple[float, ...]) -> np.ndarray:
    """Drifted minimums for a year grid: snapshot-installed if available,
    else built (and memoized) in process.

    Every cell is a function of its own ``(application, year)`` alone, so
    a grid whose years are a *subset* of an installed grid is served by
    column-gathering the installed matrix — bit-identical to a fresh
    build, and still zero scalar ``pow`` calls.  The gathered view is
    re-installed under the requested key so repeats are exact hits.
    """
    installed = _INSTALLED_MATRICES.get(years)
    if installed is not None:
        counter_inc("columns.requirement_hits")
        return installed
    for key, matrix in _INSTALLED_MATRICES.items():
        columns = {year: i for i, year in enumerate(key)}
        if all(year in columns for year in years):
            counter_inc("columns.requirement_slices")
            sliced = np.ascontiguousarray(
                matrix[:, [columns[year] for year in years]])
            sliced.setflags(write=False)
            _INSTALLED_MATRICES[years] = sliced
            return sliced
    return _build_requirement_matrix(years)


@lru_cache(maxsize=64)
def _build_requirement_matrix(years: tuple[float, ...]) -> np.ndarray:
    """Drifted minimums ``(n_apps, n_years)``, bit-exact vs ``min_at``.

    Every cell equals ``APPLICATIONS[a].min_at(years[y])`` to the last
    bit: the decay factor is computed with the same Python-scalar
    expression (``max((1.0 - rate) ** elapsed, floor)``), never with a
    vectorized ``**`` whose SIMD ``pow`` could drift by an ulp.  Memoized
    per year tuple, so repeated grid builds over the same years reuse one
    matrix.
    """
    counter_inc("columns.requirement_builds")
    apps, base, firsts = application_columns()
    with trace("columns.requirement_matrix") as span:
        if span is not None:
            span.tags["apps"] = len(apps)
            span.tags["years"] = len(years)
        rate = DRIFT_RATE_PER_YEAR
        floor = DRIFT_FLOOR_FRACTION
        decay = 1.0 - rate
        factors: dict[float, float] = {}
        out = np.empty((len(apps), len(years)))
        for a, first in enumerate(float(f) for f in firsts):
            for y, year in enumerate(years):
                elapsed = max(0.0, year - first)
                factor = factors.get(elapsed)
                if factor is None:
                    factor = factors[elapsed] = max(decay ** elapsed, floor)
                out[a, y] = base[a] * factor
        out.setflags(write=False)
        return out


def clear_requirement_matrices() -> None:
    """Drop memoized and installed requirement state (tests and ablation
    hygiene)."""
    global _INSTALLED_APPS
    _INSTALLED_APPS = None
    _INSTALLED_MATRICES.clear()
    _build_requirement_matrix.cache_clear()
    _build_application_columns.cache_clear()


# Requirement matrices derive from APPLICATIONS drift alone — no machine
# or threshold content — so catalog events never stale them and the
# precise per-event path must NOT purge them (kinds=()); only the atomic
# invalidate_all sweep clears here.
def _register_requirement_hook() -> None:
    from repro.catalog.registry import register_invalidation_hook

    register_invalidation_hook(
        "diffusion.columns.requirements",
        lambda epoch: clear_requirement_matrices())


_register_requirement_hook()
