"""repro.obs — observability and robustness subsystem.

* :mod:`repro.obs.errors` — the typed exception taxonomy
  (:class:`ReproError` and friends) every library raise descends from;
* :mod:`repro.obs.trace` — nested span timers, monotonic counters, and
  the :func:`metrics_snapshot` JSON dump behind ``--profile``.

Conventions (see DESIGN.md, "Observability"):

* library code raises only :class:`ReproError` subclasses on bad input,
  with a ``context`` payload naming the offending value and valid range;
* span names are dotted ``subsystem.operation`` (``review.bounds``,
  ``bench.frontier_year_grid``); counters likewise
  (``credit_cache.hits``, ``frontier.bisect_lookups``);
* counters are always on (one dict op); spans record only inside a
  :func:`profile` collector, so the instrumented hot paths stay within
  noise of their un-instrumented timings.

Thread-safety guarantee
-----------------------
Counters and span accounting are safe to drive from many threads at once
(the serving layer does exactly that): :func:`counter_inc` serializes
behind an uncontended lock so concurrent increments never lose updates,
:func:`counters`/:func:`metrics_snapshot` return consistent copies, and
an active :func:`profile` collector keeps one open-span stack *per
thread* — a thread's top-level span becomes its own root, so concurrent
request spans never nest into each other.  The locks sit outside the
no-op fast path, keeping total overhead within the <5% budget measured
by the BENCH workloads.
"""

from repro.obs.errors import (
    CatalogLookupError,
    DeadlineExceededError,
    ReproError,
    ServiceOverloadedError,
    ThresholdInfeasibleError,
    TrendFitError,
    ValidationError,
)
from repro.obs.trace import (
    Profile,
    Span,
    counter_inc,
    counters,
    metrics_snapshot,
    profile,
    profiling_active,
    render_span_tree,
    reset_counters,
    trace,
)

__all__ = [
    "ReproError",
    "ValidationError",
    "CatalogLookupError",
    "ThresholdInfeasibleError",
    "TrendFitError",
    "ServiceOverloadedError",
    "DeadlineExceededError",
    "Span",
    "Profile",
    "trace",
    "profile",
    "profiling_active",
    "counter_inc",
    "counters",
    "reset_counters",
    "metrics_snapshot",
    "render_span_tree",
]
