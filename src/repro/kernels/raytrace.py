"""A toy orthographic ray tracer — the embarrassingly parallel kernel.

Rays march along -z over a pixel grid toward a field of Lambert-shaded
spheres.  Each pixel is computed independently, so the image can be
rendered row by row on different processors with *bit-identical* results —
the property (tested, not assumed) that makes ray tracing the canonical
cluster success story in the paper's note 53.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro._util import check_positive

__all__ = ["Sphere", "demo_scene", "render", "render_rows"]

_LIGHT = np.array([0.40824829, 0.40824829, 0.81649658])  # normalized
_BACKGROUND = 0.05


@dataclass(frozen=True)
class Sphere:
    """A sphere with a scalar albedo."""

    cx: float
    cy: float
    cz: float
    radius: float
    albedo: float = 0.9

    def __post_init__(self) -> None:
        check_positive(self.radius, "radius")
        if not 0.0 <= self.albedo <= 1.0:
            raise ValueError("albedo must lie in [0, 1]")


def demo_scene() -> tuple[Sphere, ...]:
    """Three overlapping spheres at different depths."""
    return (
        Sphere(0.0, 0.0, -3.0, 1.0, albedo=0.9),
        Sphere(0.9, 0.4, -2.0, 0.5, albedo=0.7),
        Sphere(-0.8, -0.5, -2.5, 0.6, albedo=0.8),
    )


def render_rows(
    scene: Sequence[Sphere],
    rows: np.ndarray,
    width: int = 64,
    height: int = 64,
) -> np.ndarray:
    """Render the given image rows; returns ``(len(rows), width)``.

    Fully vectorized over the pixel block: one ray-sphere intersection
    solve per sphere, depth-resolved with a running z-buffer.
    """
    if width < 1 or height < 1:
        raise ValueError("image must be at least 1x1")
    rows = np.asarray(rows, dtype=int)
    if rows.size and (rows.min() < 0 or rows.max() >= height):
        raise ValueError("row indices out of range")
    ys = np.linspace(-1.2, 1.2, height)[rows]
    xs = np.linspace(-1.2, 1.2, width)
    px, py = np.meshgrid(xs, ys, indexing="xy")  # (n_rows, width)

    image = np.full(px.shape, _BACKGROUND)
    zbuf = np.full(px.shape, -np.inf)
    for s in scene:
        # Orthographic ray: origin (px, py, 0), direction (0, 0, -1).
        dx = px - s.cx
        dy = py - s.cy
        rho2 = dx * dx + dy * dy
        hit = rho2 <= s.radius**2
        if not hit.any():
            continue
        dz = np.sqrt(np.maximum(s.radius**2 - rho2, 0.0))
        z_surface = s.cz + dz  # nearer intersection (larger z)
        visible = hit & (z_surface > zbuf)
        # Lambert shading from the surface normal.
        nx, ny, nz = dx / s.radius, dy / s.radius, dz / s.radius
        shade = s.albedo * np.maximum(
            nx * _LIGHT[0] + ny * _LIGHT[1] + nz * _LIGHT[2], 0.0
        )
        image = np.where(visible, shade, image)
        zbuf = np.where(visible, z_surface, zbuf)
    return image


def render(scene: Sequence[Sphere], width: int = 64, height: int = 64) -> np.ndarray:
    """Render the full image, ``(height, width)``."""
    return render_rows(scene, np.arange(height), width, height)
