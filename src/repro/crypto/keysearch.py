"""Brute-force keysearch: the paper's canonical parallel application.

``brute_force`` searches a (demonstration-sized) keyspace for the key
relating a known plaintext/ciphertext pair, in vectorized batches;
``keyspace_partition`` splits a keyspace across processors "without
reference to the activities of the other processors" — the paper's exact
description of why the attack parallelizes perfectly.

``ops_per_key_breakdown`` derives the word-level theoretical-operation
count per key trial from the cipher's structure, grounding the constant
used by :func:`repro.simulate.applications.keysearch_required_mtops`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crypto.des import encrypt_blocks, int_to_bits

__all__ = [
    "KeysearchResult",
    "brute_force",
    "keyspace_partition",
    "ops_per_key_breakdown",
    "WORD_OPS_PER_KEY",
]


@dataclass(frozen=True)
class KeysearchResult:
    """Outcome of a brute-force search."""

    found_key: int | None
    keys_tried: int
    batches: int

    @property
    def succeeded(self) -> bool:
        return self.found_key is not None


def _candidate_bits(base_key: int, offsets: np.ndarray,
                    search_bits: int) -> np.ndarray:
    """Bit arrays for ``base_key`` with its low ``search_bits`` replaced by
    each offset.  Parity bits are part of the varied field (DES ignores
    them), matching how a real search enumerates raw 64-bit patterns."""
    mask = (1 << search_bits) - 1
    base = base_key & ~mask
    bits = np.empty((offsets.size, 64), dtype=bool)
    base_bits = int_to_bits(base, 64)
    bits[:] = base_bits
    # All searched bit positions in one C-level unpack (batch x bits)
    # rather than one shift-and-mask column assignment per bit.
    raw = offsets.astype("<u8").view(np.uint8).reshape(offsets.size, 8)
    low = np.unpackbits(raw, axis=1, bitorder="little", count=search_bits)
    bits[:, 64 - search_bits:] = low[:, ::-1]
    return bits


def brute_force(
    plaintext: int,
    ciphertext: int,
    base_key: int = 0,
    search_bits: int = 16,
    batch_size: int = 4_096,
) -> KeysearchResult:
    """Search the low ``search_bits`` of the keyspace for the key that maps
    ``plaintext`` to ``ciphertext``.

    Vectorized over ``batch_size`` candidate keys at a time.  Returns the
    first matching key (there may be several: DES ignores parity bits, so
    every key has parity-flip equivalents).
    """
    if not 1 <= search_bits <= 40:
        raise ValueError("search_bits must be in [1, 40] (demo-scale)")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    plain_bits = int_to_bits(plaintext, 64)
    cipher_bits = int_to_bits(ciphertext, 64)
    total = 1 << search_bits
    tried = 0
    batches = 0
    for start in range(0, total, batch_size):
        offsets = np.arange(start, min(start + batch_size, total),
                            dtype=np.int64)
        keys = _candidate_bits(base_key, offsets, search_bits)
        out = encrypt_blocks(plain_bits, keys)
        hits = np.all(out == cipher_bits, axis=-1)
        batches += 1
        tried += offsets.size
        if hits.any():
            offset = int(offsets[int(np.argmax(hits))])
            mask = (1 << search_bits) - 1
            return KeysearchResult(
                found_key=(base_key & ~mask) | offset,
                keys_tried=tried,
                batches=batches,
            )
    return KeysearchResult(found_key=None, keys_tried=tried, batches=batches)


def keyspace_partition(search_bits: int, n_processors: int) -> list[tuple[int, int]]:
    """Split ``2**search_bits`` keys into contiguous per-processor ranges.

    Returns ``[(start, stop), ...]`` covering the space exactly once —
    the zero-communication decomposition that makes the attack
    "tailor-made for parallel processors".
    """
    if search_bits < 1:
        raise ValueError("search_bits must be >= 1")
    if n_processors < 1:
        raise ValueError("n_processors must be >= 1")
    total = 1 << search_bits
    base, extra = divmod(total, n_processors)
    ranges = []
    start = 0
    for i in range(n_processors):
        size = base + (1 if i < extra else 0)
        ranges.append((start, start + size))
        start += size
    assert start == total
    return [r for r in ranges if r[0] < r[1]]


def ops_per_key_breakdown() -> dict[str, float]:
    """Word-level theoretical operations per key trial, from structure.

    A hardware-oriented implementation holds each round's 32/48-bit
    quantities in machine words.  Per round: the E-expansion and P-box are
    table-driven rearrangements (~8 word ops each as shift/mask networks),
    the key mix is one 48-bit xor (2 word ops at 32-bit width), the eight
    S-boxes are eight table lookups plus indexing arithmetic (~3 ops each),
    and the L/R update is one more xor.  With 16 rounds plus the initial
    and final permutations and per-key schedule work, the total lands near
    600 — the constant the cost model uses.
    """
    per_round = {
        "expansion": 8.0,
        "key_mix_xor": 2.0,
        "sbox_lookups": 8 * 3.0,
        "p_permutation": 8.0,
        "feistel_xor": 1.0,
    }
    round_total = sum(per_round.values())
    schedule = 16 * 6.0   # two 28-bit rotates + PC-2 gather per round key
    fixed = 2 * 16.0      # IP and FP shift/mask networks
    compare = 4.0         # ciphertext comparison
    total = 16 * round_total + schedule + fixed + compare
    return {
        **{f"round/{k}": v for k, v in per_round.items()},
        "per_round_total": round_total,
        "key_schedule": schedule,
        "ip_fp": fixed,
        "compare": compare,
        "total": total,
    }


#: The word-level constant used by the Chapter 4 cost model.
WORD_OPS_PER_KEY = ops_per_key_breakdown()["total"]
