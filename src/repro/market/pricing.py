"""Price-performance trends fitted from the machine catalog.

"The growing size and intense competition of the SMP market will continue
to drive the cost of such systems (e.g., $/MIPS) down to the point where
non-Western parallel projects become economically infeasible" (Chapter 3).
The fit here quantifies that: dollars per Mtops across the commercial
catalog falls by roughly a third per year through the first half of the
1990s.
"""

from __future__ import annotations

import numpy as np

from repro._util import check_positive, check_year
from repro.machines import catalog as _catalog
from repro.trends.curves import ExponentialTrend, fit_exponential

__all__ = ["price_performance_trend", "dollars_per_mtops", "affordable_mtops"]


def _price_points(since: float = 1988.0) -> tuple[np.ndarray, np.ndarray]:
    """(year, $/Mtops) samples from catalog entries with a price band.

    Entry price is matched against the cataloged configuration's rating —
    a deliberate mid-band estimate, since entry configurations are smaller
    but also cheaper per processor.
    """
    years, ratios = [], []
    for m in _catalog.COMMERCIAL_SYSTEMS:
        if m.entry_price_usd is None or m.year < since:
            continue
        years.append(m.year)
        ratios.append(m.entry_price_usd / m.ctp_mtops)
    return np.asarray(years), np.asarray(ratios)


def price_performance_trend(since: float = 1988.0) -> ExponentialTrend:
    """Exponential fit of $/Mtops over the commercial catalog.

    The slope is negative: performance gets cheaper every year.
    """
    years, ratios = _price_points(since)
    if years.size < 2:
        raise ValueError("not enough priced systems to fit a trend")
    return fit_exponential(years, ratios)


def dollars_per_mtops(year: float, since: float = 1988.0) -> float:
    """Fitted market price of one Mtops at ``year``."""
    check_year(year, "year")
    return float(price_performance_trend(since).value(year))


def affordable_mtops(budget_usd: float, year: float) -> float:
    """Performance a fixed budget buys at ``year``.

    This is Chapter 2's "most powerful system that can be acquired for a
    fixed amount of money" — the budget-constrained definition of the
    maximum, and the quantity whose growth erodes premise one (budget
    buyers gravitate to cost-effective, uncontrollable systems).
    """
    check_positive(budget_usd, "budget_usd")
    return budget_usd / dollars_per_mtops(year)
