#!/usr/bin/env python
"""Brute-force cryptoanalysis, from real cipher to policy conclusion.

Chapter 4's cryptology judgment — "significant cryptologic capabilities
can be achieved through the use of widely available computer equipment" —
demonstrated end to end:

1. encrypt a message block with the library's DES implementation;
2. recover the key by brute force over a demonstration keyspace,
   partitioned across simulated processors exactly as the paper
   describes ("each processor ... can be set to work on only a portion
   of the keyspace");
3. scale the measured rate to the 1995 machine park and print what key
   lengths fall to which aggregates.

Run:  python examples/keysearch_demo.py
"""

import time

from repro.crypto.des import des_encrypt_block
from repro.crypto.keysearch import (
    WORD_OPS_PER_KEY,
    brute_force,
    keyspace_partition,
)
from repro.reporting.tables import render_table
from repro.simulate.applications import (
    keysearch_required_mtops,
    keysearch_time_days,
)

PLAINTEXT = 0x4E6F762E31393935  # "Nov.1995"
SECRET_KEY = 0x000000000000B37A
SEARCH_BITS = 16


def main() -> None:
    ciphertext = des_encrypt_block(PLAINTEXT, SECRET_KEY)
    print(f"plaintext  = 0x{PLAINTEXT:016X}")
    print(f"ciphertext = 0x{ciphertext:016X}")
    print(f"searching the low {SEARCH_BITS} bits of the keyspace...\n")

    start = time.perf_counter()
    result = brute_force(PLAINTEXT, ciphertext, search_bits=SEARCH_BITS)
    elapsed = time.perf_counter() - start
    rate = result.keys_tried / elapsed
    print(f"recovered key 0x{result.found_key:016X} after "
          f"{result.keys_tried:,} trials in {elapsed:.2f} s "
          f"({rate:,.0f} keys/s on one Python process)\n")

    print("Zero-communication partition of a 2^20 keyspace over 8 nodes:")
    for i, (lo, hi) in enumerate(keyspace_partition(20, 8)):
        print(f"  node {i}: keys [{lo:>8,}, {hi:>8,})")
    print("  -> no node ever needs to hear from another until a hit.\n")

    rows = []
    for bits in (40, 48, 56):
        rows.append([
            bits,
            round(keysearch_required_mtops(bits, 24.0)),
            round(keysearch_time_days(bits, 4_100.0), 1),
            round(keysearch_time_days(bits, 50_000.0), 1),
        ])
    print(render_table(
        ["key bits", "Mtops for 24-h break",
         "days @ 4,100 Mtops (1995 frontier)",
         "days @ 50,000 Mtops (big aggregate)"],
        rows,
        title=f"Scaling up ({WORD_OPS_PER_KEY:.0f} word ops per key, "
              f"derived from the cipher)",
    ))
    print("\nExport-grade 40-bit keys fall to uncontrollable aggregates in "
          "about a day;\nDES-56 does not fall to anything in the 1995 park "
          "- but no *threshold* separates\nthe two, because the work "
          "aggregates perfectly.  Hence the paper's judgment:\n"
          "'cryptologic applications can no longer be used as a basis for "
          "... a control threshold.'")


if __name__ == "__main__":
    main()
