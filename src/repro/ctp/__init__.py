"""Composite Theoretical Performance (CTP) metric, measured in Mtops.

This package reconstructs the export-control performance metric adopted by
CoCom in June 1990 and published in the U.S. Federal Register on February 6,
1992 (57 FR 4553).  The paper under reproduction uses CTP ratings as its
universal performance scale; every machine, application requirement, and
control threshold in the study is expressed in Mtops.

The reconstruction implements the documented elements of the formula:

* a per-computing-element *effective calculating rate* derived from
  instruction issue rates (``repro.ctp.rates``),
* the word-length adjustment ``L = 1/3 + WL/96`` (``repro.ctp.elements``),
* diminishing aggregation credit for additional processors, with the
  documented 0.75 coefficient for shared-memory (SMP) configurations and a
  calibrated, interconnect-discounted schedule for distributed-memory and
  clustered configurations (``repro.ctp.aggregate``).

Where the full regulatory text is unavailable, coefficients are calibrated
against the CTP ratings quoted in the paper (e.g. Cray C916 = 21,125 Mtops,
Cray T3D = 10,056 Mtops, Intel Paragon 150-node = 4,864 Mtops) which the
machine catalog carries as ground truth.  See DESIGN.md for the substitution
rationale.
"""

from repro.ctp.elements import (
    ComputingElement,
    word_length_factor,
)
from repro.ctp.rates import (
    effective_rate,
    rate_from_timings,
    theoretical_performance,
)
from repro.ctp.aggregate import (
    Coupling,
    CTPParameters,
    DEFAULT_PARAMETERS,
    aggregation_credits,
    aggregate,
    aggregate_homogeneous,
)
from repro.ctp.batch import (
    aggregate_batch,
    aggregate_homogeneous_batch,
    clear_credit_cache,
    credit_cache_info,
    credit_sums,
    ctp_batch,
    ctp_homogeneous_batch,
    theoretical_performance_batch,
)
from repro.ctp.worksheet import (
    machine_worksheet,
    rating_worksheet,
)
from repro.ctp.metric import (
    ctp,
    ctp_homogeneous,
    mflops_to_mtops,
    mips_to_mtops,
    mtops_to_mflops,
)

__all__ = [
    "ComputingElement",
    "word_length_factor",
    "effective_rate",
    "rate_from_timings",
    "theoretical_performance",
    "Coupling",
    "CTPParameters",
    "DEFAULT_PARAMETERS",
    "aggregation_credits",
    "aggregate",
    "aggregate_homogeneous",
    "aggregate_batch",
    "aggregate_homogeneous_batch",
    "clear_credit_cache",
    "credit_cache_info",
    "credit_sums",
    "ctp_batch",
    "ctp_homogeneous_batch",
    "theoretical_performance_batch",
    "machine_worksheet",
    "rating_worksheet",
    "ctp",
    "ctp_homogeneous",
    "mflops_to_mtops",
    "mips_to_mtops",
    "mtops_to_mflops",
]
