"""Event-sourced catalog mutation with epoch-consistent index patching.

The paper's analyses assume a frozen world, but the 1990s policy process
was a stream of machine announcements and threshold revisions.  This
module is the single mutation path for that stream: three event kinds —

* ``append_machine`` — a new system enters the commercial catalog;
* ``amend_machine`` — an existing entry is corrected in place;
* ``amend_threshold`` — one era of ``THRESHOLD_HISTORY`` is revised;

— each applied under the registry's write guard (excluding in-flight
micro-batches), bumping the global catalog epoch, **incrementally**
patching the derived structures that can be patched (the catalog's
year-sorted running-max index, the frontier bisect indexes, the machine
columns store — one row appended/overwritten, suffixes re-folded from
the touched position, bit-identical to a full rebuild), and purging
exactly the caches the event kind can stale via
:func:`repro.catalog.registry.invalidate_for`.

Events are **idempotent**: re-applying an event that matches current
state returns ``applied=False`` without bumping the epoch.  That is what
lets ``repro catalog apply`` converge a pre-fork fleet by re-POSTing the
same event over fresh connections until every worker has acknowledged
it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.catalog.registry import (
    _bump_epoch,
    _reset_epoch,
    current_epoch,
    invalidate_all,
    invalidate_for,
    write_guard,
)
from repro.machines.spec import (
    Architecture,
    DistributionChannel,
    MachineSpec,
    SizeClass,
)
from repro.obs.errors import ValidationError
from repro.obs.trace import counter_inc, trace

__all__ = [
    "AppendMachine",
    "AmendMachine",
    "AmendThreshold",
    "AppliedEvent",
    "apply_event",
    "machine_from_payload",
    "parse_event",
    "full_rebuild_parity",
    "reset_catalog",
]


@dataclass(frozen=True)
class AppendMachine:
    """A new commercial system announcement."""

    machine: MachineSpec
    kind = "append_machine"


@dataclass(frozen=True)
class AmendMachine:
    """Replace the catalog entry at ``key`` with ``machine``."""

    key: str
    machine: MachineSpec
    kind = "amend_machine"


@dataclass(frozen=True)
class AmendThreshold:
    """Revise the threshold era starting exactly at ``start_year``."""

    start_year: float
    threshold_mtops: float
    label: str | None = None
    kind = "amend_threshold"


@dataclass(frozen=True)
class AppliedEvent:
    """Outcome of one :func:`apply_event` call.

    ``applied=False`` marks an idempotent no-op: the event matched the
    current catalog state, so no epoch was consumed and no cache was
    touched.
    """

    kind: str
    key: str
    epoch: int
    applied: bool

    def as_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "key": self.key,
                "epoch": self.epoch, "applied": self.applied}


# ---------------------------------------------------------------------------
# Event parsing (JSON payload -> typed event)
# ---------------------------------------------------------------------------

_MACHINE_REQUIRED = ("vendor", "model", "country", "year", "architecture")
_MACHINE_OPTIONAL = (
    "n_processors", "element", "quoted_ctp_mtops", "quoted_peak_mflops",
    "entry_price_usd", "max_price_usd", "units_installed", "channel",
    "size_class", "field_upgradable", "max_processors",
    "product_cycle_years", "approx", "notes",
)
_ELEMENT_FIELDS = ("name", "clock_mhz", "word_bits", "fp_ops_per_cycle",
                   "int_ops_per_cycle", "concurrent_int_fp")


def _parse_enum(enum_cls: type, raw: object, field: str):
    if isinstance(raw, enum_cls):
        return raw
    token = str(raw).strip()
    name = token.upper().replace("-", "_").replace(" ", "_")
    if name in enum_cls.__members__:
        return enum_cls[name]
    for member in enum_cls:
        if member.value == token:
            return member
    raise ValidationError(
        f"{field}: unknown {enum_cls.__name__} {raw!r}",
        context={"got": raw,
                 "valid": sorted(enum_cls.__members__)},
    )


def machine_from_payload(payload: Mapping[str, Any]) -> MachineSpec:
    """Build a :class:`MachineSpec` from a JSON-shaped mapping.

    Mirrors the serve-schema conventions: unknown fields are rejected,
    enums accept their member name (any case) or value string, and spec
    invariants (positive year, element-or-quoted-rating) surface as
    ``ValidationError`` rather than bare asserts.
    """
    if not isinstance(payload, Mapping):
        raise ValidationError(
            "machine payload must be an object",
            context={"got": type(payload).__name__, "valid": "object"},
        )
    unknown = set(payload) - set(_MACHINE_REQUIRED) - set(_MACHINE_OPTIONAL)
    if unknown:
        raise ValidationError(
            f"unknown machine fields: {', '.join(sorted(unknown))}",
            context={"got": sorted(unknown),
                     "valid": sorted(_MACHINE_REQUIRED + _MACHINE_OPTIONAL)},
        )
    missing = [f for f in _MACHINE_REQUIRED if f not in payload]
    if missing:
        raise ValidationError(
            f"missing machine fields: {', '.join(missing)}",
            context={"got": sorted(payload),
                     "valid": sorted(_MACHINE_REQUIRED)},
        )
    kwargs: dict[str, Any] = {
        "vendor": str(payload["vendor"]),
        "model": str(payload["model"]),
        "country": str(payload["country"]),
        "year": float(payload["year"]),
        "architecture": _parse_enum(
            Architecture, payload["architecture"], "architecture"),
    }
    element = payload.get("element")
    if element is not None:
        from repro.ctp.elements import ComputingElement

        if not isinstance(element, Mapping):
            raise ValidationError(
                "element must be an object",
                context={"got": type(element).__name__, "valid": "object"},
            )
        bad = set(element) - set(_ELEMENT_FIELDS)
        if bad:
            raise ValidationError(
                f"unknown element fields: {', '.join(sorted(bad))}",
                context={"got": sorted(bad), "valid": sorted(_ELEMENT_FIELDS)},
            )
        kwargs["element"] = ComputingElement(
            name=str(element.get("name", "custom")),
            clock_mhz=float(element["clock_mhz"]),
            word_bits=float(element.get("word_bits", 64.0)),
            fp_ops_per_cycle=float(element.get("fp_ops_per_cycle", 1.0)),
            int_ops_per_cycle=float(element.get("int_ops_per_cycle", 1.0)),
            concurrent_int_fp=bool(element.get("concurrent_int_fp", False)),
        )
    for field, cast in (
        ("n_processors", int),
        ("quoted_ctp_mtops", float),
        ("quoted_peak_mflops", float),
        ("entry_price_usd", float),
        ("max_price_usd", float),
        ("units_installed", int),
        ("max_processors", int),
        ("product_cycle_years", float),
        ("field_upgradable", bool),
        ("approx", bool),
        ("notes", str),
    ):
        if field in payload and payload[field] is not None:
            kwargs[field] = cast(payload[field])
    if "channel" in payload:
        kwargs["channel"] = _parse_enum(
            DistributionChannel, payload["channel"], "channel")
    if "size_class" in payload:
        kwargs["size_class"] = _parse_enum(
            SizeClass, payload["size_class"], "size_class")
    try:
        return MachineSpec(**kwargs)
    except (ValueError, AssertionError) as exc:
        raise ValidationError(
            f"invalid machine spec: {exc}",
            context={"got": dict(payload)},
        ) from exc


def parse_event(payload: Mapping[str, Any]):
    """Turn a JSON-shaped mapping into a typed catalog event."""
    if not isinstance(payload, Mapping):
        raise ValidationError(
            "event payload must be an object",
            context={"got": type(payload).__name__, "valid": "object"},
        )
    kind = payload.get("event")
    if kind == "append_machine":
        allowed = {"event", "machine"}
        extra = set(payload) - allowed
        if extra or "machine" not in payload:
            raise ValidationError(
                "append_machine takes exactly {event, machine}",
                context={"got": sorted(payload), "valid": sorted(allowed)},
            )
        return AppendMachine(machine=machine_from_payload(payload["machine"]))
    if kind == "amend_machine":
        allowed = {"event", "key", "machine"}
        extra = set(payload) - allowed
        if extra or "key" not in payload or "machine" not in payload:
            raise ValidationError(
                "amend_machine takes exactly {event, key, machine}",
                context={"got": sorted(payload), "valid": sorted(allowed)},
            )
        return AmendMachine(
            key=str(payload["key"]),
            machine=machine_from_payload(payload["machine"]),
        )
    if kind == "amend_threshold":
        allowed = {"event", "start_year", "threshold_mtops", "label"}
        extra = set(payload) - allowed
        if extra or "start_year" not in payload \
                or "threshold_mtops" not in payload:
            raise ValidationError(
                "amend_threshold takes {event, start_year, threshold_mtops"
                "[, label]}",
                context={"got": sorted(payload), "valid": sorted(allowed)},
            )
        label = payload.get("label")
        return AmendThreshold(
            start_year=float(payload["start_year"]),
            threshold_mtops=float(payload["threshold_mtops"]),
            label=None if label is None else str(label),
        )
    raise ValidationError(
        f"unknown event kind {kind!r}",
        context={"got": kind,
                 "valid": ["append_machine", "amend_machine",
                           "amend_threshold"]},
    )


# ---------------------------------------------------------------------------
# Application
# ---------------------------------------------------------------------------


def _patch_machine_stores(machine: MachineSpec, row: int, epoch: int,
                          base_columns, frontier_bases,
                          removed_key: str | None) -> None:
    """Install the patched columns + frontier indexes for one machine
    event (runs under the write guard, after the catalog splice)."""
    from repro.controllability.frontier import commit_frontier_patch
    from repro.machines import columns as machine_columns_module
    from repro.machines.columns import (
        install_machine_columns,
        patched_machine_columns,
    )

    patched = patched_machine_columns(base_columns, machine, row, epoch)
    # The lazily-built lru entry (if any) predates the event; the patched
    # set is installed over it and the stale build dropped so a later
    # clear_machine_columns cannot resurrect pre-event columns.
    machine_columns_module._build_columns.cache_clear()
    install_machine_columns(patched)
    commit_frontier_patch(frontier_bases, machine, removed_key)


def _capture_bases():
    """Materialize the patchable stores *before* the catalog mutates."""
    from repro.controllability.frontier import prepare_frontier_patch
    from repro.machines.columns import machine_columns

    return machine_columns(), prepare_frontier_patch()


def apply_event(event) -> AppliedEvent:
    """Apply one catalog event atomically; returns the outcome.

    Holds the registry write guard for the whole application, so no
    micro-batch dispatch can observe a half-applied event: a batch
    admitted at epoch N completes against epoch-N state, and the next
    batch sees epoch N+1 with every derived structure already patched
    and every stale-able cache already purged.
    """
    from repro.machines import catalog as cat

    with write_guard(), trace("catalog.apply_event") as span:
        if span is not None:
            span.tags["kind"] = event.kind
        if isinstance(event, AppendMachine):
            machine = event.machine
            existing = cat._BY_KEY.get(machine.key)
            if existing is not None:
                if existing == machine:
                    counter_inc("catalog.event_noops")
                    return AppliedEvent(event.kind, machine.key,
                                        current_epoch(), False)
                raise ValidationError(
                    f"machine {machine.key!r} already cataloged with "
                    f"different fields; use amend_machine",
                    context={"got": machine.key, "valid": "a new key"},
                )
            base_columns, frontier_bases = _capture_bases()
            row = cat.append_machine_entry(machine)
            epoch = _bump_epoch()
            _patch_machine_stores(machine, row, epoch, base_columns,
                                  frontier_bases, removed_key=None)
            invalidate_for("append_machine", epoch)
            counter_inc("catalog.events_applied")
            return AppliedEvent(event.kind, machine.key, epoch, True)

        if isinstance(event, AmendMachine):
            machine = event.machine
            existing = cat.find_machine(event.key)
            if existing == machine and existing.key == machine.key:
                counter_inc("catalog.event_noops")
                return AppliedEvent(event.kind, machine.key,
                                    current_epoch(), False)
            base_columns, frontier_bases = _capture_bases()
            removed_key = existing.key
            row = cat.amend_machine_entry(event.key, machine)
            epoch = _bump_epoch()
            _patch_machine_stores(machine, row, epoch, base_columns,
                                  frontier_bases, removed_key=removed_key)
            invalidate_for("amend_machine", epoch)
            counter_inc("catalog.events_applied")
            return AppliedEvent(event.kind, machine.key, epoch, True)

        if isinstance(event, AmendThreshold):
            from repro.diffusion import policy

            for era in policy.THRESHOLD_HISTORY:
                if era.start_year == event.start_year:
                    same_label = (event.label is None
                                  or event.label == era.label)
                    if era.threshold_mtops == event.threshold_mtops \
                            and same_label:
                        counter_inc("catalog.event_noops")
                        return AppliedEvent(
                            event.kind, str(event.start_year),
                            current_epoch(), False)
                    break
            policy.amend_threshold_era(
                event.start_year, event.threshold_mtops, event.label)
            epoch = _bump_epoch()
            invalidate_for("amend_threshold", epoch)
            counter_inc("catalog.events_applied")
            return AppliedEvent(event.kind, str(event.start_year),
                                epoch, True)

    raise ValidationError(
        f"unknown event object {type(event).__name__}",
        context={"got": type(event).__name__,
                 "valid": ["AppendMachine", "AmendMachine",
                           "AmendThreshold"]},
    )


def reset_catalog() -> None:
    """Restore the import-time catalog and threshold history, reset the
    epoch to 0, and run the atomic :func:`invalidate_all` sweep (tests,
    benchmarks, and ablation hygiene)."""
    from repro.diffusion import policy
    from repro.machines import catalog as cat

    with write_guard():
        cat.restore_baseline_catalog()
        policy.restore_baseline_threshold_history()
        _reset_epoch()
        invalidate_all(0)


# ---------------------------------------------------------------------------
# Parity instrumentation (tests / churn benchmark / CI)
# ---------------------------------------------------------------------------


def _bytes_equal(a, b) -> bool:
    a = np.asarray(a)
    b = np.asarray(b)
    return (a.shape == b.shape and a.dtype == b.dtype
            and a.tobytes() == b.tobytes())


def full_rebuild_parity() -> dict[str, bool]:
    """Compare every incrementally-patched structure against a fresh
    full rebuild, byte for byte.

    The rebuilds bypass the lru caches (``__wrapped__``) so they re-walk
    the *current* catalog without disturbing the installed patched
    stores.  Returns one flag per structure plus ``"all"``; the churn
    benchmark gates on this after **every** event.
    """
    from repro.controllability.frontier import (
        UNCONTROLLABILITY_LAG_YEARS,
        _build_frontier_index,
        _classified_population,
        _frontier_index,
    )
    from repro.controllability.index import DEFAULT_WEIGHTS
    from repro.diffusion import policy
    from repro.machines import catalog as cat
    from repro.machines import columns as mcols

    report: dict[str, bool] = {}

    # Catalog bisect index vs a fresh sort/accumulate of the live tuple.
    rebuilt_sorted = tuple(
        sorted(cat.COMMERCIAL_SYSTEMS, key=lambda m: (m.year, m.key)))
    report["catalog_order"] = rebuilt_sorted == cat._SORTED_BY_YEAR
    report["catalog_years"] = _bytes_equal(
        np.array([m.year for m in rebuilt_sorted]), cat._SORTED_YEARS)
    report["catalog_running_max"] = _bytes_equal(
        np.maximum.accumulate(
            np.array([m.ctp_mtops for m in rebuilt_sorted])),
        cat._RUNNING_MAX_MTOPS)

    # Machine columns vs an uncached rebuild.
    current = mcols.machine_columns()
    rebuilt = mcols._build_columns.__wrapped__()
    report["columns_machines"] = current.machines == rebuilt.machines
    for name in ("intro_years", "entry_mtops", "max_config_mtops",
                 "reachable_mtops", "field_upgradable", "units_installed",
                 "controllability_index", "class_codes", "uncontrollable"):
        report[f"columns_{name}"] = _bytes_equal(
            getattr(current, name), getattr(rebuilt, name))
    report["columns_index_by_key"] = (
        dict(current.index_by_key) == dict(rebuilt.index_by_key))

    # Default frontier index vs an uncached rebuild (fresh population
    # scan included).
    _classified_population.cache_clear()
    live = _frontier_index(DEFAULT_WEIGHTS, UNCONTROLLABILITY_LAG_YEARS)
    rebuilt_idx = _build_frontier_index.__wrapped__(
        DEFAULT_WEIGHTS, UNCONTROLLABILITY_LAG_YEARS)
    report["frontier_qualify_years"] = _bytes_equal(
        live.qualify_years, rebuilt_idx.qualify_years)
    report["frontier_running_max"] = _bytes_equal(
        live.running_max, rebuilt_idx.running_max)
    report["frontier_leaders"] = live.leaders == rebuilt_idx.leaders
    report["frontier_population"] = (
        live.population == rebuilt_idx.population)

    # Threshold era columns vs the live era tuple.
    report["era_starts"] = _bytes_equal(
        np.array([e.start_year for e in policy.THRESHOLD_HISTORY]),
        policy._ERA_STARTS)
    report["era_thresholds"] = _bytes_equal(
        np.array([e.threshold_mtops for e in policy.THRESHOLD_HISTORY]),
        policy._ERA_THRESHOLDS)

    report["all"] = all(report.values())
    return report
