"""Historical machine catalog (reconstructed data substrate).

The paper's analysis runs over the population of real systems of the era:
U.S./Japanese commercial machines (workstations, SMP servers, MPPs, vector
supercomputers) and the indigenous systems of Russia, the PRC, and India
(Tables 1-3).  The original study drew on vendor data and field research;
we reconstruct the catalog from the CTP ratings, configurations, prices,
and installed-base figures quoted in the paper text, filling gaps with
documented era-appropriate approximations (``approx=True``).

Every entry carries enough structure for the downstream models: a CTP
rating (paper-quoted where available, else computed from the machine's
computing elements), introduction year, architecture class, price band,
installed-base estimate, and distribution-channel class.
"""

from repro.machines.spec import (
    Architecture,
    DistributionChannel,
    SizeClass,
    MachineSpec,
)
from repro.machines.microprocessors import (
    Microprocessor,
    MICROPROCESSORS,
    microprocessors_by_year,
    sixty_four_bit_micros,
)
from repro.machines.catalog import (
    COMMERCIAL_SYSTEMS,
    commercial_by_architecture,
    commercial_by_year,
    find_machine,
    max_available_mtops,
)
from repro.machines.foreign import (
    FOREIGN_SYSTEMS,
    ForeignCountry,
    foreign_by_country,
    max_indigenous_mtops,
)

__all__ = [
    "Architecture",
    "DistributionChannel",
    "SizeClass",
    "MachineSpec",
    "Microprocessor",
    "MICROPROCESSORS",
    "microprocessors_by_year",
    "sixty_four_bit_micros",
    "COMMERCIAL_SYSTEMS",
    "commercial_by_architecture",
    "commercial_by_year",
    "find_machine",
    "max_available_mtops",
    "FOREIGN_SYSTEMS",
    "ForeignCountry",
    "foreign_by_country",
    "max_indigenous_mtops",
]
