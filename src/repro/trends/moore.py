"""Microprocessor performance trend (Figure 5).

"Microprocessor performance has increased exponentially during the 1990s"
(Chapter 3).  The trend here is fitted over the 64-bit catalog — the
population Figure 5 plots — and is the engine behind every projection the
frontier models make: SMP top-of-line growth is micro growth times the
(slowly growing) processor-count envelope.
"""

from __future__ import annotations

from repro._util import check_year
from repro.machines.microprocessors import sixty_four_bit_micros
from repro.trends.curves import ExponentialTrend, TrendPoint, fit_exponential

__all__ = ["micro_points", "micro_mtops_trend", "projected_micro_mtops"]


def micro_points(through: float | None = None) -> list[TrendPoint]:
    """(year, Mtops) observations for 64-bit microprocessors."""
    return [
        TrendPoint(m.year, m.mtops, label=m.name)
        for m in sixty_four_bit_micros(through)
    ]


def micro_mtops_trend(
    through: float | None = None, since: float = 1991.5
) -> ExponentialTrend:
    """Exponential fit of single-chip Mtops over the 64-bit catalog.

    ``since`` defaults to 1991.5, dropping the i860 generation from the
    *fit* (it appears in the Figure 5 point cloud but had no successor and
    its VLIW+graphics-unit rating is ahead of its line's trend).  Over
    1992-1996 the fit doubles roughly every two years, the commodity-
    silicon pace that Chapter 3 rides.
    """
    pts = [p for p in micro_points(through) if p.year >= since]
    if len(pts) < 2:
        raise ValueError("not enough microprocessors in range to fit a trend")
    return fit_exponential([p.year for p in pts], [p.mtops for p in pts])


def projected_micro_mtops(year: float, fit_through: float = 1995.5) -> float:
    """Single-chip Mtops projected to ``year`` from the study-time fit.

    ``fit_through`` defaults to mid-1995 so projections only use data the
    study's authors could have seen.
    """
    check_year(year, "year")
    return float(micro_mtops_trend(fit_through).value(year))
