"""Batched CTP evaluation: rate N configurations in one NumPy pass.

The scalar pipeline (:func:`repro.ctp.metric.ctp` and friends) rates one
configuration per call, which is fine for a license decision and hopeless
for sweep-style studies — ablation grids, Monte-Carlo sensitivity runs,
and year-grid frontier scans all rate thousands of configurations with the
same handful of credit schedules.  This module provides the array
counterparts:

* :func:`theoretical_performance_batch` — per-element ``TP = R * L`` for a
  whole population of computing elements at once;
* :func:`credit_sums` — memoized credit-schedule *prefix sums*, so the CTP
  of ``n`` identical elements is a cached O(1) lookup (``tp * S_n`` with
  ``S_n = 1 + C_2 + ... + C_n``);
* :func:`aggregate_homogeneous_batch` / :func:`ctp_homogeneous_batch` —
  vectorized over arrays of ``(tp, n)`` pairs;
* :func:`aggregate_batch` / :func:`ctp_batch` — vectorized over (possibly
  ragged, possibly heterogeneous) element configurations.

All batch functions agree with their scalar counterparts to well below
1e-9 relative error (the only permitted difference is floating-point
summation order); the parity suite in ``tests/test_ctp_batch.py`` enforces
this across every coupling and cataloged configuration.

Cache strategy
--------------
Credit schedules depend only on ``(coupling, params, beta, n)``.  The cache
maps ``(coupling, params, beta)`` — all hashable, :class:`CTPParameters`
is frozen — to a growing prefix-sum array; a request for a larger ``n``
than cached regrows the array geometrically, so homogeneous ratings of any
shape eventually hit the O(1) path.  Distinct ``params`` (or ``beta``)
values get distinct cache rows, which is what makes ablation sweeps safe:
the regression test asserts a swept parameter never reuses a stale
schedule.

The cache is bounded: ablation sweeps over thousands of distinct
``(coupling, params, beta)`` rows evict least-recently-used rows beyond
``CREDIT_CACHE_MAX_ROWS`` instead of growing without bound.  Hits,
misses, regrows, and evictions are counted through :mod:`repro.obs`
(``credit_cache.*``) and reported by :func:`credit_cache_info`.

The cache is thread-safe: lookups, inserts, evictions, and
:func:`clear_credit_cache` all serialize behind one re-entrant lock, so
the serving layer may rate concurrent batches from many threads without
corrupting LRU order.  Cached rows are immutable (read-only arrays), so
views handed out before an eviction remain valid.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Sequence

import numpy as np

from repro._util import check_fraction
from repro.obs.errors import ValidationError
from repro.obs.trace import counter_inc, counters
from repro.ctp.aggregate import (
    Coupling,
    CTPParameters,
    DEFAULT_PARAMETERS,
    aggregation_credits,
)
from repro.ctp.elements import ComputingElement

__all__ = [
    "theoretical_performance_batch",
    "credit_sums",
    "install_credit_sums",
    "credit_cache_info",
    "clear_credit_cache",
    "aggregate_homogeneous_batch",
    "aggregate_batch",
    "ctp_batch",
    "ctp_homogeneous_batch",
]


def theoretical_performance_batch(
    elements: Sequence[ComputingElement],
) -> np.ndarray:
    """Per-element ``TP = R * L`` in Mtops, one array pass.

    Matches :func:`repro.ctp.rates.theoretical_performance` element-wise:
    concurrent fixed/floating hardware adds rates, otherwise the faster
    unit governs.
    """
    if len(elements) == 0:
        return np.empty(0)
    clock = np.array([e.clock_mhz for e in elements])
    fp = np.array([e.fp_ops_per_cycle for e in elements])
    integer = np.array([e.int_ops_per_cycle for e in elements])
    concurrent = np.array([e.concurrent_int_fp for e in elements], dtype=bool)
    word = np.array([e.word_bits for e in elements])
    r_fp = clock * fp
    r_int = clock * integer
    rate = np.where(concurrent, r_fp + r_int, np.maximum(r_fp, r_int))
    return rate * (1.0 / 3.0 + word / 96.0)


# (coupling, params, beta) -> prefix sums [S_1, S_2, ..., S_k] with
# S_n = sum of the first n credits.  Regrown geometrically on demand,
# LRU-evicted beyond CREDIT_CACHE_MAX_ROWS.
_CREDIT_SUM_CACHE: OrderedDict[tuple[Coupling, CTPParameters, float | None],
                               np.ndarray] = OrderedDict()

# Concurrent /rate batches hit the cache from many threads; without a lock
# the OrderedDict's get/insert/move_to_end/popitem sequences can corrupt
# LRU order or double-evict.  RLock rather than Lock so clear/info helpers
# may call each other.  Rows are read-only arrays, so returning a view
# after releasing the lock is safe even if the row is evicted later.
_CREDIT_CACHE_LOCK = threading.RLock()

#: Generous row bound: a sweep touches a handful of schedules at a time,
#: so even aggressive ablation grids stay well under this while a runaway
#: sweep over thousands of distinct parameter rows no longer leaks memory.
CREDIT_CACHE_MAX_ROWS = 128


def _effective_beta(
    coupling: Coupling,
    params: CTPParameters,
    interconnect_beta: float | None,
) -> float | None:
    """Resolve the cluster discount so equivalent requests share a cache
    row (a CLUSTER request with ``beta=None`` is the same schedule as one
    passing ``params.cluster_beta`` explicitly; other couplings ignore
    beta entirely)."""
    if coupling is not Coupling.CLUSTER:
        return None
    beta = params.cluster_beta if interconnect_beta is None else interconnect_beta
    beta = check_fraction(beta, "interconnect_beta")
    if beta == 0.0:
        raise ValidationError("interconnect_beta must be positive",
                              context={"got": 0.0, "valid": "(0, 1]"})
    return beta


def credit_sums(
    n_max: int,
    coupling: Coupling,
    params: CTPParameters = DEFAULT_PARAMETERS,
    interconnect_beta: float | None = None,
) -> np.ndarray:
    """Memoized credit prefix sums ``[S_1 .. S_n_max]``.

    ``S_n`` is the total credit of ``n`` identical elements, so a
    homogeneous CTP is ``tp * S_n``.  The returned array is a read-only
    view of the cache; do not mutate it.
    """
    if n_max < 1:
        raise ValidationError(f"n_max must be >= 1, got {n_max}",
                              context={"got": n_max, "valid": ">= 1"})
    key = (coupling, params, _effective_beta(coupling, params, interconnect_beta))
    with _CREDIT_CACHE_LOCK:
        cached = _CREDIT_SUM_CACHE.get(key)
        if cached is None or cached.size < n_max:
            if cached is None:
                counter_inc("credit_cache.misses")
            else:
                counter_inc("credit_cache.regrows")
            if coupling is Coupling.SINGLE:
                # SINGLE admits exactly one element; cache the trivial row.
                size = 1
                if n_max > 1:
                    raise ValidationError(
                        "SINGLE coupling admits exactly one element",
                        context={"got": n_max, "valid": "n == 1"},
                    )
            else:
                size = max(n_max,
                           2 * (cached.size if cached is not None else 8))
            credits = aggregation_credits(size, coupling, params,
                                          interconnect_beta)
            cached = np.cumsum(credits)
            cached.setflags(write=False)
            _CREDIT_SUM_CACHE[key] = cached
            while len(_CREDIT_SUM_CACHE) > CREDIT_CACHE_MAX_ROWS:
                _CREDIT_SUM_CACHE.popitem(last=False)
                counter_inc("credit_cache.evictions")
        else:
            counter_inc("credit_cache.hits")
        _CREDIT_SUM_CACHE.move_to_end(key)
        return cached[:n_max]


def install_credit_sums(
    sums: np.ndarray,
    coupling: Coupling,
    params: CTPParameters = DEFAULT_PARAMETERS,
    interconnect_beta: float | None = None,
) -> None:
    """Install a precomputed prefix-sum row (snapshot load path).

    The row lands under exactly the key :func:`credit_sums` would use, so
    subsequent homogeneous ratings up to ``len(sums)`` elements are cache
    hits with zero ``aggregation_credits`` calls.  The array should be
    read-only (snapshot memmaps are); a writable array is frozen here.
    """
    sums = np.asarray(sums, dtype=float)
    if sums.ndim != 1 or sums.size < 1:
        raise ValidationError(
            "credit prefix-sum row must be a non-empty 1-D array",
            context={"got_shape": sums.shape, "valid": "(n,)"},
        )
    if sums.flags.writeable:
        sums = sums.copy()
        sums.setflags(write=False)
    key = (coupling, params,
           _effective_beta(coupling, params, interconnect_beta))
    with _CREDIT_CACHE_LOCK:
        counter_inc("credit_cache.installs")
        _CREDIT_SUM_CACHE[key] = sums
        _CREDIT_SUM_CACHE.move_to_end(key)
        while len(_CREDIT_SUM_CACHE) > CREDIT_CACHE_MAX_ROWS:
            _CREDIT_SUM_CACHE.popitem(last=False)
            counter_inc("credit_cache.evictions")


def credit_cache_info() -> dict[str, int]:
    """Cache introspection: current contents plus lifetime counters.

    ``entries`` (and its alias ``rows``) is the number of cached schedule
    rows — accurate after geometric regrow (a regrown row is still one
    row) and after :func:`clear_credit_cache` (zero).  ``total_length``
    is the summed length of the cached prefix-sum arrays.  The counters
    (``hits``/``misses``/``regrows``/``evictions``) accumulate since the
    last :func:`clear_credit_cache`.
    """
    stats = counters()
    with _CREDIT_CACHE_LOCK:
        entries = len(_CREDIT_SUM_CACHE)
        total_length = int(sum(a.size for a in _CREDIT_SUM_CACHE.values()))
    return {
        "entries": entries,
        "rows": entries,
        "total_length": total_length,
        "max_rows": CREDIT_CACHE_MAX_ROWS,
        "hits": int(stats.get("credit_cache.hits", 0)),
        "misses": int(stats.get("credit_cache.misses", 0)),
        "regrows": int(stats.get("credit_cache.regrows", 0)),
        "evictions": int(stats.get("credit_cache.evictions", 0)),
        "installs": int(stats.get("credit_cache.installs", 0)),
    }


def clear_credit_cache() -> None:
    """Drop all cached credit schedules and reset the ``credit_cache.*``
    counters (tests and ablation hygiene)."""
    from repro.obs.trace import reset_counters

    with _CREDIT_CACHE_LOCK:
        _CREDIT_SUM_CACHE.clear()
        reset_counters("credit_cache.")


# Credit rows are keyed by (coupling, params, clip) — pure CTP-metric
# content, independent of the machine catalog and threshold history — so
# no event kind can stale them.  kinds=() registers the clear on the
# atomic invalidate_all path only.
def _register_credit_hook() -> None:
    from repro.catalog.registry import register_invalidation_hook

    register_invalidation_hook(
        "ctp.credit_cache", lambda epoch: clear_credit_cache())


_register_credit_hook()


def aggregate_homogeneous_batch(
    tps: Sequence[float] | np.ndarray,
    ns: Sequence[int] | np.ndarray,
    coupling: Coupling,
    params: CTPParameters = DEFAULT_PARAMETERS,
    interconnect_beta: float | None = None,
) -> np.ndarray:
    """CTP of many homogeneous configurations: ``tps[i]`` Mtops per element,
    ``ns[i]`` elements each.

    ``n == 1`` rows take the uniprocessor path regardless of ``coupling``
    (``S_1 = 1``), matching the scalar API's SINGLE fallback.
    """
    tp = np.asarray(tps, dtype=float)
    n = np.asarray(ns, dtype=np.int64)
    if tp.shape != n.shape or tp.ndim != 1:
        raise ValidationError(
            "tps and ns must be 1-D arrays of equal length",
            context={"tps_shape": tp.shape, "ns_shape": n.shape},
        )
    if tp.size == 0:
        return np.empty(0)
    if np.any(tp <= 0) or not np.all(np.isfinite(tp)):
        raise ValidationError(
            "all theoretical performances must be finite and positive",
            context={"min": float(tp.min()), "valid": "> 0"},
        )
    if np.any(n < 1):
        raise ValidationError("all element counts must be >= 1",
                              context={"min": int(n.min()), "valid": ">= 1"})
    n_max = int(n.max())
    if coupling is Coupling.SINGLE and n_max > 1:
        raise ValidationError("SINGLE coupling admits exactly one element",
                              context={"got": n_max, "valid": "n == 1"})
    sums = credit_sums(n_max, coupling, params, interconnect_beta)
    return tp * sums[n - 1]


def aggregate_batch(
    tps_per_config: Sequence[Sequence[float]] | np.ndarray,
    coupling: Coupling,
    params: CTPParameters = DEFAULT_PARAMETERS,
    interconnect_beta: float | None = None,
) -> np.ndarray:
    """CTP of N (possibly heterogeneous, possibly ragged) configurations.

    ``tps_per_config`` is either a 2-D array (one configuration per row) or
    a sequence of per-configuration TP sequences of varying length.  Each
    row is sorted descending and dotted with the credit schedule, exactly
    as :func:`repro.ctp.aggregate.aggregate` does one row at a time.
    """
    rows = [np.asarray(row, dtype=float) for row in tps_per_config]
    if len(rows) == 0:
        return np.empty(0)
    lengths = np.array([r.size for r in rows], dtype=np.int64)
    if np.any(lengths == 0):
        raise ValidationError(
            "at least one computing element is required per configuration",
            context={"empty_rows": int(np.sum(lengths == 0)),
                     "valid": ">= 1 element per configuration"},
        )
    if coupling is Coupling.SINGLE and int(lengths.max()) > 1:
        raise ValidationError("SINGLE coupling admits exactly one element",
                              context={"got": int(lengths.max()),
                                       "valid": "n == 1"})
    for r in rows:
        if r.ndim != 1:
            raise ValidationError(
                "each configuration must be a 1-D sequence of TPs",
                context={"got_ndim": r.ndim, "valid": "1-D"},
            )
        if np.any(r <= 0) or not np.all(np.isfinite(r)):
            raise ValidationError(
                "all theoretical performances must be finite and positive",
                context={"min": float(r.min()), "valid": "> 0"},
            )
    k_max = int(lengths.max())
    # Pad with zeros *after* validation: padded slots earn credit times
    # zero, so they cannot perturb the rating.
    mat = np.zeros((len(rows), k_max))
    for i, r in enumerate(rows):
        mat[i, : r.size] = r
    mat = -np.sort(-mat, axis=1)  # descending per row; zeros sink to the end
    if k_max == 1:
        return mat[:, 0].copy()
    credits = aggregation_credits(k_max, coupling, params, interconnect_beta)
    return mat @ credits


def ctp_batch(
    configurations: Sequence[Sequence[ComputingElement]],
    coupling: Coupling,
    params: CTPParameters = DEFAULT_PARAMETERS,
    interconnect_beta: float | None = None,
) -> np.ndarray:
    """CTP in Mtops of N element configurations in one pass.

    The batched equivalent of calling :func:`repro.ctp.metric.ctp` per
    configuration.  Element TPs are computed in a single flattened array
    pass, then re-split and aggregated per configuration.
    """
    flat: list[ComputingElement] = []
    lengths = []
    for config in configurations:
        config = list(config)
        lengths.append(len(config))
        flat.extend(config)
    tps = theoretical_performance_batch(flat)
    split = np.split(tps, np.cumsum(lengths)[:-1]) if lengths else []
    return aggregate_batch(split, coupling, params, interconnect_beta)


def ctp_homogeneous_batch(
    elements: Sequence[ComputingElement],
    ns: Sequence[int] | np.ndarray,
    coupling: Coupling,
    params: CTPParameters = DEFAULT_PARAMETERS,
    interconnect_beta: float | None = None,
) -> np.ndarray:
    """CTP of many homogeneous machines: ``ns[i]`` copies of
    ``elements[i]``.

    This is the catalog's common shape (every commercial system is ``n``
    identical processors), and the fully cached path: after the first call
    per coupling the per-machine cost is one multiply and one indexed
    lookup.
    """
    tps = theoretical_performance_batch(elements)
    return aggregate_homogeneous_batch(tps, ns, coupling, params,
                                       interconnect_beta)
