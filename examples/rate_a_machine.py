#!/usr/bin/env python
"""Rate hardware under the CTP metric and the export-control regime.

Builds machines from computing elements — a 1995 workstation, a maximum-
configuration SMP, an MPP, and a hypothetical home-built cluster of
commodity Pentium Pro boards (the kind of system Chapter 3 worries about)
— rates each in Mtops, and runs license decisions against the 1,500-Mtops
definition in force in 1995.

Run:  python examples/rate_a_machine.py
"""

from repro.ctp import ComputingElement, Coupling, ctp_homogeneous
from repro.diffusion.policy import ExportControlPolicy, threshold_at
from repro.machines.catalog import find_machine
from repro.machines.microprocessors import find_micro
from repro.reporting.tables import render_table

YEAR = 1995.5


def main() -> None:
    alpha = find_micro("Alpha 21164-300").element
    p6 = find_micro("Pentium Pro-200").element
    custom = ComputingElement(
        name="hypothetical 500 MHz RISC",
        clock_mhz=500.0, word_bits=64.0,
        fp_ops_per_cycle=2.0, int_ops_per_cycle=2.0, concurrent_int_fp=True,
    )

    configs = [
        ("AlphaStation (1 x 21164)", alpha, 1, Coupling.SINGLE),
        ("AlphaServer 8400 (12 x 21164)", alpha, 12, Coupling.SHARED),
        ("Paragon-style MPP (64 x 21164)", alpha, 64, Coupling.DISTRIBUTED),
        ("Garage cluster (64 x Pentium Pro)", p6, 64, Coupling.CLUSTER),
        ("Garage cluster (256 x Pentium Pro)", p6, 256, Coupling.CLUSTER),
        ("Hypothetical 1998 SMP (16 x 500 MHz)", custom, 16, Coupling.SHARED),
    ]

    threshold = threshold_at(YEAR)
    rows = []
    for name, element, n, coupling in configs:
        rating = ctp_homogeneous(element, n, coupling)
        rows.append([name, n, round(rating),
                     "supercomputer" if rating >= threshold else "below"])
    print(render_table(
        ["configuration", "CPUs", "CTP (Mtops)",
         f"vs {threshold:,.0f}-Mtops definition"],
        rows,
        title="Rating machines under the CTP metric",
    ))
    print("\nNote the cluster rows: big aggregates of uncontrollable parts "
          "cross the definition — 'there is no approved way of computing "
          "their CTP' was the era's open problem (Chapter 3, note 55).\n")

    policy = ExportControlPolicy(threshold)
    rows = []
    for key in ("Sun SPARCstation 10", "SGI PowerChallenge (4)",
                "Cray C916", "Cray T3D (512)"):
        machine = find_machine(key)
        for destination in ("UK", "India", "Iran"):
            d = policy.license_decision(machine, destination)
            rows.append([
                machine.key, destination, round(d.rating_mtops),
                "yes" if d.requires_license else "no",
                "yes" if d.safeguards_required else "no",
                "approved" if d.approved else "DENIED",
            ])
    print(render_table(
        ["machine", "destination", "rated Mtops", "license?", "safeguards?",
         "outcome"],
        rows,
        title="License decisions under the 1994 regime "
              "(field-upgradable families rated at their ceiling)",
    ))


if __name__ == "__main__":
    main()
