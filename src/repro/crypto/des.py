"""The Data Encryption Standard (FIPS 46), vectorized over keys.

Blocks and keys are represented as boolean bit arrays (MSB first), so every
DES permutation is a single numpy fancy-indexing gather and the whole
cipher vectorizes cleanly over an axis of candidate keys — which is exactly
the shape a brute-force keysearch needs (one plaintext, many keys).

Correctness is pinned by the classical known-answer tests (see
``tests/test_crypto_des.py``): the Stinson/FIPS exercise vector
``DES(0x0123456789ABCDEF, key=0x133457799BBCDFF1) = 0x85E813540F0AB405``
and the all-zeros / all-ones vectors.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "int_to_bits",
    "bits_to_int",
    "key_schedule_bits",
    "encrypt_blocks",
    "des_encrypt_block",
    "des_decrypt_block",
]

# --------------------------------------------------------------------------
# FIPS 46 tables (1-based bit positions, MSB = bit 1).

_IP = [58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4,
       62, 54, 46, 38, 30, 22, 14, 6, 64, 56, 48, 40, 32, 24, 16, 8,
       57, 49, 41, 33, 25, 17, 9, 1, 59, 51, 43, 35, 27, 19, 11, 3,
       61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7]

_FP = [40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31,
       38, 6, 46, 14, 54, 22, 62, 30, 37, 5, 45, 13, 53, 21, 61, 29,
       36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
       34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9, 49, 17, 57, 25]

_E = [32, 1, 2, 3, 4, 5, 4, 5, 6, 7, 8, 9,
      8, 9, 10, 11, 12, 13, 12, 13, 14, 15, 16, 17,
      16, 17, 18, 19, 20, 21, 20, 21, 22, 23, 24, 25,
      24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1]

_P = [16, 7, 20, 21, 29, 12, 28, 17, 1, 15, 23, 26, 5, 18, 31, 10,
      2, 8, 24, 14, 32, 27, 3, 9, 19, 13, 30, 6, 22, 11, 4, 25]

_PC1 = [57, 49, 41, 33, 25, 17, 9, 1, 58, 50, 42, 34, 26, 18,
        10, 2, 59, 51, 43, 35, 27, 19, 11, 3, 60, 52, 44, 36,
        63, 55, 47, 39, 31, 23, 15, 7, 62, 54, 46, 38, 30, 22,
        14, 6, 61, 53, 45, 37, 29, 21, 13, 5, 28, 20, 12, 4]

_PC2 = [14, 17, 11, 24, 1, 5, 3, 28, 15, 6, 21, 10,
        23, 19, 12, 4, 26, 8, 16, 7, 27, 20, 13, 2,
        41, 52, 31, 37, 47, 55, 30, 40, 51, 45, 33, 48,
        44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32]

_SHIFTS = [1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1]

_SBOXES = np.array([
    # S1
    [[14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7],
     [0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8],
     [4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0],
     [15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13]],
    # S2
    [[15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10],
     [3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5],
     [0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15],
     [13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9]],
    # S3
    [[10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8],
     [13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1],
     [13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7],
     [1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12]],
    # S4
    [[7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15],
     [13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9],
     [10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4],
     [3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14]],
    # S5
    [[2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9],
     [14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6],
     [4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14],
     [11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3]],
    # S6
    [[12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11],
     [10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8],
     [9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6],
     [4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13]],
    # S7
    [[4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1],
     [13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6],
     [1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2],
     [6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12]],
    # S8
    [[13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7],
     [1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2],
     [7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8],
     [2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11]],
], dtype=np.uint8)

# Pre-converted 0-based gather indices.
_IP_IDX = np.array(_IP) - 1
_FP_IDX = np.array(_FP) - 1
_E_IDX = np.array(_E) - 1
_P_IDX = np.array(_P) - 1
_PC1_IDX = np.array(_PC1) - 1
_PC2_IDX = np.array(_PC2) - 1

#: Powers of two used to turn 6-bit S-box inputs into row/column indices.
_ROW_W = np.array([2, 1], dtype=np.uint8)
_COL_W = np.array([8, 4, 2, 1], dtype=np.uint8)


def int_to_bits(value: int, width: int) -> np.ndarray:
    """Integer -> MSB-first boolean bit array of length ``width``."""
    if value < 0 or value >= 1 << width:
        raise ValueError(f"value does not fit in {width} bits")
    return np.array([(value >> (width - 1 - i)) & 1 for i in range(width)],
                    dtype=bool)


def bits_to_int(bits: np.ndarray) -> int:
    """MSB-first boolean bit array -> integer."""
    out = 0
    for b in np.asarray(bits, dtype=bool).ravel():
        out = (out << 1) | int(b)
    return out


def key_schedule_bits(key_bits: np.ndarray) -> np.ndarray:
    """Sixteen 48-bit round keys from 64-bit keys.

    ``key_bits`` has shape ``(..., 64)``; the result ``(..., 16, 48)``.
    Parity bits (every 8th) are ignored, per the standard.
    """
    key_bits = np.asarray(key_bits, dtype=bool)
    if key_bits.shape[-1] != 64:
        raise ValueError("keys must be 64 bits wide")
    cd = key_bits[..., _PC1_IDX]                       # (..., 56)
    c, d = cd[..., :28], cd[..., 28:]
    rounds = []
    for shift in _SHIFTS:
        c = np.concatenate([c[..., shift:], c[..., :shift]], axis=-1)
        d = np.concatenate([d[..., shift:], d[..., :shift]], axis=-1)
        rounds.append(np.concatenate([c, d], axis=-1)[..., _PC2_IDX])
    return np.stack(rounds, axis=-2)                   # (..., 16, 48)


def _feistel(right: np.ndarray, round_key: np.ndarray) -> np.ndarray:
    """The f-function: expand, key-mix, S-boxes, permute.

    ``right``: (..., 32); ``round_key``: (..., 48).
    """
    x = right[..., _E_IDX] ^ round_key                 # (..., 48)
    x6 = x.reshape(*x.shape[:-1], 8, 6)
    rows = (x6[..., [0, 5]].astype(np.uint8) * _ROW_W).sum(axis=-1)
    cols = (x6[..., 1:5].astype(np.uint8) * _COL_W).sum(axis=-1)
    sbox_idx = np.arange(8)
    nibbles = _SBOXES[sbox_idx, rows, cols]            # (..., 8) values 0-15
    out_bits = (
        (nibbles[..., None] >> np.array([3, 2, 1, 0])) & 1
    ).astype(bool)                                     # (..., 8, 4)
    flat = out_bits.reshape(*out_bits.shape[:-2], 32)
    return flat[..., _P_IDX]


def encrypt_blocks(
    plain_bits: np.ndarray,
    key_bits: np.ndarray,
    decrypt: bool = False,
) -> np.ndarray:
    """DES over broadcast-compatible bit arrays.

    ``plain_bits``: (..., 64); ``key_bits``: (..., 64).  The leading shapes
    broadcast, so one plaintext against ``(n, 64)`` keys yields ``(n, 64)``
    ciphertexts — the keysearch shape.
    """
    plain_bits = np.asarray(plain_bits, dtype=bool)
    if plain_bits.shape[-1] != 64:
        raise ValueError("blocks must be 64 bits wide")
    round_keys = key_schedule_bits(key_bits)
    if decrypt:
        round_keys = round_keys[..., ::-1, :]
    state = plain_bits[..., _IP_IDX]
    left, right = state[..., :32], state[..., 32:]
    for r in range(16):
        # xor broadcasting carries the key batch shape through the rounds.
        left, right = right, left ^ _feistel(right, round_keys[..., r, :])
    left = np.broadcast_to(left, right.shape)
    # Final swap then inverse initial permutation.
    preoutput = np.concatenate([right, left], axis=-1)
    return preoutput[..., _FP_IDX]


def des_encrypt_block(plaintext: int, key: int) -> int:
    """Encrypt one 64-bit block under one 64-bit key (integers)."""
    out = encrypt_blocks(int_to_bits(plaintext, 64), int_to_bits(key, 64))
    return bits_to_int(out)


def des_decrypt_block(ciphertext: int, key: int) -> int:
    """Decrypt one 64-bit block under one 64-bit key (integers)."""
    out = encrypt_blocks(int_to_bits(ciphertext, 64), int_to_bits(key, 64),
                         decrypt=True)
    return bits_to_int(out)
