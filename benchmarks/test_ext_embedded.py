"""Extension experiment: deployability under size/weight/power limits.

Chapter 4's operations chapter keeps hitting the same wall: the deployed
form of a sensor or battle-management system must fit a platform's power
budget, which "precludes the use of clustered or networked systems".  This
bench builds the deployability matrix for the military-operations catalog
and the first-deployable-year timeline.
"""

from repro.apps.catalog import applications_by_mission
from repro.apps.taxonomy import MissionArea, TimingClass
from repro.reporting.tables import render_table
from repro.simulate.embedded import (
    Platform,
    assess_deployability,
    swap_limited_mtops,
)

_PLATFORMS = (Platform.MAN_PACK, Platform.AIRBORNE_POD,
              Platform.FIGHTER_AVIONICS_BAY, Platform.SHIPBOARD)


def build_matrix():
    apps = [a for a in applications_by_mission(MissionArea.MILITARY_OPERATIONS)
            if a.timing is TimingClass.REAL_TIME]
    matrix = {
        (a.name, p): assess_deployability(a, p, 1995.5)
        for a in apps for p in _PLATFORMS
    }
    return apps, matrix


def test_ext_deployability(benchmark, emit):
    apps, matrix = benchmark(build_matrix)
    rows = []
    for a in apps:
        cells = []
        for p in _PLATFORMS:
            cell = matrix[(a.name, p)]
            cells.append("yes" if cell.deployable
                         else f"{cell.first_deployable_year:.0f}")
        rows.append([a.name, round(a.min_mtops)] + cells)
    text = render_table(
        ["real-time application", "needs (Mtops)"]
        + [p.name.lower() for p in _PLATFORMS],
        rows,
        title="Deployability at mid-1995 (yes, or first feasible year)",
    )
    budgets = ", ".join(f"{p.name.lower()}={p.power_budget_w:,.0f}W"
                        for p in _PLATFORMS)
    text += (f"\n\npower budgets: {budgets}"
             f"\nshipboard capability mid-1995: "
             f"{swap_limited_mtops(1995.5, 10_000.0):,.0f} Mtops")
    emit(text)

    # The structural claims: nothing heavy is man-packable in 1995; the
    # shipboard budget covers the SIRST-class requirement; everything
    # becomes deployable eventually (the trend the paper says is driving
    # the operations boom).
    heavy = [a for a in apps if a.min_mtops >= 5_000.0]
    assert heavy
    for a in heavy:
        assert not matrix[(a.name, Platform.MAN_PACK)].deployable
    sirst = [a for a in apps if a.name.startswith("SIRST")][0]
    assert matrix[(sirst.name, Platform.SHIPBOARD)].deployable
    for a in apps:
        cell = matrix[(a.name, Platform.SHIPBOARD)]
        assert cell.deployable or cell.first_deployable_year < 2005.0
