"""Event-sourced catalog mutation: epochs, incremental index parity,
atomic invalidation, and the serving surfaces built on top.

The load-bearing property is **per-event bit-parity**: after every
applied event, the incrementally patched columnar stores and frontier
indexes must equal a from-scratch rebuild bit for bit
(``full_rebuild_parity``).  Around it: the knife-edge frontier append
(a new machine rating *exactly* the current running max must neither
regress the index nor flip the leader), threshold amendments straddling
``threshold_at`` bisect era boundaries, the epoch read/write guard that
lets an in-flight micro-batch complete against its admission epoch, the
epoch-keyed serve cache, and the pre-fork ``snapshot_stale`` fast
failure.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time

import pytest

from repro.catalog.events import (
    AmendMachine,
    AmendThreshold,
    AppendMachine,
    apply_event,
    full_rebuild_parity,
    parse_event,
    reset_catalog,
)
from repro.catalog.registry import (
    current_epoch,
    invalidate_all,
    invalidate_for,
    register_invalidation_hook,
    unregister_invalidation_hook,
)
from repro.controllability.frontier import (
    UNCONTROLLABILITY_LAG_YEARS,
    _frontier_index,
    lower_bound_uncontrollable,
)
from repro.controllability.index import DEFAULT_WEIGHTS, assess
from repro.diffusion.policy import threshold_at
from repro.machines.catalog import find_machine
from repro.machines.columns import machine_columns
from repro.obs.errors import (
    CatalogLookupError,
    SnapshotStaleError,
    ValidationError,
)
from repro.serve.cache import MISS, LRUCache
from repro.serve.server import ServeConfig, ServiceEngine


@pytest.fixture(autouse=True)
def _restore_catalog():
    """Every test leaves the baseline catalog, thresholds, and epoch 0."""
    yield
    reset_catalog()


def _payload(vendor="TestCo", model="Churn-1", **overrides) -> dict:
    machine = {
        "vendor": vendor, "model": model, "country": "USA",
        "year": 1995.5, "architecture": "smp", "n_processors": 4,
        "element": {"name": "tc", "clock_mhz": 150.0, "word_bits": 64,
                    "fp_ops_per_cycle": 1, "int_ops_per_cycle": 1,
                    "concurrent_int_fp": False},
        "quoted_ctp_mtops": 1800.0,
    }
    machine.update(overrides)
    return {"event": "append_machine", "machine": machine}


class TestEventApplication:
    def test_append_bumps_epoch_and_keeps_parity(self):
        assert current_epoch() == 0
        outcome = apply_event(parse_event(_payload()))
        assert outcome.applied and outcome.epoch == 1
        assert current_epoch() == 1
        assert find_machine("TestCo Churn-1").ctp_mtops == 1800.0
        report = full_rebuild_parity()
        assert report["all"], report

    def test_replay_is_explicit_noop(self):
        event = parse_event(_payload())
        first = apply_event(event)
        replay = apply_event(event)
        assert first.applied and not replay.applied
        assert replay.epoch == first.epoch == current_epoch() == 1

    def test_append_existing_key_with_different_fields_rejected(self):
        apply_event(parse_event(_payload()))
        with pytest.raises(ValidationError):
            apply_event(parse_event(_payload(quoted_ctp_mtops=999.0)))

    def test_amend_machine_parity_and_visibility(self):
        apply_event(parse_event(_payload()))
        before = machine_columns()
        row = before.index_by_key["TestCo Churn-1"]
        amended = {"event": "amend_machine", "key": "TestCo Churn-1",
                   "machine": _payload(units_installed=12)["machine"]}
        outcome = apply_event(parse_event(amended))
        assert outcome.applied and outcome.epoch == 2
        after = machine_columns()
        assert after.units_installed[after.index_by_key["TestCo Churn-1"]] \
            == 12.0
        assert before.units_installed[row] != 12.0
        assert find_machine("TestCo Churn-1").units_installed == 12
        assert full_rebuild_parity()["all"]

    def test_amend_baseline_machine_no_stale_path(self):
        """Satellite regression: after a mutation, *no* reader path may
        return pre-mutation values."""
        machine = find_machine("Cray CS6400 (64)")
        before_cols = machine_columns()
        row = before_cols.index_by_key[machine.key]
        before_units = float(before_cols.units_installed[row])
        before_index = assess(machine).index
        amended = dataclasses.replace(
            machine, units_installed=(machine.units_installed or 0) + 500)
        outcome = apply_event(AmendMachine(key=machine.key,
                                           machine=amended))
        assert outcome.applied
        live = find_machine(machine.key)
        assert live.units_installed == (machine.units_installed or 0) + 500
        after_cols = machine_columns()
        after_units = float(
            after_cols.units_installed[after_cols.index_by_key[machine.key]])
        assert after_units != before_units
        assert assess(live).index != before_index
        assert full_rebuild_parity()["all"]

    def test_epoch_strictly_monotonic_across_kinds(self):
        epochs = []
        epochs.append(apply_event(parse_event(_payload())).epoch)
        epochs.append(apply_event(AmendThreshold(
            start_year=1994.1, threshold_mtops=7000.0)).epoch)
        epochs.append(apply_event(parse_event(
            _payload(model="Churn-2"))).epoch)
        assert epochs == [1, 2, 3] and current_epoch() == 3

    def test_reset_restores_baseline(self):
        apply_event(parse_event(_payload()))
        apply_event(AmendThreshold(start_year=1994.1,
                                   threshold_mtops=7000.0))
        reset_catalog()
        assert current_epoch() == 0
        assert threshold_at(1995.0) == 1500.0
        with pytest.raises(CatalogLookupError):
            find_machine("TestCo Churn-1")
        assert full_rebuild_parity()["all"]

    def test_parse_event_rejects_unknown_kinds_and_extra_fields(self):
        with pytest.raises(ValidationError):
            parse_event({"event": "drop_machine", "key": "x"})
        with pytest.raises(ValidationError):
            parse_event({**_payload(), "surprise": 1})
        with pytest.raises(ValidationError):
            parse_event({"event": "amend_threshold", "start_year": 1994.1})


class TestFrontierEdgeCases:
    def test_knife_edge_append_keeps_leader_and_running_max(self):
        """A new machine rating exactly the current frontier max must
        not regress the running max, and the strict-> leader rule keeps
        the incumbent."""
        index = _frontier_index(DEFAULT_WEIGHTS, UNCONTROLLABILITY_LAG_YEARS)
        incumbent = index.leaders[-1]
        probe_year = incumbent.year + UNCONTROLLABILITY_LAG_YEARS + 0.5
        before = lower_bound_uncontrollable(probe_year)
        # "ZZEdge ..." sorts after the incumbent at the same year, so the
        # incumbent stays the leader under the first-at-max rule in both
        # the patched index and a full rebuild.
        clone = dataclasses.replace(incumbent, vendor="ZZEdge",
                                    model="Clone-1")
        outcome = apply_event(AppendMachine(machine=clone))
        assert outcome.applied
        after = lower_bound_uncontrollable(probe_year)
        assert after.mtops == before.mtops
        assert after.machine.key == incumbent.key
        assert full_rebuild_parity()["all"]

    def test_append_above_frontier_advances_running_max(self):
        index = _frontier_index(DEFAULT_WEIGHTS, UNCONTROLLABILITY_LAG_YEARS)
        incumbent = index.leaders[-1]
        probe_year = incumbent.year + UNCONTROLLABILITY_LAG_YEARS + 0.5
        before = lower_bound_uncontrollable(probe_year)
        champ = dataclasses.replace(
            incumbent, vendor="ZZEdge", model="Champ-1",
            quoted_ctp_mtops=before.mtops * 2,
            quoted_peak_mflops=None)
        apply_event(AppendMachine(machine=champ))
        after = lower_bound_uncontrollable(probe_year)
        assert after.mtops == before.mtops * 2
        assert after.machine.key == "ZZEdge Champ-1"
        assert full_rebuild_parity()["all"]


class TestThresholdEraBoundaries:
    def test_amend_inside_bisect_boundaries(self):
        """Amending the 1991.5 era must move exactly the half-open
        [1991.5, 1994.1) span the bisect serves."""
        assert threshold_at(1991.4999) == 160.0
        assert threshold_at(1991.5) == 195.0
        outcome = apply_event(AmendThreshold(start_year=1991.5,
                                             threshold_mtops=250.0))
        assert outcome.applied and current_epoch() == 1
        assert threshold_at(1991.4999) == 160.0
        assert threshold_at(1991.5) == 250.0
        assert threshold_at(1994.0999) == 250.0
        assert threshold_at(1994.1) == 1500.0
        assert full_rebuild_parity()["all"]

    def test_amend_threshold_noop_and_unknown_era(self):
        outcome = apply_event(AmendThreshold(start_year=1994.1,
                                             threshold_mtops=1500.0))
        assert not outcome.applied and current_epoch() == 0
        with pytest.raises(ValidationError):
            apply_event(AmendThreshold(start_year=1993.0,
                                       threshold_mtops=100.0))


class TestInvalidationRegistry:
    def test_invalidate_all_runs_every_hook(self):
        # Hooks register at import time; make sure the store module (the
        # only one not already pulled in transitively) is loaded.
        import repro.store  # noqa: F401

        ran = invalidate_all()
        assert "machines.columns" in ran
        assert "controllability.frontier" in ran
        assert "store.snapshot" in ran
        assert "diffusion.columns.requirements" in ran

    def test_invalidate_for_is_kind_precise(self):
        calls: list[tuple[str, int]] = []
        register_invalidation_hook(
            "test.machine_kinds",
            lambda epoch: calls.append(("machine", epoch)),
            kinds=("append_machine",))
        register_invalidation_hook(
            "test.nuclear_only",
            lambda epoch: calls.append(("nuclear", epoch)))
        try:
            ran = invalidate_for("append_machine", 7)
            assert "test.machine_kinds" in ran
            assert "test.nuclear_only" not in ran
            assert ("machine", 7) in calls and ("nuclear", 7) not in calls
            ran_all = invalidate_all(8)
            assert {"test.machine_kinds", "test.nuclear_only"} <= set(ran_all)
            assert ("nuclear", 8) in calls
        finally:
            assert unregister_invalidation_hook("test.machine_kinds")
            assert unregister_invalidation_hook("test.nuclear_only")

    def test_requirement_matrices_survive_machine_events(self):
        """APPLICATIONS-derived state is catalog-independent: the
        precise path must not purge it."""
        ran = invalidate_for("append_machine", 1)
        assert "diffusion.columns.requirements" not in ran


class TestEpochGuardInterleaving:
    def test_batch_admitted_at_epoch_n_completes_against_it(self):
        """A dispatch in flight under the read guard blocks the event
        writer; the batch's results reflect the admission epoch, and the
        event lands only after the batch drains."""
        from repro.serve.batching import MicroBatcher

        entered = threading.Event()
        release = threading.Event()

        def dispatch(requests):
            entered.set()
            assert release.wait(5.0)
            return [threshold_at(1995.0) for _ in requests]

        batcher = MicroBatcher("epochtest", dispatch, max_batch=4)
        try:
            future = batcher.submit(object())
            assert entered.wait(5.0)
            applier = threading.Thread(target=apply_event, args=(
                AmendThreshold(start_year=1994.1,
                               threshold_mtops=9000.0),))
            applier.start()
            time.sleep(0.1)
            # The writer waits behind the in-flight batch's read guard.
            assert applier.is_alive()
            assert current_epoch() == 0
            release.set()
            assert future.result(timeout=5.0) == 1500.0  # admission value
            applier.join(timeout=5.0)
            assert not applier.is_alive()
            assert current_epoch() == 1
            assert batcher.stats()["last_dispatch_epoch"] == 0
            # The next batch runs entirely post-event.
            assert batcher.submit(object()).result(timeout=5.0) == 9000.0
            assert batcher.stats()["last_dispatch_epoch"] == 1
        finally:
            release.set()
            batcher.stop()


class TestServeEpochConsistency:
    def test_epoch_keyed_cache_and_append_endpoint(self):
        engine = ServiceEngine(ServeConfig(cache_size=64))
        try:
            rate = {"clock_mhz": 100, "word_bits": 64,
                    "processors": 4, "year": 1995.0}
            status, before = engine.handle("rate", rate)
            assert status == 200
            engine.handle("rate", rate)
            assert engine.cache.info()["hits"] == 1

            status, body = engine.handle("catalog_append", parse := _payload())
            assert status == 200
            assert body["applied"] and body["epoch"] == 1
            assert engine.cache.info()["purges"] == 1
            assert len(engine.cache) == 0

            status, body = engine.handle("catalog_append", parse)
            assert status == 200 and not body["applied"]

            status, after = engine.handle("rate", rate)
            assert status == 200 and after == before  # rate is catalog-free
            assert engine.metrics()["serve"]["catalog_epoch"] == 1
            assert "catalog/append" in engine.healthz()["endpoints"]
        finally:
            engine.close()

    def test_threshold_amend_changes_served_rate_verdict(self):
        engine = ServiceEngine(ServeConfig(cache_size=64))
        try:
            rate = {"clock_mhz": 200, "word_bits": 64,
                    "processors": 16, "year": 1995.0}
            _, before = engine.handle("rate", rate)
            event = {"event": "amend_threshold", "start_year": 1994.1,
                     "threshold_mtops": before["ctp_mtops"] * 2}
            status, body = engine.handle("catalog_append", event)
            assert status == 200 and body["applied"]
            _, after = engine.handle("rate", rate)
            assert after["threshold_mtops"] == before["ctp_mtops"] * 2
            assert after["supercomputer"] != before["supercomputer"] \
                or not before["supercomputer"]
        finally:
            engine.close()

    def test_malformed_event_is_structured_400(self):
        engine = ServiceEngine(ServeConfig(cache_size=0))
        try:
            status, body = engine.handle("catalog_append",
                                         {"event": "explode"})
            assert status == 400 and body["error"]["type"] \
                == "ValidationError"
            status, body = engine.handle("catalog_append", [1, 2])
            assert status == 400
        finally:
            engine.close()


class TestLRUCacheEpochPurge:
    def test_purge_below_epoch(self):
        cache = LRUCache(8, counter_prefix="test.cache")
        cache.put((0, "a"), {"v": 1})
        cache.put((1, "a"), {"v": 2})
        cache.put((2, "b"), {"v": 3})
        cache.put("legacy-key", {"v": 4})  # epoch 0 by construction
        purged = cache.purge_below_epoch(2)
        assert purged == 3
        assert cache.get((2, "b")) == {"v": 3}
        assert cache.get((1, "a")) is MISS
        assert cache.get("legacy-key") is MISS
        info = cache.info()
        assert info["purges"] == 3 and info["entries"] == 1

    def test_purge_noop_below_or_at_existing_epochs(self):
        cache = LRUCache(8)
        cache.put((3, "x"), {"v": 1})
        assert cache.purge_below_epoch(3) == 0
        assert cache.get((3, "x")) == {"v": 1}


class TestSnapshotEpochs:
    def test_manifest_records_epoch_and_stale_error_carries_delta(
            self, tmp_path):
        from repro.store import build_snapshot, load_snapshot

        info = build_snapshot(tmp_path / "snap")
        assert info.manifest["epoch"] == 0
        load_snapshot(tmp_path / "snap")

        apply_event(parse_event(_payload()))
        # The event deactivated the snapshot (this process no longer
        # serves from it)...
        from repro.store import active_manifest_hash

        assert active_manifest_hash() is None
        # ...and re-loading the now-stale artifact reports how many
        # epochs the live catalog has moved past it.
        with pytest.raises(SnapshotStaleError) as excinfo:
            load_snapshot(tmp_path / "snap")
        assert excinfo.value.context["epoch_delta"] == 1

    def test_verify_active_snapshot_noop_without_snapshot(self):
        from repro.store import verify_active_snapshot

        verify_active_snapshot()  # must not raise

    def test_snapshot_after_events_round_trips(self, tmp_path):
        from repro.store import build_snapshot, clear_store_caches, \
            load_snapshot

        apply_event(parse_event(_payload()))
        info = build_snapshot(tmp_path / "snap")
        assert info.manifest["epoch"] == 1
        clear_store_caches()
        loaded = load_snapshot(tmp_path / "snap")
        assert loaded.manifest_hash == info.manifest_hash
        assert find_machine("TestCo Churn-1").ctp_mtops == 1800.0


class TestPreforkStaleFastFailure:
    def test_stale_worker_fails_fleet_with_diagnosis(self, tmp_path):
        from repro.machines import catalog as machine_catalog
        from repro.serve.prefork import PreforkServer
        from repro.store import build_snapshot, load_snapshot

        build_snapshot(tmp_path / "snap")
        load_snapshot(tmp_path / "snap")
        # Skew the catalog *without* the event path, so the snapshot
        # stays active while the live hash diverges — exactly the state
        # a worker must refuse to serve from.
        clone = dataclasses.replace(
            machine_catalog.COMMERCIAL_SYSTEMS[0],
            vendor="SkewCo", model="X1")
        machine_catalog.append_machine_entry(clone)
        with pytest.raises(SnapshotStaleError) as excinfo:
            PreforkServer(ServeConfig(port=0),
                          n_workers=2).start(ready_timeout=30.0)
        context = excinfo.value.context
        assert context["snapshot_hash"] != context["live_hash"]
        assert context["snapshot_hash"] and context["live_hash"]
        assert "repro snapshot --output" in context["rebuild"]
        assert "rebuild" in str(excinfo.value)


class TestCatalogCLI:
    def test_apply_local_events_file(self, tmp_path, capsys):
        from repro.cli import main

        events_file = tmp_path / "events.json"
        events_file.write_text(json.dumps([
            _payload(),
            {"event": "amend_threshold", "start_year": 1994.1,
             "threshold_mtops": 5000.0},
        ]))
        assert main(["catalog", "apply", str(events_file)]) == 0
        out = capsys.readouterr().out
        assert "append_machine TestCo Churn-1: applied, epoch 1" in out
        assert "amend_threshold 1994.1: applied, epoch 2" in out
        assert "catalog epoch is now 2" in out
        assert threshold_at(1995.0) == 5000.0

    def test_apply_rejects_bad_file(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["catalog", "apply", str(bad)]) != 0
        assert "error: events file is not valid JSON" \
            in capsys.readouterr().out
