"""Public-API integrity: every module imports, every ``__all__`` resolves.

Guards against export rot — a renamed function whose old name lingers in an
``__all__`` list, or a module that only imports under a specific entry
point.
"""

import importlib
import pkgutil

import pytest

import repro


def _walk_modules() -> list[str]:
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return sorted(names)


_MODULES = _walk_modules()


def test_module_inventory_is_complete():
    """The package tree contains every subsystem DESIGN.md promises."""
    packages = {name for name in _MODULES if name.count(".") == 1}
    expected = {
        "repro.ctp", "repro.machines", "repro.apps", "repro.controllability",
        "repro.trends", "repro.simulate", "repro.market", "repro.diffusion",
        "repro.core", "repro.crypto", "repro.kernels", "repro.reporting",
    }
    assert expected <= packages


@pytest.mark.parametrize("name", _MODULES)
def test_module_imports(name):
    importlib.import_module(name)


@pytest.mark.parametrize("name", _MODULES)
def test_dunder_all_resolves(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


@pytest.mark.parametrize("name", _MODULES)
def test_module_docstrings(name):
    """Every module carries a real docstring (documentation deliverable)."""
    module = importlib.import_module(name)
    if name.endswith("__main__"):
        return
    assert module.__doc__ and len(module.__doc__.strip()) > 20, name


def test_public_dataclasses_and_functions_documented():
    """Spot-check: all public callables in the top-level API have
    docstrings."""
    for symbol in repro.__all__:
        obj = getattr(repro, symbol)
        if callable(obj):
            assert obj.__doc__, f"repro.{symbol} lacks a docstring"
