"""Rendering helpers for benches and examples: ASCII tables and series."""

from repro.reporting.tables import render_table
from repro.reporting.figures import render_series, render_log_chart
from repro.reporting.report import generate_review_report

__all__ = ["render_table", "render_series", "render_log_chart",
           "generate_review_report"]
