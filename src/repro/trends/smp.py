"""Symmetrical-multiprocessor performance trends (Figure 6).

Figure 6 plots, per vendor, the CTP of top-of-line SMP systems by year of
introduction, then shifts the envelope right by the two-year
market-maturity lag to obtain the uncontrollability frontier ("systems
considered uncontrollable in 1997 are being introduced in 1995").

The population is the catalog's SMP servers *in their maximum
configurations*, because field upgradability means an export-control
analysis must rate every chassis at the ceiling a user can quietly reach
(Chapter 3, "Scalability").
"""

from __future__ import annotations

from collections import defaultdict

from repro.machines import catalog as _catalog
from repro.machines.catalog import (
    commercial_by_architecture,
    max_config_mtops,
)
from repro.machines.spec import Architecture, MachineSpec
from repro.trends.curves import ExponentialTrend, TrendPoint, fit_exponential

__all__ = [
    "smp_systems",
    "smp_max_config_points",
    "smp_vendor_lines",
    "smp_trend",
]

#: SMPs whose *ceiling* falls below this rating (e.g. PC-class multis) are
#: not part of the Figure 6 population.  Workstation SMPs like the
#: SPARCstation 10 stay in: they are the most uncontrollable end of the
#: spectrum and anchor the envelope's early, low end.
_FRONTIER_FLOOR_MTOPS = 100.0


def smp_systems(through: float | None = None) -> list[MachineSpec]:
    """Catalog SMP servers by year (workstation-class SMPs excluded)."""
    systems = [
        m
        for m in commercial_by_architecture(Architecture.SMP)
        if max_config_mtops(m) >= _FRONTIER_FLOOR_MTOPS
    ]
    if through is not None:
        systems = [m for m in systems if m.year <= through]
    return systems


def smp_max_config_points(through: float | None = None) -> list[TrendPoint]:
    """(introduction year, max-configuration CTP) per SMP server family.

    Families present in the catalog at several configurations contribute
    one point: their ceiling (that is what an upgrader can reach).
    """
    best: dict[tuple[str, float], TrendPoint] = {}
    for m in smp_systems(through):
        key = (m.vendor, m.year)
        ceiling = max_config_mtops(m)
        prev = best.get(key)
        if prev is None or ceiling > prev.mtops:
            best[key] = TrendPoint(m.year, ceiling, label=m.key)
    return sorted(best.values(), key=lambda p: (p.year, p.label))


def smp_vendor_lines(through: float | None = None) -> dict[str, list[TrendPoint]]:
    """Figure 6's per-vendor "spaghetti": vendor -> points by year."""
    lines: dict[str, list[TrendPoint]] = defaultdict(list)
    for m in smp_systems(through):
        lines[m.vendor].append(
            TrendPoint(m.year, max_config_mtops(m), label=m.key)
        )
    return {v: sorted(pts, key=lambda p: p.year) for v, pts in sorted(lines.items())}


def smp_trend(through: float | None = None) -> ExponentialTrend:
    """Exponential fit of the SMP top-of-line envelope.

    Chapter 3: SMP performance "has grown by two orders of magnitude in the
    three years since their introduction" — the fit's growth rate lands in
    that range.
    """
    pts = smp_max_config_points(through)
    if len(pts) < 2:
        raise ValueError("not enough SMP systems in range to fit a trend")
    return fit_exponential([p.year for p in pts], [p.mtops for p in pts])


def _all_smp_entries() -> list[MachineSpec]:  # pragma: no cover - debug helper
    return [m for m in _catalog.COMMERCIAL_SYSTEMS
            if m.architecture is Architecture.SMP]
