"""Figure 4: HPC in Russia, PRC, and India.

Per-country running-maximum curves of indigenous capability against the
control threshold in force.
"""

import numpy as np

from repro._util import year_range
from repro.diffusion.policy import threshold_at
from repro.machines.foreign import ForeignCountry
from repro.reporting.figures import render_series
from repro.trends.curves import running_max_series
from repro.trends.foreign import foreign_points


def build_figure():
    years = year_range(1985.0, 1996.0, 1.0)
    series = {
        country.value: running_max_series(foreign_points(country), years)
        for country in ForeignCountry
    }
    series["threshold in force"] = np.array(
        [threshold_at(y) if y >= 1984.5 else np.nan for y in years]
    )
    return years, series


def test_fig04_foreign_indigenous(benchmark, emit):
    years, series = benchmark(build_figure)
    emit(render_series(
        "Figure 4: HPC in Russia, PRC, and India (most powerful domestic "
        "system, Mtops)",
        years, series,
    ))
    # Every country curve is non-decreasing where defined, and all three
    # countries cross the 195-Mtops threshold before the 1,500-Mtops one
    # replaces it.
    for country in ForeignCountry:
        values = series[country.value]
        finite = values[~np.isnan(values)]
        assert np.all(np.diff(finite) >= 0)
    assert series["Russia"][years.index(1991.0)] > 195.0
    assert series["PRC"][years.index(1993.0)] > 195.0
    assert series["India"][years.index(1993.0)] > 195.0
