"""Cluster claims: the Chapter 3 notes 50-55 findings as one harness.

Mattson's node ceilings by interconnect, the NOW GATOR comparison, and the
cluster-penalty spectrum across the workload suite.
"""

from repro.reporting.tables import render_table
from repro.simulate.cluster_study import (
    compare_architectures,
    gator_study,
    max_competitive_cluster_size,
)
from repro.simulate.interconnect import ATM_155, ETHERNET_10, FDDI
from repro.simulate.workloads import WORKLOAD_SUITE


def build_study():
    ceilings = {
        w.name: (
            max_competitive_cluster_size(w.name, ETHERNET_10),
            max_competitive_cluster_size(w.name, FDDI),
            max_competitive_cluster_size(w.name, ATM_155, dedicated=True),
        )
        for w in WORKLOAD_SUITE
    }
    penalties = {
        w.name: compare_architectures(w.name).cluster_penalty()
        for w in WORKLOAD_SUITE
    }
    return ceilings, penalties, gator_study()


def test_cluster_claims(benchmark, emit):
    ceilings, penalties, gator = benchmark(build_study)
    rows = [
        [name, *ceilings[name],
         "inf" if penalties[name] == float("inf")
         else round(penalties[name], 1)]
        for name in ceilings
    ]
    text = render_table(
        ["workload", "Ethernet ceiling", "FDDI ceiling", "ATM ceiling",
         "SMP/ad-hoc penalty"],
        rows,
        title="Cluster competitiveness by workload and interconnect "
              "(nodes at >= 50% efficiency)",
    )
    text += "\n\n" + render_table(
        ["machine", "time (s)"],
        [[name, round(r.time_s)] for name, r in gator.items()],
        title="GATOR (note 50)",
    )
    emit(text)

    # Mattson: medium-grain ceilings of 8-16 on the office LAN; fine grain
    # not competitive; embarrassing parallel unlimited.
    assert 8 <= ceilings["molecular dynamics"][0] <= 32
    assert ceilings["shallow-water model"][0] <= 2
    assert ceilings["ray tracing"][0] == 256
    # NOW: the ATM cluster wins; the Ethernet/PVM one loses.
    assert gator["NOW cluster (256, ATM)"].time_s < gator["Cray C90 (16)"].time_s
    assert gator["NOW cluster (256, Ethernet/PVM)"].time_s \
        > gator["Cray C90 (16)"].time_s
