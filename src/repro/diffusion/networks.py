"""Networked computing systems and the building-block scenario (Chapter 6).

The paper's longer-term recommendations single out networked systems:
"These systems do not lend themselves to easy classification using a
single metric like the CTP, are not easily controlled, and will continue
to be a problematic element in export control policy formulation."  This
module makes that study concrete:

* :func:`network_ctp` — a defensible cluster rating (the library's
  interconnect-discounted credit schedule) next to the CSTAC proposal the
  paper criticizes (flat 75% efficiency per workstation, note 55);
* :func:`building_block_year` — when a cluster of N commodity
  microprocessors crosses a given threshold, using the study-time
  microprocessor trend;
* :func:`premise3_collapse_year` — when uncontrollable building blocks
  close to within a factor of the most powerful integrated systems, the
  Chapter 2 scenario under which "there is no meaningful range of
  controllability".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import check_positive, check_year
from repro.obs.errors import ValidationError
from repro.ctp.aggregate import Coupling, aggregate_homogeneous
from repro.machines.catalog import max_available_mtops_series
from repro.trends.moore import micro_mtops_trend

__all__ = [
    "network_ctp",
    "cstac_ctp",
    "building_block_year",
    "BuildingBlockScenario",
    "premise3_collapse_year",
]


def network_ctp(
    node_mtops: float,
    n_nodes: int,
    interconnect_beta: float = 0.35,
) -> float:
    """Cluster rating under the library's declining-credit schedule."""
    check_positive(node_mtops, "node_mtops")
    if n_nodes < 1:
        raise ValidationError("n_nodes must be >= 1",
                              context={"got": n_nodes, "valid": ">= 1"})
    return aggregate_homogeneous(
        node_mtops, n_nodes, Coupling.CLUSTER,
        interconnect_beta=interconnect_beta,
    )


def cstac_ctp(node_mtops: float, n_nodes: int) -> float:
    """The CSTAC recommendation's aggregate (flat 75% per workstation).

    The paper calls this "overly optimistic for all but the most coarsely
    grained and 'embarrassingly parallel' problems" (note 55); it is
    provided for comparison, not endorsement.
    """
    check_positive(node_mtops, "node_mtops")
    if n_nodes < 1:
        raise ValidationError("n_nodes must be >= 1",
                              context={"got": n_nodes, "valid": ">= 1"})
    return 0.75 * n_nodes * node_mtops


@dataclass(frozen=True)
class BuildingBlockScenario:
    """When a commodity cluster crosses a control threshold."""

    threshold_mtops: float
    n_nodes: int
    crossing_year: float
    node_mtops_at_crossing: float
    cstac_crossing_year: float

    @property
    def cstac_earlier_by_years(self) -> float:
        """How much sooner the optimistic CSTAC rating crosses."""
        return self.crossing_year - self.cstac_crossing_year


def building_block_year(
    threshold_mtops: float,
    n_nodes: int = 64,
    fit_through: float = 1995.5,
    interconnect_beta: float = 0.35,
) -> BuildingBlockScenario:
    """Year an ``n_nodes`` cluster of contemporary commodity micros crosses
    ``threshold_mtops``, under both rating rules.

    Uses the microprocessor trend fitted through ``fit_through`` (what the
    study's authors could see).
    """
    check_positive(threshold_mtops, "threshold_mtops")
    if n_nodes < 1:
        raise ValidationError("n_nodes must be >= 1",
                              context={"got": n_nodes, "valid": ">= 1"})
    trend = micro_mtops_trend(fit_through)
    # Node Mtops needed under each rule, then invert the trend.
    ours_per_node = threshold_mtops / network_ctp(1.0, n_nodes,
                                                  interconnect_beta)
    cstac_per_node = threshold_mtops / cstac_ctp(1.0, n_nodes)
    year_ours = trend.year_reaching(ours_per_node)
    year_cstac = trend.year_reaching(cstac_per_node)
    return BuildingBlockScenario(
        threshold_mtops=threshold_mtops,
        n_nodes=n_nodes,
        crossing_year=float(year_ours),
        node_mtops_at_crossing=float(ours_per_node),
        cstac_crossing_year=float(year_cstac),
    )


def premise3_collapse_year(
    gap_factor: float = 2.0,
    n_nodes: int = 256,
    fit_through: float = 1995.5,
    horizon: float = 2010.0,
    interconnect_beta: float = 0.35,
) -> float | None:
    """First year commodity building blocks close to within ``gap_factor``
    of the most powerful system available.

    After this, the gap between "controllable supercomputer" and "stack of
    uncontrollable parts" is too thin for a threshold: premise 3's failure
    mode.  Returns ``None`` if it does not happen before ``horizon``
    (under the frozen most-powerful-available assumption, which makes the
    returned year an *early* bound).
    """
    if gap_factor <= 1.0:
        raise ValidationError("gap_factor must exceed 1",
                              context={"got": gap_factor, "valid": "> 1"})
    check_year(horizon, "horizon")
    trend = micro_mtops_trend(fit_through)
    if horizon < fit_through:
        return None
    # Quarter-year grid from fit_through through horizon.  0.25 steps on
    # year-magnitude floats are exact, so ``fit_through + 0.25 * k``
    # reproduces the old accumulated walk bit for bit.
    steps = int(np.floor((horizon - fit_through) / 0.25 + 1e-9)) + 1
    grid = fit_through + 0.25 * np.arange(steps)
    # One bisect pass over the cached running-max catalog index replaces
    # a per-year catalog scan; the cluster rating stays a per-point
    # scalar evaluation (the trend's pow must not go through SIMD).
    best = max_available_mtops_series(np.minimum(grid, 1999.9))
    clusters = np.array([
        network_ctp(float(trend.value(float(year))), n_nodes,
                    interconnect_beta)
        for year in grid
    ])
    crossed = np.flatnonzero(clusters * gap_factor >= best)
    return float(grid[crossed[0]]) if crossed.size else None
