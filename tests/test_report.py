"""Tests for the full review-report generator."""

import pytest

from repro.cli import main
from repro.reporting.report import generate_review_report


class TestReportDocument:
    @pytest.fixture(scope="class")
    def doc(self) -> str:
        return generate_review_report(1995.5, sensitivity_samples=30)

    def test_all_sections_present(self, doc):
        for heading in ("# High-performance computing export-control review",
                        "## The basic premises", "## Bounds",
                        "## Controllability of current systems",
                        "## Protectable application clusters",
                        "## Threshold options", "## Forward look"):
            assert heading in doc

    def test_premises_hold_in_1995(self, doc):
        assert doc.count("HOLDS") == 3
        assert "**Policy justified:** yes" in doc

    def test_headline_numbers_present(self, doc):
        assert "4,088" in doc       # the lower bound
        assert "1,500" in doc       # the stale in-force threshold
        assert "STALE" in doc

    def test_markdown_tables_well_formed(self, doc):
        for line in doc.splitlines():
            if line.startswith("|"):
                assert line.rstrip().endswith("|")

    def test_forward_look_conclusion(self, doc):
        assert "weakens over the longer term" in doc

    def test_year_validation(self):
        with pytest.raises(ValueError):
            generate_review_report(5.0)


class TestReportCli:
    def test_stdout(self, capsys):
        code = main(["report"])
        out = capsys.readouterr().out
        assert code == 0
        assert "## Threshold options" in out

    def test_file_output(self, capsys, tmp_path):
        target = tmp_path / "review.md"
        code = main(["report", "--output", str(target)])
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        assert "## Bounds" in target.read_text()
