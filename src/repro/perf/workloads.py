"""The benchmark workloads: five hot paths, batch vs seed-scalar.

Each workload times the batch-layer implementation against the
seed-faithful scalar reference on the same inputs, checks they agree, and
reports the speedup.  ``run_benchmarks`` executes the suite and writes
``BENCH_perf.json`` (repo root by default).
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.crypto.keysearch import _candidate_bits
from repro.ctp import ComputingElement, Coupling
from repro.ctp.batch import clear_credit_cache, ctp_homogeneous_batch
from repro.obs.errors import ValidationError
from repro.obs.trace import metrics_snapshot, trace
from repro.perf.harness import Timing, time_workload
from repro.perf import reference as ref

__all__ = ["BENCH_PATH", "WORKLOAD_NAMES", "run_benchmarks"]

#: Default output location (the repository root when run from it).
BENCH_PATH = Path("BENCH_perf.json")

WORKLOAD_NAMES = (
    "batch_ctp_rating",
    "frontier_year_grid",
    "bound_sensitivity_mc",
    "premise3_gap_scan",
    "keysearch_bit_expansion",
    "serve_load",
    "cluster_sweep_grid",
    "parallel_keysearch",
    "policy_grid",
    "acquisition_mc",
    "snapshot_cold_start",
    "serve_prefork_load",
    "catalog_churn",
    "scenario_grid",
    "policy_point_queries",
    "agentic_mix",
)


def _rel_err(a: np.ndarray, b: np.ndarray) -> float:
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    denom = np.maximum(np.abs(a), 1e-30)
    return float(np.max(np.abs(a - b) / denom)) if a.size else 0.0


def _synthetic_configurations(n: int) -> list[list[ComputingElement]]:
    """Deterministic mixed-size configurations exercising the rating path."""
    configs = []
    for i in range(n):
        clock = 40.0 + 7.0 * (i % 23)
        size = 1 + (i % 16)
        element = ComputingElement(
            name=f"bench-{i}", clock_mhz=clock,
            word_bits=64.0 if i % 3 else 32.0,
            fp_ops_per_cycle=1.0 + (i % 4),
            int_ops_per_cycle=1.0 + (i % 2),
            concurrent_int_fp=bool(i % 5 == 0),
        )
        configs.append([element] * size)
    return configs


def _bench_batch_ctp(quick: bool) -> dict:
    n = 200 if quick else 2_000
    configs = _synthetic_configurations(n)
    elements = [cfg[0] for cfg in configs]
    ns = np.array([len(cfg) for cfg in configs])
    coupling = Coupling.SHARED
    clear_credit_cache()
    batch_out = ctp_homogeneous_batch(elements, ns, coupling)
    scalar_out = ref.ctp_loop_scalar(configs, coupling)
    scalar = time_workload(lambda: ref.ctp_loop_scalar(configs, coupling),
                           "scalar", repeats=3 if quick else 5)
    fast = time_workload(
        lambda: ctp_homogeneous_batch(elements, ns, coupling), "batch",
        repeats=5 if quick else 9)
    return _row("batch_ctp_rating",
                f"rate {n} homogeneous configurations (scalar ctp loop vs "
                f"ctp_homogeneous_batch with warm credit prefix sums)",
                scalar, fast, _rel_err(scalar_out, batch_out))


def _bench_frontier_grid(quick: bool) -> dict:
    from repro.controllability.frontier import frontier_series

    step = 0.05 if quick else 0.01
    years = np.arange(1988.0, 2000.0, step)
    batch_out = frontier_series(years)
    scalar_out = ref.frontier_series_scalar(years)
    scalar = time_workload(lambda: ref.frontier_series_scalar(years),
                           "scalar", repeats=2 if quick else 3)
    fast = time_workload(lambda: frontier_series(years), "batch",
                         repeats=5 if quick else 9)
    return _row("frontier_year_grid",
                f"frontier lower bound on a {years.size}-point year grid "
                f"(per-year catalog rescan vs cached running-max bisect)",
                scalar, fast, _rel_err(scalar_out, batch_out))


def _bench_bound_sensitivity(quick: bool) -> dict:
    from repro.core.sensitivity import bound_sensitivity

    n = 100 if quick else 1_000
    batch_out = np.sort(bound_sensitivity(1995.5, n).samples_mtops)
    scalar_out = np.sort(ref.bound_sensitivity_scalar(1995.5, n))
    scalar = time_workload(lambda: ref.bound_sensitivity_scalar(1995.5, n),
                           "scalar", repeats=2 if quick else 3)
    fast = time_workload(lambda: bound_sensitivity(1995.5, n), "batch",
                         repeats=5 if quick else 9)
    # Draw layouts differ (array vs interleaved scalar draws), so compare
    # the sampled distributions by their extremes rather than elementwise.
    spread = _rel_err(
        np.array([scalar_out.min(), scalar_out.max()]),
        np.array([batch_out.min(), batch_out.max()]),
    )
    return _row("bound_sensitivity_mc",
                f"{n}-draw Monte-Carlo of the lower bound (per-draw frontier "
                f"rebuild vs one matrix pass)",
                scalar, fast, spread)


def _bench_premise_scan(quick: bool) -> dict:
    from repro.core.scenarios import premise3_gap_series

    step = 0.25 if quick else 0.05
    years = np.arange(1993.0, 2000.0, step)
    batch_out = premise3_gap_series(years)
    scalar_out = ref.premise3_gap_series_scalar(years)
    scalar = time_workload(lambda: ref.premise3_gap_series_scalar(years),
                           "scalar", repeats=2 if quick else 3)
    fast = time_workload(lambda: premise3_gap_series(years), "batch",
                         repeats=5 if quick else 9)
    return _row("premise3_gap_scan",
                f"premise-3 gap factor on a {years.size}-point grid "
                f"(per-year bound derivation vs series arithmetic)",
                scalar, fast, _rel_err(scalar_out, batch_out))


def _bench_keysearch(quick: bool) -> dict:
    search_bits = 14 if quick else 18
    offsets = np.arange(1 << search_bits, dtype=np.int64)
    batch_out = _candidate_bits(0, offsets, search_bits)
    scalar_out = ref.candidate_bits_scalar(0, offsets, search_bits)
    scalar = time_workload(
        lambda: ref.candidate_bits_scalar(0, offsets, search_bits),
        "scalar", repeats=5 if quick else 9)
    fast = time_workload(lambda: _candidate_bits(0, offsets, search_bits),
                         "batch", repeats=5 if quick else 9)
    mismatch = float(np.mean(batch_out != scalar_out))
    return _row("keysearch_bit_expansion",
                f"expand 2^{search_bits} candidate keys to bit arrays "
                f"(per-bit loop vs one broadcast unpack)",
                scalar, fast, mismatch)


def _bench_serve_load(quick: bool) -> dict:
    """32 closed-loop clients on the rate batcher, ``max_batch`` 1 vs 64.

    Runs at the engine level (no HTTP) so the measured quantity is the
    coalescing itself: the same pre-parsed requests, the same batch
    kernel, only the batching policy differs.  With ``max_batch=1`` every
    request pays its own dispatch; with ``max_batch=64`` the backlog the
    32 threads create is drained in bulk.  Responses must be
    bit-identical between the two runs (each item's answer is independent
    of its batch-mates), so ``max_rel_err`` doubles as a parity check.
    """
    import threading

    from repro.serve.schemas import parse_request
    from repro.serve.server import ServeConfig, ServiceEngine

    n_clients = 32
    per_client = 25 if quick else 80
    payloads = [
        {
            "clock_mhz": 40.0 + 7.0 * (i % 23),
            "word_bits": 64 if i % 3 else 32,
            "fp_per_cycle": 1 + (i % 4),
            "int_per_cycle": 1 + (i % 2),
            "concurrent": i % 5 == 0,
            "processors": 1 + (i % 16),
            "coupling": "shared",
            "year": 1995.5,
        }
        for i in range(n_clients * 4)
    ]
    requests = [parse_request("rate", p) for p in payloads]

    def run_once(max_batch: int) -> tuple[float, list[float], dict]:
        config = ServeConfig(max_batch=max_batch, max_wait_ms=0.0,
                             queue_limit=8192, cache_size=0,
                             deadline_ms=120_000.0)
        engine = ServiceEngine(config)
        batcher = engine.batchers["rate"]
        ratings: list[list[float]] = [[] for _ in range(n_clients)]
        barrier = threading.Barrier(n_clients + 1)

        def client(idx: int) -> None:
            barrier.wait()
            for j in range(per_client):
                request = requests[(idx * per_client + j) % len(requests)]
                body = batcher.submit(request).result()
                ratings[idx].append(body["ctp_mtops"])

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(n_clients)]
        for thread in threads:
            thread.start()
        barrier.wait()
        start = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        stats = batcher.stats()
        engine.close()
        flat = [r for per_thread in ratings for r in per_thread]
        return elapsed, flat, stats

    repeats = 2 if quick else 3

    def best_of(max_batch: int) -> tuple[Timing, list[float], dict]:
        runs = [run_once(max_batch) for _ in range(repeats)]
        elapsed, flat, stats = min(runs, key=lambda run: run[0])
        timing = Timing(
            name=f"max_batch_{max_batch}",
            best_seconds=elapsed,
            mean_seconds=sum(run[0] for run in runs) / repeats,
            repeats=repeats,
            warmup=0,
        )
        return timing, flat, stats

    clear_credit_cache()
    scalar, out_1, _ = best_of(1)
    fast, out_64, stats_64 = best_of(64)
    total = n_clients * per_client
    row = _row("serve_load",
               f"{n_clients} concurrent clients x {per_client} /rate "
               f"requests through the micro-batcher (max_batch=1 vs "
               f"max_batch=64, greedy coalescing, cache off)",
               scalar, fast, _rel_err(out_1, out_64))
    row["clients"] = n_clients
    row["requests_per_run"] = total
    row["throughput_rps"] = {
        "max_batch_1": total / scalar.best_seconds,
        "max_batch_64": total / fast.best_seconds,
    }
    row["batch_size_histogram"] = stats_64["batch_size_histogram"]
    return row


def _bench_cluster_sweep(quick: bool) -> dict:
    """Full design-space grid, scalar loop vs whole-array sweep.

    The grid is the same in quick and full mode (the scalar pass costs
    ~0.1 s, cheap enough for CI smoke); quick just trims repeats.  The
    sweep must be *bit-exact*: feasibility masks equal, and times and
    efficiencies identical on every feasible point, so ``max_rel_err``
    is 0.0 or the run is broken.
    """
    from repro.simulate.sweep import default_machine_catalog, sweep
    from repro.simulate.workloads import WORKLOAD_SUITE

    machines = default_machine_catalog()
    counts = np.arange(1, 257, dtype=np.int64)
    grid = sweep(machines, WORKLOAD_SUITE, counts)
    scalar_grid = ref.sweep_grid_scalar(machines, WORKLOAD_SUITE, counts)
    feas = grid.feasible
    if not np.array_equal(feas, scalar_grid["feasible"]):
        err = 1.0
    else:
        err = max(
            _rel_err(scalar_grid["times_s"][feas], grid.times_s[feas]),
            _rel_err(scalar_grid["efficiencies"][feas],
                     grid.efficiencies[feas]),
        )
    scalar = time_workload(
        lambda: ref.sweep_grid_scalar(machines, WORKLOAD_SUITE, counts),
        "scalar", repeats=2 if quick else 3)
    fast = time_workload(
        lambda: sweep(machines, WORKLOAD_SUITE, counts), "batch",
        repeats=5 if quick else 9)
    row = _row("cluster_sweep_grid",
               f"BSP model over {len(machines)} machines x "
               f"{len(WORKLOAD_SUITE)} workloads x {counts.size} node "
               f"counts (per-point simulate_execution vs one broadcast "
               f"sweep)",
               scalar, fast, err)
    row["grid_points"] = int(feas.size)
    row["feasible_points"] = int(feas.sum())
    return row


def _bench_parallel_keysearch(quick: bool) -> dict:
    """Exhaustive keysearch, one worker vs a small process pool.

    ``max_rel_err`` is 0.0 when the two runs return identical result
    objects (found keys, keys tried, chunk count) — the driver's
    determinism contract — and 1.0 otherwise.  The speedup is honest
    wall clock including pool startup, so on a 1-2 core box it can dip
    below 1; the regression gate skips the floor there.
    """
    import os

    from repro.crypto.des import des_encrypt_block
    from repro.parallel import parallel_keysearch

    search_bits = 16 if quick else 18
    plaintext = 0x0123456789ABCDEF
    planted = 0x2AB5  # low bits of the key; parity-flip twins also match
    ciphertext = des_encrypt_block(plaintext, planted)
    workers = max(2, min(4, os.cpu_count() or 1))

    def run(max_workers: int):
        return parallel_keysearch(plaintext, ciphertext,
                                  search_bits=search_bits,
                                  max_workers=max_workers)

    serial_out = run(1)
    parallel_out = run(workers)
    err = 0.0 if serial_out == parallel_out else 1.0
    scalar = time_workload(lambda: run(1), "scalar",
                           repeats=2 if quick else 3)
    fast = time_workload(lambda: run(workers), "batch",
                         repeats=2 if quick else 3)
    row = _row("parallel_keysearch",
               f"exhaustive 2^{search_bits} DES keysearch, 1 worker vs "
               f"{workers} worker processes (chunked fan-out, "
               f"deterministic reassembly)",
               scalar, fast, err)
    row["workers"] = workers
    row["cpu_count"] = os.cpu_count()
    row["found_keys"] = list(serial_out.found_keys)
    return row


def _bench_policy_grid(quick: bool) -> dict:
    """Chapter-5 scorecard lattice, per-point scalar vs columnar grid.

    The grid engine's contract is *bit-exactness*, not tolerance: every
    count and burden value must equal the seed scalar's, and the
    reconstructed per-cell scorecards must equal ``evaluate_policy``'s
    dataclasses — membership tuples included — on every lattice point,
    or ``max_rel_err`` reports 1.0 and the regression gate fails.  The
    timed batch path rebuilds the per-year caches on every call (cold
    suffix tables and requirement matrices), so the speedup prices in
    the columnar build, not just warm lookups.
    """
    from repro.diffusion.columns import clear_requirement_matrices
    from repro.diffusion.policy import evaluate_policy
    from repro.diffusion.policy_grid import evaluate_policy_grid
    from repro.market.installed import clear_installed_index

    thresholds = np.geomspace(10.0, 50_000.0, 24 if quick else 48)
    years = np.arange(1986.0, 2000.0, 0.6 if quick else 0.25)
    grid = evaluate_policy_grid(thresholds, years)
    scalar_grid = ref.policy_grid_scalar(thresholds, years)
    exact = (
        np.array_equal(grid.protected_counts, scalar_grid["protected"])
        and np.array_equal(grid.illusory_counts, scalar_grid["illusory"])
        and np.array_equal(grid.burden_units, scalar_grid["burden_units"])
        and np.array_equal(grid.uncontrollable_counts,
                           scalar_grid["uncontrollable"])
        and np.array_equal(grid.frontier_mtops,
                           scalar_grid["frontier_mtops"])
        and all(
            grid.result_at(i, j) == evaluate_policy(float(t), float(y))
            for i, t in enumerate(thresholds)
            for j, y in enumerate(years)
        )
    )

    def cold_grid():
        clear_installed_index()
        clear_requirement_matrices()
        return evaluate_policy_grid(thresholds, years)

    scalar = time_workload(
        lambda: ref.policy_grid_scalar(thresholds, years),
        "scalar", repeats=2 if quick else 3)
    fast = time_workload(cold_grid, "batch", repeats=5 if quick else 9)
    row = _row("policy_grid",
               f"Chapter-5 policy scorecards on a {thresholds.size} x "
               f"{years.size} (threshold, year) lattice (per-point catalog "
               f"walks and histogram rebuilds vs one columnar broadcast, "
               f"cold per-year caches each call)",
               scalar, fast, 0.0 if exact else 1.0)
    row["grid_points"] = int(thresholds.size * years.size)
    return row


def _bench_acquisition_mc(quick: bool) -> dict:
    """Acquisition premium + Monte-Carlo over a target grid, batched.

    Every scalar call re-scans the market, re-scores candidate severity,
    and draws its own RNG matrices; the batch shares one sorted market
    scan and one draw pair across all targets.  Stats must match the
    per-target scalar reference exactly (infinities included) or
    ``max_rel_err`` reports 1.0.
    """
    from repro.controllability.index import clear_assessment_caches
    from repro.diffusion.acquisition import (
        acquisition_premium,
        acquisition_premium_batch,
        clear_acquisition_caches,
        simulate_acquisitions_batch,
    )

    n_targets = 256 if quick else 512
    n_attempts = 64
    year, seed = 1995.5, 0
    targets = np.geomspace(10.0, 200_000.0, n_targets)
    clear_acquisition_caches()
    clear_assessment_caches()
    batch_stats = simulate_acquisitions_batch(targets, year, n_attempts,
                                              seed)
    scalar_stats = [
        ref.simulate_acquisitions_scalar(float(t), year, n_attempts, seed)
        for t in targets
    ]
    batch_arr = np.array([
        (s.success_rate, s.interdiction_rate, s.mean_delay_years,
         s.mean_cost_multiplier) for s in batch_stats
    ])
    exact = (
        np.array_equal(batch_arr, np.array(scalar_stats))
        and acquisition_premium_batch(targets, year) == [
            acquisition_premium(float(t), year) for t in targets
        ]
    )
    scalar = time_workload(
        lambda: [ref.simulate_acquisitions_scalar(float(t), year,
                                                  n_attempts, seed)
                 for t in targets],
        "scalar", repeats=2 if quick else 3)
    fast = time_workload(
        lambda: simulate_acquisitions_batch(targets, year, n_attempts,
                                            seed),
        "batch", repeats=5 if quick else 9)
    row = _row("acquisition_mc",
               f"covert-acquisition Monte-Carlo over {n_targets} targets x "
               f"{n_attempts} attempts (per-target market rescans and "
               f"private RNG draws vs one sorted scan and one shared draw "
               f"pair)",
               scalar, fast, 0.0 if exact else 1.0)
    row["targets"] = n_targets
    row["attempts_per_target"] = n_attempts
    return row


def _bench_snapshot_cold_start(quick: bool) -> dict:
    """Serving cold start: rebuild every columnar store vs load a
    mmap snapshot.

    The "scalar" side is what a worker pays today at startup — one
    ``assess()`` per catalog machine, the frontier index, the canonical
    requirement matrix, a suffix table per snapshot year, and the credit
    prefix sums, all from scratch.  The "batch" side is
    ``load_snapshot``: hash check plus lazy memmaps, installed through
    the same hooks.  Two gates ride on the row: the loaded stores must
    be **bit-identical** to the fresh build (``max_rel_err`` is 0.0 or
    1.0), and the load must do **zero** columnar rebuilds — every
    ``BUILD_COUNTERS`` delta stays 0, or parity reports 1.0.
    """
    import tempfile

    from repro.controllability.frontier import (
        UNCONTROLLABILITY_LAG_YEARS,
        _frontier_index,
    )
    from repro.controllability.index import DEFAULT_WEIGHTS
    from repro.ctp.batch import credit_sums
    from repro.diffusion.columns import application_columns, requirement_matrix
    from repro.machines.columns import machine_columns
    from repro.market.installed import _suffix_index
    from repro.store import (
        DEFAULT_SNAPSHOT_YEARS,
        build_counter_totals,
        build_snapshot,
        clear_store_caches,
        load_snapshot,
    )

    years = DEFAULT_SNAPSHOT_YEARS

    def cold_build() -> tuple:
        clear_store_caches()
        cols = machine_columns()
        index = _frontier_index(DEFAULT_WEIGHTS,
                                UNCONTROLLABILITY_LAG_YEARS)
        application_columns()
        matrix = requirement_matrix(years)
        suffix = [_suffix_index(year) for year in years]
        credit = {
            coupling: credit_sums(1 if coupling is Coupling.SINGLE
                                  else 512, coupling)
            for coupling in Coupling
        }
        return cols, index, matrix, suffix, credit

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "snapshot"
        info = build_snapshot(path)

        cols, index, matrix, suffix, credit = cold_build()

        def load() -> None:
            clear_store_caches()
            load_snapshot(path)

        # Parity: everything the snapshot installs must match the fresh
        # build to the last bit, and installing must build nothing.
        clear_store_caches()
        before = build_counter_totals()
        load_snapshot(path)
        cols2 = machine_columns()
        index2 = _frontier_index(DEFAULT_WEIGHTS,
                                 UNCONTROLLABILITY_LAG_YEARS)
        matrix2 = requirement_matrix(years)
        suffix2 = [_suffix_index(year) for year in years]
        credit2 = {
            coupling: credit_sums(1 if coupling is Coupling.SINGLE
                                  else 512, coupling)
            for coupling in Coupling
        }
        after = build_counter_totals()
        deltas = {
            name: total - before[name] for name, total in after.items()
        }
        exact = (
            all(deltas[name] == 0 for name in deltas)
            and all(
                np.array_equal(getattr(cols, field), getattr(cols2, field))
                for field in ("intro_years", "entry_mtops",
                              "max_config_mtops", "reachable_mtops",
                              "field_upgradable", "units_installed",
                              "controllability_index", "class_codes",
                              "uncontrollable"))
            and cols.machines == cols2.machines
            and np.array_equal(index.qualify_years, index2.qualify_years)
            and np.array_equal(index.running_max, index2.running_max)
            and index.leaders == index2.leaders
            and np.array_equal(matrix, matrix2)
            and all(np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])
                    for a, b in zip(suffix, suffix2))
            and all(np.array_equal(credit[c], credit2[c]) for c in credit)
        )

        scalar = time_workload(cold_build, "cold_build",
                               repeats=2 if quick else 3)
        fast = time_workload(load, "snapshot_load",
                             repeats=3 if quick else 5)
        clear_store_caches()
    row = _row("snapshot_cold_start",
               f"serving cold start over {len(years)} snapshot years "
               f"(rebuild machine columns, frontier index, requirement "
               f"matrix, suffix tables, and credit sums from scratch vs "
               f"one mmap snapshot load with zero rebuilds)",
               scalar, fast, 0.0 if exact else 1.0)
    row["n_arrays"] = info.n_arrays
    row["manifest_hash"] = info.manifest_hash
    row["build_counter_deltas"] = deltas
    return row


def _bench_serve_prefork_load(quick: bool) -> dict:
    """Open-loop HTTP load, single-process server vs a pre-forked fleet.

    Both servers run the identical engine over the identical snapshot
    state and face the same Poisson arrival schedules
    (:mod:`repro.perf.loadgen`), so the only variable is the process
    model.  ``Timing.best_seconds`` is seconds-per-request at the peak
    achieved rate, making ``speedup`` the fleet/single **throughput
    ratio**.  ``max_rel_err`` is a bit-identity check: a fixed probe set
    of /rate and /policy requests must return byte-identical bodies from
    both servers (0.0) or the row is broken (1.0).  The >= 2x gate
    applies at >= 4 cores; the regression test logs a skip below that —
    with one core the kernel has nowhere to run a second worker.
    """
    import os
    import tempfile

    from repro.perf.loadgen import rate_sweep, saturation_knee
    from repro.serve.client import ServeClient
    from repro.serve.prefork import PreforkServer
    from repro.serve.server import ServeConfig, ServeServer
    from repro.store import build_snapshot, clear_store_caches, load_snapshot

    cpu_count = os.cpu_count() or 1
    workers = max(2, min(4, cpu_count))
    rates = (20.0, 40.0) if quick else (50.0, 100.0, 200.0, 400.0)
    duration_s = 1.0 if quick else 2.0
    payloads = [
        {
            "clock_mhz": 40.0 + 7.0 * (i % 23),
            "word_bits": 64 if i % 3 else 32,
            "fp_per_cycle": 1 + (i % 4),
            "int_per_cycle": 1 + (i % 2),
            "concurrent": i % 5 == 0,
            "processors": 1 + (i % 16),
            "coupling": "shared",
            "year": 1995.5,
        }
        for i in range(64)
    ]
    probe_policy = [
        {"threshold_mtops": t, "year": y}
        for t in (195.0, 2000.0, 7000.0) for y in (1992.0, 1995.5)
    ]
    config = ServeConfig(port=0, cache_size=0, queue_limit=8192,
                         deadline_ms=60_000.0, drain_timeout=5.0)

    def probe(client: ServeClient) -> list[dict]:
        bodies = [client.rate(**p).require_ok() for p in payloads[:16]]
        bodies += [client.policy(**p).require_ok() for p in probe_policy]
        return bodies

    def measure(server_port: int) -> tuple[list, list[dict]]:
        client = ServeClient(port=server_port, timeout=60.0)
        try:
            bodies = probe(client)
            results = rate_sweep(
                lambda payload: client.rate(**payload).ok,
                payloads, rates, duration_s=duration_s)
            return results, bodies
        finally:
            client.close()

    with tempfile.TemporaryDirectory() as tmp:
        snapshot_path = Path(tmp) / "snapshot"
        build_snapshot(snapshot_path)
        clear_store_caches()
        load_snapshot(snapshot_path)

        # Single process first: the fleet forks after these threads die.
        with ServeServer(config) as single:
            single_results, single_bodies = measure(single.port)
        with PreforkServer(config, n_workers=workers) as fleet:
            fleet_results, fleet_bodies = measure(fleet.port)
            fleet_mode = fleet.mode
        clear_store_caches()

    identical = single_bodies == fleet_bodies
    peak_single = max(r.achieved_rps for r in single_results)
    peak_fleet = max(r.achieved_rps for r in fleet_results)
    scalar = Timing(name="single_process",
                    best_seconds=1.0 / peak_single,
                    mean_seconds=1.0 / peak_single, repeats=1, warmup=0)
    fast = Timing(name=f"prefork_{workers}",
                  best_seconds=1.0 / peak_fleet,
                  mean_seconds=1.0 / peak_fleet, repeats=1, warmup=0)
    row = _row("serve_prefork_load",
               f"open-loop Poisson /rate load over HTTP, 1 process vs "
               f"{workers} pre-forked workers ({fleet_mode} sharding) on "
               f"shared snapshot state; timings are seconds/request at "
               f"peak achieved throughput, so speedup is the throughput "
               f"ratio",
               scalar, fast, 0.0 if identical else 1.0)
    row["workers"] = workers
    row["cpu_count"] = cpu_count
    row["mode"] = fleet_mode
    row["offered_rates_rps"] = list(rates)
    row["throughput_rps"] = {"single_process": peak_single,
                             f"prefork_{workers}": peak_fleet}
    row["saturation_knee_rps"] = {
        "single_process": saturation_knee(single_results),
        f"prefork_{workers}": saturation_knee(fleet_results),
    }
    row["latency"] = {
        "single_process": [r.as_dict() for r in single_results],
        f"prefork_{workers}": [r.as_dict() for r in fleet_results],
    }
    if cpu_count < 4:
        row["gate_skipped"] = (
            f"prefork >=2x throughput floor needs >=4 cores; this host "
            f"has {cpu_count} — workers time-slice one another and the "
            f"ratio measures the scheduler, not the architecture")
    return row


def _bench_catalog_churn(quick: bool) -> dict:
    """Sustained /rate + /policy load while catalog events apply.

    Closed-loop clients hammer a live :class:`ServiceEngine` while a
    sequence of mutation events — two appends (one landing *exactly* on
    the frontier running-max), a machine amendment, and a threshold
    amendment — applies through :func:`repro.catalog.events.apply_event`.
    After **every** event the incrementally-patched stores are checked
    bit-for-bit against a full rebuild (``full_rebuild_parity``), so
    ``max_rel_err`` is 0.0 iff every per-event parity held and 1.0
    otherwise, and ``p99_ms`` gates tail latency of reads under churn.

    The patch-vs-rebuild comparison is timed in a separate *quiet*
    phase (min-of-k over ``reset_catalog`` cycles, no reader threads):
    under load, ``apply_event`` mostly measures how long the write
    guard waits for in-flight readers — scheduler noise, not patch
    cost.  The scalar side accumulates what a non-incremental
    implementation would pay per event: drop every derived store and
    rebuild the machine columns plus the default frontier index from
    scratch.  ``speedup`` is therefore rebuild-vs-patch work avoided.
    """
    import dataclasses
    import threading

    from repro.catalog import events as catalog_events
    from repro.catalog.registry import current_epoch
    from repro.controllability.frontier import (
        DEFAULT_WEIGHTS,
        UNCONTROLLABILITY_LAG_YEARS,
        _frontier_index,
        clear_frontier_indexes,
    )
    from repro.controllability.index import clear_assessment_caches
    from repro.machines.columns import clear_machine_columns, machine_columns
    from repro.serve.server import ServeConfig, ServiceEngine

    catalog_events.reset_catalog()
    base_index = _frontier_index(DEFAULT_WEIGHTS,
                                 UNCONTROLLABILITY_LAG_YEARS)
    # The knife-edge append: a clone of the last frontier leader under a
    # new key rates *exactly* the current running max — the patched index
    # must neither regress nor flip the leader (strict-> rule).
    edge = dataclasses.replace(base_index.leaders[-1],
                               vendor="ChurnCo", model="Edge-1")
    fresh = dataclasses.replace(base_index.leaders[-1],
                                vendor="ChurnCo", model="Bulk-1",
                                quoted_ctp_mtops=None,
                                quoted_peak_mflops=None)
    events = [
        catalog_events.AppendMachine(machine=fresh),
        catalog_events.AppendMachine(machine=edge),
        catalog_events.AmendMachine(
            key=fresh.key,
            machine=dataclasses.replace(fresh, units_installed=7)),
        catalog_events.AmendThreshold(start_year=1994.1,
                                      threshold_mtops=7500.0,
                                      label="churn interim"),
    ]

    n_threads = 4 if quick else 8
    settle_s = 0.05 if quick else 0.2
    rate_payloads = [
        {"clock_mhz": 40.0 + 7.0 * (i % 23), "word_bits": 64 if i % 3 else 32,
         "processors": 1 + (i % 16), "coupling": "shared", "year": 1995.5}
        for i in range(32)
    ]
    policy_payloads = [
        {"threshold_mtops": t, "year": y}
        for t in (195.0, 2000.0, 7000.0) for y in (1992.0, 1995.5)
    ]
    config = ServeConfig(queue_limit=8192, deadline_ms=60_000.0,
                         cache_size=1024)
    engine = ServiceEngine(config)
    stop = threading.Event()
    latencies: list[list[float]] = [[] for _ in range(n_threads)]
    failures: list[int] = [0] * n_threads

    def client(idx: int) -> None:
        j = 0
        while not stop.is_set():
            if j % 4 == 3:
                endpoint = "policy"
                payload = policy_payloads[j % len(policy_payloads)]
            else:
                endpoint = "rate"
                payload = rate_payloads[(idx * 31 + j) % len(rate_payloads)]
            t0 = time.perf_counter()
            status, _ = engine.handle(endpoint, payload)
            latencies[idx].append(time.perf_counter() - t0)
            if status != 200:
                failures[idx] += 1
            j += 1

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(n_threads)]
    parity_per_event: list[bool] = []
    applied = 0
    try:
        for thread in threads:
            thread.start()
        time.sleep(settle_s)
        for event in events:
            outcome = catalog_events.apply_event(event)
            applied += int(outcome.applied)
            parity_per_event.append(
                catalog_events.full_rebuild_parity()["all"])
            time.sleep(settle_s)
    finally:
        stop.set()
        for thread in threads:
            thread.join()
        engine.close()
    final_epoch = current_epoch()

    # Quiet timing phase: patch cost vs what the same churn costs
    # without incremental maintenance (drop every derived store and
    # rebuild columns + frontier per event), min-of-k with the catalog
    # reset to baseline and the derived stores primed between repeats.
    repeats = 3 if quick else 5
    patch_times: list[float] = []
    rebuild_times: list[float] = []
    for _ in range(repeats):
        catalog_events.reset_catalog()
        machine_columns()
        _frontier_index(DEFAULT_WEIGHTS, UNCONTROLLABILITY_LAG_YEARS)
        t0 = time.perf_counter()
        for event in events:
            catalog_events.apply_event(event)
        patch_times.append(time.perf_counter() - t0)
        rebuild_s = 0.0
        for _ in events:
            clear_assessment_caches()
            clear_machine_columns()
            clear_frontier_indexes()
            t0 = time.perf_counter()
            machine_columns()
            _frontier_index(DEFAULT_WEIGHTS, UNCONTROLLABILITY_LAG_YEARS)
            rebuild_s += time.perf_counter() - t0
        rebuild_times.append(rebuild_s)
    incremental_s = min(patch_times)
    rebuild_s = min(rebuild_times)
    catalog_events.reset_catalog()

    flat = sorted(lat for per in latencies for lat in per)
    p99_ms = (float(np.percentile(flat, 99.0)) * 1e3) if flat else 0.0
    all_parity = bool(parity_per_event) and all(parity_per_event)
    scalar = Timing(name="full_rebuild_per_event",
                    best_seconds=rebuild_s,
                    mean_seconds=sum(rebuild_times) / repeats,
                    repeats=repeats, warmup=0)
    fast = Timing(name="incremental_patch",
                  best_seconds=incremental_s,
                  mean_seconds=sum(patch_times) / repeats,
                  repeats=repeats, warmup=0)
    row = _row("catalog_churn",
               f"{len(events)} catalog events (append/knife-edge append/"
               f"amend/threshold) applied under {n_threads} closed-loop "
               f"/rate+/policy clients; incremental index patching vs a "
               f"per-event full rebuild, bit-parity checked after every "
               f"event",
               scalar, fast, 0.0 if all_parity else 1.0)
    row["events_applied"] = applied
    row["final_epoch"] = final_epoch
    row["parity_per_event"] = parity_per_event
    row["p99_ms"] = p99_ms
    row["requests_served"] = len(flat)
    row["request_failures"] = sum(failures)
    return row


def _bench_scenario_grid(quick: bool) -> dict:
    """Counterfactual-world tensor, sequential per-world vs one build.

    The sequential baseline evaluates eight single-world grids back to
    back, each from cold caches — what "run the policy grid once per
    world" costs when every build rebuilds the frontier index, suffix
    tables, and requirement matrices for itself.  The tensor path builds
    all eight worlds in one :func:`evaluate_scenario_grid` call over the
    same cold start, sharing every world-independent per-year quantity.
    Parity is bit-exactness, not tolerance: the historical world's slice
    must equal ``evaluate_policy_grid`` array for array, and every
    world's tensor slice must equal its own single-world build, or
    ``max_rel_err`` reports 1.0.
    """
    from repro.controllability.frontier import clear_frontier_indexes
    from repro.diffusion.columns import clear_requirement_matrices
    from repro.diffusion.policy_grid import evaluate_policy_grid
    from repro.market.installed import clear_installed_index
    from repro.scenarios import (
        HISTORICAL,
        accelerated_foreign,
        clear_scenario_caches,
        early_decontrol,
        evaluate_scenario_grid,
        flop_cap,
        sticky_requirements,
    )

    worlds = [
        HISTORICAL,
        flop_cap(),
        accelerated_foreign(),
        early_decontrol(),
        sticky_requirements(),
        flop_cap(cap_mtops=2_000.0, acceleration=1.5),
        accelerated_foreign(factor=3.0, onset=1990.0),
        early_decontrol(years_early=4.0),
    ]
    thresholds = np.geomspace(10.0, 50_000.0, 16 if quick else 32)
    years = np.arange(1986.0, 2000.0, 0.6 if quick else 0.25)

    def cold():
        clear_scenario_caches()
        clear_installed_index()
        clear_requirement_matrices()
        clear_frontier_indexes()

    cold()
    tensor = evaluate_scenario_grid(worlds, thresholds, years)
    policy = evaluate_policy_grid(thresholds, years)
    singles = [evaluate_scenario_grid([w], thresholds, years)
               for w in worlds]
    exact = (
        np.array_equal(tensor.frontier_mtops[0], policy.frontier_mtops)
        and np.array_equal(tensor.requirements[0], policy.requirements)
        and np.array_equal(tensor.protected_counts[0],
                           policy.protected_counts)
        and np.array_equal(tensor.illusory_counts[0],
                           policy.illusory_counts)
        and np.array_equal(tensor.burden_units[0], policy.burden_units)
        and np.array_equal(tensor.uncontrollable_counts[0],
                           policy.uncontrollable_counts)
        and np.array_equal(tensor.credible[0], policy.credible)
        and all(
            np.array_equal(tensor.frontier_mtops[w],
                           single.frontier_mtops[0])
            and np.array_equal(tensor.requirements[w],
                               single.requirements[0])
            and np.array_equal(tensor.protected_counts[w],
                               single.protected_counts[0])
            and np.array_equal(tensor.illusory_counts[w],
                               single.illusory_counts[0])
            and np.array_equal(tensor.burden_units[w],
                               single.burden_units[0])
            and np.array_equal(tensor.uncontrollable_counts[w],
                               single.uncontrollable_counts[0])
            and np.array_equal(tensor.credible[w], single.credible[0])
            and np.array_equal(tensor.in_force_mtops[w],
                               single.in_force_mtops[0])
            for w, single in enumerate(singles)
        )
    )

    def sequential_worlds():
        out = []
        for world in worlds:
            cold()
            out.append(evaluate_scenario_grid([world], thresholds, years))
        return out

    def tensor_build():
        cold()
        return evaluate_scenario_grid(worlds, thresholds, years)

    scalar = time_workload(sequential_worlds, "scalar",
                           repeats=2 if quick else 3)
    fast = time_workload(tensor_build, "batch", repeats=3 if quick else 5)
    row = _row("scenario_grid",
               f"{len(worlds)}-world counterfactual tensor on a "
               f"{thresholds.size} x {years.size} (threshold, year) grid "
               f"({len(worlds)} sequential cold single-world builds vs one "
               f"cold tensor build sharing the per-year columns)",
               scalar, fast, 0.0 if exact else 1.0)
    row["worlds"] = len(worlds)
    row["tensor_points"] = int(len(worlds) * thresholds.size * years.size)
    return row


def _bench_policy_point_queries(quick: bool) -> dict:
    """Sparse agentic point queries: lazy tile plane vs full-grid builds.

    The workload is the interactive licensing mix the tile plane exists
    for: a Poisson-weighted stream of ``(threshold, year)`` point
    queries drawn from a small vocabulary (the statutory thresholds plus
    a few round numbers, over half-year steps 1988-1998).  The scalar
    baseline answers each query the pre-tile way — build the full
    policy lattice (the sweep axes unioned with the query vocabulary so
    every answer is a plain ``result_at``) and read one cell — while the
    batch side routes the same stream through
    :func:`repro.tiles.policy_cells`, which touches exactly one cached
    16x16 tile per query.  Both sides are timed in steady state (the
    tile side after a cold priming pass, reported separately), and the
    per-query latency distributions gate the tail: ``p99_speedup`` must
    hold alongside the min-of-k ``speedup``.

    ``max_rel_err`` is bit-exactness across the whole surface, not a
    tolerance: every streamed answer must equal the warm monolithic
    grid's cell dataclass-for-dataclass; :func:`tiled_policy_grid` and
    :func:`tiled_scenario_grid` must reproduce their monolithic builds
    byte-for-byte (``tobytes`` over every tensor, odd tile shapes); a
    three-event catalog mutation sequence (append, amend-machine,
    amend-threshold) must leave every fresh point answer equal to a
    fresh full build after *each* event (``parity_per_event``) while the
    threshold amendment provably skips the policy-plane hook; and the
    timed tile phase must complete with **zero** ``policy.grid_builds``
    — the sparse mix never pays for a full lattice.
    """
    import dataclasses

    from repro.catalog import events as catalog_events
    from repro.catalog.registry import catalog_epoch_info
    from repro.diffusion.policy_grid import evaluate_policy_grid
    from repro.diffusion.policy import threshold_at as policy_threshold_at
    from repro.machines.columns import machine_columns
    from repro.obs.trace import counters
    from repro.scenarios import HISTORICAL, accelerated_foreign, flop_cap
    from repro.scenarios.grid import evaluate_scenario_grid
    from repro.tiles import (
        clear_tile_planes,
        policy_cells,
        threshold_at,
        tile_plane_info,
        tiled_policy_grid,
        tiled_scenario_grid,
    )

    catalog_events.reset_catalog()

    rng = np.random.default_rng(11)
    vocab_t = [100.0, 160.0, 195.0, 500.0, 1_500.0, 2_000.0,
               4_000.0, 7_000.0, 10_000.0, 20_000.0]
    vocab_y = [1988.0 + 0.5 * k for k in range(21)]  # 1988 .. 1998
    lam = 0.7 if quick else 2.0
    counts = rng.poisson(lam=lam, size=(len(vocab_t), len(vocab_y)))
    stream = [(t, y)
              for i, t in enumerate(vocab_t)
              for j, y in enumerate(vocab_y)
              for _ in range(int(counts[i, j]))]
    rng.shuffle(stream)

    # The baseline's sweep axes: the full-resolution lattice a
    # non-tiled implementation would build, unioned with the query
    # vocabulary so each answer is an exact result_at read.
    base_t = np.union1d(np.geomspace(10.0, 50_000.0, 48),
                        np.asarray(vocab_t))
    base_y = np.union1d(np.arange(1986.0, 2000.0, 0.25),
                        np.asarray(vocab_y))
    row_of = {float(v): i for i, v in enumerate(base_t)}
    col_of = {float(v): j for j, v in enumerate(base_y)}

    def full_grid_pass() -> list[float]:
        lats = []
        for t, y in stream:
            start = time.perf_counter()
            grid = evaluate_policy_grid(base_t, base_y)
            grid.result_at(row_of[t], col_of[y])
            lats.append(time.perf_counter() - start)
        return lats

    def tile_pass() -> list[float]:
        lats = []
        for t, y in stream:
            start = time.perf_counter()
            policy_cells([(t, y)])
            lats.append(time.perf_counter() - start)
        return lats

    repeats = 2 if quick else 3
    full_grid_pass()  # warm the per-year caches the baseline leans on
    full_passes = [full_grid_pass() for _ in range(repeats)]

    clear_tile_planes()
    cold_lats = tile_pass()  # priming pass: every tile built lazily here
    tiles_built = int(tile_plane_info()["policy"]["builds"])
    builds_before = counters().get("policy.grid_builds", 0)
    tile_passes = [tile_pass() for _ in range(repeats)]
    grid_builds_during_tiles = (
        counters().get("policy.grid_builds", 0) - builds_before)

    scalar_totals = [sum(lats) for lats in full_passes]
    batch_totals = [sum(lats) for lats in tile_passes]
    scalar = Timing(name="scalar", best_seconds=min(scalar_totals),
                    mean_seconds=sum(scalar_totals) / len(scalar_totals),
                    repeats=repeats, warmup=1)
    batch = Timing(name="batch", best_seconds=min(batch_totals),
                   mean_seconds=sum(batch_totals) / len(batch_totals),
                   repeats=repeats, warmup=1)
    full_lats = np.concatenate(full_passes)
    tile_lats = np.concatenate(tile_passes)
    full_p50, full_p99 = np.percentile(full_lats, (50.0, 99.0))
    tile_p50, tile_p99 = np.percentile(tile_lats, (50.0, 99.0))

    # The softer comparison: even against ONE warm monolithic grid kept
    # around forever (no rebuilds, no invalidation story), the tile
    # plane's point reads are in the same league.
    warm_grid = evaluate_policy_grid(base_t, base_y)
    warm_lats = []
    for t, y in stream:
        start = time.perf_counter()
        warm_grid.result_at(row_of[t], col_of[y])
        warm_lats.append(time.perf_counter() - start)
    warm_p50, warm_p99 = np.percentile(warm_lats, (50.0, 99.0))

    # -- exactness, layer 1: every streamed answer == the warm grid ----
    distinct = sorted(set(stream))
    cells = policy_cells(distinct)
    point_parity = all(
        cell == warm_grid.result_at(row_of[t], col_of[y])
        for (t, y), cell in zip(distinct, cells)
    )

    # -- layer 2: tile-assembled sweeps are byte-identical -------------
    axes_t = np.geomspace(10.0, 50_000.0, 24)
    axes_y = np.arange(1986.0, 2000.0, 0.6)
    mono = evaluate_policy_grid(axes_t, axes_y)
    tiled = tiled_policy_grid(axes_t, axes_y, tile_shape=(7, 5))
    grid_parity = all(
        np.asarray(getattr(tiled, field)).tobytes()
        == np.asarray(getattr(mono, field)).tobytes()
        for field in ("frontier_mtops", "requirements", "protected_counts",
                      "illusory_counts", "burden_units",
                      "uncontrollable_counts", "credible")
    )
    worlds = (HISTORICAL, flop_cap(), accelerated_foreign())
    mono_s = evaluate_scenario_grid(worlds, axes_t[:8], axes_y[:6])
    tiled_s = tiled_scenario_grid(worlds, axes_t[:8], axes_y[:6],
                                  tile_shape=(3, 4))
    tensor_parity = all(
        np.asarray(getattr(tiled_s, field)).tobytes()
        == np.asarray(getattr(mono_s, field)).tobytes()
        for field in ("frontier_mtops", "requirements", "protected_counts",
                      "illusory_counts", "burden_units",
                      "uncontrollable_counts", "credible",
                      "in_force_mtops", "in_force_credible")
    )

    # -- layer 3: per-event invalidation parity -------------------------
    base_machine = machine_columns().machines[-1]
    clone = dataclasses.replace(base_machine, vendor="TileCo",
                                model="PQ-1")
    events = [
        catalog_events.AppendMachine(machine=clone),
        catalog_events.AmendMachine(
            key=clone.key,
            machine=dataclasses.replace(clone, units_installed=9)),
        catalog_events.AmendThreshold(start_year=1994.1,
                                      threshold_mtops=7_500.0,
                                      label="tile bench interim"),
    ]
    probes = [(195.0, 1992.0), (2_000.0, 1995.5), (7_000.0, 1996.5)]
    probe_t = np.asarray(sorted({t for t, _ in probes}))
    probe_y = np.asarray(sorted({y for _, y in probes}))
    parity_per_event = []
    events_applied = 0
    policy_hook_runs_before_amend = None
    for event in events:
        if isinstance(event, catalog_events.AmendThreshold):
            policy_hook_runs_before_amend = catalog_epoch_info()[
                "hook_runs"].get("tiles.policy", 0)
        outcome = catalog_events.apply_event(event)
        events_applied += int(outcome.applied)
        fresh = evaluate_policy_grid(probe_t, probe_y)
        fresh_rows = {float(v): i for i, v in enumerate(probe_t)}
        fresh_cols = {float(v): j for j, v in enumerate(probe_y)}
        answers = policy_cells(probes)
        ok = all(
            cell == fresh.result_at(fresh_rows[t], fresh_cols[y])
            for (t, y), cell in zip(probes, answers)
        ) and threshold_at(1995.0) == policy_threshold_at(1995.0)
        parity_per_event.append(bool(ok))
    # Precision: the threshold amendment must NOT have run the
    # policy-plane hook (scorecards never read THRESHOLD_HISTORY).
    policy_hook_precise = (
        catalog_epoch_info()["hook_runs"].get("tiles.policy", 0)
        == policy_hook_runs_before_amend)

    exact = (point_parity and grid_parity and tensor_parity
             and all(parity_per_event) and policy_hook_precise
             and grid_builds_during_tiles == 0)
    catalog_events.reset_catalog()

    row = _row("policy_point_queries",
               f"{len(stream)} Poisson-mixed (threshold, year) point "
               f"queries via the lazy tile plane vs one full "
               f"{base_t.size} x {base_y.size} policy-grid build per "
               f"query (steady state; bit-exact vs the monolithic grid, "
               f"re-proved after each of {len(events)} catalog events)",
               scalar, batch, 0.0 if exact else 1.0)
    row["queries"] = len(stream)
    row["p99_speedup"] = float(full_p99 / tile_p99)
    row["full_grid_p50_ms"] = float(full_p50 * 1e3)
    row["full_grid_p99_ms"] = float(full_p99 * 1e3)
    row["tile_p50_ms"] = float(tile_p50 * 1e3)
    row["tile_p99_ms"] = float(tile_p99 * 1e3)
    row["warm_monolithic_p50_ms"] = float(warm_p50 * 1e3)
    row["warm_monolithic_p99_ms"] = float(warm_p99 * 1e3)
    row["cold_pass_p99_ms"] = float(np.percentile(cold_lats, 99.0) * 1e3)
    row["tiles_built"] = tiles_built
    row["grid_builds_during_tile_phase"] = int(grid_builds_during_tiles)
    row["events_applied"] = events_applied
    row["parity_per_event"] = parity_per_event
    return row


def _bench_agentic_mix(quick: bool) -> dict:
    """A heterogeneous agentic batch: one fused plan vs per-request
    dispatch.

    The workload is the mixed traffic the multi-query planner exists
    for: a Poisson-weighted stream of ~200 queries drawn from a small
    cross-endpoint vocabulary (annual reviews, CTP ratings, license
    decisions, policy / scenario points, threshold lookups, catalog
    assessments — the shape of one agent's planning turn, repeated
    across concurrent agents).  The baseline dispatches each query as
    its own single-request plan — exactly the per-endpoint sequential
    path, one read-guard acquisition and one columnar pass per query —
    while the fused side compiles the whole stream into **one** plan:
    duplicates collapse by CSE, every rating shares one
    ``ctp_homogeneous_batch``, licenses share one controllability
    matrix pass, point queries regroup by tile bucket, and reviews run
    once per distinct (year, policy) with their thresholds reused by
    the rate / threshold-at slots.

    ``max_rel_err`` is byte-identity, not a tolerance: every fused
    slot's JSON body must serialize identically to its sequential
    counterpart (and no slot may fail), so 0.0 doubles as the parity
    gate the acceptance criteria require.
    """
    from repro.catalog import events as catalog_events
    from repro.serve import plan as qplan
    from repro.serve.schemas import parse_request
    from repro.tiles import clear_tile_planes

    catalog_events.reset_catalog()
    rng = np.random.default_rng(17)

    vocab: list[tuple[str, dict]] = []
    for year in (1992.0, 1994.0, 1995.5, 1997.0):
        vocab.append(("review", {"year": year}))
    for i in range(6):
        vocab.append(("rate", {
            "clock_mhz": 60.0 + 25.0 * i,
            "processors": 1 + 2 * i,
            "coupling": "shared" if i % 2 else "distributed",
            "year": 1992.0 + i,
        }))
    for t in (195.0, 2_000.0, 7_000.0, 10_000.0):
        for y in (1992.0, 1995.5):
            vocab.append(("policy", {"threshold_mtops": t, "year": y}))
    for world in ("historical", "flop_cap"):
        for y in (1993.0, 1996.0):
            vocab.append(("scenario", {"scenario": world, "year": y}))
    for year in (1992.0, 1993.5, 1994.0, 1995.5, 1997.0):
        vocab.append(("threshold_at", {"year": year}))
    for key in ("Cray C916", "Cray T3D (64)", "Cray T90/32"):
        vocab.append(("machine", {"machine": key}))
        vocab.append(("license", {"machine": key, "destination": "India",
                                  "year": 1995.5}))

    counts = rng.poisson(lam=200 / len(vocab), size=len(vocab))
    stream = [parse_request(endpoint, dict(payload))
              for (endpoint, payload), count in zip(vocab, counts)
              for _ in range(max(1, int(count)))]
    rng.shuffle(stream)

    def sequential_pass() -> list:
        out = []
        for request in stream:
            out.extend(qplan.execute_plan(qplan.build_plan([request])))
        return out

    def fused_pass() -> list:
        return qplan.execute_plan(qplan.build_plan(stream))

    clear_tile_planes()
    clear_credit_cache()
    sequential_out = sequential_pass()  # warm tiles, credit prefix rows
    before = qplan.plan_stats()
    fused_out = fused_pass()
    after = qplan.plan_stats()

    exact = all(
        not isinstance(a, BaseException) and not isinstance(b, BaseException)
        and json.dumps(a) == json.dumps(b)
        for a, b in zip(sequential_out, fused_out)
    ) and len(sequential_out) == len(fused_out) == len(stream)

    repeats = 2 if quick else 3
    scalar = time_workload(sequential_pass, "scalar", repeats=repeats)
    fast = time_workload(fused_pass, "batch", repeats=max(repeats, 3))

    plan = qplan.build_plan(stream)
    row = _row("agentic_mix",
               f"{len(stream)} Poisson-mixed queries across all seven "
               f"endpoints, one fused multi-query plan vs per-request "
               f"sequential dispatch (CSE + shared CTP batch + shared "
               f"matrix pass + tile regroup + review->era reuse; "
               f"response cache off on both sides; byte-identical "
               f"responses)",
               scalar, fast, 0.0 if exact else 1.0)
    row["queries"] = len(stream)
    row["unique_queries"] = len(plan.uniques)
    row["cse_hits"] = plan.cse_hits
    row["reuse_hits"] = after["reuse_hits"] - before["reuse_hits"]
    row["ops"] = after["ops"] - before["ops"]
    row["ops_fused"] = after["ops_fused"] - before["ops_fused"]
    row["throughput_qps"] = {
        "sequential": len(stream) / scalar.best_seconds,
        "fused": len(stream) / fast.best_seconds,
    }
    catalog_events.reset_catalog()
    return row


def _row(name: str, description: str, scalar: Timing, batch: Timing,
         max_rel_err: float) -> dict:
    return {
        "name": name,
        "description": description,
        "scalar": scalar.as_dict(),
        "batch": batch.as_dict(),
        "speedup": scalar.best_seconds / batch.best_seconds,
        "max_rel_err": max_rel_err,
    }


_BENCHES = {
    "batch_ctp_rating": _bench_batch_ctp,
    "frontier_year_grid": _bench_frontier_grid,
    "bound_sensitivity_mc": _bench_bound_sensitivity,
    "premise3_gap_scan": _bench_premise_scan,
    "keysearch_bit_expansion": _bench_keysearch,
    "serve_load": _bench_serve_load,
    "cluster_sweep_grid": _bench_cluster_sweep,
    "parallel_keysearch": _bench_parallel_keysearch,
    "policy_grid": _bench_policy_grid,
    "acquisition_mc": _bench_acquisition_mc,
    "snapshot_cold_start": _bench_snapshot_cold_start,
    "serve_prefork_load": _bench_serve_prefork_load,
    "catalog_churn": _bench_catalog_churn,
    "scenario_grid": _bench_scenario_grid,
    "policy_point_queries": _bench_policy_point_queries,
    "agentic_mix": _bench_agentic_mix,
}


def run_benchmarks(
    quick: bool = False,
    output: Path | str | None = BENCH_PATH,
    names: tuple[str, ...] = WORKLOAD_NAMES,
) -> dict:
    """Run the suite; write JSON to ``output`` unless it is ``None``.

    The payload embeds a :func:`repro.obs.metrics_snapshot` taken after
    the run, so ``BENCH_perf.json`` records the credit-cache and
    catalog/frontier-index statistics alongside the timings.
    """
    unknown = set(names) - set(_BENCHES)
    if unknown:
        raise ValidationError(
            f"unknown workloads: {sorted(unknown)}",
            context={"got": sorted(unknown), "valid": sorted(_BENCHES)},
        )
    results = []
    for name in names:
        with trace(f"bench.{name}", quick=quick):
            results.append(_BENCHES[name](quick))
    payload = {
        "suite": "repro-perf",
        "quick": quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "workloads": results,
        "metrics": metrics_snapshot(),
    }
    if output is not None:
        Path(output).write_text(json.dumps(payload, indent=2) + "\n")
    return payload
