"""Extension experiment: the framework against the post-1995 record.

Validation the original authors could not run: the framework's year-by-
year recommendations lined up against the thresholds the U.S. actually
adopted in 1996, 1999, and 2000, plus the staleness sawtooth that the
paper's annual-review recommendation would have flattened.
"""

from repro._util import year_range
from repro.core.epilogue import compare_with_history, staleness_series
from repro.core.threshold import ThresholdPolicy
from repro.reporting.tables import render_table

_YEARS = (1995.5, 1996.5, 1997.5, 1998.5, 1999.8)


def build_study():
    comparisons = compare_with_history(_YEARS, ThresholdPolicy.ECONOMIC)
    sawtooth = staleness_series(year_range(1995.0, 1999.9, 0.25))
    return comparisons, sawtooth


def test_ext_epilogue_validation(benchmark, emit):
    comparisons, sawtooth = benchmark(build_study)
    rows = [
        [f"{c.year:.1f}", round(c.recommended_mtops),
         round(c.actual_civil_mtops), round(c.actual_military_mtops),
         round(c.frontier_mtops),
         "yes" if c.recommendation_within_actual_pair else "no",
         "STALE" if c.actual_military_stale else "ok"]
        for c in comparisons
    ]
    text = render_table(
        ["year", "framework rec.", "actual civil", "actual military",
         "frontier", "rec. within pair", "actual regime"],
        rows,
        title="Framework recommendations vs actual post-1995 thresholds "
              "(tier-3, Mtops)",
    )
    peaks = [f"{y:.2f}: {f:.1f}x" for y, f in sawtooth if f > 3.0]
    text += ("\n\nstaleness sawtooth (frontier / actual military "
             "threshold) peaks:\n  " + "\n  ".join(peaks[:6]))
    emit(text)

    by_year = {c.year: c for c in comparisons}
    # The study period's 1,500-Mtops regime was stale; the 1996 reform
    # bracketed the framework's recommendation; the gap reopened by 1998.
    assert by_year[1995.5].actual_military_stale
    assert by_year[1996.5].recommendation_within_actual_pair
    assert not by_year[1996.5].actual_military_stale
    assert by_year[1998.5].actual_military_stale
    # The sawtooth exists: some post-reform point exceeds 3x staleness.
    assert any(f > 3.0 for _, f in sawtooth)
