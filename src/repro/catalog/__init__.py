"""Event-sourced catalog mutation (epoch, events, invalidation registry).

``repro.catalog.registry`` is stdlib-only and safe to import from any
layer (serve, store, machines, …); it is imported eagerly here.  The
event machinery in :mod:`repro.catalog.events` pulls in most of the
repository and is exposed lazily (PEP 562) so that low-level modules can
``import repro.catalog`` for the registry without creating import
cycles.
"""

from __future__ import annotations

from repro.catalog.registry import (
    EVENT_KINDS,
    catalog_epoch_info,
    current_epoch,
    invalidate_all,
    invalidate_for,
    read_guard,
    register_invalidation_hook,
    unregister_invalidation_hook,
    write_guard,
)

__all__ = [
    "EVENT_KINDS",
    "AppendMachine",
    "AmendMachine",
    "AmendThreshold",
    "AppliedEvent",
    "apply_event",
    "catalog_epoch_info",
    "current_epoch",
    "events",
    "invalidate_all",
    "invalidate_for",
    "parse_event",
    "read_guard",
    "register_invalidation_hook",
    "reset_catalog",
    "unregister_invalidation_hook",
    "write_guard",
]

_LAZY = {
    "AppendMachine",
    "AmendMachine",
    "AmendThreshold",
    "AppliedEvent",
    "apply_event",
    "parse_event",
    "reset_catalog",
}


def __getattr__(name: str):
    if name == "events":
        import repro.catalog.events as events

        return events
    if name in _LAZY:
        from repro.catalog import events

        return getattr(events, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
