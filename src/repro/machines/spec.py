"""Machine specification dataclasses.

A :class:`MachineSpec` is one rateable configuration: a machine model at a
specific processor count.  Specs carry the fields every downstream model
consumes:

* the CTP pipeline (``element``, ``n_processors``, ``architecture``) — used
  to *compute* a rating with :mod:`repro.ctp`;
* ``quoted_ctp_mtops`` — the rating the paper itself quotes, which is
  treated as ground truth when present (``ctp_mtops`` prefers it);
* the controllability inputs of Chapter 3 (units installed, entry price,
  distribution channel, size class, field upgradability, product cycle).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro._util import check_positive, check_year
from repro.ctp.aggregate import Coupling, CTPParameters, DEFAULT_PARAMETERS
from repro.ctp.elements import ComputingElement
from repro.ctp.metric import ctp_homogeneous

__all__ = ["Architecture", "DistributionChannel", "SizeClass", "MachineSpec"]


class Architecture(enum.Enum):
    """Architecture classes used throughout the paper (Table 5 spectrum)."""

    UNIPROCESSOR = "uniprocessor"
    VECTOR = "vector-pipelined"
    SMP = "shared-memory multiprocessor"
    MPP = "massively parallel (distributed memory)"
    DEDICATED_CLUSTER = "dedicated cluster"
    AD_HOC_CLUSTER = "ad hoc cluster"

    @property
    def coupling(self) -> Coupling:
        """CTP aggregation coupling class for this architecture."""
        if self in (Architecture.UNIPROCESSOR,):
            return Coupling.SINGLE
        if self in (Architecture.VECTOR, Architecture.SMP):
            return Coupling.SHARED
        if self is Architecture.MPP:
            return Coupling.DISTRIBUTED
        return Coupling.CLUSTER

    @property
    def tightness_rank(self) -> int:
        """Position in the paper's tightly->loosely coupled spectrum.

        Lower is more tightly coupled.  Vector and SMP tie conceptually but
        the paper lists vector machines first (Table 5).
        """
        order = {
            Architecture.VECTOR: 0,
            Architecture.UNIPROCESSOR: 1,
            Architecture.SMP: 2,
            Architecture.MPP: 3,
            Architecture.DEDICATED_CLUSTER: 4,
            Architecture.AD_HOC_CLUSTER: 5,
        }
        return order[self]


class DistributionChannel(enum.Enum):
    """How a product reaches customers (a controllability factor)."""

    #: Vendor-direct sales with installation involvement (Cray, Convex...).
    DIRECT = "direct"
    #: Mostly direct with some resellers; vendor keeps good oversight.
    MIXED = "mixed"
    #: VARs / OEMs / systems integrators / dealership networks (DEC, SGI...).
    THIRD_PARTY = "third-party"


class SizeClass(enum.Enum):
    """Physical footprint (a controllability factor)."""

    DESKTOP = "desktop"
    DESKSIDE = "deskside"
    RACK = "rack"
    #: Machine-room installation: special power, cooling, raised floor.
    ROOM = "room"


@dataclass(frozen=True)
class MachineSpec:
    """One rateable machine configuration.

    Attributes
    ----------
    vendor, model:
        Identification; ``model`` includes the configuration when a family
        was sold at many sizes (e.g. ``"Paragon XP/S-150"``).
    country:
        Country of origin (ISO-ish short name, e.g. ``"USA"``).
    year:
        Decimal year of first shipment of this configuration.
    architecture:
        Architecture class (drives CTP coupling and Table 5 placement).
    n_processors:
        Number of computing elements in this configuration.
    element:
        The per-processor computing element, when known; optional because
        several historical entries are only known by their quoted rating.
    quoted_ctp_mtops:
        CTP rating quoted in the paper text (ground truth when present).
    quoted_peak_mflops:
        Peak Mflops figure quoted in the paper or standard references.
    entry_price_usd / max_price_usd:
        Price band of the product family, 1995 dollars.
    units_installed:
        Estimated installed base (chassis) circa mid-1995.
    channel:
        Distribution-channel class.
    size_class:
        Physical footprint class.
    field_upgradable:
        True when users can raise the configuration to the family maximum
        without vendor involvement (the SMP scalability loophole).
    max_processors:
        Largest configuration of the family.
    product_cycle_years:
        Time to the successor model at comparable price.
    approx:
        True when numbers are era-appropriate reconstructions rather than
        paper-quoted values.
    """

    vendor: str
    model: str
    country: str
    year: float
    architecture: Architecture
    n_processors: int = 1
    element: ComputingElement | None = None
    quoted_ctp_mtops: float | None = None
    quoted_peak_mflops: float | None = None
    entry_price_usd: float | None = None
    max_price_usd: float | None = None
    units_installed: int | None = None
    channel: DistributionChannel = DistributionChannel.DIRECT
    size_class: SizeClass = SizeClass.ROOM
    field_upgradable: bool = False
    max_processors: int | None = None
    product_cycle_years: float = 2.0
    approx: bool = False
    notes: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        check_year(self.year, "year")
        if self.n_processors < 1:
            raise ValueError(f"{self.model}: n_processors must be >= 1")
        if self.element is None and self.quoted_ctp_mtops is None:
            raise ValueError(
                f"{self.model}: needs an element or a quoted CTP to be rateable"
            )
        if self.quoted_ctp_mtops is not None:
            check_positive(self.quoted_ctp_mtops, f"{self.model}: quoted_ctp_mtops")
        if self.max_processors is not None and self.max_processors < self.n_processors:
            raise ValueError(f"{self.model}: max_processors < n_processors")
        check_positive(self.product_cycle_years, f"{self.model}: product_cycle_years")

    @property
    def key(self) -> str:
        """Stable lookup key, ``"vendor model"``."""
        return f"{self.vendor} {self.model}"

    def computed_ctp_mtops(self, params: CTPParameters = DEFAULT_PARAMETERS) -> float | None:
        """CTP computed from the machine's elements, or None if unknown."""
        if self.element is None:
            return None
        return ctp_homogeneous(
            self.element, self.n_processors, self.architecture.coupling, params
        )

    @property
    def ctp_mtops(self) -> float:
        """Authoritative rating: paper-quoted when available, else computed."""
        if self.quoted_ctp_mtops is not None:
            return self.quoted_ctp_mtops
        computed = self.computed_ctp_mtops()
        assert computed is not None  # guaranteed by __post_init__
        return computed

    def at_processors(self, n: int) -> "MachineSpec":
        """This family scaled to ``n`` processors (computed rating only).

        The quoted rating belongs to the original configuration, so it is
        dropped; callers get the formula's value for the new size.  Used to
        model field upgrades within a family.
        """
        if self.element is None:
            raise ValueError(f"{self.model}: cannot rescale without element data")
        if self.max_processors is not None and n > self.max_processors:
            raise ValueError(
                f"{self.model}: {n} exceeds family maximum {self.max_processors}"
            )
        return replace(self, n_processors=n, quoted_ctp_mtops=None, quoted_peak_mflops=None)

    def max_configuration(self) -> "MachineSpec":
        """The family's maximum configuration (what an upgrader can reach)."""
        if self.max_processors is None or self.max_processors == self.n_processors:
            return self
        return self.at_processors(self.max_processors)
