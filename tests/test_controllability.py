"""Tests for factor scores, the composite index, and Table 4 verdicts."""

import pytest

from repro.controllability.factors import (
    FactorScores,
    age_score,
    channel_score,
    price_score,
    scalability_score,
    size_score,
    units_score,
)
from repro.controllability.index import (
    Classification,
    ControllabilityWeights,
    assess,
    classification_table,
)
from repro.machines.catalog import find_machine
from repro.machines.spec import DistributionChannel, SizeClass


class TestFactorScores:
    def test_size_ordering(self):
        assert (size_score(SizeClass.ROOM) > size_score(SizeClass.RACK)
                > size_score(SizeClass.DESKSIDE) > size_score(SizeClass.DESKTOP))

    def test_channel_ordering(self):
        assert (channel_score(DistributionChannel.DIRECT)
                > channel_score(DistributionChannel.MIXED)
                > channel_score(DistributionChannel.THIRD_PARTY))

    def test_units_anchors(self):
        assert units_score(12) == 1.0
        assert units_score(5) == 1.0
        assert units_score(20_000) == 0.0
        assert units_score(1_000_000) == 0.0
        assert 0.0 < units_score(500) < 1.0

    def test_units_monotone(self):
        assert units_score(100) > units_score(1_000) > units_score(10_000)

    def test_units_unknown_neutral(self):
        assert units_score(None) == 0.5

    def test_price_anchors(self):
        assert price_score(1_000_000) == 1.0
        assert price_score(30_000_000) == 1.0
        assert price_score(100_000) == pytest.approx(0.1)
        assert price_score(None) == 0.5

    def test_price_monotone(self):
        assert (price_score(5_000) < price_score(100_000)
                < price_score(500_000) < price_score(1_000_000))

    def test_scalability_non_upgradable_full(self):
        assert scalability_score(find_machine("Cray C916")) == 1.0

    def test_scalability_penalizes_headroom(self):
        challenge = find_machine("SGI Challenge XL (36)")
        assert scalability_score(challenge) < 0.6

    def test_age_within_cycle(self):
        c916 = find_machine("Cray C916")
        assert age_score(c916, c916.year + 1.0) == 1.0

    def test_age_declines_then_floors(self):
        c916 = find_machine("Cray C916")
        late = age_score(c916, c916.year + 3.0)
        very_late = age_score(c916, c916.year + 10.0)
        assert 0.1 <= very_late < late < 1.0
        assert very_late == pytest.approx(0.1)

    def test_age_before_introduction_raises(self):
        c916 = find_machine("Cray C916")
        with pytest.raises(ValueError):
            age_score(c916, c916.year - 1.0)

    def test_factor_scores_of(self):
        scores = FactorScores.of(find_machine("Cray C916"))
        assert set(scores.as_dict()) == {
            "size", "units", "channel", "price", "scalability"
        }
        assert all(0.0 <= v <= 1.0 for v in scores.as_dict().values())


class TestWeights:
    def test_defaults_sum_to_one(self):
        ControllabilityWeights()  # does not raise

    def test_rejects_bad_sum(self):
        with pytest.raises(ValueError):
            ControllabilityWeights(size=0.5)

    def test_rejects_inverted_thresholds(self):
        with pytest.raises(ValueError):
            ControllabilityWeights(uncontrollable_below=0.8, controllable_at=0.7)


class TestAssessments:
    """Chapter 3's qualitative verdicts, reproduced."""

    @pytest.mark.parametrize("key", [
        "Cray C916",
        "Cray T3D (512)",
        "Intel Paragon XP/S (150)",
        "Thinking Machines CM-5 (128)",
    ])
    def test_big_iron_controllable(self, key):
        assert assess(find_machine(key)).classification is Classification.CONTROLLABLE

    @pytest.mark.parametrize("key", [
        "Cray CS6400 (64)",
        "SGI Challenge XL (36)",
        "SGI PowerChallenge (4)",
        "Sun SPARCstation 10",
        "DEC AlphaServer 8400 (12)",
    ])
    def test_volume_smps_uncontrollable(self, key):
        # "systems like the Cray CS6400 and Silicon Graphics Challenge
        # series represent the most powerful uncontrollable systems
        # available in mid-1995".
        assert assess(find_machine(key)).classification is Classification.UNCONTROLLABLE

    def test_index_bounded(self):
        for row in classification_table():
            assert 0.0 <= row.index <= 1.0

    def test_table_sorted_descending(self):
        rows = classification_table()
        indices = [r.index for r in rows]
        assert indices == sorted(indices, reverse=True)

    def test_is_uncontrollable_property(self):
        row = assess(find_machine("Sun SPARCstation 10"))
        assert row.is_uncontrollable

    def test_custom_weights_shift_verdict(self):
        # With lax thresholds, even the SS10 counts as controllable.
        lax = ControllabilityWeights(uncontrollable_below=0.01,
                                     controllable_at=0.02)
        row = assess(find_machine("Sun SPARCstation 10"), lax)
        assert row.classification is Classification.CONTROLLABLE
