"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("review", "headline", "rate", "machine", "license",
                        "sensitivity", "simulate", "acquire"):
            args = {
                "review": [command],
                "headline": [command],
                "rate": [command, "--clock-mhz", "100"],
                "machine": [command],
                "license": [command, "Cray C916", "India"],
                "sensitivity": [command],
                "simulate": [command],
                "acquire": [command, "5000"],
            }[command]
            parsed = parser.parse_args(args)
            assert parsed.command == command


class TestCommands:
    def test_headline(self, capsys):
        code, out = run_cli(capsys, "headline")
        assert code == 0
        assert "4,000-5,000" in out
        assert "4088" in out

    def test_review(self, capsys):
        code, out = run_cli(capsys, "review", "--year", "1995.5")
        assert code == 0
        assert "premise 1: HOLDS" in out
        assert "STALE" in out

    def test_rate_supercomputer(self, capsys):
        code, out = run_cli(
            capsys, "rate", "--clock-mhz", "300", "--fp-per-cycle", "2",
            "--int-per-cycle", "2", "--concurrent", "--processors", "12",
        )
        assert code == 0
        assert "11,100" in out
        assert "supercomputer" in out

    def test_rate_below_definition(self, capsys):
        code, out = run_cli(capsys, "rate", "--clock-mhz", "50")
        assert code == 0
        assert "below definition" in out

    def test_machine_lookup(self, capsys):
        code, out = run_cli(capsys, "machine", "Cray C916")
        assert code == 0
        assert "21,125" in out
        assert "controllable" in out

    def test_machine_listing(self, capsys):
        code, out = run_cli(capsys, "machine")
        assert code == 0
        assert "Cray C916" in out
        assert "Sun SPARCstation 10" in out

    def test_machine_unknown_is_error(self, capsys):
        code, out = run_cli(capsys, "machine", "Cray C917")
        assert code == 1
        assert "error:" in out

    def test_license_denied(self, capsys):
        code, out = run_cli(capsys, "license", "Cray C916", "Iran")
        assert code == 0
        assert "DENIED" in out

    def test_license_supplier(self, capsys):
        code, out = run_cli(capsys, "license", "Cray C916", "Japan")
        assert code == 0
        assert "license required  no" in out

    def test_license_custom_threshold(self, capsys):
        code, out = run_cli(capsys, "license", "Sun SPARCstation 10",
                            "India", "--threshold", "50")
        assert code == 0
        assert "license required  yes" in out

    def test_simulate_listing(self, capsys):
        code, out = run_cli(capsys, "simulate")
        assert code == 0
        assert "ray tracing" in out
        assert "embarrassingly parallel" in out

    def test_simulate_workload(self, capsys):
        code, out = run_cli(capsys, "simulate", "shallow-water model")
        assert code == 0
        assert "efficiency ratio" in out

    def test_simulate_unknown_workload(self, capsys):
        code, out = run_cli(capsys, "simulate", "mining")
        assert code == 1
        assert "error:" in out

    def test_acquire(self, capsys):
        code, out = run_cli(capsys, "acquire", "10000", "--attempts", "100")
        assert code == 0
        assert "easiest adequate system" in out

    def test_acquire_unreachable(self, capsys):
        code, out = run_cli(capsys, "acquire", "99999999")
        assert code == 0
        assert "no cataloged system" in out

    def test_sensitivity(self, capsys):
        code, out = run_cli(capsys, "sensitivity", "--samples", "25")
        assert code == 0
        assert "4,000-5,000 band" in out
        assert "verdict stability" in out.lower()


class TestRateValidation:
    """Bad ``rate`` flags exit nonzero with a one-line flag-named
    diagnostic — never a traceback."""

    @pytest.mark.parametrize("argv,flag", [
        (["rate", "--clock-mhz", "-100"], "--clock-mhz"),
        (["rate", "--clock-mhz", "0"], "--clock-mhz"),
        (["rate", "--clock-mhz", "100", "--processors", "0"], "--processors"),
        (["rate", "--clock-mhz", "100", "--processors", "-4"],
         "--processors"),
        (["rate", "--clock-mhz", "100", "--word-bits", "-40"], "--word-bits"),
        (["rate", "--clock-mhz", "100", "--fp-per-cycle", "-1"],
         "--fp-per-cycle"),
        (["rate", "--clock-mhz", "100", "--int-per-cycle", "-1"],
         "--int-per-cycle"),
    ])
    def test_invalid_flag_is_clean_error(self, capsys, argv, flag):
        code, out = run_cli(capsys, *argv)
        assert code == 1
        assert out.startswith("error:")
        assert flag in out
        assert "Traceback" not in out
        assert len(out.strip().splitlines()) == 1

    def test_valid_rate_still_works(self, capsys):
        code, out = run_cli(capsys, "rate", "--clock-mhz", "100")
        assert code == 0
        assert "CTP" in out


class TestMachineNormalization:
    def test_lowercase_key_resolves(self, capsys):
        code, out = run_cli(capsys, "machine", "cray c916")
        assert code == 0
        assert "21,125" in out

    def test_extra_whitespace_resolves(self, capsys):
        code, out = run_cli(capsys, "machine", "  Cray   C916 ")
        assert code == 0
        assert "21,125" in out

    def test_miss_suggests_closest(self, capsys):
        code, out = run_cli(capsys, "machine", "Cray C917")
        assert code == 1
        assert out.startswith("error:")
        assert "closest" in out
        assert "Cray C916" in out
        assert len(out.strip().splitlines()) == 1


class TestProfileFlag:
    def test_review_profile_prints_span_tree_and_cache_counters(self, capsys):
        code, out = run_cli(capsys, "review", "--profile")
        assert code == 0
        assert "premise 1: HOLDS" in out          # normal output intact
        assert "profile (wall time per span)" in out
        assert "review.run" in out
        assert "bounds.derive" in out
        assert "ms" in out
        assert "credit_cache.hits" in out
        assert "credit_cache.misses" in out

    def test_sensitivity_profile(self, capsys):
        code, out = run_cli(capsys, "sensitivity", "--samples", "25",
                            "--profile")
        assert code == 0
        assert "sensitivity.bound" in out
        assert "sensitivity.sample_weights" in out

    def test_no_profile_output_by_default(self, capsys):
        code, out = run_cli(capsys, "review")
        assert code == 0
        assert "profile (wall time per span)" not in out
