"""Tests for the cluster-vs-integrated studies (Table 5, notes 50-55)."""

import pytest

from repro.machines.spec import Architecture
from repro.simulate.cluster_study import (
    compare_architectures,
    gator_study,
    max_competitive_cluster_size,
    spectrum_table,
)
from repro.simulate.interconnect import ATM_155, FDDI
from repro.simulate.workloads import WORKLOAD_SUITE


class TestSpectrumOrdering:
    @pytest.mark.parametrize("workload", [w.name for w in WORKLOAD_SUITE])
    def test_ordering_holds_for_entire_suite(self, workload):
        """The Table 5 chain (SMP >= dedicated >= ad hoc cluster) holds for
        every suite workload."""
        assert compare_architectures(workload).spectrum_ordering_holds()

    def test_penalty_small_for_embarrassing(self):
        assert compare_architectures("keysearch").cluster_penalty() < 1.3

    def test_penalty_large_for_fine_grain(self):
        assert compare_architectures("shallow-water model").cluster_penalty() > 5.0

    def test_penalty_infinite_for_memory_bound(self):
        assert compare_architectures("turbulent-flow CSM").cluster_penalty() \
            == float("inf")

    def test_ranked_fastest_first(self):
        ranked = compare_architectures("molecular dynamics").ranked()
        times = [r.time_s for r in ranked]
        assert times == sorted(times)

    def test_vector_fastest_absolute_on_fine_grain(self):
        # The C916 posts the best absolute time on fine-grained work even
        # though its parallel *efficiency* is Amdahl-penalized.
        ranked = compare_architectures("shallow-water model").ranked()
        assert ranked[0].machine.architecture is Architecture.VECTOR


class TestMaxCompetitiveSize:
    def test_mattson_8_to_16_ethernet(self):
        """'Reasonable speedups were often observed for clusters with up to
        8-12 nodes, but few exhibited significant speedups for clusters of
        greater size' — medium-grain work on a 10-Mb/s LAN."""
        n = max_competitive_cluster_size("molecular dynamics")
        assert 8 <= n <= 32

    def test_fine_grain_not_competitive_on_ethernet(self):
        assert max_competitive_cluster_size("shallow-water model") <= 2
        assert max_competitive_cluster_size("weather prediction") <= 2
        assert max_competitive_cluster_size("sparse linear solver") <= 2

    def test_embarrassing_scales_everywhere(self):
        assert max_competitive_cluster_size("ray tracing") == 256
        assert max_competitive_cluster_size("keysearch") == 256

    def test_better_network_extends_reach(self):
        eth = max_competitive_cluster_size("chemical tracer (GATOR)")
        fddi = max_competitive_cluster_size("chemical tracer (GATOR)", FDDI)
        atm = max_competitive_cluster_size(
            "chemical tracer (GATOR)", ATM_155, dedicated=True
        )
        assert eth <= fddi <= atm

    def test_memory_bound_zero(self):
        assert max_competitive_cluster_size("turbulent-flow CSM") == 0

    def test_floor_validation(self):
        with pytest.raises(ValueError):
            max_competitive_cluster_size("ray tracing", efficiency_floor=0.0)


class TestGatorStudy:
    def test_now_result_reproduced(self):
        """Note 50: the 256-node cluster beats both the C90 and the Paragon
        — but only with the ATM interconnect and low-overhead messaging."""
        results = gator_study()
        atm = results["NOW cluster (256, ATM)"]
        c90 = results["Cray C90 (16)"]
        paragon = results["MPP (256 nodes)"]
        ethernet = results["NOW cluster (256, Ethernet/PVM)"]
        assert atm.time_s < c90.time_s
        assert atm.time_s < paragon.time_s
        assert ethernet.time_s > c90.time_s

    def test_all_feasible(self):
        assert all(r.feasible for r in gator_study().values())


class TestSpectrumTable:
    def test_five_rows_in_order(self):
        rows = spectrum_table()
        archs = [r.architecture for r in rows]
        assert archs == sorted(archs, key=lambda a: a.tightness_rank)
        assert len(rows) == 5

    def test_ad_hoc_cluster_collapses_on_fine_grain(self):
        rows = {r.architecture: r for r in spectrum_table()}
        adhoc = rows[Architecture.AD_HOC_CLUSTER]
        assert adhoc.fine_efficiency < 0.2
        assert adhoc.coarse_efficiency > 0.3

    def test_tight_architectures_fine_grain_capable(self):
        rows = {r.architecture: r for r in spectrum_table()}
        assert rows[Architecture.SMP].fine_efficiency > 0.6
