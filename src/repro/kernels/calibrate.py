"""Kernel measurement harness: achieved rates and granularity.

Times each kernel on the host, derives the achieved Mflops and — for the
halo-exchange kernel — the computation/communication *granularity* (flops
computed per byte that a domain decomposition would move).  Granularity is
the quantity Chapter 3's cluster argument turns on: "the more the
interconnect is a bottleneck, the more coarsely grained an application
must be to run effectively".

Measurements follow the optimization-guide discipline: time a realistic
problem size, repeat, take the best (least-noise) run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.kernels.fft import alltoall_bytes_per_process, fft2d, fft2d_flops
from repro.kernels.raytrace import demo_scene, render
from repro.kernels.shallow_water import (
    flops_per_step,
    halo_bytes_per_step,
    initial_gaussian,
    run,
)
from repro.kernels.solvers import conjugate_gradient, poisson_matrix

__all__ = ["KernelCalibration", "calibrate_kernels"]


@dataclass(frozen=True)
class KernelCalibration:
    """Measured characteristics of one kernel on this host."""

    name: str
    problem: str
    elapsed_s: float
    flops: float
    #: Bytes a 16-way domain decomposition would exchange over the run
    #: (0 for embarrassingly parallel kernels).
    comm_bytes_p16: float

    @property
    def mflops(self) -> float:
        return self.flops / self.elapsed_s / 1e6

    @property
    def granularity_flops_per_byte(self) -> float:
        """Computation per communicated byte (inf when no communication)."""
        if self.comm_bytes_p16 == 0.0:
            return float("inf")
        return self.flops / self.comm_bytes_p16


def _best_time(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def calibrate_kernels(
    sw_n: int = 128,
    sw_steps: int = 50,
    rt_size: int = 128,
    cg_n: int = 48,
    repeats: int = 3,
) -> list[KernelCalibration]:
    """Measure the three kernel families; deterministic workloads, wall
    clock the only nondeterminism."""
    if min(sw_n, sw_steps, rt_size, cg_n, repeats) < 1:
        raise ValueError("all sizes must be >= 1")
    results = []

    state = initial_gaussian(sw_n)
    elapsed = _best_time(lambda: run(state, sw_steps), repeats)
    results.append(KernelCalibration(
        name="shallow water",
        problem=f"{sw_n}x{sw_n}, {sw_steps} steps",
        elapsed_s=elapsed,
        flops=flops_per_step(sw_n) * sw_steps,
        comm_bytes_p16=halo_bytes_per_step(sw_n, 16) * sw_steps,
    ))

    scene = demo_scene()
    elapsed = _best_time(lambda: render(scene, rt_size, rt_size), repeats)
    # ~40 flops per pixel per sphere (intersection + shading).
    results.append(KernelCalibration(
        name="ray tracing",
        problem=f"{rt_size}x{rt_size}, {len(scene)} spheres",
        elapsed_s=elapsed,
        flops=40.0 * rt_size * rt_size * len(scene),
        comm_bytes_p16=0.0,
    ))

    field = np.arange(float(128 * 128)).reshape(128, 128)
    elapsed = _best_time(lambda: fft2d(field), repeats)
    results.append(KernelCalibration(
        name="2-D FFT",
        problem="128x128 complex transform",
        elapsed_s=elapsed,
        flops=fft2d_flops(128),
        comm_bytes_p16=alltoall_bytes_per_process(128, 16) * 16,
    ))

    a = poisson_matrix(cg_n)
    b = np.ones(cg_n * cg_n)
    _, iters = conjugate_gradient(a, b, tol=1e-8)
    elapsed = _best_time(lambda: conjugate_gradient(a, b, tol=1e-8), repeats)
    # Per iteration: one SpMV (2 * nnz) plus ~10 vector ops of length n^2.
    flops = iters * (2.0 * a.nnz + 10.0 * cg_n * cg_n)
    # Two global reductions per iteration: 16 partial sums of 8 bytes.
    results.append(KernelCalibration(
        name="sparse CG",
        problem=f"Poisson {cg_n}x{cg_n}, {iters} iterations",
        elapsed_s=elapsed,
        flops=flops,
        comm_bytes_p16=iters * 2.0 * 16 * 8.0,
    ))
    return results
