"""Tests for exponential trend fitting and projection."""

import numpy as np
import pytest

from repro.trends.curves import (
    ExponentialTrend,
    TrendPoint,
    fit_exponential,
    loo_prediction_errors,
    running_max_series,
)


class TestTrendPoint:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrendPoint(year=1995.0, mtops=0.0)
        with pytest.raises(ValueError):
            TrendPoint(year=5.0, mtops=100.0)

    def test_label_not_compared(self):
        assert TrendPoint(1995.0, 10.0, "a") == TrendPoint(1995.0, 10.0, "b")


class TestFit:
    def test_exact_two_point_fit(self):
        t = fit_exponential([1990.0, 1992.0], [100.0, 400.0])
        assert t.value(1990.0) == pytest.approx(100.0)
        assert t.value(1992.0) == pytest.approx(400.0)
        assert t.doubling_time_years == pytest.approx(1.0)

    def test_growth_per_year(self):
        t = fit_exponential([1990.0, 1991.0], [100.0, 200.0])
        assert t.growth_per_year == pytest.approx(2.0)

    def test_noisy_fit_recovers_slope(self):
        rng = np.random.default_rng(42)
        years = np.linspace(1988, 1996, 30)
        true = ExponentialTrend(base_year=1988.0, intercept=2.0, slope=0.15)
        values = true.value(years) * 10 ** rng.normal(0, 0.05, years.size)
        fitted = fit_exponential(years, values)
        assert fitted.slope == pytest.approx(0.15, abs=0.02)
        assert fitted.residual_std < 0.1

    def test_rejects_single_year(self):
        with pytest.raises(ValueError):
            fit_exponential([1990.0, 1990.0], [1.0, 2.0])

    def test_rejects_nonpositive_values(self):
        with pytest.raises(ValueError):
            fit_exponential([1990.0, 1991.0], [1.0, 0.0])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            fit_exponential([1990.0, 1991.0], [1.0])


class TestTrendBehaviour:
    def test_year_reaching_inverse_of_value(self):
        t = fit_exponential([1990.0, 1992.0], [100.0, 400.0])
        year = t.year_reaching(1600.0)
        assert t.value(year) == pytest.approx(1600.0)
        assert year == pytest.approx(1994.0)

    def test_year_reaching_flat_trend_raises(self):
        t = ExponentialTrend(base_year=1990.0, intercept=2.0, slope=0.0)
        with pytest.raises(ValueError):
            t.year_reaching(1e6)

    def test_flat_trend_infinite_doubling(self):
        t = ExponentialTrend(base_year=1990.0, intercept=2.0, slope=0.0)
        assert t.doubling_time_years == float("inf")

    def test_shifted_delays(self):
        t = fit_exponential([1990.0, 1992.0], [100.0, 400.0])
        lagged = t.shifted(2.0)
        assert lagged.value(1994.0) == pytest.approx(t.value(1992.0))

    def test_vectorized_value(self):
        t = fit_exponential([1990.0, 1992.0], [100.0, 400.0])
        out = t.value(np.array([1990.0, 1991.0, 1992.0]))
        assert out.shape == (3,)
        assert out[1] == pytest.approx(200.0)


class TestRunningMax:
    def test_step_behaviour(self):
        pts = [TrendPoint(1990.0, 100.0), TrendPoint(1993.0, 50.0),
               TrendPoint(1994.0, 400.0)]
        grid = [1989.0, 1990.0, 1993.5, 1994.0, 1996.0]
        out = running_max_series(pts, grid)
        assert np.isnan(out[0])
        assert out[1] == 100.0
        assert out[2] == 100.0  # the weaker 1993 system does not lower it
        assert out[3] == 400.0
        assert out[4] == 400.0

    def test_empty_points(self):
        out = running_max_series([], [1990.0, 1991.0])
        assert np.isnan(out).all()

    def test_unsorted_input_handled(self):
        pts = [TrendPoint(1994.0, 400.0), TrendPoint(1990.0, 100.0)]
        out = running_max_series(pts, [1991.0])
        assert out[0] == 100.0


class TestLeaveOneOut:
    def test_perfect_trend_zero_errors(self):
        years = np.array([1990.0, 1991.0, 1992.0, 1993.0, 1994.0])
        values = 100.0 * 2.0 ** (years - 1990.0)
        errors = loo_prediction_errors(years, values)
        assert np.allclose(errors, 0.0, atol=1e-9)

    def test_noisy_trend_bounded_errors(self):
        rng = np.random.default_rng(11)
        years = np.linspace(1988.0, 1996.0, 20)
        values = 50.0 * 1.5 ** (years - 1988.0) * 10 ** rng.normal(0, 0.08,
                                                                   20)
        errors = loo_prediction_errors(years, values)
        assert errors.shape == (20,)
        assert np.std(errors) < 0.3

    def test_micro_trend_loo_band(self):
        # The Figure 5 fit predicts a held-out chip within ~half a decade.
        from repro.trends.moore import micro_points

        pts = [p for p in micro_points(1996.5) if p.year >= 1991.5]
        errors = loo_prediction_errors([p.year for p in pts],
                                       [p.mtops for p in pts])
        assert np.abs(errors).max() < 0.5

    def test_outlier_shows_up(self):
        years = np.array([1990.0, 1991.0, 1992.0, 1993.0, 1994.0])
        values = 100.0 * 2.0 ** (years - 1990.0)
        values[2] *= 10.0  # one wild observation
        errors = loo_prediction_errors(years, values)
        assert np.argmax(np.abs(errors)) == 2

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            loo_prediction_errors([1990.0, 1991.0, 1992.0], [1.0, 2.0, 4.0])
