"""Cluster-versus-integrated-system studies (Table 5; Chapter 3 notes 50-55).

Three experiments:

* :func:`compare_architectures` — one workload across the architecture
  spectrum at equal node count, checking the Table 5 ordering (a machine
  with a more tightly coupled architecture is preferred to a loosely
  coupled system of comparable power);
* :func:`max_competitive_cluster_size` — the largest cluster that still
  delivers a target parallel efficiency, reproducing Mattson's "reasonable
  speedups ... for clusters with up to 8-12 nodes, but few exhibited
  significant speedups for clusters of greater size";
* :func:`gator_study` — the Berkeley NOW result (note 50): a 256-node
  workstation cluster beats both a 16-processor C90 and a 256-node Paragon
  on the coarse-grained GATOR chemical-tracer model, *but only when*
  equipped with an ATM interconnect and low-overhead messaging; the same
  cluster on Ethernet/PVM loses badly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machines.spec import Architecture
from repro.obs.errors import ValidationError
from repro.simulate.architectures import (
    MachineModel,
    cluster_machine,
    mpp_machine,
    smp_machine,
    vector_machine,
)
from repro.simulate.execution import ExecutionResult
from repro.simulate.interconnect import ATM_155, ETHERNET_10, Interconnect, SMP_BUS
from repro.simulate.sweep import sweep
from repro.simulate.workloads import CommPattern, Workload, find_workload

__all__ = [
    "ArchitectureComparison",
    "compare_architectures",
    "max_competitive_cluster_size",
    "gator_study",
    "spectrum_table",
]


@dataclass(frozen=True)
class ArchitectureComparison:
    """Results of one workload across the architecture spectrum."""

    workload: Workload
    results: tuple[ExecutionResult, ...]

    def ranked(self) -> list[ExecutionResult]:
        """Results from fastest to slowest (infeasible last)."""
        return sorted(self.results, key=lambda r: r.time_s)

    def efficiency_by_architecture(self) -> dict[Architecture, float]:
        return {r.machine.architecture: r.efficiency for r in self.results}

    def spectrum_ordering_holds(self, tolerance: float = 0.05) -> bool:
        """True when efficiency is non-increasing along the SMP ->
        dedicated-cluster -> ad-hoc-cluster chain (within ``tolerance``).

        This is the ordering the paper's threshold argument needs: a
        threshold set by SMP performance can be applied down-spectrum.
        The vector machine is excluded from the chain because its
        *efficiency* is Amdahl-biased (its nodes are so fast that the
        serial remainder looms large even as it posts the best absolute
        time), and the MPP because its per-node memory feasibility
        differs; both still appear in ``results`` and ``ranked()``.
        """
        chain = (
            Architecture.SMP,
            Architecture.DEDICATED_CLUSTER,
            Architecture.AD_HOC_CLUSTER,
        )
        eff = self.efficiency_by_architecture()
        values = [eff[a] for a in chain if a in eff]
        return all(
            later <= earlier + tolerance
            for earlier, later in zip(values, values[1:])
        )

    def cluster_penalty(self) -> float:
        """Efficiency ratio SMP / ad-hoc cluster (inf when the cluster
        cannot run the workload at all).  Large for fine-grained work,
        near 1 for embarrassingly parallel work."""
        eff = self.efficiency_by_architecture()
        smp = eff[Architecture.SMP]
        adhoc = eff[Architecture.AD_HOC_CLUSTER]
        if adhoc == 0.0:
            return float("inf")
        return smp / adhoc


def compare_architectures(
    workload: Workload | str,
    n_nodes: int = 16,
) -> ArchitectureComparison:
    """Run one workload on vector, SMP, MPP, dedicated- and ad hoc-cluster
    machines of ``n_nodes`` each (one vectorized sweep, five machines)."""
    if isinstance(workload, str):
        workload = find_workload(workload)
    machines = (
        vector_machine(n_nodes),
        smp_machine(n_nodes),
        mpp_machine(n_nodes),
        cluster_machine(n_nodes, network=ATM_155, dedicated=True),
        cluster_machine(n_nodes, network=ETHERNET_10),
    )
    grid = sweep(machines, workload, [n_nodes])
    return ArchitectureComparison(
        workload=workload,
        results=tuple(grid.result_at(i, 0, 0) for i in range(len(machines))),
    )


def max_competitive_cluster_size(
    workload: Workload | str,
    network: Interconnect = ETHERNET_10,
    efficiency_floor: float = 0.5,
    max_nodes: int = 256,
    dedicated: bool = False,
) -> int:
    """Largest cluster size whose parallel efficiency (delivered over
    aggregate sustained rate) stays at or above ``efficiency_floor``
    (0 when even two nodes fall below it or cannot hold the problem)."""
    if isinstance(workload, str):
        workload = find_workload(workload)
    if not 0 < efficiency_floor <= 1:
        raise ValidationError(
            "efficiency_floor must be in (0, 1]",
            context={"got": efficiency_floor, "valid": "(0, 1]"},
        )
    counts = []
    n = 2
    while n <= max_nodes:
        counts.append(n)
        n *= 2
    if not counts:
        return 0
    base = cluster_machine(counts[0], network=network, dedicated=dedicated)
    grid = sweep(base, workload, counts)
    competitive = grid.feasible[0, 0, :] & (
        grid.efficiencies[0, 0, :] >= efficiency_floor
    )
    hits = np.flatnonzero(competitive)
    return int(counts[hits[-1]]) if hits.size else 0


#: The GATOR run needed the model's most parallel code and specially tuned
#: machines (note 50): chemistry vectorizes poorly on the C90, and the NOW
#: cluster ran active-message-class software, not PVM.
_GATOR = Workload(
    name="GATOR chemical tracer (NOW study)",
    total_mops=4.0e6, data_mb=1_000.0, steps=200,
    pattern=CommPattern.HALO_2D, parallel_fraction=0.999,
    notes="Chapter 3 note 50.",
)


def gator_study() -> dict[str, ExecutionResult]:
    """Reproduce the NOW comparison: C90/16 vs Paragon/256 vs 256-node
    cluster with ATM (wins) vs the same cluster on Ethernet (loses)."""
    c90 = MachineModel(
        name="Cray C90 (16)", architecture=Architecture.VECTOR, n_nodes=16,
        node_mops_per_s=1_725.0 * 0.35,  # chemistry vectorizes poorly
        node_memory_mb=2_048.0, interconnect=SMP_BUS, shared_memory=True,
    )
    paragon = mpp_machine(256)
    now_atm = MachineModel(
        name="NOW cluster (256, ATM)",
        architecture=Architecture.DEDICATED_CLUSTER, n_nodes=256,
        node_mops_per_s=266.0 * 0.25,  # active messages, parallel file system
        node_memory_mb=128.0, interconnect=ATM_155,
    )
    now_ethernet = MachineModel(
        name="NOW cluster (256, Ethernet/PVM)",
        architecture=Architecture.AD_HOC_CLUSTER, n_nodes=256,
        node_mops_per_s=266.0 * 0.25,
        node_memory_mb=128.0, interconnect=ETHERNET_10,
    )
    machines = (c90, paragon, now_atm, now_ethernet)
    counts = sorted({m.n_nodes for m in machines})
    grid = sweep(machines, _GATOR, counts)
    return {
        m.name: grid.result_at(i, 0, counts.index(m.n_nodes))
        for i, m in enumerate(machines)
    }


@dataclass(frozen=True)
class SpectrumRow:
    """One row of the Table 5 architecture spectrum."""

    architecture: Architecture
    example: str
    coarse_efficiency: float
    fine_efficiency: float


def spectrum_table(n_nodes: int = 16) -> list[SpectrumRow]:
    """Table 5 with measured columns: efficiency on a coarse-grained and a
    fine-grained workload per architecture class."""
    examples = {
        Architecture.VECTOR: "Cray C916",
        Architecture.SMP: "SGI PowerChallenge",
        Architecture.MPP: "Intel Paragon",
        Architecture.DEDICATED_CLUSTER: "rack of workstations + ATM",
        Architecture.AD_HOC_CLUSTER: "office LAN + PVM",
    }
    coarse = compare_architectures("molecular dynamics", n_nodes)
    fine = compare_architectures("shallow-water model", n_nodes)
    coarse_eff = coarse.efficiency_by_architecture()
    fine_eff = fine.efficiency_by_architecture()
    rows = [
        SpectrumRow(
            architecture=arch,
            example=examples[arch],
            coarse_efficiency=coarse_eff[arch],
            fine_efficiency=fine_eff[arch],
        )
        for arch in sorted(coarse_eff, key=lambda a: a.tightness_rank)
    ]
    return rows
