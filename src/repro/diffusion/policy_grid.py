"""Vectorized Chapter-5 policy scorecards over (threshold, year) grids.

The design question of Chapter 5 — where should the control threshold sit,
and for how long does any choice stay credible? — is a two-dimensional
sweep: every candidate threshold against every year.  The scalar path
(:func:`repro.diffusion.policy.evaluate_policy`) re-walks the application
catalog, rebuilds the installed-base histogram, and re-classifies the
commercial catalog at every grid point; this module computes the whole
grid as a handful of array broadcasts over the shared columnar stores
(:mod:`repro.machines.columns`, :mod:`repro.diffusion.columns`,
the suffix index of :mod:`repro.market.installed`).

Bit-exactness is the contract, not a tolerance: every count, burden
value, and reconstructed scorecard equals the scalar path to the last
bit, because every comparison runs on values produced by the *same*
arithmetic (Python-scalar drift factors, the shared frontier bisect
index, suffix sums with the seed's summation order) — the sweep engine's
HALO_3D playbook applied to policy space.  ``PolicyGrid.result_at``
rebuilds the exact ``PolicyEffectiveness`` tuples the scalar call
returns, so callers can sweep with arrays and still drill into any cell
with full dataclass fidelity.

Large threshold axes can be fanned out over worker processes through
:mod:`repro.parallel` (slab-and-concatenate over the threshold axis, so
results are identical for any worker count).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import Mapping

import numpy as np

from repro._util import check_positive, check_year
from repro.obs.errors import ThresholdInfeasibleError, ValidationError
from repro.obs.trace import counter_inc, trace
from repro.apps.requirements import ApplicationRequirement
from repro.controllability.frontier import frontier_series
from repro.diffusion.columns import application_columns, requirement_matrix
from repro.catalog.registry import current_epoch
from repro.diffusion import policy as _policy
from repro.diffusion.policy import (
    LicenseDecision,
    PolicyEffectiveness,
    SafeguardTier,
    TIER_BY_DESTINATION,
)
from repro.machines.columns import machine_columns
from repro.machines.spec import MachineSpec
from repro.market.installed import installed_units_above_batch
from repro.parallel import partition_chunks, run_chunks

__all__ = [
    "PolicyGrid",
    "evaluate_policy_grid",
    "threshold_at_series",
    "license_decision_batch",
]

#: Threshold rows per internal broadcast slab: bounds the transient
#: ``(slab, apps, years)`` coverage masks to a few megabytes however
#: large the requested grid is.
_SLAB_THRESHOLDS = 512


@dataclass(frozen=True)
class PolicyGrid:
    """Chapter-5 scorecards for every (threshold, year) grid point.

    Count/burden arrays are indexed ``[i, j]`` for ``thresholds[i]`` at
    ``years[j]``; all arrays are read-only.  :meth:`result_at`
    reconstructs the exact :class:`PolicyEffectiveness` the scalar
    evaluator returns at a point, from the stored requirement matrix and
    the shared machine columns.
    """

    thresholds: np.ndarray
    years: np.ndarray
    #: Uncontrollability frontier per year (shared bisect index).
    frontier_mtops: np.ndarray
    #: Drifted application minimums, ``(n_apps, n_years)``, bit-exact
    #: against ``ApplicationRequirement.min_at``.
    requirements: np.ndarray = field(repr=False)
    #: Applications protected / merely nominally covered, per point.
    protected_counts: np.ndarray
    illusory_counts: np.ndarray
    #: Installed units licensable without security benefit, per point.
    burden_units: np.ndarray
    #: Catalog systems above the threshold classified uncontrollable.
    uncontrollable_counts: np.ndarray
    #: The paper's credibility test: threshold at or above the frontier.
    credible: np.ndarray
    #: Catalog epoch the grid was evaluated under.
    epoch: int = field(default=0, compare=False)

    @property
    def shape(self) -> tuple[int, int]:
        return (int(self.thresholds.size), int(self.years.size))

    def result_at(self, i: int, j: int) -> PolicyEffectiveness:
        """The exact scalar scorecard at ``(thresholds[i], years[j])``.

        Membership is recovered by re-applying the scalar predicates to
        the stored columns: the requirement column and frontier are the
        very floats the scalar path compares, and the machine columns
        preserve catalog order, so the reconstructed tuples — order
        included — are the ones ``evaluate_policy`` builds.
        """
        threshold = float(self.thresholds[i])
        year = float(self.years[j])
        frontier = float(self.frontier_mtops[j])
        apps, _base, _firsts = application_columns()
        column = self.requirements[:, j]
        protected: list[ApplicationRequirement] = []
        illusory: list[ApplicationRequirement] = []
        for a, app in enumerate(apps):
            requirement = float(column[a])
            if requirement < threshold:
                continue
            if requirement >= frontier:
                protected.append(app)
            else:
                illusory.append(app)
        cols = machine_columns()
        uncontrollable_covered = tuple(
            m for k, m in enumerate(cols.machines)
            if cols.intro_years[k] <= year
            and cols.max_config_mtops[k] >= threshold
            and cols.uncontrollable[k]
        )
        return PolicyEffectiveness(
            year=year,
            threshold_mtops=threshold,
            frontier_mtops=frontier,
            protected_applications=tuple(protected),
            illusory_applications=tuple(illusory),
            burden_units=float(self.burden_units[i, j]),
            uncontrollable_covered_systems=uncontrollable_covered,
        )


def _validated_axes(
    thresholds: Sequence[float] | np.ndarray,
    years: Sequence[float] | np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    # Copies, not views: the grid freezes its axes, and a view would
    # either fail to freeze or alias caller-mutable memory.
    t = np.array(thresholds, dtype=float).ravel()
    y = np.array(years, dtype=float).ravel()
    bad = ~(np.isfinite(t) & (t > 0.0))
    if bad.any():
        check_positive(float(t[bad][0]), "thresholds")
    for year in y:
        check_year(float(year), "years")
    return t, y


def _grid_counts(
    t: np.ndarray, years_key: tuple[float, ...]
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Core broadcasts for one threshold slab over the full year axis.

    Returns ``(frontier, protected, illusory, burden, uncontrollable)``;
    the four grid arrays are ``(t.size, len(years_key))``.
    """
    y = np.asarray(years_key, dtype=float)
    frontier = frontier_series(y)
    requirements = requirement_matrix(years_key)
    above_frontier = requirements >= frontier[None, :]
    protected = np.empty((t.size, y.size), dtype=np.int64)
    covered_total = np.empty_like(protected)
    for a in range(0, t.size, _SLAB_THRESHOLDS):
        slab = t[a:a + _SLAB_THRESHOLDS]
        covered = requirements[None, :, :] >= slab[:, None, None]
        protected[a:a + _SLAB_THRESHOLDS] = (
            covered & above_frontier[None, :, :]).sum(axis=1)
        covered_total[a:a + _SLAB_THRESHOLDS] = covered.sum(axis=1)
    illusory = covered_total - protected

    # Burden: one cached suffix-table lookup per year serves the whole
    # threshold axis.  The where/maximum pair reproduces the scalar
    # branch exactly: zero at or above the frontier, clipped difference
    # of the same two suffix sums below it.
    burden = np.empty((t.size, y.size))
    for j, year in enumerate(years_key):
        units_above = installed_units_above_batch(t, year) if t.size else \
            np.empty(0)
        units_frontier = (
            float(installed_units_above_batch([frontier[j]], year)[0])
            if frontier[j] > 0.0 else 0.0
        )
        raw = units_above - units_frontier
        burden[:, j] = np.where(
            t < frontier[j], np.maximum(raw, 0.0), 0.0)

    cols = machine_columns()
    sub = cols.uncontrollable
    ratings = cols.max_config_mtops[sub]
    intros = cols.intro_years[sub]
    # Exact integer counting: (thresholds x machines) @ (machines x
    # years) — both factors 0/1 int64, so the matmul is the count of
    # machines satisfying both predicates, no float rounding anywhere.
    covered_m = (ratings[None, :] >= t[:, None]).astype(np.int64)
    available = (intros[:, None] <= y[None, :]).astype(np.int64)
    uncontrollable = covered_m @ available
    return frontier, protected, illusory, burden, uncontrollable


def _grid_slab(
    thresholds_key: tuple[float, ...], years_key: tuple[float, ...]
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Module-level (picklable) worker: one threshold slab's grid arrays.

    Worker processes rebuild the columnar caches on first use; slabbing
    only the threshold axis keeps every per-year quantity (frontier,
    requirement matrix, suffix tables) identical across slabs, so
    concatenation is bit-exact for any slab layout.
    """
    _f, protected, illusory, burden, uncontrollable = _grid_counts(
        np.asarray(thresholds_key, dtype=float), years_key)
    return protected, illusory, burden, uncontrollable


def evaluate_policy_grid(
    thresholds: Sequence[float] | np.ndarray,
    years: Sequence[float] | np.ndarray,
    max_workers: int = 1,
    n_slabs: int | None = None,
) -> PolicyGrid:
    """Chapter-5 scorecards for every threshold x year pair, vectorized.

    Every grid point is bit-exact against
    :func:`repro.diffusion.policy.evaluate_policy` at that point — counts,
    burden, credibility, and (via :meth:`PolicyGrid.result_at`) the exact
    protected/illusory/uncontrollable membership tuples.  With
    ``max_workers > 1`` the threshold axis is slabbed over worker
    processes through :mod:`repro.parallel` (results independent of the
    worker count and slab layout).
    """
    t, y = _validated_axes(thresholds, years)
    years_key = tuple(float(year) for year in y)
    counter_inc("policy.grid_builds")
    counter_inc("policy.grid_points", t.size * y.size)
    with trace("policy.grid") as span:
        if span is not None:
            span.tags["thresholds"] = int(t.size)
            span.tags["years"] = int(y.size)
            span.tags["workers"] = max_workers
        if max_workers > 1 and t.size > 1:
            if n_slabs is None:
                n_slabs = max_workers
            slabs = partition_chunks(t.size, n_slabs)
            chunk_args = [
                (tuple(float(v) for v in t[a:b]), years_key)
                for a, b in slabs
            ]
            parts = run_chunks(_grid_slab, chunk_args, max_workers)
            frontier = frontier_series(y)
            protected = np.concatenate([p[0] for p in parts])
            illusory = np.concatenate([p[1] for p in parts])
            burden = np.concatenate([p[2] for p in parts])
            uncontrollable = np.concatenate([p[3] for p in parts])
        else:
            frontier, protected, illusory, burden, uncontrollable = (
                _grid_counts(t, years_key))
        requirements = requirement_matrix(years_key)
        credible = t[:, None] >= frontier[None, :]
        for arr in (t, y, frontier, protected, illusory, burden,
                    uncontrollable, credible):
            arr.setflags(write=False)
        return PolicyGrid(
            thresholds=t,
            years=y,
            frontier_mtops=frontier,
            requirements=requirements,
            protected_counts=protected,
            illusory_counts=illusory,
            burden_units=burden,
            uncontrollable_counts=uncontrollable,
            credible=credible,
            epoch=current_epoch(),
        )


def threshold_at_series(years: Sequence[float] | np.ndarray) -> np.ndarray:
    """:func:`repro.diffusion.policy.threshold_at` over a year grid.

    One vectorized bisect against the era-start column; any grid point
    before the first era raises the same
    :class:`ThresholdInfeasibleError` the scalar lookup does.
    """
    grid = np.asarray(years, dtype=float).ravel()
    for year in grid:
        check_year(float(year), "years")
    # Era columns are read through the policy module at call time: an
    # amend_threshold event swaps them, and a bound copy here would keep
    # serving the pre-event history.
    idx = np.searchsorted(_policy._ERA_STARTS, grid, side="right") - 1
    if (idx < 0).any():
        first_bad = float(grid[idx < 0][0])
        raise ThresholdInfeasibleError(
            f"no supercomputer threshold defined before "
            f"{_policy.THRESHOLD_HISTORY[0].start_year}",
            context={"got": first_bad,
                     "valid": f">= {_policy.THRESHOLD_HISTORY[0].start_year}"},
        )
    out = _policy._ERA_THRESHOLDS[idx]
    out.setflags(write=False)
    return out


def license_decision_batch(
    machines: Sequence[MachineSpec],
    destinations: Sequence[str],
    threshold_mtops: float,
) -> list[LicenseDecision]:
    """Decide a whole docket of license applications in one pass.

    Equivalent to ``ExportControlPolicy(threshold_mtops)
    .license_decision(m, d)`` per row, but ratings come from the shared
    ``reachable_mtops`` column (one catalog join instead of a
    max-configuration walk per application) and the tier logic runs as
    array predicates.  Decisions are reconstructed as the exact
    ``LicenseDecision`` dataclasses the scalar method returns.
    """
    check_positive(threshold_mtops, "threshold_mtops")
    machines = list(machines)
    destinations = list(destinations)
    if len(machines) != len(destinations):
        raise ValidationError(
            "machines and destinations must have equal length",
            context={"machines": len(machines),
                     "destinations": len(destinations)},
        )
    counter_inc("policy.license_batch_decisions", len(machines))
    cols = machine_columns()
    ratings = np.array([
        float(cols.reachable_mtops[cols.index_by_key[m.key]])
        if m.key in cols.index_by_key
        else (m.max_configuration().ctp_mtops if m.field_upgradable
              else m.ctp_mtops)
        for m in machines
    ])
    tiers = [
        TIER_BY_DESTINATION.get(d, SafeguardTier.GOVERNMENT_CERTIFICATION)
        for d in destinations
    ]
    supplier = np.array([t is SafeguardTier.SUPPLIER for t in tiers])
    restricted = np.array([t is SafeguardTier.RESTRICTED for t in tiers])
    ally = np.array([t is SafeguardTier.MAJOR_ALLY for t in tiers])
    covered = (ratings >= threshold_mtops) & ~supplier
    approved = ~covered | (covered & ~restricted)
    safeguards = covered & ~supplier & ~ally
    return [
        LicenseDecision(
            machine=m,
            destination=d,
            rating_mtops=float(ratings[k]),
            requires_license=bool(covered[k]),
            tier=tiers[k],
            approved=bool(approved[k]),
            safeguards_required=bool(safeguards[k]),
        )
        for k, (m, d) in enumerate(zip(machines, destinations))
    ]

