"""Radix-2 FFT, written out rather than imported — the SIP kernel.

Signal and image processing is one of the paper's fourteen computational
disciplines and the engine of the surveillance applications (SIRST, ATR,
TOPSAR).  Its parallel form is the transpose method: row FFTs, an
all-to-all transpose, column FFTs — the communication pattern the
ALL_TO_ALL workload class models, and the one whose ``p - 1`` messages per
process per step make commodity-LAN clusters hopeless.

The transform itself is an iterative Cooley-Tukey radix-2 FFT vectorized
over rows (per the optimizing guide: the loop over butterfly *stages* is
log2(n) long; everything inside is whole-array numpy).  Correctness is
pinned against ``numpy.fft`` and by Parseval's theorem.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = ["fft_rows", "fft2d", "ifft2d", "alltoall_bytes_per_process",
           "fft2d_flops"]


@lru_cache(maxsize=32)
def _bit_reverse_permutation(n: int) -> np.ndarray:
    """Index permutation that bit-reverses ``log2(n)``-bit indices.

    Cached per size (transform callers hit the same handful of
    power-of-two lengths over and over); the cached array is marked
    read-only so no caller can corrupt a shared instance.
    """
    bits = int(np.log2(n))
    idx = np.arange(n)
    rev = np.zeros(n, dtype=int)
    for _ in range(bits):
        rev = (rev << 1) | (idx & 1)
        idx >>= 1
    rev.flags.writeable = False
    return rev


def fft_rows(signal: np.ndarray) -> np.ndarray:
    """Radix-2 decimation-in-time FFT along the last axis.

    ``signal`` is real or complex with a power-of-two last dimension; the
    transform is applied to every row at once.
    """
    x = np.asarray(signal, dtype=complex)
    n = x.shape[-1]
    if n < 1 or n & (n - 1):
        raise ValueError(f"last dimension must be a power of two, got {n}")
    if n == 1:
        return x.copy()
    x = x[..., _bit_reverse_permutation(n)].copy()
    half = 1
    while half < n:
        # Twiddles for this stage; butterflies across all rows at once.
        twiddle = np.exp(-2j * np.pi * np.arange(half) / (2 * half))
        blocks = x.reshape(*x.shape[:-1], n // (2 * half), 2 * half)
        # `even` must be a copy: the first assignment below would
        # otherwise corrupt the operand of the second.
        even = blocks[..., :half].copy()
        odd = blocks[..., half:] * twiddle
        blocks[..., :half] = even + odd
        blocks[..., half:] = even - odd
        half *= 2
    return x


def fft2d(field: np.ndarray) -> np.ndarray:
    """2-D FFT by the transpose method: row FFTs, transpose, row FFTs.

    This is literally the parallel algorithm: between the two passes every
    process would exchange data with every other (the all-to-all).
    """
    field = np.asarray(field)
    if field.ndim != 2:
        raise ValueError("field must be 2-D")
    step1 = fft_rows(field)
    return fft_rows(step1.T).T


def ifft2d(spectrum: np.ndarray) -> np.ndarray:
    """Inverse 2-D FFT via conjugation."""
    spectrum = np.asarray(spectrum, dtype=complex)
    n_total = spectrum.shape[0] * spectrum.shape[1]
    return np.conj(fft2d(np.conj(spectrum))) / n_total


def fft2d_flops(n: int) -> float:
    """Floating-point operations for an ``n x n`` 2-D FFT.

    Two passes of n row-FFTs at 5 n log2(n) flops each (the standard
    radix-2 count).
    """
    if n < 1 or n & (n - 1):
        raise ValueError("n must be a power of two")
    return 2.0 * n * 5.0 * n * np.log2(max(n, 2))


def alltoall_bytes_per_process(n: int, p: int, word_bytes: int = 16) -> float:
    """Bytes each process ships in the transpose step.

    Row-decomposed ``n x n`` complex field over ``p`` processes: each owns
    ``n/p`` rows and must send ``(p-1)/p`` of them away, in ``p - 1``
    messages.  This is what the ALL_TO_ALL workload volume approximates.
    """
    if n < 1 or p < 1:
        raise ValueError("n and p must be >= 1")
    if p == 1:
        return 0.0
    owned = n * n / p
    return float(owned * (p - 1) / p * word_bytes)
