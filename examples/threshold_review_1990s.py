#!/usr/bin/env python
"""Replay the decade: annual reviews 1992-1999 versus the real thresholds.

The paper recommends reviews "no less frequently than every twelve
months"; history delivered threshold updates in 1991 (195 Mtops) and 1994
(1,500 Mtops) only.  This example runs the framework's annual review for
each year of the decade and shows how far the in-force definition lagged
the derived lower bound — then prints the longer-term erosion picture of
Chapter 6.

Run:  python examples/threshold_review_1990s.py
"""

from repro.core.review import review_series
from repro.core.scenarios import erosion_report, premise3_gap_series
from repro.reporting.figures import render_log_chart
from repro.reporting.tables import render_table

YEARS = [1992.5, 1993.5, 1994.5, 1995.5, 1996.5, 1997.5, 1998.5, 1999.5]


def main() -> None:
    reviews = review_series(YEARS)

    rows = []
    for r in reviews:
        rows.append([
            f"{r.year:.1f}",
            r.threshold_in_force,
            r.bounds.lower_mtops,
            r.recommendation.threshold_mtops,
            "STALE" if r.threshold_is_stale else "ok",
            "yes" if r.premises.all_hold else "no",
        ])
    print(render_table(
        ["year", "in force", "lower bound", "recommended", "status",
         "premises hold"],
        rows,
        title="Annual reviews, 1992-1999 (Mtops)",
    ))

    print()
    print(render_log_chart(
        "In-force threshold vs the rising lower bound of controllability",
        YEARS,
        {
            "in force": [r.threshold_in_force for r in reviews],
            "lower bound": [r.bounds.lower_mtops for r in reviews],
        },
    ))

    print("\n=== The Chapter 6 erosion picture ===")
    report = erosion_report()
    gaps = premise3_gap_series(YEARS)
    print(render_table(
        ["year", "gap factor (line D / line A)"],
        [[f"{y:.1f}", g] for y, g in zip(YEARS, gaps)],
        title="Premise 3: the controllable range compresses",
    ))
    print(f"\nPremise 1 projected failure (no new stalactites): "
          f"{report.premise1.failure_year:.1f}")
    print(f"Regime weakens over the longer term: {report.weakens_over_time} "
          f"(the paper's conjecture)")


if __name__ == "__main__":
    main()
