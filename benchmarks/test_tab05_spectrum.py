"""Table 5: Spectrum of HPC Architectures.

The tightly-to-loosely-coupled continuum with *measured* efficiency
columns from the simulator: coarse-grained work runs everywhere; fine-
grained work dies on the ad hoc cluster.
"""

from repro.machines.spec import Architecture
from repro.reporting.tables import render_table
from repro.simulate.architectures import hierarchical_machine
from repro.simulate.cluster_study import spectrum_table
from repro.simulate.execution import simulate_execution
from repro.simulate.workloads import find_workload


def build_table():
    return spectrum_table(n_nodes=16)


def test_tab05_architecture_spectrum(benchmark, emit):
    rows_data = benchmark(build_table)
    rows = [
        [r.architecture.value, r.example,
         round(r.coarse_efficiency, 2), round(r.fine_efficiency, 2)]
        for r in rows_data
    ]
    # The hierarchical machine Chapter 3 points to ("Convex's Exemplar
    # system is based on this principle") as a measured extra row.
    hier = hierarchical_machine(4, 4, node_memory_mb=256.0)
    coarse_eff = simulate_execution(
        find_workload("molecular dynamics"), hier).efficiency
    fine_eff = simulate_execution(
        find_workload("shallow-water model"), hier).efficiency
    rows.insert(3, ["hierarchical (SMP hypernodes in a fabric)",
                    "Convex Exemplar SPP1000",
                    round(coarse_eff, 2), round(fine_eff, 2)])
    emit(render_table(
        ["architecture (tight -> loose)", "example",
         "efficiency (coarse grain)", "efficiency (fine grain)"],
        rows,
        title="Table 5: spectrum of HPC architectures, 16 processing elements",
    ))
    assert fine_eff > 0.5  # the hierarchical design keeps fine-grain footing

    by_arch = {r.architecture: r for r in rows_data}
    adhoc = by_arch[Architecture.AD_HOC_CLUSTER]
    smp = by_arch[Architecture.SMP]
    # The spectrum claim: loosely coupled systems lose their footing as
    # granularity tightens; tightly coupled ones do not.
    assert adhoc.fine_efficiency < 0.2 < adhoc.coarse_efficiency
    assert smp.fine_efficiency > 0.6
    assert smp.fine_efficiency >= adhoc.fine_efficiency
