"""Figure 13: Top500 Trends and the Lower Bound of Controllability.

Rank trend lines (#1, #10, #100, #500) against the rising lower bound: the
bound climbs into the list, and the fraction of installations below it —
systems on the world's flagship list that controls cannot reach — stays
dominant through the decade.
"""

import numpy as np

from repro._util import year_range
from repro.controllability.frontier import frontier_series
from repro.reporting.figures import render_log_chart, render_series
from repro.trends.top500 import generate_top500, rank_trend


def build_figure():
    years = year_range(1993.5, 1999.5, 0.5)
    series = {
        f"rank {r}": np.array([rank_trend(r, y) for y in years])
        for r in (1, 10, 100, 500)
    }
    series["lower bound"] = frontier_series(years)
    fractions = [
        generate_top500(y, seed=0).fraction_below(series["lower bound"][i])
        for i, y in enumerate(years)
    ]
    return years, series, np.array(fractions)


def test_fig13_top500_vs_bound(benchmark, emit):
    years, series, fractions = benchmark(build_figure)
    table = render_series(
        "Figure 13: Top500 rank trends and the lower bound (Mtops)",
        years, series,
    )
    frac_table = render_series(
        "Fraction of the list below the lower bound",
        years, {"fraction": fractions},
    )
    chart = render_log_chart("Rank trends vs lower bound", years, series)
    emit(f"{table}\n\n{frac_table}\n\n{chart}")

    # The bound overtakes rank 100 during the window, and most of the
    # list sits below it throughout.
    lb = series["lower bound"]
    r100 = series["rank 100"]
    assert lb[0] < r100[0] * 2  # starts in the list's neighbourhood
    assert np.any(lb >= r100)
    # Once the SMP wave matures (mid-1995 on), the bulk of the list sits
    # below the bound.  The fraction breathes with product cycles (the
    # list's head grows faster than the frontier between SMP generations)
    # but never recovers to a mostly-controllable state.
    idx95 = years.index(1995.5)
    assert np.all(fractions[idx95:] >= 0.45)
    assert np.mean(fractions[idx95:]) >= 0.6
    assert fractions[-1] > fractions[0]
