"""Supercomputer Safeguard Plans: what conditioned exports actually entail.

Note 7: safeguards are "any of various restrictions, such as 24-hour
surveillance, reviewing the records of computer activity via special
software audit programs, or limiting personnel access, designed to prevent
or uncover recipient uses of an HPC unauthorized by the terms of the
exporter's license".  Chapter 3 adds the costs: the 1986 Indian Weather
Bureau Cray X-MP "was installed with safeguards that made it inaccessible
to the scientific community" — pushing India to indigenous development.

The model: each safeguard measure carries an annual cost (fraction of the
system's price), a detection-probability contribution against misuse, and
a usability penalty (fraction of the machine's utility lost to cleared-
personnel restrictions and audit friction).  A :class:`SafeguardPlan`
bundles measures per tier, so policy analyses can weigh protection against
the incentive it creates to route around the controlled channel entirely.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro._util import check_positive
from repro.obs.errors import ValidationError
from repro.diffusion.policy import SafeguardTier

__all__ = [
    "SafeguardMeasure",
    "SafeguardPlan",
    "plan_for_tier",
    "indigenous_incentive",
]


class SafeguardMeasure(enum.Enum):
    """Individual measures from note 7 and the 1991/1992 rules.

    Values: (annual cost as a fraction of system price, contribution to
    misuse-detection probability, usability penalty fraction).
    """

    ON_SITE_SURVEILLANCE = (0.08, 0.45, 0.15)
    SOFTWARE_AUDIT = (0.02, 0.30, 0.10)
    PERSONNEL_ACCESS_CONTROL = (0.03, 0.20, 0.30)
    END_USE_CERTIFICATION = (0.01, 0.10, 0.00)
    REMOTE_ACCESS_PROHIBITION = (0.01, 0.15, 0.20)

    @property
    def annual_cost_fraction(self) -> float:
        return self.value[0]

    @property
    def detection_contribution(self) -> float:
        return self.value[1]

    @property
    def usability_penalty(self) -> float:
        return self.value[2]


@dataclass(frozen=True)
class SafeguardPlan:
    """A bundle of measures attached to one export."""

    measures: tuple[SafeguardMeasure, ...]

    @property
    def annual_cost_fraction(self) -> float:
        """Total annual cost as a fraction of the system's price."""
        return sum(m.annual_cost_fraction for m in self.measures)

    @property
    def detection_probability(self) -> float:
        """Probability that misuse is detected (independent measures)."""
        miss = 1.0
        for m in self.measures:
            miss *= 1.0 - m.detection_contribution
        return 1.0 - miss

    @property
    def usability_fraction(self) -> float:
        """Fraction of the machine's scientific utility that survives the
        restrictions (multiplicative penalties)."""
        utility = 1.0
        for m in self.measures:
            utility *= 1.0 - m.usability_penalty
        return utility

    def annual_cost_usd(self, system_price_usd: float) -> float:
        check_positive(system_price_usd, "system_price_usd")
        return self.annual_cost_fraction * system_price_usd


#: Measures required at each safeguard tier (note 15's escalation).
_TIER_MEASURES: dict[SafeguardTier, tuple[SafeguardMeasure, ...]] = {
    SafeguardTier.SUPPLIER: (),
    SafeguardTier.MAJOR_ALLY: (SafeguardMeasure.END_USE_CERTIFICATION,),
    SafeguardTier.SAFEGUARDS_PLAN: (
        SafeguardMeasure.END_USE_CERTIFICATION,
        SafeguardMeasure.SOFTWARE_AUDIT,
        SafeguardMeasure.PERSONNEL_ACCESS_CONTROL,
    ),
    SafeguardTier.GOVERNMENT_CERTIFICATION: (
        SafeguardMeasure.END_USE_CERTIFICATION,
        SafeguardMeasure.SOFTWARE_AUDIT,
        SafeguardMeasure.PERSONNEL_ACCESS_CONTROL,
        SafeguardMeasure.REMOTE_ACCESS_PROHIBITION,
        SafeguardMeasure.ON_SITE_SURVEILLANCE,
    ),
    SafeguardTier.RESTRICTED: (
        SafeguardMeasure.END_USE_CERTIFICATION,
        SafeguardMeasure.SOFTWARE_AUDIT,
        SafeguardMeasure.PERSONNEL_ACCESS_CONTROL,
        SafeguardMeasure.REMOTE_ACCESS_PROHIBITION,
        SafeguardMeasure.ON_SITE_SURVEILLANCE,
    ),
}


def plan_for_tier(tier: SafeguardTier) -> SafeguardPlan:
    """The safeguard plan a destination tier requires."""
    return SafeguardPlan(measures=_TIER_MEASURES[tier])


def indigenous_incentive(
    tier: SafeguardTier,
    indigenous_capability_fraction: float,
) -> float:
    """How attractive indigenous development looks next to a safeguarded
    import, in [0, 1].

    ``indigenous_capability_fraction`` is the domestic option's capability
    relative to the import (e.g. a Param 8600 at ~0.1 of a safeguarded
    X-MP).  The import's *effective* value is discounted by the plan's
    usability penalty; the incentive is the domestic option's share of
    the better effective choice.  The Indian X-MP episode is the model
    case: heavy safeguards made a weaker domestic machine the rational
    program choice.
    """
    if not 0.0 <= indigenous_capability_fraction <= 1.0:
        raise ValidationError("capability fraction must lie in [0, 1]",
                              context={"valid": "[0, 1]"})
    effective_import = plan_for_tier(tier).usability_fraction
    total = effective_import + indigenous_capability_fraction
    if total == 0.0:
        return 0.0
    return indigenous_capability_fraction / total
