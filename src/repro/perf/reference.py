"""Seed-faithful scalar reference implementations.

These replicate the pre-batch-layer algorithms — per-call catalog scans,
uncached factor scoring, one frontier rebuild per Monte-Carlo draw, per-bit
key expansion — so the benchmark suite measures honest speedups against
what the code actually did, not against a strawman.  They deliberately
bypass every cache the batch layer added (``cached_scores``, the frontier
index, the credit prefix sums): do **not** use them outside benchmarks and
parity tests.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.controllability.factors import FactorScores
from repro.controllability.index import (
    Classification,
    ControllabilityWeights,
    DEFAULT_WEIGHTS,
)
from repro.core.sensitivity import sample_weights
from repro.crypto.des import int_to_bits
from repro.ctp import ComputingElement, Coupling, ctp
from repro.machines import catalog as _catalog
from repro.machines.foreign import FOREIGN_SYSTEMS, ForeignCountry
from repro.machines.spec import MachineSpec

__all__ = [
    "assess_classification_scalar",
    "lower_bound_uncontrollable_scalar",
    "frontier_series_scalar",
    "bound_sensitivity_scalar",
    "ctp_loop_scalar",
    "foreign_envelope_scalar",
    "premise3_gap_series_scalar",
    "candidate_bits_scalar",
    "speedup_curve_scalar",
    "efficiency_curve_scalar",
    "sweep_grid_scalar",
    "installed_units_above_scalar",
    "evaluate_policy_scalar",
    "policy_grid_scalar",
    "simulate_acquisitions_scalar",
]

UNCONTROLLABILITY_LAG_YEARS = 2.0


def assess_classification_scalar(
    machine: MachineSpec,
    weights: ControllabilityWeights = DEFAULT_WEIGHTS,
) -> Classification:
    """Seed ``assess``: factor scores recomputed on every call."""
    scores = FactorScores.of(machine)
    index = (
        weights.size * scores.size
        + weights.units * scores.units
        + weights.channel * scores.channel
        + weights.price * scores.price
        + weights.scalability * scores.scalability
    )
    if index < weights.uncontrollable_below:
        return Classification.UNCONTROLLABLE
    if index < weights.controllable_at:
        return Classification.MARGINAL
    return Classification.CONTROLLABLE


def lower_bound_uncontrollable_scalar(
    year: float,
    weights: ControllabilityWeights = DEFAULT_WEIGHTS,
    lag_years: float = UNCONTROLLABILITY_LAG_YEARS,
) -> float:
    """Seed frontier query: one full catalog re-assessment per call."""
    best = 0.0
    for m in _catalog.COMMERCIAL_SYSTEMS:
        if m.year + lag_years > year:
            continue
        if (assess_classification_scalar(m, weights)
                is not Classification.UNCONTROLLABLE):
            continue
        rating = m.max_configuration().ctp_mtops
        if rating > best:
            best = rating
    return best


def frontier_series_scalar(
    years: Sequence[float] | np.ndarray,
    weights: ControllabilityWeights = DEFAULT_WEIGHTS,
) -> np.ndarray:
    """Seed year-grid frontier: one catalog rescan per grid point."""
    return np.array(
        [lower_bound_uncontrollable_scalar(float(y), weights) for y in years]
    )


def bound_sensitivity_scalar(
    year: float = 1995.5,
    n_samples: int = 200,
    seed: int = 0,
    concentration: float = 60.0,
) -> np.ndarray:
    """Seed Monte-Carlo: one frontier rebuild per weight draw."""
    rng = np.random.default_rng(np.random.SeedSequence([seed, n_samples]))
    samples = np.empty(n_samples)
    for i in range(n_samples):
        weights = sample_weights(rng, concentration)
        samples[i] = lower_bound_uncontrollable_scalar(year, weights)
    return samples


def ctp_loop_scalar(
    configurations: Sequence[Sequence[ComputingElement]],
    coupling: Coupling,
) -> np.ndarray:
    """Seed batch rating: one scalar ``ctp`` call per configuration."""
    return np.array([ctp(elements, coupling) for elements in configurations])


def foreign_envelope_scalar(year: float) -> float:
    """Seed foreign envelope: full foreign-catalog scan per country."""
    best = 0.0
    for country in ForeignCountry:
        ratings = [m.ctp_mtops for m in FOREIGN_SYSTEMS
                   if m.country == country.value and m.year <= year]
        best = max(best, max(ratings, default=0.0))
    return best


def premise3_gap_series_scalar(
    years: Sequence[float] | np.ndarray,
) -> np.ndarray:
    """Seed premise-3 scan: per-year bound derivation with catalog rescans."""
    out = np.empty(len(years))
    for i, year in enumerate(np.asarray(years, dtype=float)):
        lower = max(
            lower_bound_uncontrollable_scalar(float(year)),
            foreign_envelope_scalar(float(year)),
        )
        upper = max(
            (m.ctp_mtops for m in _catalog.COMMERCIAL_SYSTEMS if m.year <= year),
            default=0.0,
        )
        out[i] = np.inf if lower == 0 else upper / lower
    return out


def speedup_curve_scalar(workload, machine, node_counts) -> np.ndarray:
    """Seed speedup curve: one scalar ``simulate_execution`` per point."""
    from repro.simulate.execution import simulate_execution

    base = simulate_execution(workload, machine.with_nodes(1))
    if not base.feasible:
        return np.zeros(len(node_counts))
    t1 = base.time_s
    out = np.empty(len(node_counts))
    for i, n in enumerate(node_counts):
        r = simulate_execution(workload, machine.with_nodes(int(n)))
        out[i] = t1 / r.time_s if r.feasible else 0.0
    return out


def efficiency_curve_scalar(workload, machine, node_counts) -> np.ndarray:
    """Seed efficiency curve: scalar speedups divided through."""
    s = speedup_curve_scalar(workload, machine, node_counts)
    return s / np.asarray(node_counts, dtype=float)


def sweep_grid_scalar(machines, workloads, node_counts) -> dict[str, np.ndarray]:
    """Seed design-space sweep: one scalar ``simulate_execution`` call per
    (machine, workload, node count) grid point.

    Node counts a machine cannot take (hypernode mismatch) get ``inf``
    time and ``feasible=False``, mirroring how
    :func:`repro.simulate.sweep.sweep` marks them, so the two grids are
    comparable elementwise.
    """
    from repro.simulate.execution import simulate_execution

    shape = (len(machines), len(workloads), len(node_counts))
    times = np.full(shape, np.inf)
    efficiencies = np.zeros(shape)
    feasible = np.zeros(shape, dtype=bool)
    for i, machine in enumerate(machines):
        for k, n in enumerate(node_counts):
            if int(n) % machine.hypernode_size:
                continue
            configured = machine.with_nodes(int(n))
            for j, workload in enumerate(workloads):
                r = simulate_execution(workload, configured)
                feasible[i, j, k] = r.feasible
                times[i, j, k] = r.time_s
                efficiencies[i, j, k] = r.efficiency
    return {"feasible": feasible, "times_s": times,
            "efficiencies": efficiencies}


def installed_units_above_scalar(threshold_mtops: float, year: float) -> float:
    """Seed installed-base query: full histogram rebuild per call."""
    from repro.market.installed import installed_distribution

    edges, counts = installed_distribution(year)
    centers = np.sqrt(edges[:-1] * edges[1:])
    return float(counts[centers >= threshold_mtops].sum())


def evaluate_policy_scalar(threshold_mtops: float, year: float) -> dict:
    """Seed Chapter-5 scorecard: one full catalog walk, histogram
    rebuild, and per-machine re-assessment per call."""
    from repro.apps.catalog import APPLICATIONS

    frontier = lower_bound_uncontrollable_scalar(year)
    protected = 0
    illusory = 0
    for app in APPLICATIONS:
        requirement = app.min_at(year)
        if requirement < threshold_mtops:
            continue
        if requirement >= frontier:
            protected += 1
        else:
            illusory += 1
    burden = 0.0
    if threshold_mtops < frontier:
        burden = (installed_units_above_scalar(threshold_mtops, year)
                  - installed_units_above_scalar(frontier, year))
    uncontrollable = 0
    for m in _catalog.COMMERCIAL_SYSTEMS:
        if (m.year <= year
                and m.max_configuration().ctp_mtops >= threshold_mtops
                and assess_classification_scalar(m)
                is Classification.UNCONTROLLABLE):
            uncontrollable += 1
    return {
        "frontier_mtops": frontier,
        "protected": protected,
        "illusory": illusory,
        "burden_units": max(burden, 0.0),
        "uncontrollable": uncontrollable,
    }


def policy_grid_scalar(
    thresholds: Sequence[float] | np.ndarray,
    years: Sequence[float] | np.ndarray,
) -> dict[str, np.ndarray]:
    """Seed policy grid: one full scalar scorecard per grid point."""
    t = np.asarray(thresholds, dtype=float)
    y = np.asarray(years, dtype=float)
    shape = (t.size, y.size)
    protected = np.empty(shape, dtype=np.int64)
    illusory = np.empty(shape, dtype=np.int64)
    burden = np.empty(shape)
    uncontrollable = np.empty(shape, dtype=np.int64)
    frontier = np.empty(y.size)
    for j, year in enumerate(y):
        for i, threshold in enumerate(t):
            cell = evaluate_policy_scalar(float(threshold), float(year))
            protected[i, j] = cell["protected"]
            illusory[i, j] = cell["illusory"]
            burden[i, j] = cell["burden_units"]
            uncontrollable[i, j] = cell["uncontrollable"]
            frontier[j] = cell["frontier_mtops"]
    return {"frontier_mtops": frontier, "protected": protected,
            "illusory": illusory, "burden_units": burden,
            "uncontrollable": uncontrollable}


#: Acquisition-severity constants, restated from the seed model.
_ACQ_SEVERITY_FLOOR = 0.35
_ACQ_FRESHNESS_WEIGHT = 0.6
_ACQ_LAG_YEARS = 2.0


def _acquisition_severity_scalar(machine: MachineSpec, year: float) -> float:
    """Seed acquisition severity: factor scores recomputed per call."""
    scores = FactorScores.of(machine)
    weights = DEFAULT_WEIGHTS
    index = (
        weights.size * scores.size
        + weights.units * scores.units
        + weights.channel * scores.channel
        + weights.price * scores.price
        + weights.scalability * scores.scalability
    )
    class_severity = max(
        0.0, (index - _ACQ_SEVERITY_FLOOR) / (1.0 - _ACQ_SEVERITY_FLOOR)
    ) ** 2
    freshness = _ACQ_FRESHNESS_WEIGHT * float(
        np.clip((machine.year + _ACQ_LAG_YEARS - year) / _ACQ_LAG_YEARS,
                0.0, 1.0)
    )
    return max(class_severity, freshness)


def simulate_acquisitions_scalar(
    target_mtops: float,
    year: float,
    n_attempts: int = 1_000,
    seed: int = 0,
) -> tuple[float, float, float, float]:
    """Seed acquisition Monte-Carlo: fresh market scan, per-candidate
    severity recomputation, and a private RNG draw pair per target.

    Returns ``(success_rate, interdiction_rate, mean_delay_years,
    mean_cost_multiplier)``.
    """
    rng = np.random.default_rng(np.random.SeedSequence([seed, n_attempts]))
    candidates = [
        m for m in _catalog.COMMERCIAL_SYSTEMS
        if m.year + 0.0 <= year
        and (m.max_configuration().ctp_mtops if m.field_upgradable
             else m.ctp_mtops) >= target_mtops
    ]
    if not candidates:
        return (0.0, 1.0, float("inf"), float("inf"))
    chosen = min(candidates,
                 key=lambda m: (_acquisition_severity_scalar(m, year), m.key))
    severity = _acquisition_severity_scalar(chosen, year)
    detection = min(0.85 * severity, 0.95)
    base_delay = max(3.0 * severity, 1e-3)
    cost_multiplier = 1.0 + 2.0 * severity
    max_tries = 3
    caught = rng.random((n_attempts, max_tries)) < detection
    delays = rng.exponential(base_delay, size=(n_attempts, max_tries))
    first_clear = np.argmax(~caught, axis=1)
    ever_clear = ~caught.all(axis=1)
    tries_used = np.where(ever_clear, first_clear + 1, max_tries)
    take = np.arange(max_tries) < tries_used[:, None]
    total_delay = (delays * take).sum(axis=1)
    cost = cost_multiplier * (1.0 + 0.25 * (tries_used - 1))
    return (
        float(np.mean(ever_clear)),
        float(np.mean(caught[:, 0])),
        float(np.mean(total_delay[ever_clear]))
        if ever_clear.any() else float("inf"),
        float(np.mean(cost[ever_clear]))
        if ever_clear.any() else float("inf"),
    )


def candidate_bits_scalar(
    base_key: int, offsets: np.ndarray, search_bits: int
) -> np.ndarray:
    """Seed key expansion: one column assignment per searched bit."""
    mask = (1 << search_bits) - 1
    base = base_key & ~mask
    bits = np.empty((offsets.size, 64), dtype=bool)
    bits[:] = int_to_bits(base, 64)
    for j in range(search_bits):
        bits[:, 63 - j] = (offsets >> j) & 1
    return bits
