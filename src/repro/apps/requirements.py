"""Application requirement records and the downward-drift model.

An :class:`ApplicationRequirement` is one "stalactite" of Chapter 2: an
application with a *minimum* computational requirement (below which it
cannot be performed in a useful fashion), the system *actually* used, and
the year it was first successfully performed.

Chapter 2's drift rule: "Over time, the minimum requirements for a given
application ... tend to drift downward.  As algorithms, models, and systems
software improve, the number of computer cycles and amount of memory needed
to achieve the same results declines.  But for a given problem and problem
size, they do not increase."  We model that as a bounded exponential decay
from the year of first performance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import check_fraction, check_positive, check_year
from repro.apps.taxonomy import (
    CTA,
    MissionArea,
    Parallelizability,
    TimingClass,
)

__all__ = [
    "ApplicationRequirement",
    "DRIFT_RATE_PER_YEAR",
    "DRIFT_FLOOR_FRACTION",
    "drifted_min_mtops",
]

#: Default annual improvement from better algorithms/models/software.
DRIFT_RATE_PER_YEAR = 0.08
#: Software alone cannot reduce a requirement below this fraction of the
#: original minimum — the problem still has to be computed.
DRIFT_FLOOR_FRACTION = 0.3


@dataclass(frozen=True)
class ApplicationRequirement:
    """One application of national-security concern.

    Attributes
    ----------
    name:
        Short identifier, e.g. ``"F-22 design"``.
    mission:
        One of the four Chapter 4 mission areas.
    functional_area:
        The Table 8/13 functional area the application belongs to
        (empty for nuclear/cryptologic applications, which predate that
        taxonomy).
    ctas:
        Computational technology areas exercised.
    min_mtops:
        Minimum computational requirement at ``year_first`` — the value
        practitioners gave when asked "what is the least computational
        power that would be sufficient?"
    actual_mtops:
        CTP of the system actually used (``None`` when the paper gives no
        figure).
    actual_system:
        Catalog key of the machine actually used, when known.
    year_first:
        Year the application was first successfully performed.
    timing:
        Time-to-solution class.
    parallelizable:
        Cluster-conversion feasibility.
    memory_bound:
        True for applications the paper flags as limited by large
        closely-coupled memory rather than by operation rate (these are
        the ones CTP mis-measures; Chapter 6).
    quoted:
        True when ``min_mtops`` is a figure the paper states, False when
        it is our reconstruction.
    """

    name: str
    mission: MissionArea
    functional_area: str
    ctas: tuple[CTA, ...]
    min_mtops: float
    year_first: float
    actual_mtops: float | None = None
    actual_system: str | None = None
    timing: TimingClass = TimingClass.OPERATIONAL
    parallelizable: Parallelizability = Parallelizability.LIMITED
    memory_bound: bool = False
    quoted: bool = False
    notes: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        check_positive(self.min_mtops, f"{self.name}: min_mtops")
        check_year(self.year_first, f"{self.name}: year_first")
        if not self.ctas:
            raise ValueError(f"{self.name}: at least one CTA required")
        if self.actual_mtops is not None:
            check_positive(self.actual_mtops, f"{self.name}: actual_mtops")
            if self.actual_mtops < self.min_mtops * (1 - 1e-9):
                raise ValueError(
                    f"{self.name}: actual system ({self.actual_mtops}) below "
                    f"the stated minimum ({self.min_mtops})"
                )

    def min_at(self, year: float, rate: float = DRIFT_RATE_PER_YEAR,
               floor: float = DRIFT_FLOOR_FRACTION) -> float:
        """Minimum requirement at ``year`` after downward drift."""
        return drifted_min_mtops(self, year, rate, floor)


def drifted_min_mtops(
    app: ApplicationRequirement,
    year: float,
    rate: float = DRIFT_RATE_PER_YEAR,
    floor: float = DRIFT_FLOOR_FRACTION,
) -> float:
    """Minimum requirement of ``app`` at ``year``.

    Before ``year_first`` the requirement is the original minimum (the
    problem existed; nobody had yet solved it cheaper).  After it, the
    requirement decays by ``rate`` per year down to ``floor`` times the
    original.  Monotone non-increasing in ``year``, never zero.
    """
    check_year(year, "year")
    rate = check_fraction(rate, "rate")
    floor = check_fraction(floor, "floor")
    if floor == 0.0:
        raise ValueError("floor must be positive: requirements never vanish")
    elapsed = max(0.0, year - app.year_first)
    factor = max((1.0 - rate) ** elapsed, floor)
    return app.min_mtops * factor
