"""National-security applications of HPC (Chapter 4).

Four mission areas — nuclear weapons, cryptology, advanced conventional
weapons (ACW) RDT&E, and military operations — with the computational
taxonomy of Tables 6-13, the named-application catalog whose quoted Mtops
figures anchor the analysis (Tables 14-15, Figures 1 and 10), a synthetic
reconstruction of the ~700-project HPCMO requirements database (Figures
8-9), and the Table 16 foreign-capability assessment.
"""

from repro.apps.taxonomy import (
    CTA,
    CF,
    MissionArea,
    Parallelizability,
    TimingClass,
    DesignFunction,
    FunctionalArea,
    ACW_FUNCTIONAL_AREAS,
    MILOPS_FUNCTIONAL_AREAS,
)
from repro.apps.requirements import (
    ApplicationRequirement,
    drifted_min_mtops,
)
from repro.apps.catalog import (
    APPLICATIONS,
    applications_by_mission,
    find_application,
    min_requirements_mtops,
)
from repro.apps.hpcmo import (
    HpcmoProject,
    HpcmoDatabase,
    generate_hpcmo,
)
from repro.apps.foreign_capability import (
    CapabilityAssessment,
    assess_foreign_capability,
    foreign_capability_table,
)

__all__ = [
    "CTA",
    "CF",
    "MissionArea",
    "Parallelizability",
    "TimingClass",
    "DesignFunction",
    "FunctionalArea",
    "ACW_FUNCTIONAL_AREAS",
    "MILOPS_FUNCTIONAL_AREAS",
    "ApplicationRequirement",
    "drifted_min_mtops",
    "APPLICATIONS",
    "applications_by_mission",
    "find_application",
    "min_requirements_mtops",
    "HpcmoProject",
    "HpcmoDatabase",
    "generate_hpcmo",
    "CapabilityAssessment",
    "assess_foreign_capability",
    "foreign_capability_table",
]
