"""Tests for assimilation lags, acquisition premiums, and the policy model."""

import pytest

from repro.diffusion.acquisition import acquisition_premium, simulate_acquisitions
from repro.diffusion.lag import mean_lag_years, observed_lags
from repro.diffusion.policy import (
    ExportControlPolicy,
    SafeguardTier,
    THRESHOLD_HISTORY,
    evaluate_policy,
    threshold_at,
)
from repro.machines.catalog import find_machine
from repro.machines.foreign import ForeignCountry


class TestLags:
    def test_lags_observed(self):
        lags = observed_lags()
        assert len(lags) >= 8

    def test_all_lags_positive(self):
        # Foreign systems never beat the chip to market.
        for lag in observed_lags():
            assert lag.lag_years > 0

    def test_mean_lag_years_order(self):
        # "They are likely to lag behind U.S. practice by at least several
        # months, but probably by years for the more advanced systems."
        assert 2.0 <= mean_lag_years() <= 6.0

    def test_per_country(self):
        assert mean_lag_years(ForeignCountry.RUSSIA) > 0

    def test_kvant_i860_five_years(self):
        kvant = [l for l in observed_lags() if l.system.startswith("Kvant")][0]
        assert kvant.lag_years == pytest.approx(5.0, abs=0.1)


class TestAcquisition:
    def test_below_frontier_cheap(self):
        a = acquisition_premium(1_000.0, 1995.5)
        assert a.feasible
        assert a.expected_delay_years < 1.5
        assert a.detection_probability < 0.35

    def test_high_end_expensive(self):
        low = acquisition_premium(3_000.0, 1995.5)
        high = acquisition_premium(50_000.0, 1995.5)
        assert high.controllability > low.controllability
        assert high.expected_delay_years > low.expected_delay_years
        assert high.detection_probability > low.detection_probability

    def test_infeasible_target(self):
        a = acquisition_premium(1e7, 1995.5)
        assert not a.feasible
        assert a.expected_delay_years == float("inf")

    def test_field_upgrade_loophole_used(self):
        # ~5,000 Mtops is reachable via an uncontrollable SMP's maximum
        # configuration, so the premium stays low.
        a = acquisition_premium(5_000.0, 1995.5)
        assert a.machine.field_upgradable
        assert a.controllability < 0.5

    def test_safeguards_flag(self):
        with_sg = acquisition_premium(50_000.0, 1995.5, safeguards_in_force=True)
        without = acquisition_premium(50_000.0, 1995.5, safeguards_in_force=False)
        assert without.expected_delay_years < with_sg.expected_delay_years

    def test_monte_carlo_deterministic(self):
        a = simulate_acquisitions(10_000.0, 1995.5, seed=5)
        b = simulate_acquisitions(10_000.0, 1995.5, seed=5)
        assert a == b

    def test_monte_carlo_low_end_always_succeeds(self):
        s = simulate_acquisitions(500.0, 1995.5)
        assert s.success_rate > 0.99
        assert s.mean_delay_years < 1.0

    def test_monte_carlo_infeasible(self):
        s = simulate_acquisitions(1e7, 1995.5)
        assert s.success_rate == 0.0

    def test_monte_carlo_validation(self):
        with pytest.raises(ValueError):
            simulate_acquisitions(1_000.0, 1995.5, n_attempts=0)


class TestThresholdHistory:
    def test_eras_ordered(self):
        years = [e.start_year for e in THRESHOLD_HISTORY]
        assert years == sorted(years)

    def test_1994_era(self):
        assert threshold_at(1995.5) == 1_500.0

    def test_1992_era(self):
        assert threshold_at(1992.5) == 195.0

    def test_before_history_raises(self):
        with pytest.raises(ValueError):
            threshold_at(1980.0)


class TestPolicy:
    def test_supplier_exempt(self):
        policy = ExportControlPolicy(1_500.0)
        d = policy.license_decision(find_machine("Cray C916"), "Japan")
        assert not d.requires_license

    def test_restricted_denied(self):
        policy = ExportControlPolicy(1_500.0)
        d = policy.license_decision(find_machine("Cray C916"), "Iran")
        assert d.requires_license
        assert not d.approved

    def test_certification_tier_approved_with_safeguards(self):
        policy = ExportControlPolicy(1_500.0)
        d = policy.license_decision(find_machine("Cray C916"), "India")
        assert d.requires_license
        assert d.approved
        assert d.safeguards_required

    def test_below_threshold_uncovered(self):
        policy = ExportControlPolicy(1_500.0)
        d = policy.license_decision(find_machine("Sun SPARCstation 4/300"), "India")
        assert not d.requires_license
        assert d.approved

    def test_field_upgradable_rated_at_max(self):
        # The SS10's single-processor rating is 53.3 but its family
        # ceiling exceeds a 150-Mtops threshold.
        policy = ExportControlPolicy(150.0)
        d = policy.license_decision(find_machine("Sun SPARCstation 10"), "India")
        assert d.rating_mtops > 150.0
        assert d.requires_license

    def test_unknown_destination_conservative(self):
        policy = ExportControlPolicy(1_500.0)
        assert policy.tier_for("Atlantis") is SafeguardTier.GOVERNMENT_CERTIFICATION

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            ExportControlPolicy(0.0)


class TestPolicyEffectiveness:
    def test_1500_threshold_not_credible_in_1995(self):
        # The in-force 1,500-Mtops definition sits far below the frontier.
        pe = evaluate_policy(1_500.0, 1995.5)
        assert not pe.credible
        assert pe.burden_units > 0
        assert pe.illusory_applications

    def test_frontier_threshold_credible(self):
        pe = evaluate_policy(4_100.0, 1995.5)
        assert pe.credible
        assert pe.burden_units == 0.0

    def test_protected_applications_above_both(self):
        pe = evaluate_policy(4_100.0, 1995.5)
        for app in pe.protected_applications:
            assert app.min_at(1995.5) >= 4_100.0
            assert app.min_at(1995.5) >= pe.frontier_mtops

    def test_enforcement_gap_lists_uncontrollable_systems(self):
        pe = evaluate_policy(1_500.0, 1995.5)
        names = {m.key for m in pe.uncontrollable_covered_systems}
        assert "SGI Challenge XL (36)" in names

    def test_high_threshold_protects_fewer(self):
        low = evaluate_policy(4_100.0, 1995.5)
        high = evaluate_policy(25_000.0, 1995.5)
        assert len(high.protected_applications) < len(low.protected_applications)
