"""Foreign indigenous HPC systems: Russia, the PRC, and India (Tables 1-3).

Chapter 3's country studies show the common pattern: weak domestic
microelectronics pushed all three countries toward parallelism, first with
fully indigenous processors (El'brus, Galaxy) and then with Western
commodity chips (transputers, i860s) as those became available.  Where the
paper quotes a figure it is carried verbatim; remaining ratings are computed
from the chip catalog (a 32-node Kvant i860 array rates what 32 i860s rate)
or reconstructed from standard histories (``approx=True``).

Design-study machines that never passed state testing (e.g. El'brus-3) are
excluded: the foreign-availability curve tracks systems a weapons program
could actually use, matching the paper's "most powerful systems ... in use"
definition.
"""

from __future__ import annotations

import enum
from functools import lru_cache

import numpy as np

from repro._util import check_year
from repro.machines.microprocessors import find_micro
from repro.machines.spec import (
    Architecture,
    DistributionChannel,
    MachineSpec,
    SizeClass,
)

__all__ = [
    "ForeignCountry",
    "FOREIGN_SYSTEMS",
    "foreign_by_country",
    "max_indigenous_mtops",
    "max_indigenous_mtops_series",
]


class ForeignCountry(enum.Enum):
    """Countries of national security concern studied in Chapter 3."""

    RUSSIA = "Russia"
    PRC = "PRC"
    INDIA = "India"


def _f(**kw) -> MachineSpec:
    kw.setdefault("channel", DistributionChannel.DIRECT)
    kw.setdefault("size_class", SizeClass.ROOM)
    return MachineSpec(**kw)


FOREIGN_SYSTEMS: tuple[MachineSpec, ...] = (
    # ----------------------------- Russia (Table 1) -----------------------
    _f(vendor="ITMVT", model="BESM-6", country="Russia", year=1968.0,
       architecture=Architecture.UNIPROCESSOR, quoted_ctp_mtops=0.8,
       approx=True, notes="1-MIPS, 48-bit; the Soviet scientific workhorse."),
    _f(vendor="NIIUVM", model="PS-2000", country="Russia", year=1981.0,
       architecture=Architecture.MPP, n_processors=64, quoted_ctp_mtops=1.5,
       approx=True,
       notes="SIMD array for geophysics; the Soviet parallel workhorse."),
    _f(vendor="Ryad consortium", model="ES-1066", country="Russia",
       year=1987.0, architecture=Architecture.UNIPROCESSOR,
       quoted_ctp_mtops=5.0, approx=True,
       notes="IBM/370-compatible mainframe; the general-purpose baseline."),
    _f(vendor="ITMVT", model="El'brus-1", country="Russia", year=1980.0,
       architecture=Architecture.SMP, n_processors=10, quoted_ctp_mtops=12.0,
       approx=True),
    _f(vendor="ITMVT", model="El'brus-2", country="Russia", year=1985.5,
       architecture=Architecture.SMP, n_processors=10, quoted_ctp_mtops=125.0,
       quoted_peak_mflops=94.0, approx=True,
       notes="94-Mflops 10-processor system; the most powerful in series "
             "production (paper, Ch. 3)."),
    _f(vendor="ITMVT", model="MKP (2)", country="Russia", year=1990.5,
       architecture=Architecture.SMP, n_processors=2, quoted_ctp_mtops=1_500.0,
       approx=True,
       notes="Macro-pipeline processor; paper text garbled ('N..2 Gflops'), "
             "taken as 1-2 Gflops peak. Four units built, production ended."),
    _f(vendor="Russian Transputer Society members", model="T800 array (32)",
       country="Russia", year=1991.5, architecture=Architecture.MPP,
       n_processors=32, element=find_micro("T800").element, approx=True,
       notes="Typical 7-32-processor transputer configurations (Ch. 3)."),
    _f(vendor="Kvant", model="i860 array (32)", country="Russia", year=1994.0,
       architecture=Architecture.MPP, n_processors=32,
       element=find_micro("i860XR").element, max_processors=512, approx=True,
       notes="Transputer-i860 hybrid nodes; architecture 'scalable to 512'."),
    _f(vendor="Kvant", model="i860 array (64)", country="Russia", year=1995.4,
       architecture=Architecture.MPP, n_processors=64,
       element=find_micro("i860XR").element, max_processors=512, approx=True,
       notes="The reported 64-processor upgrade of the Kvant configuration."),
    # ----------------------------- PRC (Table 2) --------------------------
    _f(vendor="NDST Changsha", model="Galaxy-I (YH-1)", country="PRC",
       year=1983.8, architecture=Architecture.VECTOR, quoted_ctp_mtops=100.0,
       approx=True, notes="Cray-1 analog; 100 MIPS, passed state testing 1983."),
    _f(vendor="NDST Changsha", model="Galaxy-II (YH-2)", country="PRC",
       year=1992.8, architecture=Architecture.VECTOR, n_processors=4,
       quoted_ctp_mtops=600.0, quoted_peak_mflops=400.0, approx=True,
       notes="Four tightly-coupled vector-pipelined processors."),
    _f(vendor="Tsinghua", model="THUDS T800 array (32)", country="PRC",
       year=1990.5, architecture=Architecture.MPP, n_processors=32,
       element=find_micro("T800").element, approx=True),
    _f(vendor="Beijing Polytechnic", model="BJ-01 T800 array (16)",
       country="PRC", year=1992.3, architecture=Architecture.MPP,
       n_processors=16, element=find_micro("T800").element, approx=True),
    _f(vendor="NCIC", model="Dawning-1", country="PRC", year=1993.9,
       architecture=Architecture.SMP, n_processors=4, quoted_ctp_mtops=430.0,
       approx=True, notes="640-MIPS SMP."),
    _f(vendor="NCIC", model="Dawning 1000 (32)", country="PRC", year=1995.4,
       architecture=Architecture.MPP, n_processors=32,
       element=find_micro("i860XP").element, approx=True,
       notes="i860-based MPP, 2.5 Gflops peak class."),
    _f(vendor="Quinghua", model="SmC (16xT9000)", country="PRC", year=1995.2,
       architecture=Architecture.MPP, n_processors=16,
       element=find_micro("T9000").element, approx=True,
       notes="The counterexample to the usual adoption lag (Ch. 3)."),
    _f(vendor="NDST Changsha", model="Galaxy-III", country="PRC", year=1997.0,
       architecture=Architecture.MPP, n_processors=64, quoted_ctp_mtops=10_000.0,
       approx=True,
       notes="Under development at study time; shared-memory + MPP hybrid, "
             "~13 Gflops class. Included for projection years only."),
    # ----------------------------- India (Table 3) ------------------------
    _f(vendor="C-MMACS", model="MH1", country="India", year=1986.5,
       architecture=Architecture.SMP, n_processors=4, quoted_ctp_mtops=0.1,
       approx=True, notes="First Indian multiprocessor: 4 x 8086/8087."),
    _f(vendor="NAL", model="Flosolver Mk1", country="India", year=1986.8,
       architecture=Architecture.MPP, n_processors=4, quoted_ctp_mtops=0.5,
       approx=True, notes="India's first parallel CFD machine."),
    _f(vendor="NAL", model="Flosolver Mk3", country="India", year=1991.3,
       architecture=Architecture.MPP, n_processors=4,
       element=find_micro("i860XR").element, approx=True,
       notes="CFD machine of the National Aerospace Laboratories."),
    _f(vendor="CDAC", model="Param 8000 (64)", country="India", year=1991.6,
       architecture=Architecture.MPP, n_processors=64,
       element=find_micro("T800").element, max_processors=256, approx=True,
       notes="All-transputer first Param."),
    _f(vendor="CDAC", model="Param 8600 (16)", country="India", year=1992.3,
       architecture=Architecture.MPP, n_processors=16,
       element=find_micro("i860XR").element, max_processors=64,
       quoted_peak_mflops=1_500.0, approx=True,
       notes="i860+T800 nodes; 'first supercomputer developed in a "
             "third-world country' (Ch. 3). >30 Params exported."),
    _f(vendor="BARC", model="Anupam (8)", country="India", year=1993.6,
       architecture=Architecture.MPP, n_processors=8,
       element=find_micro("i860XR").element, approx=True,
       notes="Bhabha Atomic Research Centre i860 array."),
    _f(vendor="CDAC", model="Param 9000 (32)", country="India", year=1994.9,
       architecture=Architecture.MPP, n_processors=32, quoted_ctp_mtops=1_600.0,
       approx=True,
       notes="Open, processor-independent architecture (SPARC first)."),
    _f(vendor="DRDO", model="Pace-Plus", country="India", year=1995.3,
       architecture=Architecture.MPP, n_processors=16, quoted_ctp_mtops=500.0,
       approx=True),
)


@lru_cache(maxsize=None)
def _country_index(
    country: ForeignCountry,
) -> tuple[tuple[MachineSpec, ...], np.ndarray, np.ndarray]:
    """(year-sorted systems, year array, running-max ratings) per country,
    computed once — country curves are queried per grid point otherwise."""
    specs = tuple(
        sorted(
            (m for m in FOREIGN_SYSTEMS if m.country == country.value),
            key=lambda m: (m.year, m.key),
        )
    )
    years = np.array([m.year for m in specs])
    running = (np.maximum.accumulate(np.array([m.ctp_mtops for m in specs]))
               if specs else np.empty(0))
    years.setflags(write=False)
    running.setflags(write=False)
    return specs, years, running


def foreign_by_country(
    country: ForeignCountry, through: float | None = None
) -> list[MachineSpec]:
    """Systems of one country sorted by year, optionally truncated."""
    specs, years, _ = _country_index(country)
    if through is None:
        return list(specs)
    cut = int(np.searchsorted(years, through, side="right"))
    return list(specs[:cut])


def max_indigenous_mtops(country: ForeignCountry, year: float) -> float:
    """Performance of the most powerful domestic system available in
    ``country`` at ``year`` (0.0 before the first system).

    This is one of the two components of the lower bound for a valid
    control threshold: "the performance of the most powerful systems ...
    in use in countries of national security concern" (Chapter 2).
    """
    check_year(year, "year")
    _, years, running = _country_index(country)
    idx = int(np.searchsorted(years, year, side="right")) - 1
    return float(running[idx]) if idx >= 0 else 0.0


def max_indigenous_mtops_series(
    country: ForeignCountry, years: np.ndarray | list[float]
) -> np.ndarray:
    """One country's running-max capability over a whole year grid."""
    _, sys_years, running = _country_index(country)
    grid = np.asarray(years, dtype=float)
    idx = np.searchsorted(sys_years, grid, side="right") - 1
    out = np.zeros(grid.shape)
    mask = idx >= 0
    if running.size:
        out[mask] = running[idx[mask]]
    return out
