"""Cryptologic substrate: a real DES implementation and keysearch driver.

Chapter 4 retires cryptology as a threshold justification because "a brute
force attack is tailor-made for parallel processors".  Rather than assert
that, this package implements the Data Encryption Standard itself
(``des``: vectorized over keys with numpy, verified against the classical
known-answer tests) and a brute-force keysearch driver (``keysearch``)
that partitions a keyspace exactly the way the paper describes — "each
processor ... can be set to work on only a portion of the keyspace without
reference to the activities of the other processors".

The driver also grounds the cost model in
:mod:`repro.simulate.applications`: the word-level operation count per key
trial is derived from the cipher's actual structure rather than assumed.
"""

from repro.crypto.des import (
    des_decrypt_block,
    des_encrypt_block,
    encrypt_blocks,
    key_schedule_bits,
)
from repro.crypto.keysearch import (
    KeysearchResult,
    WORD_OPS_PER_KEY,
    brute_force,
    keyspace_partition,
    ops_per_key_breakdown,
)

__all__ = [
    "des_encrypt_block",
    "des_decrypt_block",
    "encrypt_blocks",
    "key_schedule_bits",
    "KeysearchResult",
    "WORD_OPS_PER_KEY",
    "brute_force",
    "keyspace_partition",
    "ops_per_key_breakdown",
]
