"""Controllability model and the uncontrollability frontier (Chapter 3).

Chapter 3 argues that controllability is "a continuous function, not a
binary condition" driven by six product qualities: physical size, age
(product cycle / secondary markets), scalability, number of units in the
field, distribution channels, and entry-level cost.  This package scores
those factors (``factors``), combines them into a continuous index with a
three-way classification (``index``, Table 4), and derives the
time-dependent lower bound of controllability (``frontier``) — the paper's
4,000-5,000 Mtops (mid-1995) rising to ~7,500 by late 1996/97 and past
16,000 before the end of the decade.
"""

from repro.controllability.factors import (
    FactorScores,
    age_score,
    channel_score,
    price_score,
    scalability_score,
    size_score,
    units_score,
)
from repro.controllability.index import (
    Classification,
    ControllabilityAssessment,
    ControllabilityWeights,
    DEFAULT_WEIGHTS,
    assess,
    classification_table,
)
from repro.controllability.frontier import (
    UNCONTROLLABILITY_LAG_YEARS,
    FrontierPoint,
    uncontrollable_population,
    lower_bound_uncontrollable,
    frontier_series,
    frontier_trend,
    projected_frontier_mtops,
)

__all__ = [
    "FactorScores",
    "size_score",
    "units_score",
    "channel_score",
    "price_score",
    "scalability_score",
    "age_score",
    "Classification",
    "ControllabilityAssessment",
    "ControllabilityWeights",
    "DEFAULT_WEIGHTS",
    "assess",
    "classification_table",
    "UNCONTROLLABILITY_LAG_YEARS",
    "FrontierPoint",
    "uncontrollable_population",
    "lower_bound_uncontrollable",
    "frontier_series",
    "frontier_trend",
    "projected_frontier_mtops",
]
