"""Installed-base distribution over CTP — the "humps" of Figures 3 and 11.

Each catalog machine family contributes its installed units at its rating,
spread lognormally to reflect the mix of configurations actually sold
(entry systems outnumber maximum ones).  The resulting histogram is the
right-hand curve of the paper's threshold-selection picture: thresholds
should sit *above* a hump of installations (big decontrol benefit) and
*below* a hump of application requirements (small security cost).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro._util import check_positive, check_year
from repro.machines import catalog as _catalog
from repro.obs.trace import counter_inc

__all__ = [
    "LOG_BIN_EDGES",
    "installed_distribution",
    "installed_units_above",
    "installed_units_above_batch",
    "install_suffix_index",
    "clear_installed_index",
    "market_value_between",
]

#: Quarter-decade bins from 0.01 Mtops to 1,000,000 Mtops (the low end
#: catches fully drifted 1940s-era application minimums).
LOG_BIN_EDGES: np.ndarray = 10.0 ** np.arange(-2.0, 6.01, 0.25)

#: Configuration spread around each family's cataloged rating (decades).
_CONFIG_SIGMA = 0.30
#: Quadrature points used to spread one family across bins.
_SPREAD_POINTS = 41


def _family_spread(rating: float) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic lognormal spread of one family's units.

    Returns (ratings, weights) with weights summing to 1.  Deterministic
    Gauss-grid quadrature keeps the distribution reproducible without a
    seed.
    """
    z = np.linspace(-2.5, 2.5, _SPREAD_POINTS)
    w = np.exp(-0.5 * z * z)
    w /= w.sum()
    return rating * 10.0 ** (_CONFIG_SIGMA * z), w


def installed_distribution(
    year: float,
    bin_edges: np.ndarray | None = None,
    deinstall_years: float = 8.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of installed units over CTP at ``year``.

    Families enter at their introduction year, build linearly to their
    cataloged installed base over two years, and retire ``deinstall_years``
    after introduction ("nearly all machines are taken out of service
    within 8-10 years").

    Returns ``(bin_edges, counts)``.
    """
    check_year(year, "year")
    check_positive(deinstall_years, "deinstall_years")
    edges = LOG_BIN_EDGES if bin_edges is None else np.asarray(bin_edges)
    counts = np.zeros(edges.size - 1)
    for m in _catalog.COMMERCIAL_SYSTEMS:
        if m.units_installed is None:
            continue
        age = year - m.year
        if age < 0 or age > deinstall_years:
            continue
        build = min(age / 2.0, 1.0)
        units = m.units_installed * build
        ratings, weights = _family_spread(m.ctp_mtops)
        idx = np.searchsorted(edges, ratings, side="right") - 1
        valid = (idx >= 0) & (idx < counts.size)
        np.add.at(counts, idx[valid], units * weights[valid])
    return edges, counts


# Snapshot-installed per-year suffix tables (repro.store): loading them
# costs zero distribution rebuilds and the arrays are mmap-shared across
# forked serving workers.
_INSTALLED_SUFFIX: dict[float, tuple[np.ndarray, np.ndarray]] = {}


def _suffix_index(year: float) -> tuple[np.ndarray, np.ndarray]:
    installed = _INSTALLED_SUFFIX.get(year)
    if installed is not None:
        return installed
    return _build_suffix_index(year)


def install_suffix_index(year: float, centers: np.ndarray,
                         suffix: np.ndarray) -> None:
    """Install one precomputed ``(centers, suffix)`` table (snapshot
    load path)."""
    counter_inc("market.suffix_installs")
    _INSTALLED_SUFFIX[float(year)] = (centers, suffix)


@lru_cache(maxsize=512)
def _build_suffix_index(year: float) -> tuple[np.ndarray, np.ndarray]:
    """``(centers, suffix)`` for the default-bin distribution at ``year``.

    ``suffix[k]`` is ``counts[k:].sum()`` — computed as exactly that
    slice-sum for each ``k``, never as a reversed cumulative sum, so a
    lookup reproduces the seed's ``counts[centers >= t].sum()`` (an
    identical contiguous pairwise summation) bit for bit.  One
    distribution build serves every threshold queried at ``year``.
    """
    counter_inc("market.suffix_builds")
    edges, counts = installed_distribution(year)
    centers = np.sqrt(edges[:-1] * edges[1:])
    suffix = np.empty(counts.size + 1)
    for k in range(counts.size + 1):
        suffix[k] = counts[k:].sum()
    centers.setflags(write=False)
    suffix.setflags(write=False)
    return centers, suffix


def installed_units_above(threshold_mtops: float, year: float) -> float:
    """Installed units rated at or above a threshold at ``year``."""
    check_positive(threshold_mtops, "threshold_mtops")
    check_year(year, "year")
    centers, suffix = _suffix_index(float(year))
    k = int(np.searchsorted(centers, threshold_mtops, side="left"))
    return float(suffix[k])


def installed_units_above_batch(
    thresholds_mtops: np.ndarray | list[float],
    year: float,
) -> np.ndarray:
    """:func:`installed_units_above` over a whole threshold grid.

    One cached distribution build plus one vectorized bisect; every
    element is bit-identical to the scalar call at that threshold.
    """
    thresholds = np.asarray(thresholds_mtops, dtype=float)
    bad = ~(np.isfinite(thresholds) & (thresholds > 0.0))
    if bad.any():
        check_positive(float(thresholds[bad][0]), "thresholds_mtops")
    check_year(year, "year")
    centers, suffix = _suffix_index(float(year))
    return suffix[np.searchsorted(centers, thresholds, side="left")]


def clear_installed_index() -> None:
    """Drop cached and installed per-year suffix tables (tests and
    ablation hygiene)."""
    _INSTALLED_SUFFIX.clear()
    _build_suffix_index.cache_clear()


# Suffix tables are keyed by year and aggregate the whole catalog's
# installed bases, so machine events stale them; threshold amendments
# cannot (thresholds are query inputs here, not table contents).
def _register_installed_hook() -> None:
    from repro.catalog.registry import register_invalidation_hook

    register_invalidation_hook(
        "market.installed.suffix",
        lambda epoch: clear_installed_index(),
        kinds=("append_machine", "amend_machine"),
    )


_register_installed_hook()


def market_value_between(
    low_mtops: float,
    high_mtops: float,
    year: float,
) -> float:
    """Approximate installed value (USD) of systems rated in a band.

    Uses each family's entry price as the per-unit value — conservative,
    since upgraded systems cost more.  This is the "economic gain ... from
    additional sales of computer systems falling between A and B" that the
    economic threshold policy weighs.
    """
    check_positive(low_mtops, "low_mtops")
    check_positive(high_mtops, "high_mtops")
    if high_mtops <= low_mtops:
        raise ValueError("high_mtops must exceed low_mtops")
    check_year(year, "year")
    total = 0.0
    for m in _catalog.COMMERCIAL_SYSTEMS:
        if m.units_installed is None or m.entry_price_usd is None:
            continue
        age = year - m.year
        if age < 0 or age > 8.0:
            continue
        if low_mtops <= m.ctp_mtops < high_mtops:
            total += m.units_installed * min(age / 2.0, 1.0) * m.entry_price_usd
    return total
