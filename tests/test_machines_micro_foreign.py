"""Tests for the microprocessor catalog and foreign-systems tables."""

import pytest

from repro.machines.foreign import (
    FOREIGN_SYSTEMS,
    ForeignCountry,
    foreign_by_country,
    max_indigenous_mtops,
)
from repro.machines.microprocessors import (
    MICROPROCESSORS,
    find_micro,
    microprocessors_by_year,
    sixty_four_bit_micros,
)


class TestMicroprocessors:
    def test_unique_names(self):
        names = [m.name for m in MICROPROCESSORS]
        assert len(set(names)) == len(names)

    def test_find_micro(self):
        assert find_micro("i860XR").year == 1989.0

    def test_find_micro_unknown(self):
        with pytest.raises(KeyError):
            find_micro("i861")

    def test_by_year_sorted(self):
        micros = microprocessors_by_year()
        years = [m.year for m in micros]
        assert years == sorted(years)

    def test_truncation(self):
        assert all(m.year <= 1993.0 for m in microprocessors_by_year(1993.0))

    def test_64_bit_filter(self):
        for m in sixty_four_bit_micros():
            assert m.word_bits >= 64.0

    def test_i860_is_earliest_64_bit(self):
        # "The i860, the earliest 64-bit microprocessor to become widely
        # available" (Chapter 3).
        first = sixty_four_bit_micros()[0]
        assert first.name == "i860XR"

    def test_mtops_positive(self):
        for m in MICROPROCESSORS:
            assert m.mtops > 0

    def test_pentium_pro_era_rating(self):
        # Era export rating widely reported as 541 Mtops.
        assert find_micro("Pentium Pro-200").mtops == pytest.approx(541, rel=0.1)

    def test_clock_rate_era_claim(self):
        # "from 20 MHz for the Motorola 88000 (circa 1989) to the 200-300
        # MHz of today's Alpha" (Chapter 3).
        assert find_micro("MC88100-20").element.clock_mhz == 20.0
        assert find_micro("Alpha 21164-300").element.clock_mhz == 300.0

    def test_transputer_is_32_bit(self):
        assert find_micro("T800").word_bits == 32.0


class TestForeignSystems:
    def test_all_three_countries_present(self):
        for country in ForeignCountry:
            assert foreign_by_country(country), country

    def test_sorted_by_year(self):
        for country in ForeignCountry:
            systems = foreign_by_country(country)
            assert [m.year for m in systems] == sorted(m.year for m in systems)

    def test_truncation(self):
        early = foreign_by_country(ForeignCountry.RUSSIA, through=1991.0)
        assert all(m.year <= 1991.0 for m in early)

    def test_elbrus2_quoted(self):
        elbrus = [m for m in FOREIGN_SYSTEMS if m.model == "El'brus-2"][0]
        assert elbrus.quoted_peak_mflops == 94.0

    def test_max_indigenous_monotone(self):
        for country in ForeignCountry:
            values = [max_indigenous_mtops(country, y)
                      for y in (1985.0, 1990.0, 1993.0, 1995.5)]
            assert values == sorted(values)

    def test_zero_before_first_system(self):
        assert max_indigenous_mtops(ForeignCountry.INDIA, 1980.0) == 0.0

    def test_india_param_era(self):
        # After the Params, India sits in the hundreds-to-thousands range.
        value = max_indigenous_mtops(ForeignCountry.INDIA, 1995.0)
        assert 500.0 < value < 5_000.0

    def test_western_micros_used(self):
        # "commercially available western microprocessors are being used
        # extensively" — at least half a dozen catalog systems build on
        # Western chips.
        with_elements = [m for m in FOREIGN_SYSTEMS if m.element is not None]
        assert len(with_elements) >= 6

    def test_foreign_below_us_max(self):
        from repro.machines.catalog import max_available_mtops

        for country in ForeignCountry:
            assert max_indigenous_mtops(country, 1995.5) < max_available_mtops(1995.5)
