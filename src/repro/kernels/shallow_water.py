"""Linearized shallow-water equations on a periodic grid.

The model system of the paper's fine-grained PDE family::

    dh/dt = -H (du/dx + dv/dy)
    du/dt = -g dh/dx
    dv/dt = -g dh/dy

integrated with a forward-backward scheme (velocities first, then height
from the *new* velocities) on a periodic collocated grid with centered
differences.  On a periodic domain the discrete divergence sums to zero,
so **total mass is conserved to machine precision** — the invariant the
tests pin — and total energy stays bounded for CFL-stable time steps.

Everything is vectorized ``np.roll`` arithmetic: the kernel is the textbook
halo-exchange workload, and :func:`halo_bytes_per_step` reports exactly how
much boundary data a domain decomposition would move, which is what the
cluster analysis needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import check_positive

__all__ = [
    "ShallowWaterState",
    "initial_gaussian",
    "step",
    "run",
    "total_mass",
    "total_energy",
    "halo_bytes_per_step",
    "flops_per_step",
]

#: Gravity and mean depth in model units.
GRAVITY = 9.81
MEAN_DEPTH = 10.0


@dataclass(frozen=True)
class ShallowWaterState:
    """Height perturbation and velocity fields on an ``n x n`` grid."""

    h: np.ndarray
    u: np.ndarray
    v: np.ndarray
    dx: float
    dt: float

    def __post_init__(self) -> None:
        if not (self.h.shape == self.u.shape == self.v.shape):
            raise ValueError("h, u, v must share a shape")
        if self.h.ndim != 2 or self.h.shape[0] != self.h.shape[1]:
            raise ValueError("fields must be square 2-D arrays")
        check_positive(self.dx, "dx")
        check_positive(self.dt, "dt")
        # CFL: gravity-wave speed times dt must stay under dx.
        wave_speed = np.sqrt(GRAVITY * MEAN_DEPTH)
        if wave_speed * self.dt >= self.dx:
            raise ValueError(
                f"unstable time step: c*dt = {wave_speed * self.dt:.3f} "
                f">= dx = {self.dx}"
            )

    @property
    def n(self) -> int:
        return self.h.shape[0]


def initial_gaussian(n: int = 64, dx: float = 1.0,
                     amplitude: float = 0.1, width: float = 0.1,
                     dt: float | None = None) -> ShallowWaterState:
    """A Gaussian height bump at rest — the standard test problem."""
    if n < 4:
        raise ValueError("grid must be at least 4x4")
    check_positive(dx, "dx")
    if dt is None:
        dt = 0.2 * dx / np.sqrt(GRAVITY * MEAN_DEPTH)
    x = np.linspace(-0.5, 0.5, n, endpoint=False)
    xx, yy = np.meshgrid(x, x, indexing="ij")
    h = amplitude * np.exp(-(xx**2 + yy**2) / (2 * width**2))
    zeros = np.zeros_like(h)
    return ShallowWaterState(h=h, u=zeros, v=zeros.copy(), dx=dx, dt=dt)


def _ddx(field: np.ndarray, dx: float) -> np.ndarray:
    return (np.roll(field, -1, axis=0) - np.roll(field, 1, axis=0)) / (2 * dx)


def _ddy(field: np.ndarray, dx: float) -> np.ndarray:
    return (np.roll(field, -1, axis=1) - np.roll(field, 1, axis=1)) / (2 * dx)


def step(state: ShallowWaterState) -> ShallowWaterState:
    """One forward-backward time step."""
    h, u, v, dx, dt = state.h, state.u, state.v, state.dx, state.dt
    u_new = u - dt * GRAVITY * _ddx(h, dx)
    v_new = v - dt * GRAVITY * _ddy(h, dx)
    h_new = h - dt * MEAN_DEPTH * (_ddx(u_new, dx) + _ddy(v_new, dx))
    return ShallowWaterState(h=h_new, u=u_new, v=v_new, dx=dx, dt=dt)


def run(state: ShallowWaterState, steps: int) -> ShallowWaterState:
    """Integrate ``steps`` time steps."""
    if steps < 0:
        raise ValueError("steps must be >= 0")
    for _ in range(steps):
        state = step(state)
    return state


def total_mass(state: ShallowWaterState) -> float:
    """Discrete total mass (conserved exactly on the periodic domain)."""
    return float(state.h.sum() * state.dx**2)


def total_energy(state: ShallowWaterState) -> float:
    """Discrete total energy (potential + kinetic); bounded under CFL."""
    potential = 0.5 * GRAVITY * (state.h**2).sum()
    kinetic = 0.5 * MEAN_DEPTH * (state.u**2 + state.v**2).sum()
    return float((potential + kinetic) * state.dx**2)


def flops_per_step(n: int) -> float:
    """Floating-point operations per time step on an ``n x n`` grid.

    Three updated fields; each needs derivative stencils (2 ops per
    difference per point plus the divide) and the axpy update — ~30
    flops per point per step.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    return 30.0 * n * n


def halo_bytes_per_step(n: int, p: int, word_bytes: int = 8) -> float:
    """Boundary bytes each process exchanges per step under a
    ``sqrt(p) x sqrt(p)`` domain decomposition.

    Three fields, one-cell halos on four sides of an ``(n/sqrt(p))``-sided
    patch — the quantity the workload model's HALO_2D volume approximates.
    """
    if n < 1 or p < 1:
        raise ValueError("n and p must be >= 1")
    if p == 1:
        return 0.0
    side = n / np.sqrt(p)
    return float(3 * 4 * side * word_bytes)
