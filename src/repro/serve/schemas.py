"""Request schemas: JSON payload -> canonical, hashable request objects.

Every serving endpoint parses its JSON body through one of these
``parse_*`` functions before any work happens, which buys three things:

* **validation up front** — a bad field raises :class:`ValidationError`
  (or :class:`CatalogLookupError` for an unknown machine) in the handler
  thread, so a malformed request can never poison a dispatched batch;
* **canonicalization** — defaults are filled in, machine keys are
  resolved against the catalog, and an omitted license threshold is
  resolved to the threshold in force, so equivalent payloads collapse to
  the same :attr:`cache_key` and hit the same LRU response-cache entry;
* **hashability** — the frozen request dataclasses are safe to carry
  across the micro-batching queue and to use as cache keys.

Unknown fields are rejected rather than ignored: silently dropping a
misspelled ``"procesors"`` would rate a different machine than the client
asked about, which for a licensing service is the worst failure mode.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro._util import check_year
from repro.core.threshold import ThresholdPolicy
from repro.ctp import ComputingElement, Coupling
from repro.diffusion.policy import threshold_at
from repro.machines.catalog import find_machine
from repro.machines.spec import MachineSpec
from repro.obs.errors import ValidationError

__all__ = [
    "ENDPOINTS",
    "GET_ENDPOINTS",
    "RateRequest",
    "LicenseRequest",
    "MachineRequest",
    "ReviewRequest",
    "PolicyRequest",
    "ScenarioRequest",
    "ThresholdAtRequest",
    "parse_request",
]


def _require_object(payload: object, endpoint: str) -> Mapping:
    if not isinstance(payload, Mapping):
        raise ValidationError(
            f"/{endpoint} payload must be a JSON object",
            context={"got": type(payload).__name__, "valid": "object"},
        )
    return payload


def _reject_unknown(payload: Mapping, allowed: tuple[str, ...],
                    endpoint: str) -> None:
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise ValidationError(
            f"unknown /{endpoint} field(s): {', '.join(map(str, unknown))}",
            context={"got": unknown, "valid": sorted(allowed)},
        )


def _number(payload: Mapping, field: str, default: float | None) -> float:
    value = payload.get(field, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValidationError(
            f"{field} must be a number",
            context={"field": field, "got": value, "valid": "number"},
        )
    return float(value)


def _required(payload: Mapping, field: str, endpoint: str) -> object:
    if field not in payload:
        raise ValidationError(
            f"/{endpoint} requires field {field!r}",
            context={"field": field, "valid": "present"},
        )
    return payload[field]


def _positive(value: float, field: str) -> float:
    if not value > 0:
        raise ValidationError(
            f"{field} must be positive",
            context={"field": field, "got": value, "valid": "> 0"},
        )
    return value


def _boolean(payload: Mapping, field: str, default: bool) -> bool:
    value = payload.get(field, default)
    if not isinstance(value, bool):
        raise ValidationError(
            f"{field} must be a boolean",
            context={"field": field, "got": value, "valid": "true/false"},
        )
    return value


def _integer(payload: Mapping, field: str, default: int, minimum: int) -> int:
    value = payload.get(field, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValidationError(
            f"{field} must be an integer",
            context={"field": field, "got": value, "valid": "integer"},
        )
    if value < minimum:
        raise ValidationError(
            f"{field} must be >= {minimum}",
            context={"field": field, "got": value, "valid": f">= {minimum}"},
        )
    return value


def _string(value: object, field: str) -> str:
    if not isinstance(value, str) or not value.strip():
        raise ValidationError(
            f"{field} must be a non-empty string",
            context={"field": field, "got": value, "valid": "non-empty string"},
        )
    return " ".join(value.split())


def _coupling(payload: Mapping, default: str = "shared") -> Coupling:
    value = payload.get("coupling", default)
    valid = [c.name.lower() for c in Coupling]
    if not isinstance(value, str) or value.lower() not in valid:
        raise ValidationError(
            f"coupling must be one of {', '.join(valid)}",
            context={"field": "coupling", "got": value, "valid": valid},
        )
    return Coupling[value.upper()]


def _policy(payload: Mapping) -> ThresholdPolicy:
    value = payload.get("policy", "control_what_can_be_controlled")
    valid = [p.name.lower() for p in ThresholdPolicy]
    if not isinstance(value, str) or value.lower() not in valid:
        raise ValidationError(
            f"policy must be one of {', '.join(valid)}",
            context={"field": "policy", "got": value, "valid": valid},
        )
    return ThresholdPolicy[value.upper()]


@dataclass(frozen=True)
class RateRequest:
    """A canonical ``/rate`` request: one homogeneous configuration."""

    clock_mhz: float
    word_bits: float
    fp_per_cycle: float
    int_per_cycle: float
    concurrent: bool
    processors: int
    coupling: Coupling
    year: float

    _FIELDS = ("clock_mhz", "word_bits", "fp_per_cycle", "int_per_cycle",
               "concurrent", "processors", "coupling", "year")

    @property
    def cache_key(self) -> tuple:
        return ("rate", self.clock_mhz, self.word_bits, self.fp_per_cycle,
                self.int_per_cycle, self.concurrent, self.processors,
                self.coupling.name, self.year)

    def element(self) -> ComputingElement:
        return ComputingElement(
            name="serve", clock_mhz=self.clock_mhz, word_bits=self.word_bits,
            fp_ops_per_cycle=self.fp_per_cycle,
            int_ops_per_cycle=self.int_per_cycle,
            concurrent_int_fp=self.concurrent,
        )


def parse_rate(payload: object) -> RateRequest:
    payload = _require_object(payload, "rate")
    _reject_unknown(payload, RateRequest._FIELDS, "rate")
    _required(payload, "clock_mhz", "rate")
    clock = _positive(_number(payload, "clock_mhz", None), "clock_mhz")
    word = _positive(_number(payload, "word_bits", 64.0), "word_bits")
    fp = _number(payload, "fp_per_cycle", 1.0)
    integer = _number(payload, "int_per_cycle", 1.0)
    for name, value in (("fp_per_cycle", fp), ("int_per_cycle", integer)):
        if value < 0:
            raise ValidationError(
                f"{name} must be non-negative",
                context={"field": name, "got": value, "valid": ">= 0"},
            )
    if fp == 0 and integer == 0:
        raise ValidationError(
            "at least one of fp_per_cycle / int_per_cycle must be positive",
            context={"fp_per_cycle": fp, "int_per_cycle": integer,
                     "valid": "max > 0"},
        )
    processors = _integer(payload, "processors", 1, minimum=1)
    coupling = _coupling(payload)
    if coupling is Coupling.SINGLE and processors > 1:
        raise ValidationError(
            "SINGLE coupling admits exactly one element",
            context={"field": "processors", "got": processors,
                     "valid": "processors == 1"},
        )
    year = check_year(_number(payload, "year", 1995.5), "year")
    return RateRequest(
        clock_mhz=clock, word_bits=word, fp_per_cycle=fp,
        int_per_cycle=integer, concurrent=_boolean(payload, "concurrent",
                                                   False),
        processors=processors, coupling=coupling, year=year,
    )


@dataclass(frozen=True)
class LicenseRequest:
    """A canonical ``/license`` request: resolved machine + destination.

    ``threshold_mtops`` is always resolved (an omitted threshold becomes
    the one in force at ``year``), so payloads that spell the same
    decision differently share a cache entry.
    """

    machine: MachineSpec
    destination: str
    threshold_mtops: float
    year: float

    _FIELDS = ("machine", "destination", "threshold_mtops", "year")

    @property
    def cache_key(self) -> tuple:
        return ("license", self.machine.key, self.destination,
                self.threshold_mtops)


def parse_license(payload: object) -> LicenseRequest:
    payload = _require_object(payload, "license")
    _reject_unknown(payload, LicenseRequest._FIELDS, "license")
    machine = find_machine(
        _string(_required(payload, "machine", "license"), "machine"))
    destination = _string(_required(payload, "destination", "license"),
                          "destination")
    year = check_year(_number(payload, "year", 1995.5), "year")
    if "threshold_mtops" in payload:
        threshold = _positive(_number(payload, "threshold_mtops", None),
                              "threshold_mtops")
    else:
        threshold = threshold_at(year)
    return LicenseRequest(machine=machine, destination=destination,
                          threshold_mtops=threshold, year=year)


@dataclass(frozen=True)
class MachineRequest:
    """A canonical ``/machine`` request: one resolved catalog entry."""

    machine: MachineSpec

    _FIELDS = ("machine",)

    @property
    def cache_key(self) -> tuple:
        return ("machine", self.machine.key)


def parse_machine(payload: object) -> MachineRequest:
    payload = _require_object(payload, "machine")
    _reject_unknown(payload, MachineRequest._FIELDS, "machine")
    key = _string(_required(payload, "machine", "machine"), "machine")
    return MachineRequest(machine=find_machine(key))


@dataclass(frozen=True)
class ReviewRequest:
    """A canonical ``/review`` request: one review date + policy."""

    year: float
    policy: ThresholdPolicy

    _FIELDS = ("year", "policy")

    @property
    def cache_key(self) -> tuple:
        return ("review", self.year, self.policy.name)


def parse_review(payload: object) -> ReviewRequest:
    payload = _require_object(payload, "review")
    _reject_unknown(payload, ReviewRequest._FIELDS, "review")
    year = check_year(_number(payload, "year", 1995.5), "year")
    return ReviewRequest(year=year, policy=_policy(payload))


@dataclass(frozen=True)
class PolicyRequest:
    """A canonical ``/policy`` request: one candidate threshold + date.

    An omitted threshold resolves to the one in force at ``year``, so
    "score the current regime" payloads share a cache entry and a grid
    cell with their explicit spellings.
    """

    threshold_mtops: float
    year: float

    _FIELDS = ("threshold_mtops", "year")

    @property
    def cache_key(self) -> tuple:
        return ("policy", self.threshold_mtops, self.year)


def parse_policy(payload: object) -> PolicyRequest:
    payload = _require_object(payload, "policy")
    _reject_unknown(payload, PolicyRequest._FIELDS, "policy")
    year = check_year(_number(payload, "year", 1995.5), "year")
    if "threshold_mtops" in payload:
        threshold = _positive(_number(payload, "threshold_mtops", None),
                              "threshold_mtops")
    else:
        threshold = threshold_at(year)
    return PolicyRequest(threshold_mtops=threshold, year=year)


@dataclass(frozen=True)
class ScenarioRequest:
    """A canonical ``/scenario`` request: one world + threshold + date.

    ``scenario`` accepts either a preset name (``"flop_cap"``) or a full
    scenario object in the strict wire form; both canonicalize to the
    same frozen :class:`Scenario`, so equivalent spellings share a cache
    entry.  An omitted threshold resolves to the one *that world's*
    timeline imposes at ``year``.
    """

    scenario: "Scenario"
    threshold_mtops: float
    year: float

    _FIELDS = ("scenario", "threshold_mtops", "year")

    @property
    def cache_key(self) -> tuple:
        return ("scenario", self.scenario, self.threshold_mtops, self.year)


def parse_scenario(payload: object) -> ScenarioRequest:
    from repro.scenarios.spec import preset_scenario, scenario_from_payload

    payload = _require_object(payload, "scenario")
    _reject_unknown(payload, ScenarioRequest._FIELDS, "scenario")
    spec = payload.get("scenario", "historical")
    if isinstance(spec, str):
        scenario = preset_scenario(_string(spec, "scenario"))
    else:
        scenario = scenario_from_payload(spec)
    year = check_year(_number(payload, "year", 1995.5), "year")
    if "threshold_mtops" in payload:
        threshold = _positive(_number(payload, "threshold_mtops", None),
                              "threshold_mtops")
    else:
        threshold = scenario.threshold_in_force(year)
    return ScenarioRequest(scenario=scenario, threshold_mtops=threshold,
                           year=year)


@dataclass(frozen=True)
class ThresholdAtRequest:
    """A canonical ``/threshold_at`` request: one lookup date.

    The cheapest query the planner knows — one era bisect — and the one
    agentic clients issue constantly between heavier calls, so it gets
    its own endpoint (and JSON-RPC method) instead of riding on a full
    ``/review``.
    """

    year: float

    _FIELDS = ("year",)

    @property
    def cache_key(self) -> tuple:
        return ("threshold_at", self.year)


def parse_threshold_at(payload: object) -> ThresholdAtRequest:
    payload = _require_object(payload, "threshold_at")
    _reject_unknown(payload, ThresholdAtRequest._FIELDS, "threshold_at")
    year = check_year(_number(payload, "year", 1995.5), "year")
    return ThresholdAtRequest(year=year)


_PARSERS = {
    "rate": parse_rate,
    "license": parse_license,
    "machine": parse_machine,
    "review": parse_review,
    "policy": parse_policy,
    "scenario": parse_scenario,
    "threshold_at": parse_threshold_at,
}

#: The POST endpoints the service understands, in routing order.
ENDPOINTS = tuple(_PARSERS)

#: Read-only listing endpoints served over GET (no request body, no
#: parser): catalog machines and the threshold-era history, both
#: epoch-tagged so clients can correlate listings with mutations.
GET_ENDPOINTS = ("machines", "thresholds")


def parse_request(endpoint: str, payload: object):
    """Parse ``payload`` for ``endpoint``; raises ``ReproError`` on any
    malformed input (never lets a builtin exception escape)."""
    parser = _PARSERS.get(endpoint)
    if parser is None:
        raise ValidationError(
            f"unknown endpoint {endpoint!r}",
            context={"got": endpoint, "valid": sorted(_PARSERS)},
        )
    return parser(payload)
