"""Tests for the shallow-water kernel: conservation, stability, scaling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.shallow_water import (
    GRAVITY,
    MEAN_DEPTH,
    ShallowWaterState,
    flops_per_step,
    halo_bytes_per_step,
    initial_gaussian,
    run,
    step,
    total_energy,
    total_mass,
)


class TestSetup:
    def test_initial_state_at_rest(self):
        s = initial_gaussian(32)
        assert not s.u.any()
        assert not s.v.any()
        assert s.h.max() > 0

    def test_default_dt_cfl_stable(self):
        s = initial_gaussian(32)
        assert np.sqrt(GRAVITY * MEAN_DEPTH) * s.dt < s.dx

    def test_rejects_tiny_grid(self):
        with pytest.raises(ValueError):
            initial_gaussian(2)

    def test_rejects_unstable_dt(self):
        with pytest.raises(ValueError, match="unstable"):
            initial_gaussian(32, dx=1.0, dt=1.0)

    def test_rejects_shape_mismatch(self):
        h = np.zeros((8, 8))
        with pytest.raises(ValueError):
            ShallowWaterState(h=h, u=np.zeros((8, 4)), v=h.copy(),
                              dx=1.0, dt=0.01)

    def test_rejects_non_square(self):
        f = np.zeros((8, 4))
        with pytest.raises(ValueError):
            ShallowWaterState(h=f, u=f.copy(), v=f.copy(), dx=1.0, dt=0.01)


class TestConservation:
    def test_mass_conserved_to_machine_precision(self):
        s = initial_gaussian(48)
        m0 = total_mass(s)
        m1 = total_mass(run(s, 300))
        assert m1 == pytest.approx(m0, abs=1e-10)

    def test_energy_bounded(self):
        s = initial_gaussian(48)
        e0 = total_energy(s)
        e1 = total_energy(run(s, 300))
        assert 0.8 * e0 <= e1 <= 1.2 * e0

    def test_wave_actually_propagates(self):
        s = initial_gaussian(48)
        later = run(s, 100)
        # The bump radiates: velocities become nonzero, the peak drops.
        assert later.u.std() > 0
        assert later.h.max() < s.h.max()

    def test_zero_state_is_fixed_point(self):
        zeros = np.zeros((16, 16))
        s = ShallowWaterState(h=zeros, u=zeros.copy(), v=zeros.copy(),
                              dx=1.0, dt=0.01)
        s2 = step(s)
        assert not s2.h.any() and not s2.u.any()

    @given(st.integers(min_value=8, max_value=40),
           st.floats(min_value=0.01, max_value=0.5))
    @settings(max_examples=15, deadline=None)
    def test_mass_conservation_property(self, n, amplitude):
        s = initial_gaussian(n, amplitude=amplitude)
        assert total_mass(run(s, 25)) == pytest.approx(total_mass(s),
                                                       abs=1e-9)


class TestCostModel:
    def test_flops_quadratic(self):
        assert flops_per_step(64) == 4 * flops_per_step(32)

    def test_halo_scaling(self):
        # Per-process halo shrinks like 1/sqrt(p) — the HALO_2D law.
        b4 = halo_bytes_per_step(128, 4)
        b16 = halo_bytes_per_step(128, 16)
        assert b4 / b16 == pytest.approx(2.0)

    def test_halo_zero_single_process(self):
        assert halo_bytes_per_step(128, 1) == 0.0

    def test_granularity_falls_with_p(self):
        # flops per process / bytes per process ~ n / sqrt(p): finer
        # decomposition means finer granularity — the cluster killer.
        n = 128
        g = [
            (flops_per_step(n) / p) / halo_bytes_per_step(n, p)
            for p in (4, 16, 64)
        ]
        assert g[0] > g[1] > g[2]

    def test_run_validation(self):
        with pytest.raises(ValueError):
            run(initial_gaussian(16), -1)
