"""The three basic premises as executable tests (Chapter 2).

1. There are problems of great national-security importance that require
   HPC — operationally: applications of concern whose minimum requirement
   exceeds the lower bound of controllability.
2. There are countries of concern with the wherewithal to pursue them —
   operationally: countries of concern with active indigenous HPC programs
   and application programs whose non-computational gates are not total.
3. There are features of HPC that permit effective control —
   operationally: a meaningful range exists between the lower bound and
   the most powerful system available.

``evaluate_premises`` returns the evidence behind each verdict, because the
paper's whole point is that the policy should rest on a "factual,
objective, and repeatable process".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import check_year
from repro.apps.requirements import ApplicationRequirement
from repro.core.framework import MIN_RANGE_FACTOR, ThresholdBounds, derive_bounds
from repro.machines.foreign import FOREIGN_SYSTEMS, ForeignCountry, max_indigenous_mtops

__all__ = ["PremiseReport", "PremisesAssessment", "evaluate_premises"]


@dataclass(frozen=True)
class PremiseReport:
    """Verdict and evidence for one premise."""

    number: int
    statement: str
    holds: bool
    evidence: tuple[str, ...]


@dataclass(frozen=True)
class PremisesAssessment:
    """All three premises at one date."""

    year: float
    bounds: ThresholdBounds
    premise1: PremiseReport
    premise2: PremiseReport
    premise3: PremiseReport

    @property
    def all_hold(self) -> bool:
        return self.premise1.holds and self.premise2.holds and self.premise3.holds

    @property
    def policy_justified(self) -> bool:
        """'If the first two premises do not hold, there is no
        justification for the policy; without the third, no effective
        implementation is possible.'"""
        return self.all_hold


def _premise1(bounds: ThresholdBounds) -> PremiseReport:
    apps = bounds.protectable_applications
    evidence = tuple(
        f"{a.name}: minimum {a.min_at(bounds.year):,.0f} Mtops "
        f"> lower bound {bounds.lower_mtops:,.0f}"
        for a in apps[:8]
    )
    return PremiseReport(
        number=1,
        statement="Problems of national-security importance require HPC "
                  "beyond uncontrollable levels",
        holds=len(apps) > 0,
        evidence=evidence if apps else
        ("no application minimum exceeds the lower bound of controllability",),
    )


def _premise2(year: float) -> PremiseReport:
    active = []
    for country in ForeignCountry:
        capability = max_indigenous_mtops(country, year)
        n_systems = sum(
            1 for m in FOREIGN_SYSTEMS
            if m.country == country.value and m.year <= year
        )
        if n_systems > 0:
            active.append(
                f"{country.value}: {n_systems} indigenous systems, best "
                f"{capability:,.0f} Mtops"
            )
    return PremiseReport(
        number=2,
        statement="Countries of concern have the scientific and military "
                  "wherewithal to pursue these applications",
        holds=len(active) > 0,
        evidence=tuple(active) or ("no country of concern has an HPC program",),
    )


def _premise3(bounds: ThresholdBounds) -> PremiseReport:
    gap = (
        bounds.upper_theoretical_mtops / bounds.lower_mtops
        if bounds.lower_mtops > 0
        else float("inf")
    )
    holds = bounds.lower_mtops > 0 and gap >= MIN_RANGE_FACTOR
    return PremiseReport(
        number=3,
        statement="Features of HPC systems permit effective control "
                  "(a meaningful controllable range exists)",
        holds=holds,
        evidence=(
            f"lower bound {bounds.lower_mtops:,.0f} Mtops "
            f"(uncontrollable {bounds.uncontrollable_mtops:,.0f}, "
            f"foreign {bounds.foreign_mtops:,.0f})",
            f"most powerful available {bounds.upper_theoretical_mtops:,.0f} "
            f"Mtops (gap factor {gap:,.1f}x)",
        ),
    )


def evaluate_premises(year: float = 1995.5) -> PremisesAssessment:
    """Test all three premises at a date."""
    check_year(year, "year")
    bounds = derive_bounds(year)
    return PremisesAssessment(
        year=year,
        bounds=bounds,
        premise1=_premise1(bounds),
        premise2=_premise2(year),
        premise3=_premise3(bounds),
    )
