"""Headline reproduction: the executive summary's numbers.

Paper (exec summary): lower bound 4,000-5,000 Mtops (mid-1995), rising to
~7,500 by late 1996/97 and past 16,000 before the end of the decade;
an RDT&E application cluster starting roughly at 7,000 Mtops and a
military-operations cluster at 10,000; the current 1,500-Mtops definition
already stale.
"""

from repro.core.framework import headline_summary
from repro.core.premises import evaluate_premises
from repro.core.review import run_annual_review
from repro.reporting.tables import render_table


def build_headline():
    return headline_summary(), run_annual_review(1995.5)


def test_headline_bounds(benchmark, emit):
    headline, review = benchmark(build_headline)
    rows = [
        ["lower bound, mid-1995", "4,000-5,000",
         round(headline.lower_bound_mid_1995)],
        ["lower bound, late 1996/97", "~7,500",
         round(headline.lower_bound_late_1996_97)],
        ["lower bound, end of decade", ">16,000",
         round(headline.lower_bound_end_of_decade)],
        ["RDT&E cluster start", "~7,000",
         round(headline.rdte_cluster_start)],
        ["military-ops cluster start", "~10,000",
         round(headline.milops_cluster_start)],
        ["fraction of applications below bound", "majority",
         f"{headline.fraction_apps_below_lower_1995:.0%}"],
        ["threshold in force", "1,500 (stale)",
         f"{review.threshold_in_force:,.0f} "
         f"({'stale' if review.threshold_is_stale else 'ok'})"],
        ["all three premises hold (1995)", "yes",
         "yes" if review.premises.all_hold else "no"],
    ]
    emit(render_table(
        ["quantity", "paper", "reproduced"],
        rows,
        title="Headline findings: paper vs reproduction",
    ))

    assert 4_000.0 <= headline.lower_bound_mid_1995 <= 5_000.0
    assert 5_500.0 <= headline.lower_bound_late_1996_97 <= 9_000.0
    assert headline.lower_bound_end_of_decade > 16_000.0
    assert 6_000.0 <= headline.rdte_cluster_start <= 9_000.0
    assert 6_500.0 <= headline.milops_cluster_start <= 13_000.0
    assert evaluate_premises(1995.5).all_hold
