"""Named-application catalog (Chapter 4; Tables 14-15; Figures 1, 10).

Every Mtops figure the paper states is carried with ``quoted=True``; the
rest are reconstructions consistent with the surrounding text.  The
catalog's minimums drive the upper-bound analysis: the paper finds "a group
of research and development applications starting roughly at the level of
7,000 Mtops, and a group of military operations applications at 10,000
Mtops".
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro._util import check_fraction
from repro.apps.requirements import (
    DRIFT_FLOOR_FRACTION,
    DRIFT_RATE_PER_YEAR,
    ApplicationRequirement,
)
from repro.apps.taxonomy import (
    CTA,
    MissionArea,
    Parallelizability,
    TimingClass,
)

__all__ = [
    "APPLICATIONS",
    "find_application",
    "applications_by_mission",
    "min_requirements_mtops",
    "requirement_arrays",
    "drifted_min_matrix",
]

_N = MissionArea.NUCLEAR
_C = MissionArea.CRYPTOLOGY
_A = MissionArea.ACW
_M = MissionArea.MILITARY_OPERATIONS

_RT = TimingClass.REAL_TIME
_OP = TimingClass.OPERATIONAL
_CAM = TimingClass.CAMPAIGN

_EASY = Parallelizability.EASY
_LIM = Parallelizability.LIMITED
_NO = Parallelizability.NO


APPLICATIONS: tuple[ApplicationRequirement, ...] = (
    # ------------------------------ nuclear -------------------------------
    ApplicationRequirement(
        name="First-generation nuclear weapon design", mission=_N,
        functional_area="", ctas=(CTA.CFD, CTA.CSM),
        min_mtops=0.1, year_first=1945.5, timing=_CAM, parallelizable=_LIM,
        quoted=False,
        notes="Designed with mechanical calculators; a PC greatly helps but "
              "is not required (Ch. 4).",
    ),
    ApplicationRequirement(
        name="Robust nuclear weapons simulation", mission=_N,
        functional_area="", ctas=(CTA.CFD, CTA.CCM),
        min_mtops=1_400.0, year_first=1994.0, timing=_OP, parallelizable=_LIM,
        quoted=True,
        notes='"Fairly robust" simulations on dedicated 1,400-Mtops '
              "workstations (Ch. 4).",
    ),
    ApplicationRequirement(
        name="Second-generation weapons design (with test data)", mission=_N,
        functional_area="", ctas=(CTA.CFD, CTA.CCM, CTA.CSM),
        min_mtops=1_500.0, year_first=1975.0, timing=_OP, parallelizable=_LIM,
        quoted=True,
        notes="Requires >= 1,500 Mtops AND empirical test data; computing "
              "alone is insufficient (key judgment).",
    ),
    ApplicationRequirement(
        name="Stockpile confidence simulation", mission=_N,
        functional_area="", ctas=(CTA.CFD, CTA.CCM),
        min_mtops=10_000.0, year_first=1993.0,
        actual_mtops=21_125.0, actual_system="Cray C916",
        timing=_CAM, parallelizable=_LIM, memory_bound=True, quoted=False,
        notes='"Requiring the most powerful computers available" absent '
              "live testing.",
    ),
    # ----------------------------- cryptology -----------------------------
    ApplicationRequirement(
        name="Brute-force keysearch (24-hour break)", mission=_C,
        functional_area="", ctas=(CTA.CRYPTOLOGY,),
        min_mtops=2_000.0, year_first=1990.0, timing=_OP, parallelizable=_EASY,
        quoted=False,
        notes="Tailor-made for parallel processors; aggregate power governs, "
              "so controls on single boxes cannot bind (key judgment).",
    ),
    ApplicationRequirement(
        name="Narrow-target cryptoanalysis (single cipher system)", mission=_C,
        functional_area="", ctas=(CTA.CRYPTOLOGY,),
        min_mtops=200.0, year_first=1992.0, timing=_CAM, parallelizable=_EASY,
        quoted=False,
        notes="Limited means, limited goals: clustered workstations suffice.",
    ),
    # ------------------------ ACW: aerodynamic design ---------------------
    ApplicationRequirement(
        name="F-117A design", mission=_A,
        functional_area="Aerodynamic vehicle design",
        ctas=(CTA.CEA, CTA.CFD),
        min_mtops=0.8, year_first=1979.0,
        actual_mtops=189.0, actual_system="IBM 3090/250",
        timing=_OP, parallelizable=_LIM, quoted=True,
        notes="A VAX-11/780 (0.8 Mtops) 'would have just met their "
              "requirements' - the faceting myth debunked (Ch. 4).",
    ),
    ApplicationRequirement(
        name="B-2 / Advanced Technology Bomber design", mission=_A,
        functional_area="Aerodynamic vehicle design",
        ctas=(CTA.CEA, CTA.CFD),
        min_mtops=189.0, year_first=1981.0,
        actual_mtops=189.0, actual_system="IBM 3090/250",
        timing=_OP, parallelizable=_LIM, quoted=True,
        notes="The 189-Mtops mainframe 'was the smallest computer that "
              "could have been effectively employed'.",
    ),
    ApplicationRequirement(
        name="F-22 design", mission=_A,
        functional_area="Aerodynamic vehicle design",
        ctas=(CTA.CEA, CTA.CFD, CTA.CSM),
        min_mtops=700.0, year_first=1991.0,
        actual_mtops=958.0, actual_system="Cray Y-MP/2",
        timing=_OP, parallelizable=_LIM, quoted=False,
        notes="Simultaneous CEA/CFD optimization 'required the most "
              "powerful computer available for solution within reasonable "
              "time scales'; high-resolution 3-D simulation gates the "
              "minimum (Figure 1).",
    ),
    ApplicationRequirement(
        name="JAST candidate aircraft design", mission=_A,
        functional_area="Aerodynamic vehicle design",
        ctas=(CTA.CEA, CTA.CFD),
        min_mtops=3_485.0, year_first=1994.0,
        actual_mtops=4_864.0, actual_system="Intel Paragon XP/S (150)",
        timing=_OP, parallelizable=_LIM, quoted=True,
        notes="Originally on a 128-node iPSC/860 (3,485 Mtops), 'believed "
              "to be minimally sufficient'.",
    ),
    ApplicationRequirement(
        name="Stealth cruise missile design", mission=_A,
        functional_area="Aerodynamic vehicle design",
        ctas=(CTA.CEA, CTA.CFD),
        min_mtops=500.0, year_first=1993.0, timing=_OP, parallelizable=_LIM,
        quoted=False,
        notes="Smaller body, fewer calculations; materials and propulsion "
              "gate the threat, not computing.",
    ),
    ApplicationRequirement(
        name="Flight-test trajectory image analysis (constrained)", mission=_A,
        functional_area="Aerodynamic vehicle design",
        ctas=(CTA.SIP,),
        min_mtops=6.0, year_first=1988.0,
        actual_mtops=3_439.0, actual_system="Cray T3D (64)",
        timing=_RT, parallelizable=_EASY, quoted=True,
        notes="Runs 'very constrained' on a 6-Mtops VAX-8600 cluster; the "
              "T3D buys many more real-time sensor inputs.",
    ),
    ApplicationRequirement(
        name="Store separation simulation (F/A-18)", mission=_A,
        functional_area="Aerodynamic vehicle design",
        ctas=(CTA.CFD,),
        min_mtops=1_153.0, year_first=1994.0,
        actual_mtops=21_125.0, actual_system="Cray C916",
        timing=_OP, parallelizable=_LIM, memory_bound=True, quoted=True,
        notes="Machines from PowerChallenge (1,153) to C916 (21,125); "
              "'memory size is often more critical than processor "
              "performance'.",
    ),
    # ------------------------ ACW: submarine design -----------------------
    ApplicationRequirement(
        name="Submarine acoustic-signature CSM", mission=_A,
        functional_area="Submarine design",
        ctas=(CTA.CEA, CTA.CSM),
        min_mtops=10_000.0, year_first=1993.0,
        actual_mtops=21_125.0, actual_system="Cray C916",
        timing=_OP, parallelizable=_NO, memory_bound=True, quoted=False,
        notes="10-20 h/run x 2,000+ runs; 'little chance that a country of "
              "concern could replicate this program with computers not "
              "subject to export controls'.",
    ),
    ApplicationRequirement(
        name="Shallow-water turbulent-flow noise modeling", mission=_A,
        functional_area="Submarine design",
        ctas=(CTA.CFD,),
        min_mtops=21_125.0, year_first=1994.0,
        actual_mtops=21_125.0, actual_system="Cray C916",
        timing=_OP, parallelizable=_NO, memory_bound=True, quoted=True,
        notes="Needs >= 128M 64-bit words; 'the only system currently "
              "capable ... is a 16-node Cray'; cannot be converted to "
              "parallel systems.",
    ),
    # ---------------------- ACW: surveillance / sensors -------------------
    ApplicationRequirement(
        name="ATR template development", mission=_A,
        functional_area="Surveillance and target detection and recognition",
        ctas=(CTA.SIP, CTA.CEA),
        min_mtops=24_000.0, year_first=1994.0,
        actual_mtops=24_000.0,
        timing=_CAM, parallelizable=_EASY, quoted=True,
        notes="Thousands of hours on 24,000+ Mtops systems; convertible to "
              "very large workstation clusters.",
    ),
    ApplicationRequirement(
        name="Acoustic sensor R&D and ocean modeling", mission=_A,
        functional_area="Surveillance and target detection and recognition",
        ctas=(CTA.CEA, CTA.CWO),
        min_mtops=20_000.0, year_first=1993.0,
        actual_mtops=21_125.0, actual_system="Cray C916",
        timing=_OP, parallelizable=_NO, memory_bound=True, quoted=True,
        notes="'Cannot be executed on computers less powerful than 20,000 "
              "Mtops with significant high-speed memory' (key judgment).",
    ),
    ApplicationRequirement(
        name="Shallow-water bottom-contour acoustic modeling", mission=_A,
        functional_area="Surveillance and target detection and recognition",
        ctas=(CTA.CEA, CTA.CWO),
        min_mtops=8_000.0, year_first=1994.5,
        actual_mtops=21_125.0, actual_system="Cray C916",
        timing=_OP, parallelizable=_NO, memory_bound=True, quoted=True,
        notes="'Absolute minimum of 8,000-9,600 Mtops of processing power "
              "to execute'.",
    ),
    ApplicationRequirement(
        name="Non-acoustic ASW sensor development", mission=_A,
        functional_area="Surveillance and target detection and recognition",
        ctas=(CTA.CEA, CTA.SIP),
        min_mtops=2_000.0, year_first=1994.0,
        actual_mtops=4_600.0,
        timing=_OP, parallelizable=_LIM, quoted=True,
        notes="64-128-node Paragon (2,000-4,600 Mtops), overnight tasks; "
              "cluster conversion costs two weeks and accuracy.  Deployed "
              "suite needs only ~500 Mtops.",
    ),
    ApplicationRequirement(
        name="TOPSAR near-real-time digital topography", mission=_A,
        functional_area="Surveillance and target detection and recognition",
        ctas=(CTA.SIP,),
        min_mtops=8_000.0, year_first=1995.0,
        actual_mtops=8_000.0,
        timing=_RT, parallelizable=_LIM, quoted=True,
        notes="'A minimum of 8,000 Mtops and possibly as much as 24,000' "
              "for combat-support timelines.",
    ),
    ApplicationRequirement(
        name="Cartography (digital map production)", mission=_A,
        functional_area="Surveillance and target detection and recognition",
        ctas=(CTA.SIP,),
        min_mtops=200.0, year_first=1992.0, timing=_CAM, parallelizable=_EASY,
        quoted=False,
        notes="'Generally not time-constrained' - economics picks the "
              "machine, not capability.",
    ),
    # -------------------- ACW: survivability / lethality ------------------
    ApplicationRequirement(
        name="Armor/anti-armor penetration modeling", mission=_A,
        functional_area="Survivability, protective structures, and weapons lethality",
        ctas=(CTA.CSM,),
        min_mtops=1_098.0, year_first=1991.0,
        actual_mtops=21_125.0, actual_system="Cray C916",
        timing=_CAM, parallelizable=_LIM, quoted=True,
        notes="200 h/run on a 1,098-Mtops Cray-2-class machine; full "
              "optimization up to 14,000 h per armor candidate.",
    ),
    ApplicationRequirement(
        name="Deep-penetration weapon design", mission=_A,
        functional_area="Survivability, protective structures, and weapons lethality",
        ctas=(CTA.CSM,),
        min_mtops=10_000.0, year_first=1994.0,
        actual_mtops=21_125.0, actual_system="Cray C916",
        timing=_OP, parallelizable=_LIM, memory_bound=True, quoted=False,
        notes="Multiple 3-D nonlinear finite-element iterations; layered "
              "strata coupling like hybrid armor.",
    ),
    ApplicationRequirement(
        name="Nuclear blast protective-structure simulation", mission=_A,
        functional_area="Survivability, protective structures, and weapons lethality",
        ctas=(CTA.CFD, CTA.CSM),
        min_mtops=10_056.0, year_first=1994.0,
        actual_mtops=21_125.0, actual_system="Cray C916",
        timing=_CAM, parallelizable=_LIM, quoted=True,
        notes="200-600 h per 2-/3-D blast model on the C916; being adapted "
              "to the T3D (10,056) and CM-5 (10,457).",
    ),
    ApplicationRequirement(
        name="Smart Munitions Test Suite", mission=_A,
        functional_area="Survivability, protective structures, and weapons lethality",
        ctas=(CTA.SIP, CTA.FMS),
        min_mtops=5_194.0, year_first=1995.0,
        actual_mtops=5_194.0, actual_system="Thinking Machines CM-5 (128)",
        timing=_RT, parallelizable=_LIM, quoted=True,
        notes="128-node CM-5 partition; upgrading to 14,410 Mtops for "
              "added realism.  70-MHz double-wide HIPPI data paths.",
    ),
    # -------------------------- military operations -----------------------
    ApplicationRequirement(
        name="SIRST development (ASCM defense algorithms)", mission=_M,
        functional_area="C4I, target engagement, and battle management",
        ctas=(CTA.SIP,),
        min_mtops=7_400.0, year_first=1995.0,
        actual_mtops=8_980.0, actual_system="Intel Paragon XP/S (328)",
        timing=_RT, parallelizable=_LIM, memory_bound=True, quoted=True,
        notes="Deployed system ~13,000 Mtops for real-time; a ~7,400-Mtops "
              "Mercury 'might be minimally sufficient'.",
    ),
    ApplicationRequirement(
        name="Visible-light sensor processing", mission=_M,
        functional_area="C4I, target engagement, and battle management",
        ctas=(CTA.SIP,),
        min_mtops=24_000.0, year_first=1995.0,
        actual_mtops=24_000.0,
        timing=_RT, parallelizable=_NO, quoted=True,
        notes="Deployed processing 'will require similar computing power' "
              "to the 24,000-Mtops development machine, within "
              "size/weight/power limits.",
    ),
    ApplicationRequirement(
        name="Integrated battle management / C4I", mission=_M,
        functional_area="C4I, target engagement, and battle management",
        ctas=(CTA.FMS, CTA.SIP),
        min_mtops=100.0, year_first=1994.0,
        actual_mtops=1_000.0,
        timing=_RT, parallelizable=_EASY, quoted=True,
        notes="Scalable across distributed 100-1,000-Mtops SP2/"
              "PowerChallenge nodes; communications, not CTP, is the "
              "critical element (Ch. 6's metric problem).",
    ),
    ApplicationRequirement(
        name="F-22 avionics suite", mission=_M,
        functional_area="C4I, target engagement, and battle management",
        ctas=(CTA.FMS, CTA.SIP),
        min_mtops=9_000.0, year_first=1995.0,
        actual_mtops=9_000.0,
        timing=_RT, parallelizable=_NO, quoted=True,
        notes="1.6M lines of code on a pair of ~9,000-Mtops embedded "
              "computers; size/weight/power-constrained.",
    ),
    ApplicationRequirement(
        name="ALERT theater missile warning", mission=_M,
        functional_area="C4I, target engagement, and battle management",
        ctas=(CTA.SIP, CTA.FMS),
        min_mtops=1_700.0, year_first=1994.0,
        actual_mtops=1_700.0, actual_system="SGI Onyx server (12)",
        timing=_RT, parallelizable=_EASY, quoted=True,
        notes="Three Onyx servers (1,700 Mtops) + 14 networked Onyx "
              "workstations (300 Mtops).",
    ),
    ApplicationRequirement(
        name="Theater communications switching", mission=_M,
        functional_area="C4I, target engagement, and battle management",
        ctas=(CTA.FMS,),
        min_mtops=20.8, year_first=1990.6,
        actual_mtops=53.3, actual_system="Sun SPARCstation 10",
        timing=_RT, parallelizable=_EASY, quoted=True,
        notes="Desert Storm ran on 20.8-53.3-Mtops SPARCstations; the 1991 "
              "fix was software, not hardware.",
    ),
    ApplicationRequirement(
        name="Information warfare operations", mission=_M,
        functional_area="Information warfare",
        ctas=(CTA.FMS, CTA.CRYPTOLOGY),
        min_mtops=100.0, year_first=1994.0, timing=_OP, parallelizable=_EASY,
        quoted=False,
        notes="'A large number of efficiently networked workstations will "
              "prove more useful ... than a few HPC installations'.",
    ),
    ApplicationRequirement(
        name="Real-time battlefield simulation (decision support)", mission=_M,
        functional_area="Training and battlefield simulation",
        ctas=(CTA.FMS,),
        min_mtops=8_000.0, year_first=1995.0,
        actual_mtops=8_000.0,
        timing=_RT, parallelizable=_LIM, quoted=True,
        notes="Simulations execute on remote MPPs 'in excess of 8,000 "
              "Mtops'; fielded versions well above 1,000.",
    ),
    ApplicationRequirement(
        name="Global weather model (120 km)", mission=_M,
        functional_area="Meteorology",
        ctas=(CTA.CWO,),
        min_mtops=200.0, year_first=1991.0, timing=_OP, parallelizable=_LIM,
        quoted=True,
        notes="Runs on a 200-Mtops-class workstation.",
    ),
    ApplicationRequirement(
        name="Tactical weather prediction (45 km)", mission=_M,
        functional_area="Meteorology",
        ctas=(CTA.CWO,),
        min_mtops=10_000.0, year_first=1993.0,
        actual_mtops=10_625.0, actual_system="Cray C90/8",
        timing=_RT, parallelizable=_NO, quoted=True,
        notes="'Require computers rated in excess of 10,000'; the C90/8 is "
              "'barely adequate'; does not parallelize well.",
    ),
    ApplicationRequirement(
        name="Littoral chem/bio defense forecasting (1 km, 3 h)", mission=_M,
        functional_area="Meteorology",
        ctas=(CTA.CWO,),
        min_mtops=21_125.0, year_first=1995.0,
        actual_mtops=21_125.0, actual_system="Cray C916",
        timing=_RT, parallelizable=_NO, quoted=True,
        notes="'This system requires a Cray C916'.",
    ),
    ApplicationRequirement(
        name="Routine 10-day / 5-km forecasting", mission=_M,
        functional_area="Meteorology",
        ctas=(CTA.CWO,),
        min_mtops=100_000.0, year_first=1996.0, timing=_OP, parallelizable=_NO,
        quoted=True,
        notes="Needs the 64-node C90-class upgrade ('well over 100,000 "
              "Mtops') - a stalactite above everything uncontrollable.",
    ),
)


_BY_NAME = {a.name: a for a in APPLICATIONS}
assert len(_BY_NAME) == len(APPLICATIONS), "duplicate application names"


def find_application(name: str) -> ApplicationRequirement:
    """Look up an application by exact name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; known: {sorted(_BY_NAME)}"
        ) from None


@lru_cache(maxsize=None)
def _by_mission(mission: MissionArea) -> tuple[ApplicationRequirement, ...]:
    return tuple(sorted(
        (a for a in APPLICATIONS if a.mission is mission),
        key=lambda a: (a.year_first, a.name),
    ))


def applications_by_mission(mission: MissionArea) -> list[ApplicationRequirement]:
    """Applications of one mission area, by year first performed."""
    return list(_by_mission(mission))


@lru_cache(maxsize=None)
def requirement_arrays(
    apps: tuple[ApplicationRequirement, ...] = APPLICATIONS,
) -> tuple[np.ndarray, np.ndarray]:
    """``(min_mtops, year_first)`` arrays over ``apps``, cached read-only.

    The requirement bins behind every drift computation — built once per
    distinct application tuple instead of re-walking the catalog on each
    scenario grid point.
    """
    mins = np.array([a.min_mtops for a in apps])
    firsts = np.array([a.year_first for a in apps])
    mins.setflags(write=False)
    firsts.setflags(write=False)
    return mins, firsts


def drifted_min_matrix(
    years: np.ndarray | list[float],
    apps: tuple[ApplicationRequirement, ...] = APPLICATIONS,
    rate: float = DRIFT_RATE_PER_YEAR,
    floor: float = DRIFT_FLOOR_FRACTION,
) -> np.ndarray:
    """Drifted minimums for every app x every year: ``(n_apps, n_years)``.

    Vectorized form of :meth:`ApplicationRequirement.min_at` over a year
    grid — the same bounded exponential decay, computed as one broadcast.
    """
    rate = check_fraction(rate, "rate")
    floor = check_fraction(floor, "floor")
    if floor == 0.0:
        raise ValueError("floor must be positive: requirements never vanish")
    mins, firsts = requirement_arrays(apps)
    grid = np.asarray(years, dtype=float)
    elapsed = np.maximum(0.0, grid[None, :] - firsts[:, None])
    factor = np.maximum((1.0 - rate) ** elapsed, floor)
    return mins[:, None] * factor


def min_requirements_mtops(year: float | None = None) -> list[float]:
    """All minimum requirements, optionally drifted to ``year``
    (the Figure 10 population)."""
    if year is None:
        return sorted(a.min_mtops for a in APPLICATIONS)
    return sorted(drifted_min_matrix([year])[:, 0].tolist())
