"""Synthetic Top500-style installation lists (Figures 12-13).

The study used the Top500 Supercomputer Sites listings to characterize how
installed high-end computing is distributed.  The real 1993-1995 lists are
not redistributable data here, so this module generates synthetic lists
calibrated to the era's public anchor points:

* the #1 system: ~14,000 Mtops-class in mid-1993 (1024-node CM-5) rising to
  ~100,000 Mtops-class by mid-1995 (6768-node Paragon XP/S 140) — both of
  which are actual catalog entries;
* the #500 system: a few hundred Mtops in 1993, about trebling by 1995;
* architecture shares: vector-pipelined machines losing ground to MPPs and
  (by mid-decade) large SMP servers, the structural change Chapter 6 leans
  on.

A power law in rank between the calibrated endpoints reproduces the
heavy-tailed shape of the real lists; per-entry lognormal jitter gives the
lists realistic texture without changing the calibration (the endpoints are
pinned after jitter).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import check_year
from repro.machines.spec import Architecture
from repro.trends.curves import ExponentialTrend

__all__ = ["Top500Entry", "Top500List", "generate_top500", "rank_trend"]

#: Calibrated endpoint trends (decimal year base 1993.5).
_P1_TREND = ExponentialTrend(base_year=1993.5, intercept=np.log10(14_500.0),
                             slope=np.log10(2.7))
_P500_TREND = ExponentialTrend(base_year=1993.5, intercept=np.log10(400.0),
                               slope=np.log10(1.75))

#: Architecture share anchors (year -> (vector, mpp, smp)); linearly
#: interpolated and renormalized between anchors.
_ARCH_ANCHORS: tuple[tuple[float, tuple[float, float, float]], ...] = (
    (1993.0, (0.65, 0.33, 0.02)),
    (1995.0, (0.40, 0.48, 0.12)),
    (1997.0, (0.22, 0.50, 0.28)),
    (2000.0, (0.08, 0.52, 0.40)),
)

_COUNTRY_WEIGHTS = {"USA": 0.55, "Japan": 0.22, "Europe": 0.18, "other": 0.05}


@dataclass(frozen=True)
class Top500Entry:
    """One installation on a synthetic list."""

    rank: int
    mtops: float
    architecture: Architecture
    country: str


@dataclass(frozen=True)
class Top500List:
    """A synthetic list for one publication date."""

    year: float
    entries: tuple[Top500Entry, ...]

    def mtops(self) -> np.ndarray:
        """Performance by rank (descending)."""
        return np.array([e.mtops for e in self.entries])

    def share_by_architecture(self) -> dict[Architecture, float]:
        """Fraction of entries in each architecture class."""
        n = len(self.entries)
        shares: dict[Architecture, float] = {}
        for e in self.entries:
            shares[e.architecture] = shares.get(e.architecture, 0.0) + 1.0 / n
        return shares

    def histogram(self, bin_edges_mtops: np.ndarray) -> np.ndarray:
        """Counts of entries in performance bins (Figure 12 rows)."""
        return np.histogram(self.mtops(), bins=np.asarray(bin_edges_mtops))[0]

    def fraction_below(self, mtops: float) -> float:
        """Fraction of the list below a performance level — the Figure 13
        statistic showing the controllability bound eating the list."""
        perf = self.mtops()
        return float(np.mean(perf < mtops))


def _arch_weights(year: float) -> np.ndarray:
    years = np.array([a[0] for a in _ARCH_ANCHORS])
    table = np.array([a[1] for a in _ARCH_ANCHORS])
    w = np.array(
        [np.interp(year, years, table[:, k]) for k in range(table.shape[1])]
    )
    return w / w.sum()


def rank_trend(rank: int, year: float | np.ndarray) -> float | np.ndarray:
    """Deterministic performance of a given list rank over time.

    ``rank_trend(1, y)`` and ``rank_trend(500, y)`` are the calibrated
    endpoints; intermediate ranks follow the interpolating power law.
    """
    if not 1 <= rank <= 500:
        raise ValueError(f"rank must be in [1, 500], got {rank}")
    year_arr = np.asarray(year, dtype=float)
    p1 = _P1_TREND.value(year_arr)
    p500 = _P500_TREND.value(year_arr)
    alpha = np.log(p1 / p500) / np.log(500.0)
    out = p1 * float(rank) ** (-alpha)
    return float(out) if np.ndim(out) == 0 else out


def generate_top500(year: float, seed: int = 0, n: int = 500) -> Top500List:
    """Generate a synthetic list for a publication year.

    Deterministic for a given ``(year, seed, n)``.  Jitter perturbs the
    interior of the list only; the calibrated #1 and #n entries are exact.
    """
    check_year(year, "year")
    if n < 2:
        raise ValueError("n must be >= 2")
    rng = np.random.default_rng(
        np.random.SeedSequence([seed, int(round(year * 100)), n])
    )
    ranks = np.arange(1, n + 1, dtype=float)
    p1 = float(_P1_TREND.value(year))
    pn = float(_P500_TREND.value(year)) * (500.0 / n) ** 0.0  # calibrated at n=500
    alpha = np.log(p1 / pn) / np.log(float(n))
    base = p1 * ranks ** (-alpha)
    jitter = 10.0 ** rng.normal(0.0, 0.06, size=n)
    jitter[0] = jitter[-1] = 1.0
    # Clip into the calibrated envelope before sorting so that pinning the
    # endpoints cannot break the descending order.
    perf = np.sort(np.clip(base * jitter, pn, p1))[::-1]
    perf[0], perf[-1] = p1, pn

    arch_pool = np.array([Architecture.VECTOR, Architecture.MPP, Architecture.SMP])
    arch_w = _arch_weights(year)
    # Top of the list leans MPP/vector; SMPs cluster in the tail.  Sampling
    # probability is modulated by rank percentile.
    pct = ranks / n
    w_matrix = np.empty((n, 3))
    w_matrix[:, 0] = arch_w[0] * (1.2 - 0.4 * pct)        # vector
    w_matrix[:, 1] = arch_w[1] * (1.4 - 0.8 * pct)        # mpp
    w_matrix[:, 2] = arch_w[2] * (0.2 + 1.6 * pct)        # smp
    w_matrix /= w_matrix.sum(axis=1, keepdims=True)
    arch_idx = np.array([rng.choice(3, p=w_matrix[i]) for i in range(n)])

    countries = list(_COUNTRY_WEIGHTS)
    cw = np.array(list(_COUNTRY_WEIGHTS.values()))
    country_idx = rng.choice(len(countries), size=n, p=cw / cw.sum())

    entries = tuple(
        Top500Entry(
            rank=i + 1,
            mtops=float(perf[i]),
            architecture=arch_pool[arch_idx[i]],
            country=countries[country_idx[i]],
        )
        for i in range(n)
    )
    return Top500List(year=year, entries=entries)
