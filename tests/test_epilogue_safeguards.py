"""Tests for the post-1995 epilogue validation and the safeguards model."""

import pytest

from repro._util import year_range
from repro.core.epilogue import (
    EPILOGUE_THRESHOLDS,
    actual_threshold_at,
    compare_with_history,
    staleness_series,
)
from repro.core.threshold import ThresholdPolicy
from repro.diffusion.policy import SafeguardTier
from repro.diffusion.safeguards import (
    SafeguardMeasure,
    SafeguardPlan,
    indigenous_incentive,
    plan_for_tier,
)


class TestEpilogueRecord:
    def test_eras_ordered(self):
        starts = [e.start_year for e in EPILOGUE_THRESHOLDS]
        assert starts == sorted(starts)

    def test_military_at_least_civil(self):
        for era in EPILOGUE_THRESHOLDS:
            assert era.military_mtops >= era.civil_mtops

    def test_lookup(self):
        assert actual_threshold_at(1995.5) == 1_500.0
        assert actual_threshold_at(1997.0, military=True) == 7_000.0
        assert actual_threshold_at(1997.0, military=False) == 2_000.0

    def test_before_record_raises(self):
        with pytest.raises(ValueError):
            actual_threshold_at(1990.0)

    def test_thresholds_rise(self):
        values = [e.military_mtops for e in EPILOGUE_THRESHOLDS]
        assert values == sorted(values)


class TestValidationAgainstHistory:
    def test_1996_reform_brackets_recommendation(self):
        """The framework's post-reform recommendation falls inside the
        [civil, military] pair the January 1996 rules actually adopted —
        the study and the reform read the same technology base."""
        (comp,) = compare_with_history([1996.5])
        assert comp.recommendation_within_actual_pair

    def test_study_period_threshold_stale(self):
        (comp,) = compare_with_history([1995.5])
        assert comp.actual_military_stale

    def test_gaps_reopen(self):
        # By 1998 the 1996 limits are stale again: the cadence problem.
        (comp,) = compare_with_history([1998.0])
        assert comp.actual_military_stale

    def test_policy_choice_respected(self):
        a = compare_with_history([1996.5], ThresholdPolicy.ECONOMIC)
        b = compare_with_history(
            [1996.5], ThresholdPolicy.CONTROL_WHAT_CAN_BE_CONTROLLED
        )
        assert a[0].recommended_mtops >= b[0].recommended_mtops


class TestStaleness:
    def test_sawtooth(self):
        """Staleness climbs between revisions and snaps back at each."""
        series = dict(staleness_series(year_range(1995.0, 1999.9, 0.1)))
        # Fresh after the 1996 reform...
        assert series[1996.5] < 1.0
        # ...stale before the 1999 revision...
        assert series[1999.5] > 3.0
        # ...snaps down when it lands.
        assert series[1999.9] < series[1999.5]

    def test_values_positive(self):
        for _, factor in staleness_series([1995.0, 1997.0, 1999.0]):
            assert factor > 0


class TestSafeguardPlans:
    def test_supplier_plan_empty(self):
        plan = plan_for_tier(SafeguardTier.SUPPLIER)
        assert plan.annual_cost_fraction == 0.0
        assert plan.detection_probability == 0.0
        assert plan.usability_fraction == 1.0

    def test_tier_escalation(self):
        """Cost and detection rise monotonically down the tier ladder;
        usability falls."""
        ladder = (SafeguardTier.SUPPLIER, SafeguardTier.MAJOR_ALLY,
                  SafeguardTier.SAFEGUARDS_PLAN,
                  SafeguardTier.GOVERNMENT_CERTIFICATION)
        plans = [plan_for_tier(t) for t in ladder]
        costs = [p.annual_cost_fraction for p in plans]
        detections = [p.detection_probability for p in plans]
        usability = [p.usability_fraction for p in plans]
        assert costs == sorted(costs)
        assert detections == sorted(detections)
        assert usability == sorted(usability, reverse=True)

    def test_full_plan_detects_most_misuse(self):
        plan = plan_for_tier(SafeguardTier.GOVERNMENT_CERTIFICATION)
        assert plan.detection_probability > 0.75

    def test_full_plan_costs_real_money(self):
        plan = plan_for_tier(SafeguardTier.GOVERNMENT_CERTIFICATION)
        # ~15% of a $10M machine per year.
        assert plan.annual_cost_usd(10_000_000.0) > 1_000_000.0

    def test_cost_validation(self):
        with pytest.raises(ValueError):
            plan_for_tier(SafeguardTier.RESTRICTED).annual_cost_usd(0.0)

    def test_measure_tuple_structure(self):
        for m in SafeguardMeasure:
            assert 0.0 <= m.annual_cost_fraction <= 0.2
            assert 0.0 <= m.detection_contribution <= 1.0
            assert 0.0 <= m.usability_penalty <= 0.5

    def test_custom_plan(self):
        plan = SafeguardPlan(measures=(SafeguardMeasure.SOFTWARE_AUDIT,))
        assert plan.detection_probability == pytest.approx(0.30)


class TestIndigenousIncentive:
    def test_indian_xmp_episode(self):
        """A weak Param-class machine (say 10% of a safeguarded X-MP)
        against the heaviest safeguard tier: the domestic option captures
        a non-trivial share of the effective choice — the dynamic that
        'disenchanted' India into indigenous development."""
        incentive = indigenous_incentive(
            SafeguardTier.GOVERNMENT_CERTIFICATION, 0.10
        )
        unsafeguarded = indigenous_incentive(SafeguardTier.SUPPLIER, 0.10)
        assert incentive > 1.5 * unsafeguarded

    def test_monotone_in_capability(self):
        tier = SafeguardTier.GOVERNMENT_CERTIFICATION
        assert indigenous_incentive(tier, 0.5) > indigenous_incentive(tier, 0.1)

    def test_bounds(self):
        assert indigenous_incentive(SafeguardTier.SUPPLIER, 0.0) == 0.0
        with pytest.raises(ValueError):
            indigenous_incentive(SafeguardTier.SUPPLIER, 1.5)
