"""Lightweight tracing and metrics: nested span timers and counters.

Two instruments, both cheap enough for hot paths:

* **Counters** — monotonic named counts (:func:`counter_inc`), always on.
  A counter bump is one dict operation; the credit-sum cache, the catalog
  bisect index, and the frontier index all count their hits, misses, and
  rebuilds through here.
* **Spans** — nested wall-clock timers (:func:`trace`), recorded only
  while a :func:`profile` collector is active.  When no collector is
  installed, ``trace`` is a no-op context manager, so instrumented
  library code pays essentially nothing in normal operation.

Both instruments are **thread-safe**: counter bumps are serialized behind
a lock (concurrent increments never lose updates), and an active
:class:`Profile` keeps one open-span stack per thread, so spans recorded
by the serving layer's worker and handler threads land in per-thread
subtrees instead of corrupting each other's nesting.

``repro review --profile`` / ``repro bench --profile`` wrap the command
in :func:`profile` and print the resulting span tree plus the counter
deltas.  :func:`metrics_snapshot` returns the whole metric state as a
JSON-serializable dict; the benchmark suite embeds it in
``BENCH_perf.json``.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from collections.abc import Iterator

__all__ = [
    "Span",
    "Profile",
    "trace",
    "profile",
    "profiling_active",
    "counter_inc",
    "counters",
    "reset_counters",
    "metrics_snapshot",
    "render_span_tree",
]

# ---------------------------------------------------------------------------
# Counters (always on)
# ---------------------------------------------------------------------------

_COUNTERS: dict[str, float] = {}

# Counter bumps are read-modify-write pairs, so concurrent /rate batches
# incrementing the same counter would otherwise lose updates.  The lock is
# uncontended in the common case (one dict op inside), which keeps the
# always-on counter cost within the <5% profiling-overhead budget.
_COUNTERS_LOCK = threading.Lock()


def counter_inc(name: str, amount: float = 1) -> None:
    """Increment the monotonic counter ``name`` by ``amount``.

    Thread-safe: concurrent increments of the same counter never lose
    updates.
    """
    with _COUNTERS_LOCK:
        _COUNTERS[name] = _COUNTERS.get(name, 0) + amount


def counters() -> dict[str, float]:
    """A consistent copy of all counters (thread-safe)."""
    with _COUNTERS_LOCK:
        return dict(_COUNTERS)


def reset_counters(prefix: str = "") -> None:
    """Drop counters, optionally only those under a dotted ``prefix``."""
    with _COUNTERS_LOCK:
        if not prefix:
            _COUNTERS.clear()
            return
        for key in [k for k in _COUNTERS if k.startswith(prefix)]:
            del _COUNTERS[key]


# ---------------------------------------------------------------------------
# Spans (recorded only under an active profile collector)
# ---------------------------------------------------------------------------


@dataclass
class Span:
    """One timed region, with its nested children."""

    name: str
    elapsed_s: float = 0.0
    tags: dict[str, object] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "elapsed_s": self.elapsed_s,
            "tags": dict(self.tags),
            "children": [c.as_dict() for c in self.children],
        }


class Profile:
    """Collector of one profiling session: span roots + counter deltas.

    Span nesting is tracked **per thread**: each thread that traces while
    this collector is active gets its own open-span stack, and a thread's
    first span becomes a new root (appended under a lock).  Spans from
    different threads therefore never interleave into a bogus parent/child
    relationship, and a multi-threaded server can profile a request fan-out
    without corrupting the tree.
    """

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self.counters_before: dict[str, float] = {}
        self.counters_delta: dict[str, float] = {}
        self._roots_lock = threading.Lock()
        self._stacks = threading.local()

    @property
    def stack(self) -> list[Span]:
        """The calling thread's open-span stack (empty between requests)."""
        return self._thread_stack()

    def _thread_stack(self) -> list[Span]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = self._stacks.stack = []
        return stack

    def counter_delta(self, name: str) -> float:
        """Change of one counter over the profiled region (0 if untouched)."""
        return self.counters_delta.get(name, 0)

    def render(self) -> str:
        """The span tree plus counter deltas as printable text."""
        lines = ["profile (wall time per span)"]
        for root in self.roots:
            lines.extend(render_span_tree(root, indent=1))
        cache_lines = [
            f"  {name:<32s} {value:>10,.0f}"
            for name, value in sorted(self.counters_delta.items())
        ]
        # The credit cache is the headline metric; always show it, even
        # when the profiled command never touched it.
        for headline in ("credit_cache.hits", "credit_cache.misses"):
            if headline not in self.counters_delta:
                cache_lines.append(f"  {headline:<32s} {0:>10,}")
        lines.append("counters")
        lines.extend(sorted(cache_lines))
        return "\n".join(lines)


_ACTIVE: Profile | None = None


def profiling_active() -> bool:
    """True while a :func:`profile` collector is installed."""
    return _ACTIVE is not None


class _NoopSpan:
    """Shared do-nothing context manager for the profiling-off path.

    ``trace`` is called on hot paths measured in microseconds; returning
    this singleton instead of constructing a generator-backed context
    manager keeps the inactive cost to one global read.
    """

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


@contextmanager
def _record_span(prof: Profile, name: str,
                 tags: dict[str, object]) -> Iterator[Span]:
    span = Span(name=name, tags=tags)
    stack = prof._thread_stack()
    if stack:
        stack[-1].children.append(span)
    else:
        with prof._roots_lock:
            prof.roots.append(span)
    stack.append(span)
    start = time.perf_counter()
    try:
        yield span
    finally:
        span.elapsed_s = time.perf_counter() - start
        stack.pop()


def trace(name: str, /, **tags: object):
    """Time a region as a nested span (no-op without an active profile).

    The span name is positional-only so tags may freely use any keyword
    (including ``name=``).  Yields the :class:`Span` being recorded, or
    ``None`` when profiling is off, so callers can attach tags
    conditionally::

        with trace("frontier.series", points=grid.size):
            ...
    """
    prof = _ACTIVE
    if prof is None:
        return _NOOP_SPAN
    return _record_span(prof, name, dict(tags))


@contextmanager
def profile() -> Iterator[Profile]:
    """Collect spans and counter deltas for the enclosed region."""
    global _ACTIVE
    prof = Profile()
    prof.counters_before = counters()
    previous = _ACTIVE
    _ACTIVE = prof
    try:
        yield prof
    finally:
        _ACTIVE = previous
        before = prof.counters_before
        prof.counters_delta = {
            name: value - before.get(name, 0)
            for name, value in counters().items()
            if value != before.get(name, 0)
        }


def render_span_tree(span: Span, indent: int = 0) -> list[str]:
    """Format one span and its subtree, one line per span."""
    tag_text = ""
    if span.tags:
        tag_text = "  [" + ", ".join(f"{k}={v}" for k, v in
                                     sorted(span.tags.items())) + "]"
    line = (f"{'  ' * indent}{span.name:<{max(34 - 2 * indent, 8)}s} "
            f"{span.elapsed_s * 1e3:>9.2f} ms{tag_text}")
    lines = [line]
    for child in span.children:
        lines.extend(render_span_tree(child, indent + 1))
    return lines


# ---------------------------------------------------------------------------
# Snapshot
# ---------------------------------------------------------------------------


def metrics_snapshot() -> dict:
    """All metric state as a JSON-serializable dict.

    Includes the raw counters plus the structured cache/index statistics
    of the batch layer (credit-sum cache, catalog year index, frontier
    index).  Imports are deferred so ``repro.obs`` stays import-cycle
    free at the bottom of the dependency graph.
    """
    from repro.controllability.frontier import frontier_index_info
    from repro.ctp.batch import credit_cache_info
    from repro.machines.catalog import catalog_index_info

    return {
        "counters": counters(),
        "credit_cache": credit_cache_info(),
        "catalog_index": catalog_index_info(),
        "frontier_index": frontier_index_info(),
    }
