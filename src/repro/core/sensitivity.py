"""Sensitivity analysis: how robust are the findings to modeling choices?

The paper wants policy formulation that is "transparent, objective,
defensible, and repeatable".  Defensible includes knowing how much the
answer moves when the judgment calls move.  Two analyses:

* :func:`bound_sensitivity` — Monte-Carlo over the controllability factor
  weights (Dirichlet-perturbed around the defaults) and the classification
  cut: the distribution of the mid-1995 lower bound across reasonable
  weightings.  The paper's 4,000-5,000 band should hold for most draws.
* :func:`classification_stability` — per Table 4 system, the fraction of
  weight draws that preserve its verdict; systems near the cut are flagged
  honestly instead of presented as certainties.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import check_year
from repro.obs.errors import ValidationError
from repro.obs.trace import trace
from repro.controllability.frontier import UNCONTROLLABILITY_LAG_YEARS
from repro.controllability.index import (
    CLASS_BY_CODE,
    Classification,
    ControllabilityWeights,
    DEFAULT_WEIGHTS,
    TABLE4_SYSTEMS,
    assess,
    classify_index_matrix,
    index_matrix,
    score_matrix,
)
from repro.machines import catalog as _catalog
from repro.machines.catalog import max_config_mtops

__all__ = [
    "sample_weights",
    "sample_weights_batch",
    "BoundSensitivity",
    "bound_sensitivity",
    "ClassificationStability",
    "classification_stability",
    "catalog_uncertainty_sensitivity",
]


def sample_weights(
    rng: np.random.Generator,
    concentration: float = 60.0,
    cut_jitter: float = 0.05,
) -> ControllabilityWeights:
    """One plausible alternative weighting.

    Factor weights are Dirichlet-distributed around the defaults
    (``concentration`` controls how tightly); the classification cuts get
    uniform jitter of ±``cut_jitter``.
    """
    if concentration <= 0:
        raise ValidationError("concentration must be positive",
                              context={"got": concentration, "valid": "> 0"})
    if not 0.0 <= cut_jitter < 0.1:
        raise ValidationError("cut_jitter must be in [0, 0.1)",
                              context={"got": cut_jitter, "valid": "[0, 0.1)"})
    base = np.array([
        DEFAULT_WEIGHTS.size, DEFAULT_WEIGHTS.units, DEFAULT_WEIGHTS.channel,
        DEFAULT_WEIGHTS.price, DEFAULT_WEIGHTS.scalability,
    ])
    drawn = rng.dirichlet(base * concentration)
    # Exact renormalization guards the sum-to-one invariant against
    # floating-point drift.
    drawn = drawn / drawn.sum()
    low = DEFAULT_WEIGHTS.uncontrollable_below + rng.uniform(-cut_jitter,
                                                             cut_jitter)
    high = DEFAULT_WEIGHTS.controllable_at + rng.uniform(-cut_jitter,
                                                         cut_jitter)
    return ControllabilityWeights(
        size=float(drawn[0]), units=float(drawn[1]), channel=float(drawn[2]),
        price=float(drawn[3]), scalability=float(drawn[4]),
        uncontrollable_below=float(low), controllable_at=float(high),
    )


def sample_weights_batch(
    rng: np.random.Generator,
    n_samples: int,
    concentration: float = 60.0,
    cut_jitter: float = 0.05,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``n_samples`` plausible weightings drawn in one vectorized pass.

    Returns ``(weights, uncontrollable_below, controllable_at)`` where
    ``weights`` is ``(n_samples, 5)`` in the composite's factor order.
    Same marginal distribution as repeated :func:`sample_weights` calls
    (Dirichlet factor weights, uniform cut jitter), drawn as three array
    draws instead of ``3 * n_samples`` scalar ones.
    """
    if concentration <= 0:
        raise ValidationError("concentration must be positive",
                              context={"got": concentration, "valid": "> 0"})
    if not 0.0 <= cut_jitter < 0.1:
        raise ValidationError("cut_jitter must be in [0, 0.1)",
                              context={"got": cut_jitter, "valid": "[0, 0.1)"})
    if n_samples < 1:
        raise ValidationError("n_samples must be >= 1",
                              context={"got": n_samples, "valid": ">= 1"})
    base = np.array([
        DEFAULT_WEIGHTS.size, DEFAULT_WEIGHTS.units, DEFAULT_WEIGHTS.channel,
        DEFAULT_WEIGHTS.price, DEFAULT_WEIGHTS.scalability,
    ])
    drawn = rng.dirichlet(base * concentration, size=n_samples)
    drawn = drawn / drawn.sum(axis=1, keepdims=True)
    low = (DEFAULT_WEIGHTS.uncontrollable_below
           + rng.uniform(-cut_jitter, cut_jitter, size=n_samples))
    high = (DEFAULT_WEIGHTS.controllable_at
            + rng.uniform(-cut_jitter, cut_jitter, size=n_samples))
    return drawn, low, high


def _eligible_population(
    year: float,
    lag_years: float = UNCONTROLLABILITY_LAG_YEARS,
) -> tuple:
    """Catalog machines past the uncontrollability lag at ``year``, with
    their factor-score matrix and max-configuration ratings."""
    machines = tuple(
        m for m in _catalog.COMMERCIAL_SYSTEMS if m.year + lag_years <= year
    )
    scores = score_matrix(machines)
    ratings = np.array([max_config_mtops(m) for m in machines])
    return machines, scores, ratings


@dataclass(frozen=True)
class BoundSensitivity:
    """Distribution of the lower bound across weight draws."""

    year: float
    samples_mtops: np.ndarray

    @property
    def median(self) -> float:
        return float(np.median(self.samples_mtops))

    def quantile(self, q: float) -> float:
        return float(np.quantile(self.samples_mtops, q))

    def fraction_in_band(self, low: float, high: float) -> float:
        """Fraction of draws inside a band (e.g. the paper's 4-5k)."""
        if high <= low:
            raise ValidationError("high must exceed low",
                                  context={"low": low, "high": high})
        inside = (self.samples_mtops >= low) & (self.samples_mtops <= high)
        return float(np.mean(inside))


def bound_sensitivity(
    year: float = 1995.5,
    n_samples: int = 200,
    seed: int = 0,
    concentration: float = 60.0,
) -> BoundSensitivity:
    """Monte-Carlo the lower bound over controllability weightings.

    One matrix pass: factor scores are weight-independent, so the catalog
    is scored once and every draw reduces to a ``(draws, machines)``
    index product plus a masked row-max — no per-draw frontier rebuild.
    """
    check_year(year, "year")
    if n_samples < 1:
        raise ValidationError("n_samples must be >= 1",
                              context={"got": n_samples, "valid": ">= 1"})
    with trace("sensitivity.bound", samples=n_samples, year=year):
        rng = np.random.default_rng(np.random.SeedSequence([seed, n_samples]))
        with trace("sensitivity.sample_weights"):
            weights, low, _high = sample_weights_batch(rng, n_samples,
                                                       concentration)
        with trace("sensitivity.score_population"):
            _machines, scores, ratings = _eligible_population(year)
        if ratings.size == 0:
            return BoundSensitivity(year=year,
                                    samples_mtops=np.zeros(n_samples))
        with trace("sensitivity.index_matrix"):
            indices = index_matrix(weights, scores)
            uncontrollable = indices < low[:, None]
            samples = np.where(uncontrollable, ratings[None, :],
                               0.0).max(axis=1)
        return BoundSensitivity(year=year, samples_mtops=samples)


@dataclass(frozen=True)
class ClassificationStability:
    """Verdict stability of one machine across weight draws."""

    machine_key: str
    default_classification: Classification
    agreement: float

    @property
    def is_borderline(self) -> bool:
        """True when a quarter or more of reasonable weightings disagree
        with the default verdict."""
        return self.agreement < 0.75


def catalog_uncertainty_sensitivity(
    year: float = 1995.5,
    n_samples: int = 200,
    seed: int = 0,
    sigma_decades: float = 0.1,
) -> BoundSensitivity:
    """Lower-bound distribution under catalog-rating uncertainty.

    The ``approx=True`` catalog entries are reconstructions; this analysis
    perturbs *every* machine's rating lognormally (``sigma_decades`` of
    log10 scatter, ~26% at the default) and recomputes the frontier.  The
    classification inputs (price, units, channel) stay fixed — only the
    performance axis is in question.
    """
    check_year(year, "year")
    if n_samples < 1:
        raise ValidationError("n_samples must be >= 1",
                              context={"got": n_samples, "valid": ">= 1"})
    if not 0.0 <= sigma_decades <= 0.5:
        raise ValidationError("sigma_decades must lie in [0, 0.5]",
                              context={"got": sigma_decades,
                                       "valid": "[0, 0.5]"})
    from repro.controllability.frontier import uncontrollable_population

    rng = np.random.default_rng(np.random.SeedSequence([seed, n_samples, 3]))
    population = uncontrollable_population(year)
    base_ratings = np.array(
        [m.max_configuration().ctp_mtops for m in population]
    )
    if base_ratings.size == 0:
        return BoundSensitivity(year=year,
                                samples_mtops=np.zeros(n_samples))
    jitter = 10.0 ** rng.normal(0.0, sigma_decades,
                                size=(n_samples, base_ratings.size))
    samples = (base_ratings * jitter).max(axis=1)
    return BoundSensitivity(year=year, samples_mtops=samples)


def classification_stability(
    n_samples: int = 200,
    seed: int = 0,
    concentration: float = 60.0,
) -> list[ClassificationStability]:
    """Verdict stability for every Table 4 system, most stable first.

    All draws x all systems classified in one ``(draws, machines)``
    matrix; agreement is a column mean against each system's default
    verdict code.
    """
    from repro.machines.catalog import find_machine

    if n_samples < 1:
        raise ValidationError("n_samples must be >= 1",
                              context={"got": n_samples, "valid": ">= 1"})
    with trace("sensitivity.classification_stability", samples=n_samples):
        rng = np.random.default_rng(
            np.random.SeedSequence([seed, n_samples, 7]))
        weights, low, high = sample_weights_batch(rng, n_samples,
                                                  concentration)
        machines = tuple(find_machine(key) for key in TABLE4_SYSTEMS)
        defaults = [assess(m).classification for m in machines]
        indices = index_matrix(weights, score_matrix(machines))
        codes = classify_index_matrix(indices, low[:, None], high[:, None])
        default_codes = np.array(
            [CLASS_BY_CODE.index(cls) for cls in defaults], dtype=codes.dtype
        )
        agreement = (codes == default_codes[None, :]).mean(axis=0)
        results = [
            ClassificationStability(
                machine_key=key,
                default_classification=default,
                agreement=float(agree),
            )
            for key, default, agree in zip(TABLE4_SYSTEMS, defaults,
                                           agreement)
        ]
        return sorted(results, key=lambda r: -r.agreement)
