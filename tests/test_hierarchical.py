"""Tests for the hierarchical (Exemplar-style) machine model."""

import pytest

from repro.simulate.architectures import (
    cluster_machine,
    hierarchical_machine,
    mpp_machine,
    smp_machine,
)
from repro.simulate.execution import simulate_execution
from repro.simulate.interconnect import ETHERNET_10
from repro.simulate.workloads import find_workload


class TestConstruction:
    def test_factory(self):
        m = hierarchical_machine(8, 8)
        assert m.n_nodes == 64
        assert m.hypernode_size == 8

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            hierarchical_machine(0, 8)
        with pytest.raises(ValueError):
            hierarchical_machine(8, 0)

    def test_with_nodes_respects_hypernode(self):
        m = hierarchical_machine(8, 8)
        assert m.with_nodes(32).n_nodes == 32
        with pytest.raises(ValueError):
            m.with_nodes(20)  # not a multiple of the 8-way hypernode

    def test_flat_machines_have_unit_hypernode(self):
        assert smp_machine(16).hypernode_size == 1
        assert mpp_machine(64).hypernode_size == 1


class TestMemoryPooling:
    def test_hypernode_pool_holds_memory_floor(self):
        """The Chapter 3 promise of hierarchical systems: shared-memory
        subsystems big enough for closely-coupled working sets, grouped in
        a distributed fashion."""
        w = find_workload("turbulent-flow CSM")  # needs 1 GB coupled
        hier = hierarchical_machine(8, 8, node_memory_mb=256.0)
        flat = mpp_machine(64, node_memory_mb=256.0)
        assert simulate_execution(w, hier).feasible
        assert not simulate_execution(w, flat).feasible

    def test_small_hypernode_still_fails(self):
        w = find_workload("turbulent-flow CSM")
        hier = hierarchical_machine(16, 4, node_memory_mb=64.0)
        result = simulate_execution(w, hier)
        assert not result.feasible
        assert "hypernode" in result.infeasible_reason


class TestCommunication:
    def test_beats_equal_cluster_on_fine_grain(self):
        """Intra-hypernode traffic over the bus buys the hierarchical
        machine a clear edge over a LAN cluster of the same nodes."""
        w = find_workload("shallow-water model")
        hier = hierarchical_machine(8, 8, node_memory_mb=64.0)
        lan = cluster_machine(64, peak_node_mops=300.0,
                              node_memory_mb=64.0, network=ETHERNET_10)
        assert simulate_execution(w, hier).efficiency \
            > 5 * simulate_execution(w, lan).efficiency

    def test_single_hypernode_is_pure_bus(self):
        # One hypernode: no fabric traffic at all.
        w = find_workload("shallow-water model")
        hier = hierarchical_machine(1, 16, node_memory_mb=64.0)
        flat_smp = smp_machine(16, peak_node_mops=300.0 * 0.18 / 0.20,
                               node_memory_mb=64.0)
        r_hier = simulate_execution(w, hier)
        r_smp = simulate_execution(w, flat_smp)
        assert r_hier.feasible
        # Same order of communication cost as the flat SMP.
        assert r_hier.comm_time_s == pytest.approx(r_smp.comm_time_s,
                                                   rel=0.5)

    def test_comm_same_order_as_flat_mpp(self):
        # The hierarchical machine keeps intra-hypernode traffic on the
        # bus but funnels each hypernode's boundary through one fabric
        # port, so its communication cost lands in the flat MPP's order
        # of magnitude (the MPP gives every process its own port) —
        # nowhere near the LAN cluster's collapse.
        w = find_workload("weather prediction")
        hier = hierarchical_machine(8, 8, node_memory_mb=256.0)
        flat = mpp_machine(64, peak_node_mops=300.0, node_memory_mb=256.0)
        r_hier = simulate_execution(w, hier)
        r_flat = simulate_execution(w, flat)
        assert r_hier.feasible and r_flat.feasible
        assert r_hier.comm_time_s <= r_flat.comm_time_s * 10.0
        lan = cluster_machine(64, peak_node_mops=300.0,
                              node_memory_mb=256.0, network=ETHERNET_10)
        r_lan = simulate_execution(w, lan)
        assert r_hier.comm_time_s < 0.2 * r_lan.comm_time_s
