"""The benchmark workloads: five hot paths, batch vs seed-scalar.

Each workload times the batch-layer implementation against the
seed-faithful scalar reference on the same inputs, checks they agree, and
reports the speedup.  ``run_benchmarks`` executes the suite and writes
``BENCH_perf.json`` (repo root by default).
"""

from __future__ import annotations

import json
import platform
from pathlib import Path

import numpy as np

from repro.crypto.keysearch import _candidate_bits
from repro.ctp import ComputingElement, Coupling
from repro.ctp.batch import clear_credit_cache, ctp_homogeneous_batch
from repro.obs.errors import ValidationError
from repro.obs.trace import metrics_snapshot, trace
from repro.perf.harness import Timing, time_workload
from repro.perf import reference as ref

__all__ = ["BENCH_PATH", "WORKLOAD_NAMES", "run_benchmarks"]

#: Default output location (the repository root when run from it).
BENCH_PATH = Path("BENCH_perf.json")

WORKLOAD_NAMES = (
    "batch_ctp_rating",
    "frontier_year_grid",
    "bound_sensitivity_mc",
    "premise3_gap_scan",
    "keysearch_bit_expansion",
)


def _rel_err(a: np.ndarray, b: np.ndarray) -> float:
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    denom = np.maximum(np.abs(a), 1e-30)
    return float(np.max(np.abs(a - b) / denom)) if a.size else 0.0


def _synthetic_configurations(n: int) -> list[list[ComputingElement]]:
    """Deterministic mixed-size configurations exercising the rating path."""
    configs = []
    for i in range(n):
        clock = 40.0 + 7.0 * (i % 23)
        size = 1 + (i % 16)
        element = ComputingElement(
            name=f"bench-{i}", clock_mhz=clock,
            word_bits=64.0 if i % 3 else 32.0,
            fp_ops_per_cycle=1.0 + (i % 4),
            int_ops_per_cycle=1.0 + (i % 2),
            concurrent_int_fp=bool(i % 5 == 0),
        )
        configs.append([element] * size)
    return configs


def _bench_batch_ctp(quick: bool) -> dict:
    n = 200 if quick else 2_000
    configs = _synthetic_configurations(n)
    elements = [cfg[0] for cfg in configs]
    ns = np.array([len(cfg) for cfg in configs])
    coupling = Coupling.SHARED
    clear_credit_cache()
    batch_out = ctp_homogeneous_batch(elements, ns, coupling)
    scalar_out = ref.ctp_loop_scalar(configs, coupling)
    scalar = time_workload(lambda: ref.ctp_loop_scalar(configs, coupling),
                           "scalar", repeats=3 if quick else 5)
    fast = time_workload(
        lambda: ctp_homogeneous_batch(elements, ns, coupling), "batch",
        repeats=5 if quick else 9)
    return _row("batch_ctp_rating",
                f"rate {n} homogeneous configurations (scalar ctp loop vs "
                f"ctp_homogeneous_batch with warm credit prefix sums)",
                scalar, fast, _rel_err(scalar_out, batch_out))


def _bench_frontier_grid(quick: bool) -> dict:
    from repro.controllability.frontier import frontier_series

    step = 0.05 if quick else 0.01
    years = np.arange(1988.0, 2000.0, step)
    batch_out = frontier_series(years)
    scalar_out = ref.frontier_series_scalar(years)
    scalar = time_workload(lambda: ref.frontier_series_scalar(years),
                           "scalar", repeats=2 if quick else 3)
    fast = time_workload(lambda: frontier_series(years), "batch",
                         repeats=5 if quick else 9)
    return _row("frontier_year_grid",
                f"frontier lower bound on a {years.size}-point year grid "
                f"(per-year catalog rescan vs cached running-max bisect)",
                scalar, fast, _rel_err(scalar_out, batch_out))


def _bench_bound_sensitivity(quick: bool) -> dict:
    from repro.core.sensitivity import bound_sensitivity

    n = 100 if quick else 1_000
    batch_out = np.sort(bound_sensitivity(1995.5, n).samples_mtops)
    scalar_out = np.sort(ref.bound_sensitivity_scalar(1995.5, n))
    scalar = time_workload(lambda: ref.bound_sensitivity_scalar(1995.5, n),
                           "scalar", repeats=2 if quick else 3)
    fast = time_workload(lambda: bound_sensitivity(1995.5, n), "batch",
                         repeats=5 if quick else 9)
    # Draw layouts differ (array vs interleaved scalar draws), so compare
    # the sampled distributions by their extremes rather than elementwise.
    spread = _rel_err(
        np.array([scalar_out.min(), scalar_out.max()]),
        np.array([batch_out.min(), batch_out.max()]),
    )
    return _row("bound_sensitivity_mc",
                f"{n}-draw Monte-Carlo of the lower bound (per-draw frontier "
                f"rebuild vs one matrix pass)",
                scalar, fast, spread)


def _bench_premise_scan(quick: bool) -> dict:
    from repro.core.scenarios import premise3_gap_series

    step = 0.25 if quick else 0.05
    years = np.arange(1993.0, 2000.0, step)
    batch_out = premise3_gap_series(years)
    scalar_out = ref.premise3_gap_series_scalar(years)
    scalar = time_workload(lambda: ref.premise3_gap_series_scalar(years),
                           "scalar", repeats=2 if quick else 3)
    fast = time_workload(lambda: premise3_gap_series(years), "batch",
                         repeats=5 if quick else 9)
    return _row("premise3_gap_scan",
                f"premise-3 gap factor on a {years.size}-point grid "
                f"(per-year bound derivation vs series arithmetic)",
                scalar, fast, _rel_err(scalar_out, batch_out))


def _bench_keysearch(quick: bool) -> dict:
    search_bits = 14 if quick else 18
    offsets = np.arange(1 << search_bits, dtype=np.int64)
    batch_out = _candidate_bits(0, offsets, search_bits)
    scalar_out = ref.candidate_bits_scalar(0, offsets, search_bits)
    scalar = time_workload(
        lambda: ref.candidate_bits_scalar(0, offsets, search_bits),
        "scalar", repeats=5 if quick else 9)
    fast = time_workload(lambda: _candidate_bits(0, offsets, search_bits),
                         "batch", repeats=5 if quick else 9)
    mismatch = float(np.mean(batch_out != scalar_out))
    return _row("keysearch_bit_expansion",
                f"expand 2^{search_bits} candidate keys to bit arrays "
                f"(per-bit loop vs one broadcast unpack)",
                scalar, fast, mismatch)


def _row(name: str, description: str, scalar: Timing, batch: Timing,
         max_rel_err: float) -> dict:
    return {
        "name": name,
        "description": description,
        "scalar": scalar.as_dict(),
        "batch": batch.as_dict(),
        "speedup": scalar.best_seconds / batch.best_seconds,
        "max_rel_err": max_rel_err,
    }


_BENCHES = {
    "batch_ctp_rating": _bench_batch_ctp,
    "frontier_year_grid": _bench_frontier_grid,
    "bound_sensitivity_mc": _bench_bound_sensitivity,
    "premise3_gap_scan": _bench_premise_scan,
    "keysearch_bit_expansion": _bench_keysearch,
}


def run_benchmarks(
    quick: bool = False,
    output: Path | str | None = BENCH_PATH,
    names: tuple[str, ...] = WORKLOAD_NAMES,
) -> dict:
    """Run the suite; write JSON to ``output`` unless it is ``None``.

    The payload embeds a :func:`repro.obs.metrics_snapshot` taken after
    the run, so ``BENCH_perf.json`` records the credit-cache and
    catalog/frontier-index statistics alongside the timings.
    """
    unknown = set(names) - set(_BENCHES)
    if unknown:
        raise ValidationError(
            f"unknown workloads: {sorted(unknown)}",
            context={"got": sorted(unknown), "valid": sorted(_BENCHES)},
        )
    results = []
    for name in names:
        with trace(f"bench.{name}", quick=quick):
            results.append(_BENCHES[name](quick))
    payload = {
        "suite": "repro-perf",
        "quick": quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "workloads": results,
        "metrics": metrics_snapshot(),
    }
    if output is not None:
        Path(output).write_text(json.dumps(payload, indent=2) + "\n")
    return payload
