"""Foreign assimilation lag, derived from the catalogs.

"Some lag between advances in Western and non-Western systems, on the order
of months or years, is likely to persist" (Chapter 3).  Rather than assume
a number, this module *measures* it in the reconstruction: for every
foreign system built around a Western microprocessor, the lag is the gap
between the chip's Western introduction and the foreign system's
introduction (e.g. the i860 shipped in 1989; Kvant fielded a 32-processor
i860 array in 1994 — a five-year lag).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machines.foreign import FOREIGN_SYSTEMS, ForeignCountry
from repro.obs.errors import CatalogLookupError
from repro.machines.microprocessors import MICROPROCESSORS

__all__ = ["AssimilationLag", "observed_lags", "mean_lag_years"]


@dataclass(frozen=True)
class AssimilationLag:
    """One observed (foreign system, Western chip) adoption pair."""

    country: str
    system: str
    micro: str
    micro_year: float
    system_year: float

    @property
    def lag_years(self) -> float:
        return self.system_year - self.micro_year


def observed_lags() -> list[AssimilationLag]:
    """All catalog-derivable adoption lags, sorted by system year.

    Matching is by computing element identity: a foreign system whose
    element is a cataloged Western microprocessor's element yields one
    observation.
    """
    by_element = {}
    for micro in MICROPROCESSORS:
        by_element[micro.element] = micro
    lags = []
    for system in FOREIGN_SYSTEMS:
        if system.element is None:
            continue
        micro = by_element.get(system.element)
        if micro is None:
            continue
        lags.append(
            AssimilationLag(
                country=system.country,
                system=system.key,
                micro=micro.name,
                micro_year=micro.year,
                system_year=system.year,
            )
        )
    return sorted(lags, key=lambda lag: (lag.system_year, lag.system))


def mean_lag_years(country: ForeignCountry | None = None) -> float:
    """Mean adoption lag, optionally for one country.

    Raises ``ValueError`` when the catalog offers no observations (rather
    than inventing a number).
    """
    lags = observed_lags()
    if country is not None:
        lags = [lag for lag in lags if lag.country == country.value]
    if not lags:
        name = country.value if country else "any country"
        raise CatalogLookupError(
            f"no observed adoption lags for {name}",
            context={"got": name},
        )
    return float(np.mean([lag.lag_years for lag in lags]))
