"""Plain-text table rendering for benchmark and example output."""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_table"]


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value in (float("inf"), float("-inf")):
            return "inf" if value > 0 else "-inf"
        if value == int(value) and abs(value) < 1e15:
            return f"{int(value):,}"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:,.1f}"
        return f"{value:,.3g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned plain-text table.

    Numbers are right-aligned with thousands separators; everything else
    is left-aligned.  Rows shorter than the header are padded.
    """
    if not headers:
        raise ValueError("at least one header column is required")
    cells = [[_fmt(h) for h in headers]]
    numeric = [True] * len(headers)
    for row in rows:
        padded = list(row) + [""] * (len(headers) - len(row))
        if len(padded) > len(headers):
            raise ValueError(f"row has {len(padded)} cells, expected "
                             f"<= {len(headers)}")
        for i, cell in enumerate(padded):
            if not isinstance(cell, (int, float)) or isinstance(cell, bool):
                numeric[i] = False
        cells.append([_fmt(c) for c in padded])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "  "
    for j, row_cells in enumerate(cells):
        line = sep.join(
            cell.rjust(widths[i]) if numeric[i] and j > 0 else cell.ljust(widths[i])
            for i, cell in enumerate(row_cells)
        )
        lines.append(line.rstrip())
        if j == 0:
            lines.append(sep.join("-" * w for w in widths))
    return "\n".join(lines)
