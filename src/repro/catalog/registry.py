"""Catalog epoch counter and the atomic cache-invalidation registry.

This module is the coordination point for event-sourced catalog mutation
(:mod:`repro.catalog.events`).  It is deliberately **stdlib-only** — every
layer of the system (machines, diffusion, ctp, serve, store) registers its
cache-clear hooks here at import time, so the registry itself must not
import any of them.

Three pieces live here:

* the **catalog epoch** — a global monotonic counter bumped once per
  applied mutation event.  Every derived artifact (columns stores,
  ``PolicyGrid``, snapshot manifests, micro-batches, cached serve
  responses) is tagged with the epoch it was built under, which is what
  makes staleness a checkable property instead of a latent bug;
* the **invalidation registry** — named hooks with event-kind tags.
  ``invalidate_all(epoch)`` runs *every* hook under one lock (the atomic
  replacement for the previously independent ``clear_assessment_caches``
  / ``clear_acquisition_caches`` / credit-cache ``clear`` calls a mutator
  could invoke partially); ``invalidate_for(kind, epoch)`` runs only the
  hooks whose registered kinds include the event kind — the precise path
  ``apply_event`` uses so content-addressed caches survive mutations that
  cannot stale them;
* the **epoch lock** — a writer-preferring readers-writer lock.
  ``MicroBatcher`` dispatches hold :func:`read_guard` for the duration of
  a batch; ``apply_event`` holds :func:`write_guard` while patching.  A
  batch admitted at epoch N therefore always completes against the
  exact epoch-N state, and an event never observes a half-dispatched
  batch.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Iterator

__all__ = [
    "EVENT_KINDS",
    "catalog_epoch_info",
    "current_epoch",
    "invalidate_all",
    "invalidate_for",
    "read_guard",
    "register_invalidation_hook",
    "unregister_invalidation_hook",
    "write_guard",
]

#: The mutation event kinds understood by :mod:`repro.catalog.events`.
EVENT_KINDS: tuple[str, ...] = ("append_machine", "amend_machine", "amend_threshold")

_EPOCH = 0
_EPOCH_LOCK = threading.Lock()

#: name -> (kinds the hook is stale under, hook callable taking the epoch).
_HOOKS: dict[str, tuple[frozenset[str], Callable[[int], None]]] = {}
_HOOKS_LOCK = threading.RLock()

_INVALIDATIONS = 0

#: Per-hook invocation counts (precise + nuclear paths combined) — lets
#: tests and benchmarks assert kind-precision: that a hook did *not*
#: run for an event kind outside its registration.
_HOOK_RUNS: dict[str, int] = {}


def current_epoch() -> int:
    """The global catalog epoch (0 until the first applied event)."""
    with _EPOCH_LOCK:
        return _EPOCH


def _bump_epoch() -> int:
    """Advance the epoch by one; called by ``apply_event`` under the
    write guard."""
    global _EPOCH
    with _EPOCH_LOCK:
        _EPOCH += 1
        return _EPOCH


def _reset_epoch() -> None:
    """Restore epoch 0 (test/reset support; see ``reset_catalog``)."""
    global _EPOCH
    with _EPOCH_LOCK:
        _EPOCH = 0


def register_invalidation_hook(
    name: str,
    hook: Callable[[int], None],
    *,
    kinds: tuple[str, ...] = (),
) -> None:
    """Register ``hook`` under ``name``.

    ``kinds`` lists the event kinds that make the guarded cache stale;
    hooks registered with ``kinds=()`` are *content-addressed* (or
    otherwise self-consistent) — they run only on the nuclear
    :func:`invalidate_all` path, never on the precise per-event path.
    Re-registering a name replaces the previous hook (modules register at
    import time, and ``importlib.reload`` must not accumulate stale
    callables).
    """
    for kind in kinds:
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}; valid: {EVENT_KINDS}")
    with _HOOKS_LOCK:
        _HOOKS[name] = (frozenset(kinds), hook)


def unregister_invalidation_hook(name: str) -> bool:
    """Drop a registered hook; returns whether it existed."""
    with _HOOKS_LOCK:
        return _HOOKS.pop(name, None) is not None


def invalidate_all(epoch: int | None = None) -> tuple[str, ...]:
    """Run **every** registered hook atomically; returns the names run.

    This is the single entry point that replaces ad-hoc combinations of
    per-layer ``clear_*`` calls: the registry lock is held for the whole
    sweep, so no concurrent registration (or second invalidation) can
    observe a half-cleared world.
    """
    global _INVALIDATIONS
    if epoch is None:
        epoch = current_epoch()
    with _HOOKS_LOCK:
        _INVALIDATIONS += 1
        names = tuple(sorted(_HOOKS))
        for name in names:
            _HOOK_RUNS[name] = _HOOK_RUNS.get(name, 0) + 1
            _HOOKS[name][1](epoch)
    return names


def invalidate_for(kind: str, epoch: int) -> tuple[str, ...]:
    """Run only the hooks whose registered kinds include ``kind``."""
    global _INVALIDATIONS
    if kind not in EVENT_KINDS:
        raise ValueError(f"unknown event kind {kind!r}; valid: {EVENT_KINDS}")
    with _HOOKS_LOCK:
        _INVALIDATIONS += 1
        names = tuple(
            name for name in sorted(_HOOKS) if kind in _HOOKS[name][0]
        )
        for name in names:
            _HOOK_RUNS[name] = _HOOK_RUNS.get(name, 0) + 1
            _HOOKS[name][1](epoch)
    return names


def catalog_epoch_info() -> dict:
    """Introspection: epoch, registered hooks (with kinds), sweep count,
    and per-hook invocation counts."""
    with _HOOKS_LOCK:
        hooks = {name: tuple(sorted(kinds)) for name, (kinds, _) in sorted(_HOOKS.items())}
        invalidations = _INVALIDATIONS
        hook_runs = dict(sorted(_HOOK_RUNS.items()))
    return {
        "epoch": current_epoch(),
        "hooks": hooks,
        "invalidations": invalidations,
        "hook_runs": hook_runs,
    }


class _EpochLock:
    """Writer-preferring readers-writer lock.

    Readers (batch dispatches) run concurrently; a writer (event apply)
    waits for in-flight readers to drain and blocks new readers from
    entering, so sustained serve traffic cannot starve mutations.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    @contextmanager
    def read(self) -> Iterator[None]:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        with self._cond:
            self._writers_waiting += 1
            while self._writer or self._readers:
                self._cond.wait()
            self._writers_waiting -= 1
            self._writer = True
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()


_EPOCH_RW_LOCK = _EpochLock()


def read_guard():
    """Context manager: hold while dispatching a batch against catalog
    state; events block until released, so the batch completes
    bit-identically against the epoch it was admitted under."""
    return _EPOCH_RW_LOCK.read()


def write_guard():
    """Context manager: hold while applying a mutation event; excludes
    batch dispatches and other writers."""
    return _EPOCH_RW_LOCK.write()
