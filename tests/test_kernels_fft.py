"""Tests for the from-scratch radix-2 FFT kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.fft import (
    alltoall_bytes_per_process,
    fft2d,
    fft2d_flops,
    fft_rows,
    ifft2d,
)
from repro.simulate.cluster_study import compare_architectures, max_competitive_cluster_size


class TestRowFft:
    def test_matches_numpy(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(5, 128)) + 1j * rng.normal(size=(5, 128))
        assert np.allclose(fft_rows(x), np.fft.fft(x, axis=-1))

    def test_real_input(self):
        x = np.arange(16.0)
        assert np.allclose(fft_rows(x), np.fft.fft(x))

    def test_single_point(self):
        assert np.allclose(fft_rows(np.array([3.0])), [3.0])

    def test_impulse_is_flat(self):
        x = np.zeros(64)
        x[0] = 1.0
        assert np.allclose(fft_rows(x), np.ones(64))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            fft_rows(np.zeros(12))

    @given(st.integers(min_value=0, max_value=5))
    @settings(max_examples=6, deadline=None)
    def test_sizes_property(self, k):
        n = 2**k
        rng = np.random.default_rng(k)
        x = rng.normal(size=n)
        assert np.allclose(fft_rows(x), np.fft.fft(x))


class TestFft2d:
    def test_matches_numpy(self):
        rng = np.random.default_rng(2)
        f = rng.normal(size=(64, 64))
        assert np.allclose(fft2d(f), np.fft.fft2(f))

    def test_roundtrip(self):
        rng = np.random.default_rng(3)
        f = rng.normal(size=(32, 32)) + 1j * rng.normal(size=(32, 32))
        assert np.allclose(ifft2d(fft2d(f)), f)

    def test_parseval(self):
        rng = np.random.default_rng(4)
        f = rng.normal(size=(32, 32))
        spectrum = fft2d(f)
        assert (np.abs(f) ** 2).sum() == pytest.approx(
            (np.abs(spectrum) ** 2).sum() / f.size
        )

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            fft2d(np.zeros(8))


class TestCostAccounting:
    def test_flops_superlinear(self):
        assert fft2d_flops(256) > 4 * fft2d_flops(128)

    def test_alltoall_volume(self):
        # Each process ships (p-1)/p of its share.
        owned_bytes = 128 * 128 / 16 * 16
        assert alltoall_bytes_per_process(128, 16) == pytest.approx(
            owned_bytes * 15 / 16
        )

    def test_single_process_no_comm(self):
        assert alltoall_bytes_per_process(128, 1) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            fft2d_flops(12)
        with pytest.raises(ValueError):
            alltoall_bytes_per_process(0, 4)


class TestFftProperties:
    @given(st.floats(min_value=-5.0, max_value=5.0),
           st.floats(min_value=-5.0, max_value=5.0),
           st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_linearity(self, a, b, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=32)
        y = rng.normal(size=32)
        lhs = fft_rows(a * x + b * y)
        rhs = a * fft_rows(x) + b * fft_rows(y)
        assert np.allclose(lhs, rhs, atol=1e-9)

    @given(st.integers(min_value=0, max_value=31),
           st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_shift_theorem(self, shift, seed):
        """Circular shift in time = linear phase in frequency."""
        rng = np.random.default_rng(seed)
        x = rng.normal(size=32)
        shifted = np.roll(x, shift)
        k = np.arange(32)
        phase = np.exp(-2j * np.pi * k * shift / 32)
        assert np.allclose(fft_rows(shifted), fft_rows(x) * phase,
                           atol=1e-9)

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=15, deadline=None)
    def test_parseval_property(self, seed):
        rng = np.random.default_rng(seed)
        f = rng.normal(size=(16, 16))
        s = fft2d(f)
        assert (np.abs(f) ** 2).sum() == pytest.approx(
            (np.abs(s) ** 2).sum() / f.size
        )


class TestFftWorkload:
    """The simulator-side consequences of the all-to-all pattern."""

    def test_in_suite(self):
        from repro.simulate.workloads import find_workload

        w = find_workload("2-D FFT signal processing")
        assert w.pattern.name == "ALL_TO_ALL"

    def test_not_competitive_on_ethernet(self):
        assert max_competitive_cluster_size("2-D FFT signal processing") <= 2

    def test_spectrum_ordering_holds(self):
        comp = compare_architectures("2-D FFT signal processing")
        assert comp.spectrum_ordering_holds()
        assert comp.cluster_penalty() > 5.0
