"""Epilogue: the framework against what policy actually did after 1995.

The study fed the 1995 interagency review; this module carries the
*subsequent* history of the U.S. control thresholds (reconstructed from
the public record of EAR revisions, ``approx`` where exact effective dates
blur) and compares it with what the framework recommends year by year.

Two validation questions:

* **Direction and magnitude** — the January 1996 reform set tier-3 limits
  of roughly 2,000 Mtops (civil end users) and 7,000 Mtops (military end
  users).  The framework's mid-1995 recommendations (4,100-5,100 Mtops
  depending on policy) sit inside that pair — the study and the reform
  read the same technology base.
* **Cadence** — the paper recommended reviews "no less frequently than
  every twelve months".  The actual revision record shows multi-year gaps
  followed by catch-up jumps; :func:`staleness_series` measures the lag
  (in years of frontier growth) each actual threshold accumulated before
  its successor landed.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro._util import check_year
from repro.controllability.frontier import lower_bound_uncontrollable
from repro.core.threshold import ThresholdPolicy, select_threshold

__all__ = [
    "EPILOGUE_THRESHOLDS",
    "actual_threshold_at",
    "RecommendationComparison",
    "compare_with_history",
    "staleness_series",
]


@dataclass(frozen=True)
class EpilogueThreshold:
    """One post-study control-threshold regime (tier-3 military ceiling)."""

    start_year: float
    civil_mtops: float
    military_mtops: float
    label: str


#: Post-1995 thresholds, reconstructed from the public record of EAR
#: revisions (approximate effective dates; tier-3 = the Russia/PRC/India
#: group the study analyzed).
EPILOGUE_THRESHOLDS: tuple[EpilogueThreshold, ...] = (
    EpilogueThreshold(1994.1, 1_500.0, 1_500.0,
                      "single 1,500-Mtops definition (study period)"),
    EpilogueThreshold(1996.1, 2_000.0, 7_000.0,
                      "Jan 1996 reform: tiered civil/military limits"),
    EpilogueThreshold(1999.6, 6_500.0, 12_300.0,
                      "1999 revision (tier-3 uplift)"),
    EpilogueThreshold(2000.6, 12_500.0, 28_000.0,
                      "2000 revision"),
    EpilogueThreshold(2001.9, 85_000.0, 85_000.0,
                      "2001-02 collapse of the distinction"),
)


def actual_threshold_at(year: float, military: bool = True) -> float:
    """The tier-3 threshold actually in force at ``year``."""
    check_year(year, "year")
    current = None
    for era in EPILOGUE_THRESHOLDS:
        if era.start_year <= year:
            current = era
    if current is None:
        raise ValueError(
            f"epilogue record starts at {EPILOGUE_THRESHOLDS[0].start_year}"
        )
    return current.military_mtops if military else current.civil_mtops


@dataclass(frozen=True)
class RecommendationComparison:
    """Framework recommendation vs the actual regime at one date."""

    year: float
    recommended_mtops: float
    actual_civil_mtops: float
    actual_military_mtops: float
    frontier_mtops: float

    @property
    def recommendation_within_actual_pair(self) -> bool:
        """True when the recommendation falls between the civil and
        military limits actually adopted."""
        return (self.actual_civil_mtops
                <= self.recommended_mtops
                <= self.actual_military_mtops)

    @property
    def actual_military_stale(self) -> bool:
        """True when even the military limit sits below the frontier."""
        return self.actual_military_mtops < self.frontier_mtops


def compare_with_history(
    years: Sequence[float],
    policy: ThresholdPolicy = ThresholdPolicy.ECONOMIC,
) -> list[RecommendationComparison]:
    """Run the framework at each date and line it up with the record."""
    out = []
    for year in years:
        year = float(year)
        recommendation = select_threshold(year, policy)
        out.append(RecommendationComparison(
            year=year,
            recommended_mtops=recommendation.threshold_mtops,
            actual_civil_mtops=actual_threshold_at(year, military=False),
            actual_military_mtops=actual_threshold_at(year, military=True),
            frontier_mtops=lower_bound_uncontrollable(year).mtops,
        ))
    return out


def staleness_series(
    years: Sequence[float],
) -> list[tuple[float, float]]:
    """Per year: the factor by which the frontier exceeds the actual
    military threshold (1.0 = exactly current; >1 = stale).

    The paper's complaint — "reviews tend to be put off by the government
    until a great deal of contentious pressure builds up" — shows up as a
    sawtooth: the factor climbs between revisions and snaps back at each.
    """
    out = []
    for year in years:
        year = float(year)
        frontier = lower_bound_uncontrollable(year).mtops
        actual = actual_threshold_at(year, military=True)
        out.append((year, frontier / actual if actual > 0 else float("inf")))
    return out
