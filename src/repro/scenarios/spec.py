"""Counterfactual "policy world" specifications and their wire codec.

Everything else in the reproduction evaluates the one historical world:
the fixed ``THRESHOLD_HISTORY`` decontrol timeline, the catalog-derived
uncontrollability frontier, and the paper's single
application-requirement drift.  A :class:`Scenario` names an *alternate*
world through three orthogonal knobs, each expressed as a column-level
overlay on the policy-grid inputs rather than a mutation of any global
state:

* ``decontrol`` — an alternate threshold-era timeline (evaluated with a
  scenario-local bisect; :func:`repro.diffusion.policy._install_threshold_history`
  is never touched);
* ``frontier_shock`` — a piecewise-constant multiplier curve on the
  frontier running-max, modeling foreign-indigenous acceleration (the
  "what if Russian and Indian programs had moved faster" question of
  Chapter 4);
* ``drift_rate`` / ``drift_floor`` — an alternate application-requirement
  drift regime (Chapter 2's downward drift, faster or frozen).

A scenario with every knob ``None`` is the **historical identity**: the
grid engine routes it through the exact arrays the existing
:class:`repro.diffusion.policy_grid.PolicyGrid` computes, bit for bit.

The :func:`flop_cap` preset is the modern analogue made explicit by "The
LLM Mirage" (PAPERS.md): a single high training-FLOP-cap-style threshold
instituted in one step, with accelerated indigenous capability and faster
algorithmic-efficiency drift.

Wire codec: :func:`scenario_to_payload` / :func:`scenario_from_payload`
is a strict JSON contract — unknown fields are rejected, era ordering is
validated, and round-tripping is the identity.
"""

from __future__ import annotations

import bisect
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro._util import check_year
from repro.diffusion import policy as _policy
from repro.diffusion.policy import ThresholdEra
from repro.obs.errors import ThresholdInfeasibleError, ValidationError

__all__ = [
    "Scenario",
    "HISTORICAL",
    "PRESETS",
    "preset_scenario",
    "flop_cap",
    "accelerated_foreign",
    "early_decontrol",
    "sticky_requirements",
    "scenario_to_payload",
    "scenario_from_payload",
]


def _check_eras(eras: tuple[ThresholdEra, ...]) -> None:
    if not eras:
        raise ValidationError(
            "decontrol timeline must name at least one era",
            context={"got": 0, "valid": ">= 1 era"},
        )
    previous = None
    for era in eras:
        check_year(era.start_year, "decontrol era start_year")
        if not (np.isfinite(era.threshold_mtops)
                and era.threshold_mtops > 0):
            raise ValidationError(
                "decontrol era thresholds must be positive",
                context={"got": era.threshold_mtops, "valid": "> 0"},
            )
        if previous is not None and era.start_year <= previous:
            raise ValidationError(
                "decontrol era start years must be strictly increasing",
                context={"got": [e.start_year for e in eras],
                         "valid": "strictly ascending"},
            )
        previous = era.start_year
    return None


def _check_shock(anchors: tuple[tuple[float, float], ...]) -> None:
    if not anchors:
        raise ValidationError(
            "frontier_shock must name at least one (year, multiplier) "
            "anchor",
            context={"got": 0, "valid": ">= 1 anchor"},
        )
    previous = None
    for year, multiplier in anchors:
        check_year(year, "frontier_shock anchor year")
        if not (np.isfinite(multiplier) and multiplier > 0):
            raise ValidationError(
                "frontier_shock multipliers must be positive",
                context={"got": multiplier, "valid": "> 0"},
            )
        if previous is not None and year <= previous:
            raise ValidationError(
                "frontier_shock anchor years must be strictly increasing",
                context={"got": [a[0] for a in anchors],
                         "valid": "strictly ascending"},
            )
        previous = year


def _check_fractional(value: float, field: str, allow_zero: bool) -> None:
    low_ok = value >= 0.0 if allow_zero else value > 0.0
    if not (np.isfinite(value) and low_ok and value < 1.0 or value == 1.0
            and field == "drift_floor"):
        raise ValidationError(
            f"{field} must be a fraction in "
            f"{'[0, 1)' if allow_zero else '(0, 1]'}",
            context={"field": field, "got": value,
                     "valid": "[0, 1)" if allow_zero else "(0, 1]"},
        )


@dataclass(frozen=True)
class Scenario:
    """One counterfactual policy world (frozen, hashable).

    Every field except ``name`` defaults to ``None`` — "as history had
    it".  A scenario whose knobs are all ``None`` is the historical
    identity world, guaranteed bit-exact against the existing
    :class:`~repro.diffusion.policy_grid.PolicyGrid`.

    Attributes
    ----------
    name:
        Display label; carried in cache keys and serve responses.
    decontrol:
        Alternate threshold-era timeline (strictly ascending start
        years); ``None`` uses the live ``THRESHOLD_HISTORY``.
    frontier_shock:
        Piecewise-constant multiplier curve on the uncontrollability
        frontier: ``((year, multiplier), ...)`` anchors, strictly
        ascending; the multiplier in force at ``y`` is that of the last
        anchor at or before ``y`` (1.0 before the first anchor).
    drift_rate / drift_floor:
        Alternate application-requirement drift regime; ``None`` keeps
        the paper's ``DRIFT_RATE_PER_YEAR`` / ``DRIFT_FLOOR_FRACTION``.
    """

    name: str
    decontrol: tuple[ThresholdEra, ...] | None = None
    frontier_shock: tuple[tuple[float, float], ...] | None = None
    drift_rate: float | None = None
    drift_floor: float | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name.strip():
            raise ValidationError(
                "scenario name must be a non-empty string",
                context={"got": self.name, "valid": "non-empty string"},
            )
        if self.decontrol is not None:
            object.__setattr__(self, "decontrol", tuple(self.decontrol))
            _check_eras(self.decontrol)
        if self.frontier_shock is not None:
            object.__setattr__(
                self, "frontier_shock",
                tuple((float(y), float(m)) for y, m in self.frontier_shock))
            _check_shock(self.frontier_shock)
        if self.drift_rate is not None:
            _check_fractional(float(self.drift_rate), "drift_rate",
                              allow_zero=True)
            object.__setattr__(self, "drift_rate", float(self.drift_rate))
        if self.drift_floor is not None:
            _check_fractional(float(self.drift_floor), "drift_floor",
                              allow_zero=False)
            object.__setattr__(self, "drift_floor", float(self.drift_floor))

    @property
    def is_historical(self) -> bool:
        """True when every knob is ``None`` — the identity world."""
        return (self.decontrol is None and self.frontier_shock is None
                and self.drift_rate is None and self.drift_floor is None)

    # -- world queries -------------------------------------------------------

    def threshold_eras(self) -> tuple[ThresholdEra, ...]:
        """The decontrol timeline in force in this world.

        The historical fallback reads ``_policy.THRESHOLD_HISTORY`` at
        call time, so an ``amend_threshold`` event is visible to
        historical-world scenarios exactly as it is to the scalar path.
        """
        if self.decontrol is not None:
            return self.decontrol
        return _policy.THRESHOLD_HISTORY

    def threshold_in_force(self, year: float) -> float:
        """The control threshold this world imposes at ``year``.

        Dates before the first era raise the same
        :class:`ThresholdInfeasibleError` the historical
        :func:`repro.diffusion.policy.threshold_at` does.
        """
        check_year(year, "year")
        eras = self.threshold_eras()
        i = bisect.bisect_right([e.start_year for e in eras], year) - 1
        if i < 0:
            raise ThresholdInfeasibleError(
                f"scenario {self.name!r} defines no threshold before "
                f"{eras[0].start_year}",
                context={"got": year, "valid": f">= {eras[0].start_year}",
                         "scenario": self.name},
            )
        return float(eras[i].threshold_mtops)

    def threshold_in_force_series(
        self, years: Sequence[float] | np.ndarray
    ) -> np.ndarray:
        """:meth:`threshold_in_force` over a year grid, total: years
        before the first era map to 0.0 (no control regime) instead of
        raising, so tensor builds over early years stay well-defined."""
        grid = np.asarray(years, dtype=float).ravel()
        eras = self.threshold_eras()
        starts = np.array([e.start_year for e in eras])
        values = np.array([e.threshold_mtops for e in eras])
        idx = np.searchsorted(starts, grid, side="right") - 1
        out = np.where(idx >= 0, values[np.clip(idx, 0, None)], 0.0)
        out.setflags(write=False)
        return out

    def frontier_multipliers(
        self, years: Sequence[float] | np.ndarray
    ) -> np.ndarray:
        """The shock multiplier in force at each grid year (1.0
        everywhere when the knob is off or before the first anchor)."""
        grid = np.asarray(years, dtype=float).ravel()
        if self.frontier_shock is None:
            return np.ones(grid.shape)
        anchor_years = np.array([a[0] for a in self.frontier_shock])
        anchor_mults = np.array([a[1] for a in self.frontier_shock])
        idx = np.searchsorted(anchor_years, grid, side="right") - 1
        return np.where(idx >= 0, anchor_mults[np.clip(idx, 0, None)], 1.0)


#: The identity world: history exactly as the paper records it.
HISTORICAL = Scenario(name="historical")


# ---------------------------------------------------------------------------
# Presets
# ---------------------------------------------------------------------------


def flop_cap(
    cap_mtops: float = 10_000.0,
    start_year: float = 1994.1,
    acceleration: float = 2.0,
    efficiency_rate: float = 0.18,
) -> Scenario:
    """The modern training-FLOP-cap analogue ("The LLM Mirage").

    One high cap replaces the era ladder from ``start_year`` on (eras
    before it keep their historical values), indigenous capability runs
    ``acceleration``x ahead of the catalog frontier (squared two years
    in), and algorithmic efficiency drifts requirements down at
    ``efficiency_rate`` per year instead of the paper's 8%.
    """
    baseline = tuple(e for e in _policy.THRESHOLD_HISTORY
                     if e.start_year < start_year)
    eras = baseline + (
        ThresholdEra(start_year, float(cap_mtops), "compute cap analogue"),
    )
    return Scenario(
        name="flop_cap",
        decontrol=eras,
        frontier_shock=((start_year, float(acceleration)),
                        (start_year + 2.0, float(acceleration) ** 2)),
        drift_rate=float(efficiency_rate),
    )


def accelerated_foreign(factor: float = 2.0,
                        onset: float = 1992.0) -> Scenario:
    """Foreign-indigenous programs deliver ``factor``x the frontier
    rating from ``onset`` on — Chapter 4's premise-2 failure as a world,
    not a warning."""
    return Scenario(
        name="accelerated_foreign",
        frontier_shock=((float(onset), float(factor)),),
    )


def early_decontrol(years_early: float = 2.0) -> Scenario:
    """Every historical decontrol step lands ``years_early`` years
    sooner — the timeline the paper's own recommendation implies."""
    eras = tuple(
        ThresholdEra(era.start_year - float(years_early),
                     era.threshold_mtops, era.label)
        for era in _policy.THRESHOLD_HISTORY
    )
    return Scenario(name="early_decontrol", decontrol=eras)


def sticky_requirements() -> Scenario:
    """Application requirements never drift down (``drift_rate=0``) —
    the world where better algorithms never erode the stalactites."""
    return Scenario(name="sticky_requirements", drift_rate=0.0)


#: Named preset constructors, for the CLI and the ``/scenario`` schema.
PRESETS = {
    "historical": lambda: HISTORICAL,
    "flop_cap": flop_cap,
    "accelerated_foreign": accelerated_foreign,
    "early_decontrol": early_decontrol,
    "sticky_requirements": sticky_requirements,
}


def preset_scenario(name: str) -> Scenario:
    """The preset called ``name``; unknown names raise with the valid
    list in context."""
    constructor = PRESETS.get(name)
    if constructor is None:
        raise ValidationError(
            f"unknown scenario preset {name!r}",
            context={"got": name, "valid": sorted(PRESETS)},
        )
    return constructor()


# ---------------------------------------------------------------------------
# Wire codec
# ---------------------------------------------------------------------------

_PAYLOAD_FIELDS = ("name", "decontrol", "frontier_shock", "drift_rate",
                   "drift_floor")
_ERA_FIELDS = ("start_year", "threshold_mtops", "label")


def scenario_to_payload(scenario: Scenario) -> dict:
    """The strict JSON wire form; knobs left at ``None`` are omitted, so
    the payload spells exactly what the scenario overrides."""
    payload: dict = {"name": scenario.name}
    if scenario.decontrol is not None:
        payload["decontrol"] = [
            {"start_year": era.start_year,
             "threshold_mtops": era.threshold_mtops,
             "label": era.label}
            for era in scenario.decontrol
        ]
    if scenario.frontier_shock is not None:
        payload["frontier_shock"] = [[year, multiplier]
                                     for year, multiplier
                                     in scenario.frontier_shock]
    if scenario.drift_rate is not None:
        payload["drift_rate"] = scenario.drift_rate
    if scenario.drift_floor is not None:
        payload["drift_floor"] = scenario.drift_floor
    return payload


def _payload_number(value: object, field: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValidationError(
            f"scenario field {field} must be a number",
            context={"field": field, "got": value, "valid": "number"},
        )
    return float(value)


def _parse_era(entry: object, position: int) -> ThresholdEra:
    if not isinstance(entry, Mapping):
        raise ValidationError(
            f"decontrol[{position}] must be an object",
            context={"got": type(entry).__name__, "valid": "object"},
        )
    unknown = sorted(set(entry) - set(_ERA_FIELDS))
    if unknown:
        raise ValidationError(
            f"unknown decontrol era field(s): {', '.join(map(str, unknown))}",
            context={"got": unknown, "valid": sorted(_ERA_FIELDS)},
        )
    for field in ("start_year", "threshold_mtops"):
        if field not in entry:
            raise ValidationError(
                f"decontrol[{position}] requires field {field!r}",
                context={"field": field, "valid": "present"},
            )
    label = entry.get("label", "")
    if not isinstance(label, str):
        raise ValidationError(
            "decontrol era label must be a string",
            context={"got": label, "valid": "string"},
        )
    return ThresholdEra(
        start_year=_payload_number(entry["start_year"], "start_year"),
        threshold_mtops=_payload_number(entry["threshold_mtops"],
                                        "threshold_mtops"),
        label=label,
    )


def scenario_from_payload(payload: object) -> Scenario:
    """Parse the strict wire form back into a :class:`Scenario`.

    Unknown fields are rejected (a misspelled ``"drift_rte"`` must not
    silently evaluate the historical drift), era/anchor ordering is
    validated by the ``Scenario`` constructor, and
    ``scenario_from_payload(scenario_to_payload(s)) == s`` exactly.
    """
    if not isinstance(payload, Mapping):
        raise ValidationError(
            "scenario must be a JSON object",
            context={"got": type(payload).__name__, "valid": "object"},
        )
    unknown = sorted(set(payload) - set(_PAYLOAD_FIELDS))
    if unknown:
        raise ValidationError(
            f"unknown scenario field(s): {', '.join(map(str, unknown))}",
            context={"got": unknown, "valid": sorted(_PAYLOAD_FIELDS)},
        )
    if "name" not in payload:
        raise ValidationError(
            "scenario requires field 'name'",
            context={"field": "name", "valid": "present"},
        )
    decontrol = None
    if "decontrol" in payload:
        entries = payload["decontrol"]
        if not isinstance(entries, Sequence) or isinstance(entries, str):
            raise ValidationError(
                "decontrol must be a list of era objects",
                context={"got": type(entries).__name__, "valid": "list"},
            )
        decontrol = tuple(_parse_era(entry, k)
                          for k, entry in enumerate(entries))
    shock = None
    if "frontier_shock" in payload:
        anchors = payload["frontier_shock"]
        if not isinstance(anchors, Sequence) or isinstance(anchors, str):
            raise ValidationError(
                "frontier_shock must be a list of [year, multiplier] pairs",
                context={"got": type(anchors).__name__, "valid": "list"},
            )
        parsed = []
        for k, anchor in enumerate(anchors):
            if (not isinstance(anchor, Sequence) or isinstance(anchor, str)
                    or len(anchor) != 2):
                raise ValidationError(
                    f"frontier_shock[{k}] must be a [year, multiplier] pair",
                    context={"got": anchor, "valid": "[year, multiplier]"},
                )
            parsed.append((
                _payload_number(anchor[0], f"frontier_shock[{k}] year"),
                _payload_number(anchor[1], f"frontier_shock[{k}] multiplier"),
            ))
        shock = tuple(parsed)
    drift_rate = (None if "drift_rate" not in payload
                  else _payload_number(payload["drift_rate"], "drift_rate"))
    drift_floor = (None if "drift_floor" not in payload
                   else _payload_number(payload["drift_floor"],
                                        "drift_floor"))
    name = payload["name"]
    if not isinstance(name, str):
        raise ValidationError(
            "scenario name must be a string",
            context={"got": name, "valid": "non-empty string"},
        )
    return Scenario(name=name, decontrol=decontrol, frontier_shock=shock,
                    drift_rate=drift_rate, drift_floor=drift_floor)
