"""``repro mcp`` — the line-delimited JSON-RPC bridge over the engine.

The ROADMAP's agentic surface: automated clients (MCP hosts, notebook
drivers, shell pipelines) speak newline-delimited JSON-RPC 2.0 over
stdin/stdout, and every method forwards to the same transport-free
:class:`~repro.serve.server.ServiceEngine` the HTTP front end uses — no
new compute paths, same canonical schemas, same response cache, same
multi-query planner behind ``batch``.

Methods::

    list_machines    {}                    -> the epoch-tagged catalog listing
    list_thresholds  {}                    -> the threshold-era history
    rate_config      /rate payload         -> one CTP rating
    policy_scorecard /policy payload       -> one Chapter-5 scorecard
    threshold_at     /threshold_at payload -> the threshold in force
    batch            /batch payload        -> one fused multi-query plan

Error mapping (HTTP status -> JSON-RPC error object)::

    400 -> -32602 invalid params      429 -> -32001 overloaded
    504 -> -32002 deadline exceeded   500 -> -32603 internal error
    unparseable line -> -32700        unknown method -> -32601

The structured ``{"error": {...}}`` body rides along as ``error.data``,
so a bridge client sees exactly the taxonomy context an HTTP client
would.  Requests without an ``id`` are notifications: they are executed
but get no response line, per the JSON-RPC 2.0 spec.
"""

from __future__ import annotations

import json
import sys
from typing import IO

from repro.obs.trace import counter_inc

__all__ = ["RPC_METHODS", "rpc_response", "run_stdio_bridge"]

#: JSON-RPC method name -> the engine endpoint it forwards to (None:
#: served by a read-only engine listing, not ``handle``).
RPC_METHODS = {
    "list_machines": None,
    "list_thresholds": None,
    "rate_config": "rate",
    "policy_scorecard": "policy",
    "threshold_at": "threshold_at",
    "batch": "batch",
}

_STATUS_CODES = {
    400: (-32602, "invalid params"),
    429: (-32001, "service overloaded"),
    504: (-32002, "deadline exceeded"),
    500: (-32603, "internal error"),
}


def _error(id_: object, code: int, message: str,
           data: object | None = None) -> dict:
    error: dict = {"code": code, "message": message}
    if data is not None:
        error["data"] = data
    return {"jsonrpc": "2.0", "id": id_, "error": error}


def _result(id_: object, result: dict) -> dict:
    return {"jsonrpc": "2.0", "id": id_, "result": result}


def rpc_response(engine, request: object) -> dict | None:
    """Serve one decoded JSON-RPC request; ``None`` for notifications.

    Never raises: malformed envelopes, unknown methods, and engine
    errors all map to JSON-RPC error objects (the engine itself already
    guarantees its failures arrive as structured status/body pairs).
    """
    if not isinstance(request, dict):
        return _error(None, -32600, "request must be a JSON object",
                      {"got": type(request).__name__})
    id_ = request.get("id")
    is_notification = "id" not in request
    method = request.get("method")
    if not isinstance(method, str) or method not in RPC_METHODS:
        if is_notification:
            return None
        return _error(id_, -32601, f"unknown method {method!r}",
                      {"valid": sorted(RPC_METHODS)})
    params = request.get("params", {})
    counter_inc(f"serve.rpc.{method}")
    if RPC_METHODS[method] is None:
        if params not in ({}, [], None):
            response = _error(id_, -32602,
                              f"{method} takes no parameters",
                              {"got": params})
            return None if is_notification else response
        listing = (engine.list_machines if method == "list_machines"
                   else engine.list_thresholds)
        try:
            body = listing()
        except Exception as exc:  # noqa: BLE001 — bridge must not die
            response = _error(id_, -32603, str(exc))
            return None if is_notification else response
        return None if is_notification else _result(id_, body)
    status, body = engine.handle(RPC_METHODS[method], params)
    if is_notification:
        return None
    if status == 200:
        return _result(id_, body)
    code, label = _STATUS_CODES.get(status, (-32603, "internal error"))
    message = body.get("error", {}).get("message", label)
    return _error(id_, code, message, body.get("error"))


def run_stdio_bridge(engine=None, stdin: IO[str] | None = None,
                     stdout: IO[str] | None = None) -> int:
    """Serve JSON-RPC lines from ``stdin`` until EOF; returns the count.

    One JSON value per line in, one JSON value per line out (flushed
    per response, so a pipe-driven host sees answers immediately).
    Blank lines are skipped; a line that is not valid JSON gets a
    ``-32700`` parse error and the loop continues — a glitched client
    cannot kill the bridge.  Owns the engine's lifecycle only when it
    constructed the engine itself.
    """
    from repro.serve.server import ServiceEngine

    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    own_engine = engine is None
    if own_engine:
        engine = ServiceEngine()
    served = 0
    try:
        for line in stdin:
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
            except ValueError:
                response = _error(None, -32700, "parse error",
                                  {"got_bytes": len(line)})
            else:
                response = rpc_response(engine, request)
            served += 1
            if response is not None:
                stdout.write(json.dumps(response) + "\n")
                stdout.flush()
    finally:
        if own_engine:
            engine.close()
    return served
