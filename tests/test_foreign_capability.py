"""Tests for the Table 16 foreign-capability assessment."""

import pytest

from repro.apps.foreign_capability import (
    TABLE16_APPLICATIONS,
    assess_foreign_capability,
    foreign_capability_table,
)
from repro.machines.foreign import ForeignCountry


class TestAssessment:
    def test_low_end_application_enabled_everywhere(self):
        for country in ForeignCountry:
            a = assess_foreign_capability("F-117A design", country)
            assert a.computing_available
            assert a.enabled  # no other gates on the F-117A row

    def test_crypto_enabled_by_aggregation(self):
        a = assess_foreign_capability(
            "Brute-force keysearch (24-hour break)", ForeignCountry.INDIA
        )
        assert a.computing_available

    def test_submarine_csm_blocked_in_1995(self):
        # "little chance that a country of national security concern could
        # replicate this program with computers not subject to export
        # controls".
        for country in ForeignCountry:
            a = assess_foreign_capability(
                "Submarine acoustic-signature CSM", country, 1995.5
            )
            assert not a.computing_available
            assert not a.enabled

    def test_f22_computing_available_but_gated(self):
        # The F-22's computing is below the frontier, but materials and
        # propulsion gates keep the threat from being enabled.
        a = assess_foreign_capability("F-22 design", ForeignCountry.PRC, 1995.5)
        assert a.computing_available
        assert a.other_gates
        assert not a.enabled

    def test_computing_source_label(self):
        a = assess_foreign_capability("F-117A design", ForeignCountry.RUSSIA)
        assert a.computing_source in ("indigenous", "uncontrollable Western")
        blocked = assess_foreign_capability(
            "ATR template development", ForeignCountry.RUSSIA, 1995.5
        )
        assert blocked.computing_source is None

    def test_frontier_erosion_enables_over_time(self):
        early = assess_foreign_capability(
            "Tactical weather prediction (45 km)", ForeignCountry.PRC, 1995.5
        )
        late = assess_foreign_capability(
            "Tactical weather prediction (45 km)", ForeignCountry.PRC, 1999.5
        )
        assert not early.computing_available
        assert late.computing_available

    def test_best_available_is_max(self):
        a = assess_foreign_capability("F-22 design", ForeignCountry.INDIA)
        assert a.best_available_mtops == max(
            a.indigenous_mtops, a.uncontrollable_mtops
        )


class TestTable:
    def test_full_grid(self):
        table = foreign_capability_table(1995.5)
        assert len(table) == len(TABLE16_APPLICATIONS) * len(ForeignCountry)

    def test_unknown_application_rejected(self):
        with pytest.raises(KeyError):
            foreign_capability_table(applications=("no such app",))

    def test_majority_possible_at_uncontrollable_levels(self):
        # The executive summary's conjecture: "the majority of national
        # security applications of HPC are already possible (at least from
        # the standpoint of the necessary computing) at uncontrollable
        # levels".
        table = foreign_capability_table(1995.5)
        available = sum(1 for a in table if a.computing_available)
        assert available / len(table) > 0.5
