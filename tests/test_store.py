"""The snapshot store contract: bit identity, zero rebuilds, staleness.

Three promises anchor ``repro.store``:

1. **Bit identity** — stores loaded from a snapshot equal a fresh
   in-process build to the last bit, all the way up through
   ``evaluate_policy_grid`` and the homogeneous CTP batch path.
2. **Zero rebuilds** — loading ticks no ``*.builds`` counter: the
   artifact replaces the work, it doesn't just warm it up.
3. **Staleness is fatal** — a snapshot whose content hash no longer
   matches the live catalog raises :class:`SnapshotStaleError` (a
   :class:`ReproError`) instead of serving stale answers; the CLI
   rebuild path clears the condition.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.ctp import Coupling
from repro.ctp.batch import aggregate_homogeneous_batch
from repro.diffusion.policy_grid import evaluate_policy_grid
from repro.machines.columns import machine_columns_from_arrays
from repro.obs.errors import ReproError, SnapshotStaleError, ValidationError
from repro.obs.trace import reset_counters
from repro.store import (
    BUILD_COUNTERS,
    DEFAULT_SNAPSHOT_YEARS,
    FORMAT_VERSION,
    active_manifest_hash,
    build_counter_totals,
    build_snapshot,
    clear_store_caches,
    live_content_hash,
    load_snapshot,
)

GRID_THRESHOLDS = np.array([195.0, 2000.0, 7000.0, 20_000.0])
GRID_YEARS = np.array([1990.0, 1993.25, 1995.5, 1997.75])


@pytest.fixture(autouse=True)
def _clean_store_state():
    """Every test starts and ends with no installed snapshot state."""
    clear_store_caches()
    yield
    clear_store_caches()


@pytest.fixture()
def snapshot_dir(tmp_path):
    path = tmp_path / "snapshot"
    build_snapshot(path)
    return path


class TestBuild:
    def test_manifest_inventory_matches_files(self, snapshot_dir):
        manifest = json.loads((snapshot_dir / "manifest.json").read_text())
        assert manifest["format_version"] == FORMAT_VERSION
        assert manifest["content_hash"] == live_content_hash()
        for entry in manifest["arrays"].values():
            array = np.load(snapshot_dir / entry["file"], mmap_mode="r")
            assert list(array.shape) == entry["shape"]
            assert str(array.dtype) == entry["dtype"]

    def test_rebuild_is_idempotent(self, snapshot_dir):
        info = build_snapshot(snapshot_dir)
        assert info.manifest_hash == live_content_hash()
        load_snapshot(snapshot_dir)

    def test_bad_inputs_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            build_snapshot(tmp_path / "s", years=())
        with pytest.raises(ValidationError):
            build_snapshot(tmp_path / "s", credit_n=0)


class TestRoundTrip:
    def test_policy_grid_bit_identical(self, snapshot_dir):
        fresh = evaluate_policy_grid(GRID_THRESHOLDS, GRID_YEARS)
        clear_store_caches()
        load_snapshot(snapshot_dir)
        loaded = evaluate_policy_grid(GRID_THRESHOLDS, GRID_YEARS)
        for field in ("frontier_mtops", "requirements", "protected_counts",
                      "illusory_counts", "burden_units",
                      "uncontrollable_counts", "credible"):
            assert np.array_equal(getattr(fresh, field),
                                  getattr(loaded, field)), field

    def test_ctp_homogeneous_batch_bit_identical(self, snapshot_dir):
        tps = np.array([55.0, 110.0, 220.0, 440.0, 880.0])
        ns = np.array([1, 2, 7, 64, 500])
        fresh = {c: aggregate_homogeneous_batch(tps[:1] if c is
                                                Coupling.SINGLE else tps,
                                                ns[:1] if c is
                                                Coupling.SINGLE else ns, c)
                 for c in Coupling}
        clear_store_caches()
        load_snapshot(snapshot_dir)
        for coupling, reference in fresh.items():
            single = coupling is Coupling.SINGLE
            again = aggregate_homogeneous_batch(
                tps[:1] if single else tps, ns[:1] if single else ns,
                coupling)
            assert np.array_equal(reference, again), coupling

    def test_market_lookup_bit_identical(self, snapshot_dir):
        from repro.market.installed import installed_units_above_batch

        thresholds = np.geomspace(10.0, 100_000.0, 50)
        year = float(DEFAULT_SNAPSHOT_YEARS[30])
        fresh = installed_units_above_batch(thresholds, year)
        clear_store_caches()
        load_snapshot(snapshot_dir)
        assert np.array_equal(fresh,
                              installed_units_above_batch(thresholds, year))

    def test_zero_builds_after_load(self, snapshot_dir):
        reset_counters()
        load_snapshot(snapshot_dir)
        evaluate_policy_grid(GRID_THRESHOLDS, GRID_YEARS)
        aggregate_homogeneous_batch(np.array([55.0]), np.array([64]),
                                    Coupling.SHARED)
        totals = build_counter_totals()
        assert set(totals) == set(BUILD_COUNTERS)
        assert all(total == 0 for total in totals.values()), totals

    def test_requirement_subset_grid_slices_without_rebuild(
            self, snapshot_dir):
        from repro.diffusion.columns import requirement_matrix

        subset = tuple(float(y) for y in DEFAULT_SNAPSHOT_YEARS[5:20:3])
        fresh = requirement_matrix(subset).copy()
        clear_store_caches()
        reset_counters()
        load_snapshot(snapshot_dir)
        sliced = requirement_matrix(subset)
        assert np.array_equal(fresh, sliced)
        assert build_counter_totals()["columns.requirement_builds"] == 0

    def test_active_hash_tracking(self, snapshot_dir):
        assert active_manifest_hash() is None
        info = load_snapshot(snapshot_dir)
        assert active_manifest_hash() == info.manifest_hash
        clear_store_caches()
        assert active_manifest_hash() is None

    def test_copy_load_matches_mmap_load(self, snapshot_dir):
        load_snapshot(snapshot_dir, mmap=True)
        mapped = evaluate_policy_grid(GRID_THRESHOLDS, GRID_YEARS)
        clear_store_caches()
        load_snapshot(snapshot_dir, mmap=False)
        copied = evaluate_policy_grid(GRID_THRESHOLDS, GRID_YEARS)
        assert np.array_equal(mapped.burden_units, copied.burden_units)


class TestStaleness:
    def _corrupt_hash(self, snapshot_dir):
        manifest_path = snapshot_dir / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["content_hash"] = "0" * 64
        manifest_path.write_text(json.dumps(manifest))

    def test_hash_mismatch_raises_typed_error(self, snapshot_dir):
        self._corrupt_hash(snapshot_dir)
        with pytest.raises(SnapshotStaleError) as excinfo:
            load_snapshot(snapshot_dir)
        assert isinstance(excinfo.value, ReproError)
        assert excinfo.value.context["got"] == "0" * 64
        assert excinfo.value.context["valid"] == live_content_hash()
        # Refusal must leave nothing half-installed.
        assert active_manifest_hash() is None

    def test_unknown_format_version_raises(self, snapshot_dir):
        manifest_path = snapshot_dir / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = FORMAT_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SnapshotStaleError):
            load_snapshot(snapshot_dir)

    def test_missing_array_file_raises(self, snapshot_dir):
        (snapshot_dir / "arrays" / "machine_intro_years.npy").unlink()
        with pytest.raises(SnapshotStaleError):
            load_snapshot(snapshot_dir)

    def test_missing_manifest_is_validation_error(self, tmp_path):
        with pytest.raises(ValidationError):
            load_snapshot(tmp_path / "nowhere")

    def test_cli_rebuild_clears_staleness(self, snapshot_dir, capsys):
        self._corrupt_hash(snapshot_dir)
        assert main(["snapshot", "--check",
                     "--output", str(snapshot_dir)]) == 1
        assert "rebuild with `repro snapshot`" in capsys.readouterr().out
        assert main(["snapshot", "--output", str(snapshot_dir)]) == 0
        assert main(["snapshot", "--check",
                     "--output", str(snapshot_dir)]) == 0
        assert "matches the live catalog" in capsys.readouterr().out


class TestColumnValidation:
    def test_from_arrays_rejects_missing_column(self, snapshot_dir):
        manifest = json.loads((snapshot_dir / "manifest.json").read_text())
        arrays = {
            name.split(".", 1)[1]: np.load(snapshot_dir / entry["file"])
            for name, entry in manifest["arrays"].items()
            if name.startswith("machine.")
        }
        del arrays["intro_years"]
        with pytest.raises(ValidationError):
            machine_columns_from_arrays(arrays)

    def test_from_arrays_rejects_wrong_length(self, snapshot_dir):
        manifest = json.loads((snapshot_dir / "manifest.json").read_text())
        arrays = {
            name.split(".", 1)[1]: np.load(snapshot_dir / entry["file"])
            for name, entry in manifest["arrays"].items()
            if name.startswith("machine.")
        }
        arrays["intro_years"] = arrays["intro_years"][:-1]
        with pytest.raises(ValidationError):
            machine_columns_from_arrays(arrays)
