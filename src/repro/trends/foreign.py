"""Foreign indigenous capability trends (Figure 4).

Figure 4 plots "trends in the most powerful domestic systems" of Russia,
the PRC, and India against the control threshold.  Each country's curve is
the running maximum of its catalog (Tables 1-3); the envelope across
countries is one of the two components of the framework's lower bound.
"""

from __future__ import annotations

import numpy as np

from repro._util import check_year
from repro.machines.foreign import (
    ForeignCountry,
    foreign_by_country,
    max_indigenous_mtops,
    max_indigenous_mtops_series,
)
from repro.trends.curves import ExponentialTrend, TrendPoint, fit_exponential

__all__ = [
    "foreign_points",
    "foreign_trend",
    "foreign_envelope_mtops",
    "foreign_envelope_series",
]


def foreign_points(
    country: ForeignCountry, through: float | None = None
) -> list[TrendPoint]:
    """(year, CTP) observations for one country's indigenous systems."""
    return [
        TrendPoint(m.year, m.ctp_mtops, label=m.key)
        for m in foreign_by_country(country, through)
    ]


def foreign_trend(
    country: ForeignCountry,
    through: float | None = None,
    since: float = 1980.0,
) -> ExponentialTrend:
    """Exponential fit of one country's indigenous capability.

    ``since`` drops antique anchors (e.g. the 1968 BESM-6) that would
    otherwise dominate the fit with pre-microprocessor growth rates.
    """
    pts = [p for p in foreign_points(country, through) if p.year >= since]
    if len(pts) < 2:
        raise ValueError(f"not enough {country.value} systems in range to fit")
    return fit_exponential([p.year for p in pts], [p.mtops for p in pts])


def foreign_envelope_mtops(year: float) -> float:
    """The most powerful system available in *any* country of concern.

    This is the "availability of computing systems from domestic or other
    non-Western sources" term of the lower bound (Chapter 2).  Returns 0.0
    before any country has a system.
    """
    check_year(year, "year")
    return float(
        np.max([max_indigenous_mtops(c, year) for c in ForeignCountry])
    )


def foreign_envelope_series(years: np.ndarray | list[float]) -> np.ndarray:
    """The foreign envelope over a whole year grid in one pass.

    Array-in/array-out companion of :func:`foreign_envelope_mtops`: the
    elementwise maximum of the per-country running-max curves.
    """
    grid = np.asarray(years, dtype=float)
    out = np.zeros(grid.shape)
    for c in ForeignCountry:
        np.maximum(out, max_indigenous_mtops_series(c, grid), out=out)
    return out
