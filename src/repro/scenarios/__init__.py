"""Counterfactual "policy world" scenarios (Chapter 5 across worlds).

:mod:`repro.scenarios.spec` defines the frozen :class:`Scenario` spec,
its presets (``flop_cap``, ``accelerated_foreign``, ``early_decontrol``,
``sticky_requirements``), and the strict JSON wire codec;
:mod:`repro.scenarios.grid` evaluates the (scenario x threshold x year)
tensor by riding the policy-grid columns with world overlays.
"""

from repro.scenarios.grid import (
    ScenarioGrid,
    clear_scenario_caches,
    evaluate_scenario_grid,
)
from repro.scenarios.spec import (
    HISTORICAL,
    PRESETS,
    Scenario,
    accelerated_foreign,
    early_decontrol,
    flop_cap,
    preset_scenario,
    scenario_from_payload,
    scenario_to_payload,
    sticky_requirements,
)

__all__ = [
    "HISTORICAL",
    "PRESETS",
    "Scenario",
    "ScenarioGrid",
    "accelerated_foreign",
    "clear_scenario_caches",
    "early_decontrol",
    "evaluate_scenario_grid",
    "flop_cap",
    "preset_scenario",
    "scenario_from_payload",
    "scenario_to_payload",
    "sticky_requirements",
]
