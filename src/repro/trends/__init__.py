"""Time-series substrate: exponential technology curves and their fits.

The framework of Chapter 2 is built from rising exponential curves (the
uncontrollability frontier, foreign indigenous capability, the most powerful
system available) crossed with static-per-application minimum requirements.
This package provides the curve machinery plus the concrete trend data
behind Figures 4-7, 12, and 13.
"""

from repro.trends.curves import (
    ExponentialTrend,
    TrendPoint,
    fit_exponential,
    running_max_series,
)
from repro.trends.moore import (
    micro_mtops_trend,
    projected_micro_mtops,
)
from repro.trends.smp import (
    smp_systems,
    smp_max_config_points,
    smp_vendor_lines,
    smp_trend,
)
from repro.trends.foreign import (
    foreign_points,
    foreign_trend,
    foreign_envelope_mtops,
)
from repro.trends.top500 import (
    Top500Entry,
    Top500List,
    generate_top500,
    rank_trend,
)

__all__ = [
    "ExponentialTrend",
    "TrendPoint",
    "fit_exponential",
    "running_max_series",
    "micro_mtops_trend",
    "projected_micro_mtops",
    "smp_systems",
    "smp_max_config_points",
    "smp_vendor_lines",
    "smp_trend",
    "foreign_points",
    "foreign_trend",
    "foreign_envelope_mtops",
    "Top500Entry",
    "Top500List",
    "generate_top500",
    "rank_trend",
]
