"""Workload models: operation counts, granularity, communication patterns.

The paper's vocabulary (Chapter 3): *granularity* is "the amount of
computation relative to the amount of movement of data between processors";
clusters win when granularity is coarse and lose when it is fine.  A
:class:`Workload` captures exactly the quantities that argument needs:
total work, serial fraction, working-set size, step count, and a
communication pattern giving per-step traffic as a function of the process
count.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from repro._util import check_fraction, check_positive

__all__ = ["CommPattern", "Workload", "WORKLOAD_SUITE", "find_workload"]


class CommPattern(enum.Enum):
    """Per-step communication structure of a data-parallel workload."""

    #: No inter-process communication (ray tracing per frame, keysearch).
    EMBARRASSING = "embarrassingly parallel"
    #: Scatter inputs / gather outputs once per step; no exchange within.
    REPLICATED = "replicated problem"
    #: 2-D domain decomposition: each process trades strip boundaries,
    #: volume per process ~ sqrt(data / p).
    HALO_2D = "2-D halo exchange"
    #: 3-D decomposition: faces ~ (data / p) ** (2/3).
    HALO_3D = "3-D halo exchange"
    #: Transpose/FFT-style: each process sends ~ data / p, in p messages.
    ALL_TO_ALL = "all-to-all"
    #: Sparse/irregular: many small messages; latency-dominated.
    IRREGULAR = "irregular (latency-bound)"

    def volume_per_node_mb(self, data_mb: float, p: int) -> float:
        """Megabytes each process communicates per step."""
        check_positive(data_mb, "data_mb")
        if p < 1:
            raise ValueError("p must be >= 1")
        if p == 1:
            return 0.0
        if self is CommPattern.EMBARRASSING:
            return 0.0
        if self is CommPattern.REPLICATED:
            # Inputs are distributed once; per step only parameters and
            # results move (a small fraction of the local share).
            return 0.01 * data_mb / p
        if self is CommPattern.HALO_2D:
            # Boundary of a sqrt(data/p)-sided square patch, 4 neighbours.
            return 4.0 * math.sqrt(data_mb / p) * 1e-2
        if self is CommPattern.HALO_3D:
            return 6.0 * (data_mb / p) ** (2.0 / 3.0) * 1e-2
        if self is CommPattern.ALL_TO_ALL:
            return data_mb / p
        if self is CommPattern.IRREGULAR:
            # Sparse exchanges are latency-bound: many tiny messages.
            return 0.005 * data_mb / p
        raise AssertionError("unreachable")

    def messages_per_node(self, p: int) -> float:
        """Messages each process sends per step."""
        if p < 1:
            raise ValueError("p must be >= 1")
        if p == 1 or self is CommPattern.EMBARRASSING:
            return 0.0
        if self is CommPattern.REPLICATED:
            return 2.0
        if self in (CommPattern.HALO_2D,):
            return 4.0
        if self is CommPattern.HALO_3D:
            return 6.0
        if self is CommPattern.ALL_TO_ALL:
            return float(p - 1)
        if self is CommPattern.IRREGULAR:
            return 50.0
        raise AssertionError("unreachable")


@dataclass(frozen=True)
class Workload:
    """A complete, machine-independent description of one job.

    Attributes
    ----------
    total_mops:
        Total useful work, in millions of theoretical operations.
    data_mb:
        Working-set size in megabytes (drives halo volumes and per-node
        memory feasibility).
    steps:
        Number of communication phases (time steps, solver iterations).
        More steps at constant total work means finer granularity.
    pattern:
        Communication structure.
    parallel_fraction:
        Amdahl fraction of the work that parallelizes.
    min_memory_mb:
        Memory that must be *closely coupled* on a single node regardless
        of decomposition (0 for cleanly decomposable problems).  This is
        how the paper's memory-bound applications (turbulent-flow CSM)
        defeat cluster conversion.
    """

    name: str
    total_mops: float
    data_mb: float
    steps: int
    pattern: CommPattern
    parallel_fraction: float = 0.99
    min_memory_mb: float = 0.0
    notes: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        check_positive(self.total_mops, f"{self.name}: total_mops")
        check_positive(self.data_mb, f"{self.name}: data_mb")
        if self.steps < 1:
            raise ValueError(f"{self.name}: steps must be >= 1")
        check_fraction(self.parallel_fraction, f"{self.name}: parallel_fraction")
        if self.min_memory_mb < 0:
            raise ValueError(f"{self.name}: min_memory_mb must be >= 0")

    @property
    def granularity_mops_per_step(self) -> float:
        """Computation per communication phase — the paper's granularity."""
        return self.total_mops / self.steps


#: Workloads mirroring the studies cited in Chapter 3 notes 50-54
#: (Mattson's cluster data and the Berkeley NOW GATOR run).
WORKLOAD_SUITE: tuple[Workload, ...] = (
    Workload(
        name="ray tracing", total_mops=2.0e6, data_mb=50.0, steps=16,
        pattern=CommPattern.EMBARRASSING, parallel_fraction=0.999,
        notes="Clusters 'worked well' (note 53).",
    ),
    Workload(
        name="keysearch", total_mops=5.0e6, data_mb=1.0, steps=1,
        pattern=CommPattern.EMBARRASSING, parallel_fraction=1.0,
        notes="'A brute force attack is tailor-made for parallel processors'.",
    ),
    Workload(
        name="molecular dynamics", total_mops=1.0e6, data_mb=200.0, steps=500,
        pattern=CommPattern.REPLICATED, parallel_fraction=0.995,
        notes="Coarse-grain replicated forces; cluster-friendly (note 53).",
    ),
    Workload(
        name="seismic processing", total_mops=3.0e6, data_mb=2_000.0, steps=40,
        pattern=CommPattern.REPLICATED, parallel_fraction=0.99,
        notes="Shot gathers process independently.",
    ),
    Workload(
        name="chemical tracer (GATOR)", total_mops=4.0e6, data_mb=1_000.0,
        steps=200, pattern=CommPattern.HALO_2D, parallel_fraction=0.998,
        notes="The NOW study's highly parallel LA-basin model (note 50).",
    ),
    Workload(
        name="shallow-water model", total_mops=8.0e5, data_mb=800.0,
        steps=5_000, pattern=CommPattern.HALO_2D, parallel_fraction=0.995,
        notes="Fine-grain explicit PDE stepping; 'not competitive' on "
              "clusters (note 53).",
    ),
    Workload(
        name="weather prediction", total_mops=2.0e6, data_mb=1_500.0,
        steps=8_000, pattern=CommPattern.HALO_3D, parallel_fraction=0.99,
        notes="Halo exchange every short time step plus serial physics.",
    ),
    Workload(
        name="2-D FFT signal processing", total_mops=1.5e6, data_mb=512.0,
        steps=300, pattern=CommPattern.ALL_TO_ALL, parallel_fraction=0.99,
        notes="Transpose-method spectral processing (SIP family); each "
              "step every process talks to every other.",
    ),
    Workload(
        name="sparse linear solver", total_mops=4.0e5, data_mb=600.0,
        steps=12_000, pattern=CommPattern.IRREGULAR, parallel_fraction=0.97,
        notes="'A very important, common, and hard to parallelize problem'.",
    ),
    Workload(
        name="turbulent-flow CSM", total_mops=6.0e6, data_mb=1_024.0,
        steps=4_000, pattern=CommPattern.HALO_3D, parallel_fraction=0.95,
        min_memory_mb=1_024.0,
        notes="Needs >= 128M 64-bit words closely coupled - infeasible on "
              "cluster nodes regardless of speed.",
    ),
)


_BY_NAME = {w.name: w for w in WORKLOAD_SUITE}


def find_workload(name: str) -> Workload:
    """Look up a suite workload by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(_BY_NAME)}"
        ) from None
