"""Table 16: Foreign Capability in Selected Applications.

The application x country grid: can the country get the computing
(indigenously or via uncontrollable Western systems), and do
non-computational gates bind?
"""

from repro.apps.foreign_capability import foreign_capability_table
from repro.machines.foreign import ForeignCountry
from repro.reporting.tables import render_table


def build_table():
    return foreign_capability_table(1995.5)


def test_tab16_foreign_capability(benchmark, emit):
    cells = benchmark(build_table)
    rows = []
    for c in cells:
        rows.append([
            c.application.name, c.country.value,
            round(c.required_mtops), round(c.best_available_mtops),
            c.computing_source or "NO",
            "; ".join(c.other_gates) or "-",
            "ENABLED" if c.enabled else "blocked",
        ])
    emit(render_table(
        ["application", "country", "needs", "has", "computing via",
         "other gates", "verdict"],
        rows,
        title="Table 16: foreign capability in selected applications "
              "(mid-1995)",
    ))

    # The grid's aggregate story: computing is available for most rows,
    # but the highest-end sensor/weather applications stay out of reach,
    # and hard-gated programs stay blocked regardless of computing.
    available = sum(1 for c in cells if c.computing_available)
    assert available / len(cells) > 0.5
    blocked_high_end = [
        c for c in cells
        if c.application.name in ("ATR template development",
                                  "Tactical weather prediction (45 km)")
    ]
    assert all(not c.computing_available for c in blocked_high_end)
    gated = [c for c in cells if c.other_gates]
    assert all(not c.enabled for c in gated)
    assert {c.country for c in cells} == set(ForeignCountry)
