"""Unit tests for CTP aggregation rules."""

import numpy as np
import pytest

from repro.ctp.aggregate import (
    Coupling,
    CTPParameters,
    DEFAULT_PARAMETERS,
    aggregate,
    aggregate_homogeneous,
    aggregation_credits,
)


class TestCredits:
    def test_first_element_full_credit(self):
        for coupling in (Coupling.SHARED, Coupling.DISTRIBUTED, Coupling.CLUSTER):
            assert aggregation_credits(4, coupling)[0] == 1.0

    def test_shared_documented_075(self):
        credits = aggregation_credits(16, Coupling.SHARED)
        assert np.allclose(credits[1:], 0.75)

    def test_distributed_declines(self):
        credits = aggregation_credits(8, Coupling.DISTRIBUTED)
        assert np.all(np.diff(credits[1:]) < 0)
        assert credits[1] == pytest.approx(0.75)

    def test_distributed_sqrt_schedule(self):
        # C_i = 0.75 / sqrt(i - 1): the fifth element gets 0.75 / 2.
        credits = aggregation_credits(5, Coupling.DISTRIBUTED)
        assert credits[4] == pytest.approx(0.75 / np.sqrt(4))

    def test_cluster_below_distributed(self):
        d = aggregation_credits(8, Coupling.DISTRIBUTED)
        c = aggregation_credits(8, Coupling.CLUSTER)
        assert np.all(c[1:] < d[1:])

    def test_cluster_beta_override(self):
        c = aggregation_credits(4, Coupling.CLUSTER, interconnect_beta=1.0)
        d = aggregation_credits(4, Coupling.DISTRIBUTED)
        assert np.allclose(c, d)

    def test_single_coupling_rejects_multi(self):
        with pytest.raises(ValueError):
            aggregation_credits(2, Coupling.SINGLE)

    def test_rejects_zero_elements(self):
        with pytest.raises(ValueError):
            aggregation_credits(0, Coupling.SHARED)

    def test_rejects_zero_beta(self):
        with pytest.raises(ValueError):
            aggregation_credits(4, Coupling.CLUSTER, interconnect_beta=0.0)


class TestParameters:
    def test_defaults_valid(self):
        assert DEFAULT_PARAMETERS.shared_credit == 0.75

    def test_rejects_bad_shared_credit(self):
        with pytest.raises(ValueError):
            CTPParameters(shared_credit=1.5)

    def test_rejects_zero_cluster_beta(self):
        with pytest.raises(ValueError):
            CTPParameters(cluster_beta=0.0)

    def test_flat_distributed_schedule(self):
        params = CTPParameters(distributed_gamma=0.0)
        credits = aggregation_credits(8, Coupling.DISTRIBUTED, params)
        assert np.allclose(credits[1:], 0.75)


class TestAggregate:
    def test_single_element_identity(self):
        assert aggregate([500.0], Coupling.SHARED) == pytest.approx(500.0)

    def test_smp_16_formula(self):
        # 16-way SMP: TP * (1 + 15 * 0.75) = 12.25 TP.
        assert aggregate_homogeneous(100.0, 16, Coupling.SHARED) \
            == pytest.approx(1225.0)

    def test_c916_anchor(self):
        # Paper: Cray C916 = 21,125 Mtops at 16 processors.
        tp = 21125.0 / 12.25
        assert aggregate_homogeneous(tp, 16, Coupling.SHARED) \
            == pytest.approx(21125.0)

    def test_descending_sort_applied(self):
        # Largest element must receive the full credit.
        up = aggregate([100.0, 400.0], Coupling.SHARED)
        down = aggregate([400.0, 100.0], Coupling.SHARED)
        assert up == down == pytest.approx(400.0 + 0.75 * 100.0)

    def test_heterogeneous_order_invariance(self):
        tps = [10.0, 300.0, 50.0, 120.0]
        a = aggregate(tps, Coupling.DISTRIBUTED)
        b = aggregate(sorted(tps), Coupling.DISTRIBUTED)
        assert a == pytest.approx(b)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            aggregate([], Coupling.SHARED)

    def test_rejects_nonpositive_tp(self):
        with pytest.raises(ValueError):
            aggregate([100.0, 0.0], Coupling.SHARED)

    def test_homogeneous_one_node_ignores_coupling(self):
        assert aggregate_homogeneous(50.0, 1, Coupling.CLUSTER) \
            == pytest.approx(50.0)

    def test_cluster_aggregation_modest(self):
        # A 16-workstation cluster gets far less credit than an SMP.
        smp = aggregate_homogeneous(100.0, 16, Coupling.SHARED)
        cluster = aggregate_homogeneous(100.0, 16, Coupling.CLUSTER)
        assert cluster < 0.4 * smp
