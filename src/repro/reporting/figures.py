"""Figure emission: aligned data series and log-scale ASCII charts.

Figures are reproduced as data (the series a plotting package would
consume) plus an optional ASCII rendering, since the environment is
headless.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

import numpy as np

__all__ = ["render_series", "render_log_chart"]


def render_series(
    title: str,
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    x_label: str = "year",
) -> str:
    """Render one or more y-series against a common x grid as columns."""
    x_arr = np.asarray(x, dtype=float)
    for name, ys in series.items():
        if len(ys) != x_arr.size:
            raise ValueError(f"series {name!r} length {len(ys)} != x length "
                             f"{x_arr.size}")
    headers = [x_label] + list(series)
    lines = [title]
    widths = [max(len(h), 10) for h in headers]
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    for i, xv in enumerate(x_arr):
        row = [f"{xv:.2f}".rjust(widths[0])]
        for j, (name, ys) in enumerate(series.items(), start=1):
            v = float(ys[i])
            cell = "-" if math.isnan(v) else f"{v:,.0f}" if abs(v) >= 100 else f"{v:,.3g}"
            row.append(cell.rjust(widths[j]))
        lines.append("  ".join(row))
    return "\n".join(lines)


def render_log_chart(
    title: str,
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    height: int = 12,
    width: int = 64,
) -> str:
    """Minimal log-y ASCII chart: one character per series.

    Intended for bench output where the eyeball check is "does this curve
    rise and cross that line", not publication graphics.
    """
    if height < 3 or width < 10:
        raise ValueError("chart too small to draw")
    x_arr = np.asarray(x, dtype=float)
    marks = "*o+x#@%&"
    all_vals = np.concatenate([
        np.asarray(v, dtype=float)[np.isfinite(v) & (np.asarray(v) > 0)]
        for v in series.values()
    ])
    if all_vals.size == 0:
        raise ValueError("no positive finite data to chart")
    lo, hi = np.log10(all_vals.min()), np.log10(all_vals.max())
    if hi - lo < 1e-9:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for k, (name, ys) in enumerate(series.items()):
        mark = marks[k % len(marks)]
        ys_arr = np.asarray(ys, dtype=float)
        for i in range(x_arr.size):
            v = ys_arr[i]
            if not np.isfinite(v) or v <= 0:
                continue
            col = int((x_arr[i] - x_arr[0]) / max(x_arr[-1] - x_arr[0], 1e-9)
                      * (width - 1))
            row = int((np.log10(v) - lo) / (hi - lo) * (height - 1))
            grid[height - 1 - row][col] = mark
    legend = "  ".join(
        f"{marks[k % len(marks)]}={name}" for k, name in enumerate(series)
    )
    body = "\n".join("|" + "".join(r) for r in grid)
    footer = (f"+{'-' * width}\n {x_arr[0]:.1f}{' ' * (width - 12)}{x_arr[-1]:.1f}"
              f"\n log10 Mtops range [{lo:.1f}, {hi:.1f}]   {legend}")
    return f"{title}\n{body}\n{footer}"
