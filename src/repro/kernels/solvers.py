"""Sparse linear solvers on the 2-D Poisson operator.

"Sparse linear equation solvers [are] a very important, common, and hard
to parallelize problem in technical computing" (Chapter 3, note 53).  Two
representatives:

* Jacobi iteration — the maximally parallel but slowly converging scheme;
* conjugate gradients — the practical Krylov method, whose global dot
  products are exactly the fine-grained synchronization that kills cluster
  efficiency.

Both operate on the standard 5-point Laplacian (Dirichlet boundaries) and
are verified against dense solves in the tests.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = ["poisson_matrix", "jacobi_poisson", "conjugate_gradient"]


def poisson_matrix(n: int) -> sp.csr_matrix:
    """The 5-point Laplacian on an ``n x n`` interior grid (SPD, scaled
    so the diagonal is 4)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    main = 4.0 * np.ones(n * n)
    side = np.ones(n * n - 1)
    side[np.arange(1, n * n) % n == 0] = 0.0  # no wrap across grid rows
    updown = np.ones(n * n - n)
    return sp.diags(
        [main, -side, -side, -updown, -updown],
        [0, 1, -1, n, -n],
        format="csr",
    )


def jacobi_poisson(
    f: np.ndarray,
    iterations: int = 500,
) -> tuple[np.ndarray, np.ndarray]:
    """Jacobi iteration for ``A u = f`` on the Poisson operator.

    ``f`` is the right-hand side on an ``n x n`` grid.  Returns the
    solution estimate (grid-shaped) and the residual-norm history, which
    must be monotonically non-increasing for this SPD system.
    """
    f = np.asarray(f, dtype=float)
    if f.ndim != 2 or f.shape[0] != f.shape[1]:
        raise ValueError("f must be a square 2-D grid")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    n = f.shape[0]
    a = poisson_matrix(n)
    b = f.ravel()
    u = np.zeros(n * n)
    inv_diag = 1.0 / 4.0
    off = a - sp.diags(a.diagonal())
    history = np.empty(iterations)
    for k in range(iterations):
        u = inv_diag * (b - off @ u)
        history[k] = np.linalg.norm(b - a @ u)
    return u.reshape(n, n), history


def conjugate_gradient(
    a: sp.spmatrix,
    b: np.ndarray,
    tol: float = 1e-10,
    max_iterations: int | None = None,
) -> tuple[np.ndarray, int]:
    """Plain conjugate gradients for SPD ``a``.

    Returns ``(solution, iterations_used)``.  Each iteration performs one
    SpMV and two global reductions — the communication signature of the
    IRREGULAR workload class.
    """
    b = np.asarray(b, dtype=float)
    n = b.size
    if a.shape != (n, n):
        raise ValueError("matrix/vector size mismatch")
    if max_iterations is None:
        max_iterations = 4 * n
    x = np.zeros(n)
    r = b - a @ x
    p = r.copy()
    rs = float(r @ r)
    b_norm = max(float(np.linalg.norm(b)), 1e-300)
    for k in range(1, max_iterations + 1):
        ap = a @ p
        denom = float(p @ ap)
        if denom <= 0.0:
            raise np.linalg.LinAlgError("matrix is not positive definite")
        alpha = rs / denom
        x += alpha * p
        r -= alpha * ap
        rs_new = float(r @ r)
        if np.sqrt(rs_new) / b_norm < tol:
            return x, k
        p = r + (rs_new / rs) * p
        rs = rs_new
    return x, max_iterations
