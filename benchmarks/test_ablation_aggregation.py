"""Ablation: the CTP aggregation coefficients.

Sweeps the shared-memory credit (documented 0.75) and the distributed
decline exponent (calibrated 0.5) and measures the effect on the anchor
reproductions.  The documented/calibrated pair minimizes the mean error
against the paper-quoted ratings among the sweep grid.
"""

import numpy as np

from repro.ctp.aggregate import CTPParameters
from repro.machines.catalog import COMMERCIAL_SYSTEMS
from repro.reporting.tables import render_table


def _mean_abs_log_error(params: CTPParameters) -> float:
    errors = []
    for m in COMMERCIAL_SYSTEMS:
        if m.approx or m.quoted_ctp_mtops is None or m.element is None:
            continue
        computed = m.computed_ctp_mtops(params)
        errors.append(abs(np.log10(computed / m.quoted_ctp_mtops)))
    return float(np.mean(errors))


def build_sweep():
    shared_grid = (0.5, 0.65, 0.75, 0.85, 1.0)
    gamma_grid = (0.0, 0.25, 0.5, 0.75, 1.0)
    results = {}
    for shared in shared_grid:
        for gamma in gamma_grid:
            params = CTPParameters(shared_credit=shared,
                                   distributed_gamma=gamma)
            results[(shared, gamma)] = _mean_abs_log_error(params)
    return results


def test_ablation_aggregation_coefficients(benchmark, emit):
    results = benchmark(build_sweep)
    rows = [
        [shared, gamma, round(err, 4)]
        for (shared, gamma), err in sorted(results.items())
    ]
    emit(render_table(
        ["shared credit", "distributed gamma",
         "mean |log10 err| vs quoted ratings"],
        rows,
        title="Ablation: anchor error across aggregation coefficients",
    ))

    best = min(results, key=results.get)
    # The documented 0.75 shared credit with the sqrt distributed decline
    # is the best cell of the grid.
    assert best == (0.75, 0.5)
    assert results[best] < 0.05  # within ~12% on the anchor set
