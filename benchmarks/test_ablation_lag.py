"""Ablation: the two-year market-maturity lag.

The paper's frontier rule puts a product on the uncontrollable list two
years after introduction.  Sweeping the lag shows the rule moves the lower
bound by roughly one SMP product generation per year of lag — and that the
mid-1995 4,000-5,000-Mtops finding specifically depends on the two-year
choice.
"""

from repro.controllability.frontier import lower_bound_uncontrollable
from repro.reporting.tables import render_table

_LAGS = (0.0, 1.0, 2.0, 3.0)
_YEARS = (1994.5, 1995.5, 1996.5, 1997.5)


def build_sweep():
    return {
        lag: [lower_bound_uncontrollable(y, lag_years=lag).mtops
              for y in _YEARS]
        for lag in _LAGS
    }


def test_ablation_uncontrollability_lag(benchmark, emit):
    sweep = benchmark(build_sweep)
    rows = [
        [f"{lag:.0f} yr"] + [round(v) for v in sweep[lag]] for lag in _LAGS
    ]
    emit(render_table(
        ["lag"] + [f"{y}" for y in _YEARS],
        rows,
        title="Ablation: lower bound (Mtops) vs uncontrollability lag",
    ))

    # Longer lag -> lower (more conservative) bound at every date.
    for earlier, later in zip(_LAGS, _LAGS[1:]):
        for i in range(len(_YEARS)):
            assert sweep[later][i] <= sweep[earlier][i]
    # The paper's band holds at lag 2 and breaks at lag 0 (which would
    # call brand-new SMPs uncontrollable on their ship date).
    mid95 = _YEARS.index(1995.5)
    assert 4_000.0 <= sweep[2.0][mid95] <= 5_000.0
    assert sweep[0.0][mid95] > 5_000.0
