"""Tests for the synthetic HPCMO database (Figures 8-10 population)."""

import numpy as np
import pytest

from repro.apps.hpcmo import (
    HpcmoDatabase,
    HpcmoProject,
    generate_hpcmo,
    migration_summary,
)
from repro.apps.taxonomy import CF, CTA, Parallelizability


@pytest.fixture(scope="module")
def db() -> HpcmoDatabase:
    return generate_hpcmo(seed=0)


class TestGeneration:
    def test_project_count(self, db):
        # "About 700 different DoD HPC applications were reviewed."
        assert len(db.projects) == 700

    def test_deterministic(self, db):
        again = generate_hpcmo(seed=0)
        assert np.allclose(db.current_mtops(), again.current_mtops())

    def test_seed_sensitivity(self, db):
        other = generate_hpcmo(seed=1)
        assert not np.allclose(db.current_mtops(), other.current_mtops())

    def test_kind_split(self, db):
        st = db.of_kind("S&T")
        dte = db.of_kind("DT&E")
        assert len(st) + len(dte) == 700
        assert len(st) == 420  # 0.6 split

    def test_custom_split(self):
        small = generate_hpcmo(seed=0, n_projects=100, st_fraction=0.5)
        assert len(small.of_kind("S&T")) == 50

    def test_disciplines_match_kind(self, db):
        for p in db.projects:
            if p.kind == "S&T":
                assert isinstance(p.discipline, CTA)
            else:
                assert isinstance(p.discipline, CF)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            generate_hpcmo(n_projects=0)
        with pytest.raises(ValueError):
            generate_hpcmo(st_fraction=1.5)


class TestRecordInvariants:
    def test_min_le_current_le_projected(self, db):
        assert np.all(db.min_mtops() <= db.current_mtops())
        assert np.all(db.current_mtops() <= db.projected_mtops() * (1 + 1e-9))

    def test_record_validation(self):
        with pytest.raises(ValueError):
            HpcmoProject(project_id=1, kind="S&T", discipline=CTA.CFD,
                         service="Navy", current_mtops=100.0,
                         projected_mtops=50.0, min_mtops=10.0,
                         parallelizable=Parallelizability.EASY)
        with pytest.raises(ValueError):
            HpcmoProject(project_id=1, kind="weird", discipline=CTA.CFD,
                         service="Navy", current_mtops=100.0,
                         projected_mtops=150.0, min_mtops=10.0,
                         parallelizable=Parallelizability.EASY)


class TestMarginals:
    """The distributional claims of Chapter 4, as calibration tests."""

    def test_most_below_current_threshold(self, db):
        # "many are lower than current export control thresholds" (1,500).
        assert db.fraction_below(1_500.0, "min") > 0.75

    def test_two_thirds_below_controllability(self, db):
        # "More than two-thirds of the applications ... can be carried out
        # using computers below the threshold of controllability."
        assert db.fraction_below(4_100.0, "min") > 2.0 / 3.0

    def test_seven_to_eight_k_band(self, db):
        # "Of those remaining, about five percent require ... 7,000-8,000."
        mins = db.min_mtops()
        remaining = mins[mins >= 4_100.0]
        frac = np.mean((remaining >= 7_000.0) & (remaining < 8_000.0))
        assert 0.02 <= frac <= 0.20

    def test_ten_k_and_above_small_but_present(self, db):
        # "A smaller but still significant number ... at least 10,000."
        frac = 1.0 - db.fraction_below(10_000.0, "min")
        assert 0.001 <= frac <= 0.05

    def test_projected_shifts_right(self, db):
        # Figure 9: projected 1996 DT&E requirements exceed current usage.
        assert np.median(db.projected_mtops("DT&E")) > np.median(
            db.current_mtops("DT&E")
        )

    def test_histogram_totals(self, db):
        edges = 10.0 ** np.arange(-1.0, 6.01, 0.5)
        counts = db.histogram(db.current_mtops(), edges)
        assert counts.sum() == 700

    def test_parallelizable_mix(self, db):
        # "A large segment ... is migrating to small computers through
        # parallelizing", but a hard core does not parallelize.
        kinds = [p.parallelizable for p in db.projects]
        assert kinds.count(Parallelizability.EASY) > 200
        assert kinds.count(Parallelizability.NO) > 80

    def test_fraction_below_which_argument(self, db):
        assert db.fraction_below(1e9, "current") == 1.0
        with pytest.raises(KeyError):
            db.fraction_below(100.0, "bogus")


class TestMigrationSummary:
    def test_partition_complete(self, db):
        m = migration_summary(db)
        assert (m.convertible_now + m.convertible_with_cost + m.stranded
                == m.total_projects)

    def test_large_segment_migrating(self, db):
        # "A large segment of DoD high-performance computing is migrating
        # to small computers."
        assert migration_summary(db).migrating_fraction > 0.6

    def test_hard_core_stranded(self, db):
        assert migration_summary(db).stranded > 50

    def test_escapees_subset(self, db):
        m = migration_summary(db)
        assert 0 < m.escapees_above_threshold < m.convertible_now

    def test_higher_threshold_fewer_escapees(self, db):
        low = migration_summary(db, threshold_mtops=500.0)
        high = migration_summary(db, threshold_mtops=10_000.0)
        assert high.escapees_above_threshold <= low.escapees_above_threshold

    def test_validation(self, db):
        with pytest.raises(ValueError):
            migration_summary(db, threshold_mtops=0.0)
