"""Command-line interface: ``python -m repro <command>``.

Commands mirror the analyses a policy analyst would actually run:

* ``review``      — the annual review for a date (premises, bounds,
  recommendation);
* ``headline``    — the paper-vs-reproduction headline table;
* ``rate``        — CTP of a hardware configuration given from flags;
* ``machine``     — catalog lookup plus controllability assessment;
* ``license``     — a license decision for a machine/destination pair;
* ``policy``      — Chapter-5 credibility/burden scorecards over a whole
  threshold x year grid in one vectorized pass;
* ``scenarios``   — the same scorecards across counterfactual policy
  worlds (alternate decontrol timelines, frontier shocks, drift regimes)
  as one (scenario x threshold x year) tensor;
* ``sensitivity`` — robustness of the lower bound and the Table 4
  verdicts to the factor weights;
* ``simulate``    — run a suite workload across the architecture spectrum;
* ``sweep``       — evaluate the whole machine x workload x node-count
  design space in one vectorized pass;
* ``acquire``     — covert-acquisition premium for a capability level;
* ``report``      — the full markdown review document for a date;
* ``bench``       — time the batch hot paths against scalar references;
* ``serve``       — run the micro-batching HTTP serving front end
  (``--workers N`` pre-forks a sharded fleet over one port);
* ``snapshot``    — serialize the columnar stores for zero-rebuild
  serving cold starts;
* ``catalog``     — apply event-sourced catalog mutations (appends and
  amendments) in process or against a running fleet.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.core.framework import headline_summary
from repro.diffusion.acquisition import acquisition_premium, simulate_acquisitions
from repro.core.review import run_annual_review
from repro.core.sensitivity import bound_sensitivity, classification_stability
from repro.core.threshold import ThresholdPolicy, select_threshold
from repro.ctp import ComputingElement, Coupling, ctp_homogeneous
from repro.controllability.index import assess
from repro.diffusion.policy import ExportControlPolicy, threshold_at
from repro.machines import catalog as _machine_catalog
from repro.machines.catalog import find_machine
from repro.obs.errors import ReproError, ValidationError
from repro.obs.trace import profile
from repro.reporting.tables import render_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests and shell completion)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HPC export-control policy analysis "
                    "(Goodman/Wolcott/Burkhart 1995, reproduced)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_review = sub.add_parser("review", help="run the annual review")
    p_review.add_argument("--year", type=float, default=1995.5)
    p_review.add_argument(
        "--policy", choices=[p.name.lower() for p in ThresholdPolicy],
        default="control_what_can_be_controlled",
    )
    p_review.add_argument("--profile", action="store_true",
                          help="print a span/counter profile after the output")

    sub.add_parser("headline", help="paper-vs-reproduction headline table")

    p_rate = sub.add_parser("rate", help="rate a configuration in Mtops")
    p_rate.add_argument("--clock-mhz", type=float, required=True)
    p_rate.add_argument("--word-bits", type=float, default=64.0)
    p_rate.add_argument("--fp-per-cycle", type=float, default=1.0)
    p_rate.add_argument("--int-per-cycle", type=float, default=1.0)
    p_rate.add_argument("--concurrent", action="store_true",
                        help="fixed and floating units issue concurrently")
    p_rate.add_argument("--processors", type=int, default=1)
    p_rate.add_argument(
        "--coupling", choices=[c.name.lower() for c in Coupling],
        default="shared",
    )
    p_rate.add_argument("--year", type=float, default=1995.5,
                        help="compare against the threshold in force")

    p_machine = sub.add_parser("machine", help="catalog lookup + assessment")
    p_machine.add_argument("key", nargs="?", default=None,
                           help='"Vendor Model"; omit to list the catalog')
    p_machine.add_argument("--worksheet", action="store_true",
                           help="show the CTP derivation step by step")

    p_license = sub.add_parser("license", help="one license decision")
    p_license.add_argument("key", help='machine, e.g. "Cray C916"')
    p_license.add_argument("destination", help="e.g. India")
    p_license.add_argument("--threshold", type=float, default=None,
                           help="Mtops (default: in force at --year)")
    p_license.add_argument("--year", type=float, default=1995.5)

    p_policy = sub.add_parser(
        "policy", help="credibility/burden scorecards over a threshold "
                       "x year grid"
    )
    p_policy.add_argument("--thresholds", type=str,
                          default="100,160,195,1500,2000,7000",
                          metavar="SPEC",
                          help='candidate thresholds in Mtops: comma list '
                               'and/or inclusive ranges "lo:hi[:step]" '
                               '(default: the four historical eras plus '
                               '2,000 and 7,000)')
    p_policy.add_argument("--years", type=str, default="1988:1998:2",
                          metavar="SPEC",
                          help='review dates: comma list and/or inclusive '
                               'ranges "lo:hi[:step]" (default '
                               '"1988:1998:2")')
    p_policy.add_argument("--max-workers", type=int, default=1,
                          help="worker processes slabbing the threshold "
                               "axis (default 1: in-process)")
    p_policy.add_argument("--point", action="append", default=None,
                          metavar="T,Y",
                          help="answer single (threshold Mtops, year) "
                               "scorecards through the lazy tile plane "
                               "instead of building the full grid; "
                               "repeatable, overrides --thresholds/"
                               "--years")
    p_policy.add_argument("--profile", action="store_true",
                          help="print a span/counter profile after the "
                               "output")

    p_scenarios = sub.add_parser(
        "scenarios", help="credibility/burden scorecards across "
                          "counterfactual policy worlds"
    )
    p_scenarios.add_argument(
        "--worlds", type=str,
        default="historical,flop_cap,accelerated_foreign",
        metavar="NAMES",
        help="comma list of preset worlds (default "
             '"historical,flop_cap,accelerated_foreign"; the historical '
             "baseline is always included)")
    p_scenarios.add_argument(
        "--worlds-json", type=str, default=None, metavar="FILE",
        help="JSON file with extra scenario objects in the wire form "
             "(one object or a list; '-' reads stdin)")
    p_scenarios.add_argument("--thresholds", type=str,
                             default="195,1500,7000", metavar="SPEC",
                             help='candidate thresholds in Mtops: comma '
                                  'list and/or inclusive ranges '
                                  '"lo:hi[:step]" (default "195,1500,7000")')
    p_scenarios.add_argument("--years", type=str, default="1988:1998:2",
                             metavar="SPEC",
                             help='review dates: comma list and/or '
                                  'inclusive ranges "lo:hi[:step]" '
                                  '(default "1988:1998:2")')
    p_scenarios.add_argument("--max-workers", type=int, default=1,
                             help="worker processes slabbing the scenario "
                                  "axis (default 1: in-process)")
    p_scenarios.add_argument("--profile", action="store_true",
                             help="print a span/counter profile after the "
                                  "output")

    p_sens = sub.add_parser("sensitivity", help="robustness of the findings")
    p_sens.add_argument("--year", type=float, default=1995.5)
    p_sens.add_argument("--samples", type=int, default=200)
    p_sens.add_argument("--seed", type=int, default=0)
    p_sens.add_argument("--profile", action="store_true",
                        help="print a span/counter profile after the output")

    p_sim = sub.add_parser(
        "simulate", help="run a workload across the architecture spectrum"
    )
    p_sim.add_argument("workload", nargs="?", default=None,
                       help="suite workload name; omit to list")
    p_sim.add_argument("--nodes", type=int, default=16)

    p_sweep = sub.add_parser(
        "sweep", help="vectorized design-space sweep over the machine "
                      "catalog"
    )
    p_sweep.add_argument("workload", nargs="?", default=None,
                         help="suite workload name; omit to sweep the "
                              "whole suite")
    p_sweep.add_argument("--nodes", type=str, default="1:256",
                         metavar="SPEC",
                         help='node counts: comma list ("1,2,4,8") and/or '
                              'inclusive ranges "lo:hi[:step]" '
                              '(default "1:256")')
    p_sweep.add_argument("--max-workers", type=int, default=1,
                         help="worker processes for the machine-axis "
                              "fan-out (default 1: in-process)")
    p_sweep.add_argument("--profile", action="store_true",
                         help="print a span/counter profile after the "
                              "output")

    p_acq = sub.add_parser(
        "acquire", help="covert-acquisition premium for a capability level"
    )
    p_acq.add_argument("target_mtops", type=float)
    p_acq.add_argument("--year", type=float, default=1995.5)
    p_acq.add_argument("--attempts", type=int, default=1_000)

    p_report = sub.add_parser(
        "report", help="generate the full markdown review document"
    )
    p_report.add_argument("--year", type=float, default=1995.5)
    p_report.add_argument("--output", type=str, default=None,
                          help="write to a file instead of stdout")

    p_bench = sub.add_parser(
        "bench", help="time the batch hot paths against scalar references"
    )
    p_bench.add_argument("--quick", action="store_true",
                         help="smaller inputs and fewer repeats (CI smoke)")
    p_bench.add_argument("--output", "--json-out", dest="output", type=str,
                         default="BENCH_perf.json", metavar="PATH",
                         help='JSON output path ("-" to skip writing); '
                              "--json-out is an alias so CI jobs can keep "
                              "the working tree clean")
    p_bench.add_argument("--profile", action="store_true",
                         help="print a span/counter profile after the output")

    p_serve = sub.add_parser(
        "serve", help="run the micro-batching HTTP serving front end"
    )
    p_serve.add_argument("--host", type=str, default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8040)
    p_serve.add_argument("--max-batch", type=int, default=64,
                         help="largest coalesced dispatch (default 64)")
    p_serve.add_argument("--max-wait-ms", type=float, default=0.0,
                         help="linger bound for a fuller batch "
                              "(default 0: dispatch greedily)")
    p_serve.add_argument("--queue-limit", type=int, default=1024,
                         help="bounded queue depth; beyond it requests "
                              "get 429 + Retry-After")
    p_serve.add_argument("--cache-size", type=int, default=1024,
                         help="LRU response-cache entries (0 disables)")
    p_serve.add_argument("--deadline-ms", type=float, default=5000.0,
                         help="per-request deadline; missed -> 504")
    p_serve.add_argument("--workers", type=int, default=1,
                         help="pre-forked worker processes sharing the "
                              "port (default 1: single process, no fork)")
    p_serve.add_argument("--snapshot", type=str, default=None,
                         metavar="DIR",
                         help="load a `repro snapshot` artifact before "
                              "serving (mmap-shared across workers); "
                              "stale snapshots are refused")
    p_serve.add_argument("--drain-timeout", type=float, default=5.0,
                         metavar="SECONDS",
                         help="on SIGTERM/SIGINT, bound for draining "
                              "in-flight batches before workers are "
                              "killed (default 5)")

    p_mcp = sub.add_parser(
        "mcp", help="serve line-delimited JSON-RPC over stdin/stdout "
                    "(the MCP-style agentic bridge)"
    )
    p_mcp.add_argument("--cache-size", type=int, default=1024,
                       help="LRU response-cache entries (0 disables)")
    p_mcp.add_argument("--deadline-ms", type=float, default=5000.0,
                       help="per-request deadline; missed -> JSON-RPC "
                            "error -32002")

    p_snap = sub.add_parser(
        "snapshot", help="serialize the columnar stores for zero-rebuild "
                         "serving cold starts"
    )
    p_snap.add_argument("--output", type=str, default=".repro-snapshot",
                        metavar="DIR",
                        help="snapshot directory (default .repro-snapshot)")
    p_snap.add_argument("--check", action="store_true",
                        help="validate an existing snapshot against the "
                             "live catalog instead of building")
    p_snap.add_argument("--profile", action="store_true",
                        help="print a span/counter profile after the "
                             "output")

    p_catalog = sub.add_parser(
        "catalog", help="apply event-sourced catalog mutations"
    )
    cat_sub = p_catalog.add_subparsers(dest="catalog_command",
                                       required=True)
    p_apply = cat_sub.add_parser(
        "apply", help="apply catalog events from a JSON file "
                      "(in process, or remotely via --port)"
    )
    p_apply.add_argument("events", type=str, metavar="FILE",
                         help="JSON file holding one event object or a "
                              "list of them ('-' reads stdin)")
    p_apply.add_argument("--port", type=int, default=None,
                         help="POST each event to a running server's "
                              "/catalog/append instead of applying in "
                              "process")
    p_apply.add_argument("--host", type=str, default="127.0.0.1")
    p_apply.add_argument("--fleet-size", type=int, default=1,
                         metavar="N",
                         help="with --port, distinct worker processes "
                              "that must acknowledge each event (a "
                              "pre-forked fleet balances fresh "
                              "connections across workers; replays are "
                              "no-ops, so repeated POSTs converge the "
                              "whole fleet)")
    p_apply.add_argument("--attempts", type=int, default=64,
                         help="with --port, cap on fresh-connection "
                              "POSTs while converging the fleet "
                              "(default 64)")
    p_apply.add_argument("--profile", action="store_true",
                         help="print a span/counter profile after the "
                              "output")

    return parser


def _cmd_review(args: argparse.Namespace) -> str:
    review = run_annual_review(args.year,
                               ThresholdPolicy[args.policy.upper()])
    bounds = review.bounds
    lines = [f"Annual review, {args.year}"]
    for report in (review.premises.premise1, review.premises.premise2,
                   review.premises.premise3):
        verdict = "HOLDS" if report.holds else "FAILS"
        lines.append(f"  premise {report.number}: {verdict}")
    lines.append(render_table(
        ["quantity", "Mtops"],
        [
            ["lower bound (uncontrollable)", bounds.uncontrollable_mtops],
            ["lower bound (foreign)", bounds.foreign_mtops],
            ["upper bound (application)", bounds.upper_application_mtops
             or float("nan")],
            ["upper bound (max available)", bounds.upper_theoretical_mtops],
            ["threshold in force", review.threshold_in_force],
            ["recommended threshold", review.recommendation.threshold_mtops],
        ],
    ))
    lines.append(f"threshold in force is "
                 f"{'STALE' if review.threshold_is_stale else 'current'}")
    return "\n".join(lines)


def _cmd_headline(_args: argparse.Namespace) -> str:
    hs = headline_summary()
    return render_table(
        ["quantity", "paper", "reproduced"],
        [
            ["lower bound mid-1995", "4,000-5,000",
             round(hs.lower_bound_mid_1995)],
            ["lower bound late 96/97", "~7,500",
             round(hs.lower_bound_late_1996_97)],
            ["lower bound end of decade", ">16,000",
             round(hs.lower_bound_end_of_decade)],
            ["RDT&E cluster", "~7,000", round(hs.rdte_cluster_start or 0)],
            ["military-ops cluster", "~10,000",
             round(hs.milops_cluster_start or 0)],
            ["apps below bound (1995)", "majority",
             f"{hs.fraction_apps_below_lower_1995:.0%}"],
        ],
        title="Headline findings",
    )


def _validate_rate_args(args: argparse.Namespace) -> None:
    """Reject bad ``rate`` flags up front, naming the flag the user typed
    rather than the internal field the value would have landed in."""
    if not args.clock_mhz > 0:
        raise ValidationError(
            f"--clock-mhz must be positive (got {args.clock_mhz:g})",
            context={"flag": "--clock-mhz", "got": args.clock_mhz,
                     "valid": "> 0"},
        )
    if not args.word_bits > 0:
        raise ValidationError(
            f"--word-bits must be positive (got {args.word_bits:g})",
            context={"flag": "--word-bits", "got": args.word_bits,
                     "valid": "> 0"},
        )
    if args.processors < 1:
        raise ValidationError(
            f"--processors must be at least 1 (got {args.processors})",
            context={"flag": "--processors", "got": args.processors,
                     "valid": ">= 1"},
        )
    for flag, value in (("--fp-per-cycle", args.fp_per_cycle),
                        ("--int-per-cycle", args.int_per_cycle)):
        if value < 0:
            raise ValidationError(
                f"{flag} must be non-negative (got {value:g})",
                context={"flag": flag, "got": value, "valid": ">= 0"},
            )


def _cmd_rate(args: argparse.Namespace) -> str:
    _validate_rate_args(args)
    element = ComputingElement(
        name="cli", clock_mhz=args.clock_mhz, word_bits=args.word_bits,
        fp_ops_per_cycle=args.fp_per_cycle,
        int_ops_per_cycle=args.int_per_cycle,
        concurrent_int_fp=args.concurrent,
    )
    rating = ctp_homogeneous(element, args.processors,
                             Coupling[args.coupling.upper()])
    threshold = threshold_at(args.year)
    verdict = "supercomputer" if rating >= threshold else "below definition"
    return (f"CTP = {rating:,.1f} Mtops "
            f"({args.processors} x {args.clock_mhz:g} MHz, "
            f"{args.coupling})\n"
            f"vs {threshold:,.0f}-Mtops definition in force "
            f"{args.year}: {verdict}")


def _cmd_machine(args: argparse.Namespace) -> str:
    if args.key is None:
        rows = [[m.key, f"{m.year:.1f}", round(m.ctp_mtops, 1)]
                for m in sorted(_machine_catalog.COMMERCIAL_SYSTEMS,
                                key=lambda m: (m.year, m.key))]
        return render_table(["machine", "introduced", "CTP (Mtops)"], rows,
                            title="Commercial catalog")
    machine = find_machine(args.key)
    if args.worksheet:
        from repro.ctp.worksheet import machine_worksheet

        return machine_worksheet(args.key)
    a = assess(machine)
    rows = [
        ["introduced", f"{machine.year:.1f}"],
        ["architecture", machine.architecture.value],
        ["processors", machine.n_processors],
        ["CTP (Mtops)", round(machine.ctp_mtops, 1)],
        ["max-config CTP", round(machine.max_configuration().ctp_mtops, 1)],
        ["controllability index", round(a.index, 3)],
        ["classification", a.classification.value],
    ]
    return render_table(["field", "value"], rows, title=machine.key)


def _cmd_license(args: argparse.Namespace) -> str:
    threshold = args.threshold or threshold_at(args.year)
    policy = ExportControlPolicy(threshold)
    d = policy.license_decision(find_machine(args.key), args.destination)
    return render_table(
        ["field", "value"],
        [
            ["rated Mtops", round(d.rating_mtops, 1)],
            ["threshold", round(threshold, 1)],
            ["tier", d.tier.value],
            ["license required", "yes" if d.requires_license else "no"],
            ["safeguards", "yes" if d.safeguards_required else "no"],
            ["outcome", "approved" if d.approved else "DENIED"],
        ],
        title=f"{args.key} -> {args.destination}",
    )


def _parse_float_spec(spec: str, flag: str) -> list[float]:
    """Parse a float axis spec: comma-separated values and/or inclusive
    ``lo:hi[:step]`` ranges (step defaults to 1).  Duplicates collapse;
    the result comes back ascending."""
    values: list[float] = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        parts = token.split(":")
        try:
            if len(parts) == 1:
                values.append(float(parts[0]))
                continue
            if len(parts) > 3:
                raise ValueError(token)
            lo, hi = float(parts[0]), float(parts[1])
            step = float(parts[2]) if len(parts) == 3 else 1.0
        except ValueError:
            raise ValidationError(
                f'{flag}: cannot parse "{token}" '
                f'(want a number or "lo:hi[:step]")',
                context={"flag": flag, "got": token,
                         "valid": 'number or "lo:hi[:step]"'},
            ) from None
        if not step > 0:
            raise ValidationError(
                f'{flag}: step must be positive in "{token}"',
                context={"flag": flag, "got": step, "valid": "> 0"},
            )
        # lo + k*step keeps the points exact for representable steps,
        # where accumulating "x += step" would drift.
        n_steps = int((hi - lo) / step + 1e-9)
        values.extend(lo + k * step for k in range(n_steps + 1))
    return sorted(set(values))


def _parse_policy_points(specs: list[str]) -> list[tuple[float, float]]:
    """Parse repeatable ``--point T,Y`` flags into (threshold, year)."""
    points = []
    for spec in specs:
        parts = spec.split(",")
        if len(parts) != 2:
            raise ValidationError(
                f'--point expects "THRESHOLD,YEAR" (got {spec!r})',
                context={"flag": "--point", "got": spec,
                         "valid": 'e.g. "2000,1995.5"'},
            )
        try:
            points.append((float(parts[0]), float(parts[1])))
        except ValueError:
            raise ValidationError(
                f"--point values must be numbers (got {spec!r})",
                context={"flag": "--point", "got": spec,
                         "valid": 'e.g. "2000,1995.5"'},
            ) from None
    return points


def _cmd_policy_points(args: argparse.Namespace) -> str:
    """Point-query path: one tile touch per cell, no full-grid build."""
    from repro.tiles import policy_cells, tile_plane_info

    points = _parse_policy_points(args.point)
    before = tile_plane_info()["policy"]
    cells = policy_cells(points)
    after = tile_plane_info()["policy"]
    rows = []
    for cell in cells:
        rows.append([
            f"{cell.threshold_mtops:,.0f}",
            f"{cell.year:g}",
            f"{cell.frontier_mtops:,.0f}",
            len(cell.protected_applications),
            len(cell.illusory_applications),
            f"{cell.burden_units:,.0f}",
            len(cell.uncontrollable_covered_systems),
            "yes" if cell.credible else "NO",
        ])
    table = render_table(
        ["threshold", "year", "frontier", "protected", "illusory",
         "burden", "uncontrollable", "credible"],
        rows, title="Policy scorecards (Mtops)",
    )
    built = (after["builds"] - before["builds"]
             + after["partial_builds"] - before["partial_builds"])
    hits = after["cache"]["hits"] - before["cache"]["hits"]
    footer = (f"{len(points)} point quer{'y' if len(points) == 1 else 'ies'}"
              f" via the tile plane: {built} tile build(s), "
              f"{hits} tile hit(s), 0 full-grid builds")
    return table + "\n" + footer


def _cmd_policy(args: argparse.Namespace) -> str:
    from repro.diffusion.policy_grid import evaluate_policy_grid

    if args.point:
        return _cmd_policy_points(args)
    if args.max_workers < 1:
        raise ValidationError(
            f"--max-workers must be at least 1 (got {args.max_workers})",
            context={"flag": "--max-workers", "got": args.max_workers,
                     "valid": ">= 1"},
        )
    thresholds = _parse_float_spec(args.thresholds, "--thresholds")
    years = _parse_float_spec(args.years, "--years")
    grid = evaluate_policy_grid(thresholds, years,
                                max_workers=args.max_workers)
    rows = []
    for i, threshold in enumerate(grid.thresholds):
        for j, year in enumerate(grid.years):
            rows.append([
                f"{threshold:,.0f}",
                f"{year:g}",
                f"{grid.frontier_mtops[j]:,.0f}",
                int(grid.protected_counts[i, j]),
                int(grid.illusory_counts[i, j]),
                f"{grid.burden_units[i, j]:,.0f}",
                int(grid.uncontrollable_counts[i, j]),
                "yes" if grid.credible[i, j] else "NO",
            ])
    table = render_table(
        ["threshold", "year", "frontier", "protected", "illusory",
         "burden", "uncontrollable", "credible"],
        rows, title="Policy scorecards (Mtops)",
    )
    n_credible = int(grid.credible.sum())
    footer = (f"{grid.credible.size:,} grid points "
              f"({len(grid.thresholds)} thresholds x "
              f"{len(grid.years)} years), {n_credible:,} credible, "
              f"{args.max_workers} worker process(es)")
    return table + "\n" + footer


def _scenario_worlds(args: argparse.Namespace) -> list:
    """Resolve ``--worlds`` presets plus ``--worlds-json`` objects; the
    historical baseline is always world 0 (the comparison anchor)."""
    from repro.scenarios import HISTORICAL, preset_scenario, \
        scenario_from_payload

    worlds = [HISTORICAL]
    for token in args.worlds.split(","):
        token = token.strip()
        if not token:
            continue
        scenario = preset_scenario(token)
        if scenario not in worlds:
            worlds.append(scenario)
    if args.worlds_json is not None:
        import json
        import sys

        try:
            if args.worlds_json == "-":
                text = sys.stdin.read()
            else:
                with open(args.worlds_json, encoding="utf-8") as handle:
                    text = handle.read()
        except OSError as exc:
            raise ValidationError(
                f"cannot read worlds from {args.worlds_json}: {exc}",
                context={"flag": "--worlds-json", "got": args.worlds_json,
                         "valid": "a readable JSON file or '-'"},
            ) from None
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise ValidationError(
                f"worlds file is not valid JSON: {exc}",
                context={"flag": "--worlds-json", "got": args.worlds_json},
            ) from None
        entries = payload if isinstance(payload, list) else [payload]
        for entry in entries:
            scenario = scenario_from_payload(entry)
            if scenario not in worlds:
                worlds.append(scenario)
    return worlds


def _cmd_scenarios(args: argparse.Namespace) -> str:
    from repro.scenarios import evaluate_scenario_grid

    if args.max_workers < 1:
        raise ValidationError(
            f"--max-workers must be at least 1 (got {args.max_workers})",
            context={"flag": "--max-workers", "got": args.max_workers,
                     "valid": ">= 1"},
        )
    worlds = _scenario_worlds(args)
    thresholds = _parse_float_spec(args.thresholds, "--thresholds")
    years = _parse_float_spec(args.years, "--years")
    grid = evaluate_scenario_grid(worlds, thresholds, years,
                                  max_workers=args.max_workers)

    def _year(value: float | None) -> str:
        return "-" if value is None else f"{value:g}"

    summary_rows = []
    for w, scenario in enumerate(grid.scenarios):
        summary_rows.append([
            scenario.name,
            _year(grid.divergence_year(w)) if w else "-",
            _year(grid.credibility_loss_year(w)),
            f"{grid.burden_delta(w):+,.0f}" if w else "baseline",
        ])
    summary = render_table(
        ["world", "diverges", "credibility lost", "burden vs historical"],
        summary_rows, title="World comparison",
    )

    rows = []
    for i, threshold in enumerate(grid.thresholds):
        for j, year in enumerate(grid.years):
            cells = [f"{threshold:,.0f}", f"{year:g}"]
            for w in range(len(grid.scenarios)):
                flag = "yes" if grid.credible[w, i, j] else "NO"
                cells.append(
                    f"{flag}/{grid.burden_units[w, i, j]:,.0f}")
            rows.append(cells)
    detail = render_table(
        ["threshold", "year"] + [s.name for s in grid.scenarios],
        rows, title="Credible?/burden per world (Mtops)",
    )
    n_w, n_t, n_y = grid.shape
    footer = (f"{n_w * n_t * n_y:,} tensor cells ({n_w} worlds x "
              f"{n_t} thresholds x {n_y} years), "
              f"{args.max_workers} worker process(es), "
              f"epoch {grid.epoch}")
    return summary + "\n\n" + detail + "\n" + footer


def _cmd_sensitivity(args: argparse.Namespace) -> str:
    bs = bound_sensitivity(args.year, args.samples, args.seed)
    stability = classification_stability(args.samples, args.seed)
    lines = [
        f"Lower bound at {args.year} over {args.samples} weightings:",
        f"  median {bs.median:,.0f} Mtops; "
        f"90% interval [{bs.quantile(0.05):,.0f}, {bs.quantile(0.95):,.0f}]",
        f"  fraction in the paper's 4,000-5,000 band: "
        f"{bs.fraction_in_band(4000, 5000):.0%}",
        "",
        render_table(
            ["machine", "default verdict", "agreement"],
            [[r.machine_key, r.default_classification.value,
              f"{r.agreement:.0%}" + (" (borderline)" if r.is_borderline
                                      else "")]
             for r in stability],
            title="Table 4 verdict stability",
        ),
    ]
    return "\n".join(lines)


def _cmd_simulate(args: argparse.Namespace) -> str:
    from repro.simulate.cluster_study import compare_architectures
    from repro.simulate.workloads import WORKLOAD_SUITE

    if args.workload is None:
        return render_table(
            ["workload", "pattern", "steps", "Mops/step"],
            [[w.name, w.pattern.value, w.steps,
              round(w.granularity_mops_per_step, 1)]
             for w in WORKLOAD_SUITE],
            title="Workload suite",
        )
    comp = compare_architectures(args.workload, args.nodes)
    rows = []
    for r in comp.ranked():
        rows.append([
            r.machine.name,
            "-" if not r.feasible else round(r.time_s, 1),
            f"{r.efficiency:.0%}",
            r.infeasible_reason or "",
        ])
    table = render_table(
        ["machine", "time (s)", "efficiency", "note"], rows,
        title=f"{args.workload} on {args.nodes}-element machines",
    )
    penalty = comp.cluster_penalty()
    footer = ("no ad hoc cluster can run this workload"
              if penalty == float("inf")
              else f"SMP / ad-hoc-cluster efficiency ratio: {penalty:.1f}x")
    return table + "\n" + footer


def _parse_nodes_spec(spec: str) -> list[int]:
    """Parse a ``--nodes`` spec: comma-separated integers and/or
    inclusive ``lo:hi[:step]`` ranges, e.g. ``"1,2,4:16:4,32"``.
    Duplicates collapse; the result comes back ascending."""
    counts: list[int] = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        parts = token.split(":")
        try:
            if len(parts) == 1:
                counts.append(int(parts[0]))
                continue
            if len(parts) > 3:
                raise ValueError(token)
            lo, hi = int(parts[0]), int(parts[1])
            step = int(parts[2]) if len(parts) == 3 else 1
        except ValueError:
            raise ValidationError(
                f'--nodes: cannot parse "{token}" '
                f'(want an integer or "lo:hi[:step]")',
                context={"flag": "--nodes", "got": token,
                         "valid": 'int or "lo:hi[:step]"'},
            ) from None
        if step < 1:
            raise ValidationError(
                f'--nodes: step must be positive in "{token}"',
                context={"flag": "--nodes", "got": step, "valid": ">= 1"},
            )
        counts.extend(range(lo, hi + 1, step))
    return sorted(set(counts))


def _cmd_sweep(args: argparse.Namespace) -> str:
    from repro.parallel import sweep_parallel
    from repro.simulate.sweep import default_machine_catalog
    from repro.simulate.workloads import WORKLOAD_SUITE, find_workload

    if args.max_workers < 1:
        raise ValidationError(
            f"--max-workers must be at least 1 (got {args.max_workers})",
            context={"flag": "--max-workers", "got": args.max_workers,
                     "valid": ">= 1"},
        )
    counts = _parse_nodes_spec(args.nodes)
    machines = default_machine_catalog()
    workloads = ([find_workload(args.workload)] if args.workload
                 else list(WORKLOAD_SUITE))
    grid = sweep_parallel(machines, workloads, counts,
                          max_workers=args.max_workers)
    import numpy as np

    if args.workload:
        # One workload: the best node count per catalog machine.
        rows = []
        for i, machine in enumerate(machines):
            times = np.where(grid.feasible[i, 0, :],
                             grid.times_s[i, 0, :], np.inf)
            if not np.isfinite(times).any():
                rows.append([machine.name, "-", "-", "-", "-",
                             grid.reason_text(i, 0, len(counts) - 1)])
                continue
            k = int(np.argmin(times))
            rows.append([
                machine.name, int(grid.node_counts[k]),
                round(float(times[k]), 1),
                f"{grid.speedups[i, 0, k]:.1f}x",
                f"{grid.efficiencies[i, 0, k]:.0%}",
                "",
            ])
        table = render_table(
            ["machine", "best nodes", "time (s)", "speedup", "efficiency",
             "note"],
            rows, title=f"{args.workload}: best configuration per machine",
        )
    else:
        # Whole suite: the single best feasible configuration per workload.
        rows = []
        for j, workload in enumerate(workloads):
            times = np.where(grid.feasible[:, j, :],
                             grid.times_s[:, j, :], np.inf)
            if not np.isfinite(times).any():
                rows.append([workload.name, "-", "-", "-", "-"])
                continue
            i, k = np.unravel_index(int(np.argmin(times)), times.shape)
            rows.append([
                workload.name, machines[i].name,
                int(grid.node_counts[k]),
                round(float(times[i, k]), 1),
                f"{grid.efficiencies[i, j, k]:.0%}",
            ])
        table = render_table(
            ["workload", "best machine", "nodes", "time (s)",
             "efficiency"],
            rows, title="Design-space sweep: best feasible configuration",
        )
    footer = (f"{grid.feasible.size:,} grid points "
              f"({len(machines)} machines x {len(workloads)} workloads x "
              f"{len(counts)} node counts), "
              f"{args.max_workers} worker process(es)")
    return table + "\n" + footer


def _cmd_acquire(args: argparse.Namespace) -> str:
    premium = acquisition_premium(args.target_mtops, args.year)
    if not premium.feasible:
        return (f"no cataloged system reaches {args.target_mtops:,.0f} "
                f"Mtops at {args.year}")
    stats = simulate_acquisitions(args.target_mtops, args.year,
                                  n_attempts=args.attempts)
    return render_table(
        ["field", "value"],
        [
            ["easiest adequate system", premium.machine.key],
            ["severity", round(premium.controllability, 3)],
            ["expected delay (years)", round(premium.expected_delay_years, 2)],
            ["cost multiple", round(premium.cost_multiplier, 2)],
            ["detection probability",
             f"{premium.detection_probability:.0%}"],
            ["Monte-Carlo success rate", f"{stats.success_rate:.0%}"],
            ["Monte-Carlo mean delay (years)",
             round(stats.mean_delay_years, 2)],
        ],
        title=f"Acquiring {args.target_mtops:,.0f} Mtops at {args.year}",
    )


def _cmd_report(args: argparse.Namespace) -> str:
    from repro.reporting.report import generate_review_report

    document = generate_review_report(args.year)
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(document)
        return f"wrote {args.output} ({len(document.splitlines())} lines)"
    return document


def _cmd_serve(args: argparse.Namespace) -> str:
    from repro.serve.server import ServeConfig, run_server

    if args.workers < 1:
        raise ValidationError(
            f"--workers must be at least 1 (got {args.workers})",
            context={"flag": "--workers", "got": args.workers,
                     "valid": ">= 1"},
        )
    if not args.drain_timeout >= 0:
        raise ValidationError(
            f"--drain-timeout must be non-negative "
            f"(got {args.drain_timeout:g})",
            context={"flag": "--drain-timeout", "got": args.drain_timeout,
                     "valid": ">= 0"},
        )
    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        queue_limit=args.queue_limit,
        cache_size=args.cache_size,
        deadline_ms=args.deadline_ms,
        drain_timeout=args.drain_timeout,
    )
    if args.snapshot is not None:
        from repro.store import load_snapshot

        load_snapshot(args.snapshot)
    if args.workers > 1:
        from repro.serve.prefork import run_prefork_server

        return run_prefork_server(config, n_workers=args.workers)
    return run_server(config)


def _cmd_mcp(args: argparse.Namespace) -> str:
    """Run the stdio JSON-RPC bridge until the host closes stdin.

    A thin consumer of the serving engine: every method forwards to the
    same transport-free ``ServiceEngine.handle`` the HTTP front end
    uses (``batch`` runs the multi-query planner), so an MCP host gets
    canonical validation, caching, and fusion without a socket.
    """
    from repro.serve.rpc import run_stdio_bridge
    from repro.serve.server import ServeConfig, ServiceEngine

    config = ServeConfig(cache_size=args.cache_size,
                         deadline_ms=args.deadline_ms)
    engine = ServiceEngine(config)
    try:
        served = run_stdio_bridge(engine)
    finally:
        engine.close()
    # The bridge owns stdout (one JSON value per line); the summary must
    # not pollute the protocol stream, so it goes to stderr directly.
    print(f"mcp: served {served} request(s)", file=sys.stderr)
    return ""


def _cmd_snapshot(args: argparse.Namespace) -> str:
    from repro.store import build_snapshot, load_snapshot

    if args.check:
        info = load_snapshot(args.output)
        return (f"snapshot {args.output} OK: {info.n_arrays} arrays, "
                f"hash {info.manifest_hash[:16]} matches the live catalog")
    info = build_snapshot(args.output)
    return (f"wrote {args.output}: {info.n_arrays} arrays, "
            f"hash {info.manifest_hash[:16]}")


def _read_catalog_events(source: str) -> list[dict]:
    """Event payloads from a JSON file (or stdin): one object or a list."""
    import json
    import sys

    try:
        if source == "-":
            text = sys.stdin.read()
        else:
            with open(source, encoding="utf-8") as handle:
                text = handle.read()
    except OSError as exc:
        raise ValidationError(
            f"cannot read events from {source}: {exc}",
            context={"got": source, "valid": "a readable JSON file or '-'"},
        ) from None
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise ValidationError(
            f"events file is not valid JSON: {exc}",
            context={"got": source},
        ) from None
    events = payload if isinstance(payload, list) else [payload]
    if not events or not all(isinstance(e, dict) for e in events):
        raise ValidationError(
            "events must be a JSON object or a non-empty list of objects",
            context={"got": type(payload).__name__,
                     "valid": "object | [object, ...]"},
        )
    return events


def _cmd_catalog(args: argparse.Namespace) -> str:
    events = _read_catalog_events(args.events)
    if args.port is None:
        return _apply_events_local(events)
    return _apply_events_remote(events, args)


def _apply_events_local(events: list[dict]) -> str:
    from repro.catalog import events as catalog_events

    lines = []
    for payload in events:
        event = catalog_events.parse_event(payload)
        outcome = catalog_events.apply_event(event)
        verb = "applied" if outcome.applied else "no-op (already applied)"
        lines.append(f"{outcome.kind} {outcome.key}: {verb}, "
                     f"epoch {outcome.epoch}")
    lines.append(f"catalog epoch is now {_current_catalog_epoch()}")
    return "\n".join(lines)


def _current_catalog_epoch() -> int:
    from repro.catalog.registry import current_epoch

    return current_epoch()


def _apply_events_remote(events: list[dict],
                         args: argparse.Namespace) -> str:
    """Converge a (possibly pre-forked) fleet on every event.

    Each POST rides a *fresh* connection, which a SO_REUSEPORT fleet
    load-balances across workers; because replaying an applied event is
    an explicit no-op, repeatedly POSTing until ``--fleet-size`` distinct
    pids have answered converges every worker process.
    """
    from repro.serve.client import ServeClient

    if args.fleet_size < 1:
        raise ValidationError(
            f"--fleet-size must be at least 1 (got {args.fleet_size})",
            context={"flag": "--fleet-size", "got": args.fleet_size,
                     "valid": ">= 1"},
        )
    if args.attempts < args.fleet_size:
        raise ValidationError(
            "--attempts must be at least --fleet-size",
            context={"flag": "--attempts", "got": args.attempts,
                     "valid": f">= {args.fleet_size}"},
        )
    lines = []
    for payload in events:
        acknowledged: set[int] = set()
        epoch = None
        kind = key = None
        for _ in range(args.attempts):
            client = ServeClient(args.host, args.port)
            try:
                body = client.catalog_append(payload).require_ok()
            finally:
                client.close()
            acknowledged.add(int(body["pid"]))
            epoch, kind, key = body["epoch"], body["kind"], body["key"]
            if len(acknowledged) >= args.fleet_size:
                break
        if len(acknowledged) < args.fleet_size:
            raise ValidationError(
                f"only {len(acknowledged)} of {args.fleet_size} workers "
                f"acknowledged {payload.get('event')} after "
                f"{args.attempts} attempts",
                context={"got": sorted(acknowledged),
                         "valid": f"{args.fleet_size} distinct pids",
                         "flag": "--attempts"},
            )
        lines.append(f"{kind} {key}: epoch {epoch}, "
                     f"{len(acknowledged)} worker(s) converged "
                     f"(pids {sorted(acknowledged)})")
    return "\n".join(lines)


def _cmd_bench(args: argparse.Namespace) -> str:
    from repro.perf.workloads import run_benchmarks

    output = None if args.output == "-" else args.output
    payload = run_benchmarks(quick=args.quick, output=output)
    rows = [
        [w["name"],
         f"{w['scalar']['best_seconds'] * 1e3:,.2f}",
         f"{w['batch']['best_seconds'] * 1e3:,.2f}",
         f"{w['speedup']:,.1f}x",
         f"{w['max_rel_err']:.1e}"]
        for w in payload["workloads"]
    ]
    table = render_table(
        ["workload", "scalar (ms)", "batch (ms)", "speedup", "max rel err"],
        rows,
        title="Batch layer vs seed scalar"
        + (" (quick)" if args.quick else ""),
    )
    if output is not None:
        table += f"\nwrote {output}"
    return table


_COMMANDS = {
    "review": _cmd_review,
    "headline": _cmd_headline,
    "rate": _cmd_rate,
    "machine": _cmd_machine,
    "license": _cmd_license,
    "policy": _cmd_policy,
    "scenarios": _cmd_scenarios,
    "sensitivity": _cmd_sensitivity,
    "simulate": _cmd_simulate,
    "sweep": _cmd_sweep,
    "acquire": _cmd_acquire,
    "report": _cmd_report,
    "bench": _cmd_bench,
    "serve": _cmd_serve,
    "mcp": _cmd_mcp,
    "snapshot": _cmd_snapshot,
    "catalog": _cmd_catalog,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code.

    Commands that accept ``--profile`` run under
    :func:`repro.obs.profile` and append the rendered span tree and
    counter deltas after their normal output.  Any
    :class:`repro.obs.ReproError` becomes a one-line ``error:``
    diagnostic and a nonzero exit — no traceback.
    """
    args = build_parser().parse_args(argv)
    profiling = getattr(args, "profile", False)
    try:
        if profiling:
            with profile() as prof:
                output = _COMMANDS[args.command](args)
            print(output)
            print()
            print(prof.render())
        else:
            output = _COMMANDS[args.command](args)
            if output:  # "" = the command owned stdout itself (mcp)
                print(output)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        return 0
    except ReproError as exc:
        print(f"error: {exc.diagnostic()}")
        return 1
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}")
        return 1
    return 0
