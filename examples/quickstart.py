#!/usr/bin/env python
"""Quickstart: run the paper's June-1995 analysis end to end.

Derives the lower bound of controllability, tests the three basic
premises, clusters the protectable applications, and recommends a control
threshold under each of the three selection policies — the contents of
Chapter 5 / Figure 11, regenerated.

Run:  python examples/quickstart.py
"""

from repro import (
    ThresholdPolicy,
    evaluate_premises,
    run_annual_review,
    select_threshold,
)
from repro.core.framework import application_clusters
from repro.reporting.tables import render_table

YEAR = 1995.5


def main() -> None:
    review = run_annual_review(YEAR)
    bounds = review.bounds

    print(f"=== Annual review, {YEAR} (the study's snapshot) ===\n")

    premises = evaluate_premises(YEAR)
    for report in (premises.premise1, premises.premise2, premises.premise3):
        verdict = "HOLDS" if report.holds else "FAILS"
        print(f"Premise {report.number} [{verdict}]: {report.statement}")
        for line in report.evidence[:3]:
            print(f"    - {line}")
    print()

    print(render_table(
        ["quantity", "Mtops"],
        [
            ["most powerful uncontrollable system", bounds.uncontrollable_mtops],
            ["foreign indigenous envelope", bounds.foreign_mtops],
            ["=> lower bound (line A)", bounds.lower_mtops],
            ["smallest protectable application minimum",
             bounds.upper_application_mtops],
            ["most powerful system available (line D)",
             bounds.upper_theoretical_mtops],
            ["threshold actually in force", review.threshold_in_force],
        ],
        title="Threshold bounds",
    ))
    print(f"\nValid control range exists: {bounds.valid_range_exists}")
    print(f"In-force threshold is stale: {review.threshold_is_stale} "
          f"(paper: the 1,500-Mtops definition lagged the ~4,100-Mtops "
          f"frontier)\n")

    print("Protectable application clusters (paper: RDT&E group ~7,000, "
          "military-operations group ~10,000):")
    for start, members in application_clusters(YEAR):
        names = ", ".join(m.name for m in members[:4])
        more = "" if len(members) <= 4 else f" (+{len(members) - 4} more)"
        print(f"  starting {start:>9,.0f} Mtops: {names}{more}")
    print()

    rows = []
    for policy in ThresholdPolicy:
        s = select_threshold(YEAR, policy)
        rows.append([policy.value, s.threshold_mtops,
                     len(s.applications_given_up), s.units_decontrolled])
    print(render_table(
        ["selection policy", "threshold (Mtops)", "apps given up",
         "units decontrolled"],
        rows,
        title="Recommended thresholds",
    ))


if __name__ == "__main__":
    main()
