"""Tests for the CTP rating worksheets."""

import pytest

from repro.cli import main
from repro.ctp import ComputingElement, Coupling, ctp_homogeneous
from repro.ctp.worksheet import machine_worksheet, rating_worksheet


def _element(concurrent=True):
    return ComputingElement("demo", clock_mhz=100.0, word_bits=32.0,
                            fp_ops_per_cycle=2.0, int_ops_per_cycle=1.0,
                            concurrent_int_fp=concurrent)


class TestRatingWorksheet:
    def test_final_line_matches_metric(self):
        element = _element()
        sheet = rating_worksheet(element, 8, Coupling.SHARED)
        value = ctp_homogeneous(element, 8, Coupling.SHARED)
        assert f"{value:,.1f} Mtops" in sheet.splitlines()[-1]

    def test_steps_present(self):
        sheet = rating_worksheet(_element(), 4, Coupling.DISTRIBUTED)
        assert "1. rates" in sheet
        assert "2. word length" in sheet
        assert "3. element TP" in sheet
        assert "4. credits" in sheet
        assert "5. CTP" in sheet

    def test_word_length_shown(self):
        sheet = rating_worksheet(_element(), 1, Coupling.SHARED)
        assert "1/3 + 32/96" in sheet
        assert "0.6667" in sheet

    def test_single_element_no_aggregation(self):
        sheet = rating_worksheet(_element(), 1, Coupling.SHARED)
        assert "no aggregation" in sheet

    def test_combine_mode_reported(self):
        assert "concurrent units" in rating_worksheet(_element(True), 2,
                                                      Coupling.SHARED)
        assert "single-issue" in rating_worksheet(_element(False), 2,
                                                  Coupling.SHARED)

    def test_long_credit_lists_elided(self):
        sheet = rating_worksheet(_element(), 64, Coupling.DISTRIBUTED)
        assert "..." in sheet

    def test_validation(self):
        with pytest.raises(ValueError):
            rating_worksheet(_element(), 0, Coupling.SHARED)


class TestMachineWorksheet:
    def test_c916_reproduces_quote(self):
        sheet = machine_worksheet("Cray C916")
        assert "21,137.4 Mtops" in sheet       # derived
        assert "21,125.0 Mtops" in sheet       # paper-quoted

    def test_quoted_only_fallback(self):
        sheet = machine_worksheet("Mercury RACE array")
        assert "paper-quoted; no element data" in sheet

    def test_unknown_machine(self):
        with pytest.raises(KeyError):
            machine_worksheet("Cray C917")

    def test_cli_flag(self, capsys):
        code = main(["machine", "Cray C916", "--worksheet"])
        out = capsys.readouterr().out
        assert code == 0
        assert "CTP rating worksheet" in out
