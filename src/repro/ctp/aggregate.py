"""Aggregation of multiple computing elements into one CTP rating.

The CTP of a multiprocessor is a discounted sum of per-element theoretical
performances::

    CTP = TP_1 + C_2 * TP_2 + ... + C_n * TP_n

with elements ordered from most to least powerful.  The credit schedule
``C_i`` depends on how tightly the elements are coupled:

* **Shared memory (SMP)** — the documented coefficient: ``C_i = 0.75`` for
  every additional element.  A 16-processor SMP therefore rates
  ``TP * (1 + 15 * 0.75) = 12.25 * TP``; with the paper's quoted Cray C916
  rating of 21,125 Mtops this implies ~1,724 Mtops per C90 processor.
* **Distributed memory (MPP)** — a calibrated declining schedule
  ``C_i = 0.75 / (i - 1)**gamma`` with ``gamma = 0.5`` by default.  The
  square-root decline reproduces the relative ratings the paper quotes for
  Intel iPSC/860 (128 nodes, 3,485 Mtops) and Paragon (150 nodes, 4,864
  Mtops) to within a few percent once the 40 vs 50 MHz node clocks are
  accounted for.
* **Cluster** — the distributed schedule further discounted by an
  interconnect factor ``beta`` in (0, 1] reflecting LAN-class bandwidth and
  latency.  (The regulations of the era gave no approved way to compute a
  cluster CTP — paper, Chapter 3 note 55 — so this is an explicit extension,
  conservative relative to the CSTAC 75%-efficiency proposal the paper
  criticizes.)

All coefficients live in :class:`CTPParameters` so ablation benchmarks can
sweep them (see DESIGN.md, "Design choices worth ablating").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro._util import check_fraction, check_non_negative, check_positive
from repro.obs.errors import ValidationError

__all__ = [
    "Coupling",
    "CTPParameters",
    "DEFAULT_PARAMETERS",
    "aggregation_credits",
    "aggregate",
    "aggregate_homogeneous",
]


class Coupling(enum.Enum):
    """How a machine's computing elements are coupled."""

    #: Single computing element (uniprocessor); no aggregation discount.
    SINGLE = "single"
    #: Tightly coupled, shared main memory (symmetric multiprocessor).
    SHARED = "shared"
    #: Distributed memory with a proprietary high-speed interconnect (MPP).
    DISTRIBUTED = "distributed"
    #: Workstations on commodity networks coordinated by software (PVM etc.).
    CLUSTER = "cluster"


@dataclass(frozen=True)
class CTPParameters:
    """Tunable coefficients of the aggregation rule.

    Attributes
    ----------
    shared_credit:
        Credit for each additional shared-memory element (documented: 0.75).
    distributed_base:
        Leading credit for distributed-memory elements.
    distributed_gamma:
        Exponent of the per-element decline ``C_i = base / (i-1)**gamma``.
        ``gamma = 0`` recovers a flat schedule; 0.5 is the calibrated default.
    cluster_beta:
        Default interconnect discount applied on top of the distributed
        schedule for commodity-network clusters.
    """

    shared_credit: float = 0.75
    distributed_base: float = 0.75
    distributed_gamma: float = 0.5
    cluster_beta: float = 0.35

    def __post_init__(self) -> None:
        check_fraction(self.shared_credit, "shared_credit")
        check_fraction(self.distributed_base, "distributed_base")
        check_non_negative(self.distributed_gamma, "distributed_gamma")
        check_fraction(self.cluster_beta, "cluster_beta")
        if self.cluster_beta == 0.0:
            raise ValidationError("cluster_beta must be positive",
                                  context={"got": 0.0, "valid": "(0, 1]"})


DEFAULT_PARAMETERS = CTPParameters()


def aggregation_credits(
    n: int,
    coupling: Coupling,
    params: CTPParameters = DEFAULT_PARAMETERS,
    interconnect_beta: float | None = None,
) -> np.ndarray:
    """Credit vector ``[C_1 .. C_n]`` (``C_1`` is always 1).

    Parameters
    ----------
    n:
        Number of computing elements (>= 1).
    coupling:
        Coupling class of the configuration.
    params:
        Aggregation coefficients.
    interconnect_beta:
        Cluster-only override of the interconnect discount; ignored for
        other couplings.
    """
    if n < 1:
        raise ValidationError(f"n must be >= 1, got {n}",
                              context={"got": n, "valid": ">= 1"})
    if coupling is Coupling.SINGLE and n > 1:
        raise ValidationError("SINGLE coupling admits exactly one element",
                              context={"got": n, "valid": "n == 1"})

    credits = np.ones(n)
    if n == 1:
        return credits

    i = np.arange(2, n + 1, dtype=float)
    if coupling is Coupling.SHARED:
        credits[1:] = params.shared_credit
    elif coupling is Coupling.DISTRIBUTED:
        credits[1:] = params.distributed_base / (i - 1.0) ** params.distributed_gamma
    elif coupling is Coupling.CLUSTER:
        beta = params.cluster_beta if interconnect_beta is None else interconnect_beta
        beta = check_fraction(beta, "interconnect_beta")
        if beta == 0.0:
            raise ValidationError("interconnect_beta must be positive",
                                  context={"got": 0.0, "valid": "(0, 1]"})
        credits[1:] = beta * params.distributed_base / (i - 1.0) ** params.distributed_gamma
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown coupling {coupling!r}")
    return credits


def aggregate(
    tps: Sequence[float],
    coupling: Coupling,
    params: CTPParameters = DEFAULT_PARAMETERS,
    interconnect_beta: float | None = None,
) -> float:
    """CTP of a configuration given per-element theoretical performances.

    Elements are sorted in descending order before credits are applied, as
    the formula requires (``TP_1`` is the most powerful element).
    """
    if len(tps) == 0:
        raise ValidationError("at least one computing element is required",
                              context={"got": 0, "valid": ">= 1 element"})
    arr = np.sort(np.asarray(tps, dtype=float))[::-1]
    if np.any(arr <= 0) or not np.all(np.isfinite(arr)):
        raise ValidationError(
            "all theoretical performances must be finite and positive",
            context={"min": float(arr.min()), "valid": "> 0"},
        )
    effective = Coupling.SINGLE if len(arr) == 1 else coupling
    credits = aggregation_credits(len(arr), effective, params, interconnect_beta)
    return float(np.dot(credits, arr))


def aggregate_homogeneous(
    tp: float,
    n: int,
    coupling: Coupling,
    params: CTPParameters = DEFAULT_PARAMETERS,
    interconnect_beta: float | None = None,
) -> float:
    """CTP of ``n`` identical elements of theoretical performance ``tp``."""
    tp = check_positive(tp, "tp")
    if n < 1:
        raise ValidationError(f"n must be >= 1, got {n}",
                              context={"got": n, "valid": ">= 1"})
    effective = Coupling.SINGLE if n == 1 else coupling
    credits = aggregation_credits(n, effective, params, interconnect_beta)
    return float(tp * credits.sum())
