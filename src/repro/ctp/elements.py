"""Computing elements and the CTP word-length adjustment.

A *computing element* (CE) is the unit the CTP formula rates: a processor (or
an independently schedulable arithmetic complex within one) described by its
issue rates for fixed- and floating-point theoretical operations.

The word-length adjustment is the one piece of the CTP formula that survives
verbatim in the public record::

    L = 1/3 + WL / 96

so a 64-bit element scores ``L = 1.0``, a 32-bit element ``L = 2/3``, and an
8-bit microcontroller ``L = 5/12``.  This is why Mtops and Mflops are "roughly
equivalent" for 64-bit scientific machines (paper, Chapter 1, note 14).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import check_non_negative, check_positive
from repro.obs.errors import ValidationError

__all__ = ["word_length_factor", "ComputingElement"]


def word_length_factor(word_bits: float) -> float:
    """CTP word-length adjustment ``L = 1/3 + WL/96``.

    Parameters
    ----------
    word_bits:
        Operand word length in bits.  Must be positive; values above 64 are
        permitted (the formula keeps growing, matching the treatment of
        extended-precision hardware).
    """
    word_bits = check_positive(word_bits, "word_bits")
    return 1.0 / 3.0 + word_bits / 96.0


@dataclass(frozen=True)
class ComputingElement:
    """One CTP computing element.

    Parameters
    ----------
    name:
        Identifier, e.g. ``"i860XR"`` or ``"C90 CPU"``.
    clock_mhz:
        Clock frequency in MHz.
    word_bits:
        Operand word length in bits (drives the ``L`` adjustment).
    fp_ops_per_cycle:
        Peak floating-point theoretical operations issued per cycle
        (0 for elements with no floating-point hardware).  For vector
        processors this counts all concurrently operating pipelines
        (e.g. 2 pipes x (add + multiply) = 4).
    int_ops_per_cycle:
        Peak fixed-point theoretical operations issued per cycle.
    concurrent_int_fp:
        True when fixed- and floating-point units issue concurrently, in
        which case their rates add; otherwise the faster unit defines the
        element's rate.  Vector supercomputers with independent scalar and
        address hardware rate substantially above their Mflops peak for
        exactly this reason (e.g. Cray Y-MP/2 = 958 Mtops vs. 666 peak
        Mflops).
    """

    name: str
    clock_mhz: float
    word_bits: float = 64.0
    fp_ops_per_cycle: float = 1.0
    int_ops_per_cycle: float = 1.0
    concurrent_int_fp: bool = False
    notes: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        check_positive(self.clock_mhz, "clock_mhz")
        check_positive(self.word_bits, "word_bits")
        check_non_negative(self.fp_ops_per_cycle, "fp_ops_per_cycle")
        check_non_negative(self.int_ops_per_cycle, "int_ops_per_cycle")
        if self.fp_ops_per_cycle == 0.0 and self.int_ops_per_cycle == 0.0:
            raise ValidationError(
                f"computing element {self.name!r} has no arithmetic capability",
                context={"name": self.name,
                         "valid": "fp_ops_per_cycle or int_ops_per_cycle > 0"},
            )

    @property
    def length_factor(self) -> float:
        """Word-length adjustment ``L`` for this element."""
        return word_length_factor(self.word_bits)

    def scaled_clock(self, clock_mhz: float) -> "ComputingElement":
        """Return a copy of this element at a different clock frequency.

        Used by trend generators to model speed-bumped variants of a
        microprocessor family without re-specifying the microarchitecture.
        """
        check_positive(clock_mhz, "clock_mhz")
        return ComputingElement(
            name=self.name,
            clock_mhz=clock_mhz,
            word_bits=self.word_bits,
            fp_ops_per_cycle=self.fp_ops_per_cycle,
            int_ops_per_cycle=self.int_ops_per_cycle,
            concurrent_int_fp=self.concurrent_int_fp,
            notes=self.notes,
        )
