"""Domain cost models behind Chapter 4's quoted requirements.

These models *derive* the application minimums the catalog quotes, so the
numbers in Tables 14-15 are reproducible rather than merely recorded:

* :func:`weather_required_mtops` — grid-resolution/deadline cost model
  calibrated so a 120-km global model lands near 200 Mtops and a 45-km
  tactical forecast near 10,000 Mtops (the paper's anchors), with the
  C90/8's quoted 3,000 sustained Mflops <-> 10,625 Mtops fixing the
  sustained-to-CTP ratio;
* :func:`keysearch_required_mtops` / :func:`keysearch_time_days` — brute-
  force cryptoanalysis; shows 40-bit export-grade keys falling to
  frontier-class aggregates within a day while DES-56 stays out of reach
  of any 1995 ensemble;
* :func:`acoustic_campaign_days` — the submarine-CSM argument: 10-20-hour
  runs repeated 2,000 times make sub-frontier machines useless in
  schedule terms;
* :func:`aero_design_turnaround_hours` — design-iteration turnaround, the
  overnight-run economics of Chapter 2's F-22 discussion.
"""

from __future__ import annotations

from repro._util import check_positive

__all__ = [
    "SUSTAINED_MFLOPS_TO_MTOPS",
    "weather_required_mtops",
    "keysearch_required_mtops",
    "keysearch_time_days",
    "acoustic_campaign_days",
    "aero_design_turnaround_hours",
]

#: The paper's own anchor: an 8-node C90 delivers 3,000 sustained Mflops on
#: weather benchmarks and rates 10,625 Mtops.
SUSTAINED_MFLOPS_TO_MTOPS = 10_625.0 / 3_000.0

#: Flops per grid cell per time step (dynamics + physics), calibrated to
#: the 120-km and 45-km anchors.
_FLOPS_PER_CELL_STEP = 5_000.0
_VERTICAL_LEVELS = 20
#: Time step seconds per km of horizontal resolution (CFL-limited).
_DT_SECONDS_PER_KM = 3.75
_GLOBAL_AREA_KM2 = 5.1e8


def weather_required_mtops(
    resolution_km: float,
    forecast_hours: float,
    deadline_hours: float,
    area_km2: float = _GLOBAL_AREA_KM2,
) -> float:
    """CTP required to produce a forecast on deadline.

    Cost = cells x steps x flops-per-cell-step; the required sustained rate
    is cost over the deadline, converted to Mtops at the paper's anchor
    ratio.  Anchors reproduced (within model tolerance):

    * 120-km global 5-day forecast, 12-h deadline -> ~280 Mtops
      (paper: "a workstation with performance in the 200 Mtops range");
    * 45-km global 36-h forecast, 2-h deadline -> ~9,500 Mtops
      (paper: "computers rated in excess of 10,000");
    * 5-km 10-day theater forecast -> well over 100,000 Mtops.
    """
    check_positive(resolution_km, "resolution_km")
    check_positive(forecast_hours, "forecast_hours")
    check_positive(deadline_hours, "deadline_hours")
    check_positive(area_km2, "area_km2")
    cells = area_km2 / resolution_km**2 * _VERTICAL_LEVELS
    dt_s = _DT_SECONDS_PER_KM * resolution_km
    steps = forecast_hours * 3600.0 / dt_s
    flops = cells * steps * _FLOPS_PER_CELL_STEP
    sustained_mflops = flops / (deadline_hours * 3600.0) / 1e6
    return sustained_mflops * SUSTAINED_MFLOPS_TO_MTOPS


def _ops_per_key_trial() -> float:
    """Word-level theoretical operations to trial one key.

    Derived from the DES implementation's structure rather than assumed:
    see :func:`repro.crypto.keysearch.ops_per_key_breakdown` (imported
    lazily to keep this module importable on its own).
    """
    from repro.crypto.keysearch import WORD_OPS_PER_KEY

    return WORD_OPS_PER_KEY


def keysearch_required_mtops(key_bits: int, deadline_hours: float = 24.0) -> float:
    """Aggregate Mtops needed to search half a keyspace on deadline.

    The work is embarrassingly parallel, so *aggregate* is the operative
    word — any ensemble of uncontrollable machines qualifies, which is why
    the paper retires cryptology as a threshold justification.
    """
    if key_bits < 1:
        raise ValueError("key_bits must be >= 1")
    check_positive(deadline_hours, "deadline_hours")
    trials = 2.0 ** (key_bits - 1)
    ops = trials * _ops_per_key_trial()
    return ops / (deadline_hours * 3600.0) / 1e6


def keysearch_time_days(key_bits: int, aggregate_mtops: float) -> float:
    """Expected days to brute-force a key with a given aggregate rating."""
    if key_bits < 1:
        raise ValueError("key_bits must be >= 1")
    check_positive(aggregate_mtops, "aggregate_mtops")
    trials = 2.0 ** (key_bits - 1)
    seconds = trials * _ops_per_key_trial() / (aggregate_mtops * 1e6)
    return seconds / 86_400.0


#: The paper's submarine-CSM anchor: 10-20 h per run on the 21,125-Mtops
#: C916, repeated "at least 2,000 times".
_CSM_RUN_HOURS_ON_C916 = 15.0
_C916_MTOPS = 21_125.0


def acoustic_campaign_days(
    machine_mtops: float,
    runs: int = 2_000,
    run_hours_on_c916: float = _CSM_RUN_HOURS_ON_C916,
) -> float:
    """Calendar days to complete a submarine-CSM design campaign.

    Run time scales inversely with the machine's rating (the code is not
    parallelizable across lesser machines, so aggregation does not help).
    On the C916 the campaign takes ~3.4 years of compute; on a
    4,100-Mtops frontier machine it takes over 17 years — "little chance
    that a country of national security concern could replicate this
    program with computers not subject to export controls".
    """
    check_positive(machine_mtops, "machine_mtops")
    if runs < 1:
        raise ValueError("runs must be >= 1")
    check_positive(run_hours_on_c916, "run_hours_on_c916")
    hours = run_hours_on_c916 * (_C916_MTOPS / machine_mtops) * runs
    return hours / 24.0


def aero_design_turnaround_hours(
    machine_mtops: float,
    case_mtops_hours: float = 10_000.0,
) -> float:
    """Turnaround of one design iteration (a CEA+CFD optimization case).

    ``case_mtops_hours`` is the case cost in Mtops-hours; the default makes
    one case an overnight (~10 h) run on the F-22's Cray Y-MP/2 (958
    Mtops).  Chapter 2: overnight turnaround "permits engineers to maintain
    their concentration ... and iterate more frequently"; slower machines
    stretch the program rather than forbidding it.
    """
    check_positive(machine_mtops, "machine_mtops")
    check_positive(case_mtops_hours, "case_mtops_hours")
    return case_mtops_hours / machine_mtops
