#!/usr/bin/env python
"""What does it cost a restricted buyer to reach a capability level?

Chapter 3: below the uncontrollability frontier "the premium paid in time,
effort, money, and know-how by countries seeking to circumvent the
controls diminishes rapidly".  This example sweeps target capability
levels through the 1995 market, Monte-Carlos acquisition attempts, prints
the assimilation lags measured from the foreign-systems catalog, and
scores candidate thresholds the way Chapter 5 does.

Run:  python examples/covert_acquisition.py
"""

from repro.diffusion import (
    acquisition_premium,
    evaluate_policy,
    mean_lag_years,
    observed_lags,
    simulate_acquisitions,
)
from repro.machines.foreign import ForeignCountry
from repro.reporting.tables import render_table

YEAR = 1995.5
TARGETS = [500.0, 1_500.0, 4_000.0, 6_000.0, 10_000.0, 25_000.0, 80_000.0]


def main() -> None:
    rows = []
    for target in TARGETS:
        a = acquisition_premium(target, YEAR)
        stats = simulate_acquisitions(target, YEAR, n_attempts=2_000)
        rows.append([
            target,
            a.machine.key if a.machine else "(none exists)",
            round(a.expected_delay_years, 2),
            round(a.cost_multiplier, 2),
            f"{a.detection_probability:.0%}",
            f"{stats.success_rate:.0%}",
        ])
    print(render_table(
        ["target Mtops", "easiest adequate system", "delay (yr)",
         "cost multiple", "detection", "MC success"],
        rows,
        title=f"Covert-acquisition premium, {YEAR}",
    ))

    print()
    print(render_table(
        ["foreign system", "Western chip", "chip year", "system year",
         "lag (yr)"],
        [[l.system, l.micro, l.micro_year, l.system_year,
          round(l.lag_years, 1)] for l in observed_lags()],
        title="Assimilation lags measured from the catalogs",
    ))
    print(f"\nMean lag: {mean_lag_years():.1f} years "
          f"(paper: 'at least several months, but probably by years')")
    for country in ForeignCountry:
        print(f"  {country.value}: {mean_lag_years(country):.1f} years")

    print("\n=== Scoring candidate thresholds (Chapter 5) ===")
    rows = []
    for threshold in (1_500.0, 4_100.0, 7_000.0, 20_000.0):
        pe = evaluate_policy(threshold, YEAR)
        rows.append([
            threshold,
            "yes" if pe.credible else "NO",
            len(pe.protected_applications),
            len(pe.illusory_applications),
            round(pe.burden_units),
        ])
    print(render_table(
        ["threshold", "credible?", "apps protected", "apps illusory",
         "burden (units)"],
        rows,
        title="Candidate control thresholds, mid-1995",
    ))
    print("\nA threshold below the frontier 'will try to control the "
          "uncontrollable': burden without protection.")


if __name__ == "__main__":
    main()
