"""The micro-batching queue: many small requests -> few large batch calls.

The serving problem is the inverse of the sweep problem PR 1 solved.
Sweeps start with thousands of configurations in hand and need one fast
batch kernel; a licensing front end receives the *same* thousands of
ratings one request at a time, each on its own thread, each wanting an
answer now.  Dispatching every request through the scalar path wastes the
batch kernels; the micro-batcher recovers them by **coalescing**: requests
queue up, a single worker drains up to ``max_batch`` of them at a time,
dispatches one batch call, and fans the results back out to the waiting
threads' futures.  This is the dynamic-batching discipline cluster
schedulers use to keep nodes saturated and modern inference servers use to
keep accelerators fed — under load, batch size grows automatically with
the backlog, so throughput rises exactly when it is needed.

Batching policy
---------------
The worker is *greedy*: whenever requests are queued it dispatches what is
there (up to ``max_batch``) without waiting.  ``max_wait_ms`` only bounds
an optional linger for a fuller batch when the queue holds fewer than
``max_batch`` items; the default of 0 disables lingering, because with
closed-loop clients (each waiting for its previous answer) a fixed linger
only adds latency — the backlog itself produces the batches.

Coalescing is compositional: a batch handed to a dispatch callback may be
regrouped again by the callback's own locality.  The ``/policy`` and
``/scenario`` dispatchers group their batch-mates by **tile bucket**
(:mod:`repro.tiles`), so concurrent point queries that land in the same
tile cost one lazy tile build — and repeat buckets across batches are
pure cache hits — instead of one full-lattice grid build per batch.

Backpressure and deadlines
--------------------------
The queue is bounded: ``submit`` on a full queue raises
:class:`ServiceOverloadedError` immediately (the HTTP layer turns this
into ``429 Retry-After``) instead of letting latency grow without bound.
Each request may carry a deadline; the worker drops requests that expired
while queued, failing their futures with :class:`DeadlineExceededError`
(``504``) rather than wasting batch capacity on answers nobody is waiting
for.

Everything here is metric-instrumented: per-dispatch batch sizes land in
an exact histogram (:meth:`MicroBatcher.stats`) plus the global
``serve.<name>.*`` counters.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Callable, Sequence
from concurrent.futures import Future
from dataclasses import dataclass

from repro.obs.errors import (
    DeadlineExceededError,
    ServiceOverloadedError,
    ValidationError,
)
from repro.catalog.registry import current_epoch, read_guard
from repro.obs.trace import counter_inc, trace

__all__ = ["MicroBatcher"]


@dataclass
class _Pending:
    """One queued request awaiting dispatch."""

    request: object
    future: Future
    deadline: float | None  # absolute time.monotonic(), None = no deadline


class MicroBatcher:
    """Coalesce concurrent requests into bounded batch dispatches.

    Parameters
    ----------
    name:
        Short dotted-metric name (``"rate"``, ``"license"``).
    dispatch:
        ``dispatch(requests) -> results``, called on the worker thread
        with 1..max_batch *deduplicated* requests (identical canonical
        requests are computed once and fanned out to every waiter); must
        return one result per request in order.  A result that is a
        ``BaseException`` instance fails only that request's future; a
        raised exception fails every request in the batch.
    max_batch:
        Largest batch handed to ``dispatch``.
    max_wait_ms:
        Upper bound on lingering for a fuller batch once at least one
        request is queued; 0 dispatches greedily.
    queue_limit:
        Bound on queued (not yet dispatched) requests; beyond it
        ``submit`` sheds load with :class:`ServiceOverloadedError`.
    """

    def __init__(
        self,
        name: str,
        dispatch: Callable[[Sequence[object]], Sequence[object]],
        *,
        max_batch: int = 64,
        max_wait_ms: float = 0.0,
        queue_limit: int = 1024,
        start: bool = True,
    ) -> None:
        if max_batch < 1:
            raise ValidationError("max_batch must be >= 1",
                                  context={"got": max_batch, "valid": ">= 1"})
        if queue_limit < 1:
            raise ValidationError("queue_limit must be >= 1",
                                  context={"got": queue_limit,
                                           "valid": ">= 1"})
        if max_wait_ms < 0:
            raise ValidationError("max_wait_ms must be >= 0",
                                  context={"got": max_wait_ms,
                                           "valid": ">= 0"})
        self.name = name
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_ms) / 1000.0
        self.queue_limit = int(queue_limit)
        self._dispatch = dispatch
        self._cond = threading.Condition()
        self._queue: deque[_Pending] = deque()
        self._stopped = False
        self._histogram: dict[int, int] = {}
        self._dispatches = 0
        self._completed = 0
        self._last_dispatch_epoch = current_epoch()
        self._expired = 0
        self._overflows = 0
        self._dedup_hits = 0
        self._thread = threading.Thread(
            target=self._run, daemon=True, name=f"repro-serve-{name}")
        if start:
            self.start()

    # -- client side --------------------------------------------------------

    def submit(self, request: object,
               deadline_s: float | None = None) -> Future:
        """Enqueue one request; returns the future its result lands on.

        ``deadline_s`` is a relative budget: requests still queued when it
        lapses fail with :class:`DeadlineExceededError` instead of being
        dispatched.
        """
        future: Future = Future()
        deadline = (time.monotonic() + deadline_s
                    if deadline_s is not None else None)
        with self._cond:
            if self._stopped:
                raise ServiceOverloadedError(
                    f"{self.name} batcher is shut down",
                    context={"batcher": self.name},
                )
            if len(self._queue) >= self.queue_limit:
                self._overflows += 1
                counter_inc(f"serve.{self.name}.overflows")
                raise ServiceOverloadedError(
                    f"{self.name} queue is full",
                    context={"batcher": self.name,
                             "queue_depth": len(self._queue),
                             "queue_limit": self.queue_limit,
                             "retry_after_s": 1},
                )
            self._queue.append(_Pending(request, future, deadline))
            self._cond.notify()
        return future

    def depth(self) -> int:
        """Requests currently queued (excludes the batch being served)."""
        with self._cond:
            return len(self._queue)

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        if not self._thread.is_alive():
            self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop accepting work, drain the queue, and join the worker."""
        with self._cond:
            if self._stopped:
                return
            self._stopped = True
            self._cond.notify_all()
        if self._thread.is_alive():
            self._thread.join(timeout)

    # -- worker -------------------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._stopped:
                    self._cond.wait()
                if self._stopped and not self._queue:
                    return
                if (self.max_wait_s > 0 and not self._stopped
                        and len(self._queue) < self.max_batch):
                    # Linger briefly for a fuller batch; backlog growth or
                    # the deadline ends the wait, whichever comes first.
                    linger_until = time.monotonic() + self.max_wait_s
                    while (len(self._queue) < self.max_batch
                           and not self._stopped):
                        remaining = linger_until - time.monotonic()
                        if remaining <= 0:
                            break
                        self._cond.wait(remaining)
                count = min(self.max_batch, len(self._queue))
                batch = [self._queue.popleft() for _ in range(count)]
                self._histogram[count] = self._histogram.get(count, 0) + 1
                self._dispatches += 1
            self._serve_batch(batch)

    def _serve_batch(self, batch: list[_Pending]) -> None:
        now = time.monotonic()
        live: list[_Pending] = []
        for pending in batch:
            if pending.deadline is not None and pending.deadline < now:
                self._expired += 1
                counter_inc(f"serve.{self.name}.expired")
                pending.future.set_exception(DeadlineExceededError(
                    f"{self.name} request expired in queue",
                    context={"batcher": self.name,
                             "expired_by_s": round(now - pending.deadline, 4)},
                ))
            else:
                live.append(pending)
        if not live:
            return
        counter_inc(f"serve.{self.name}.dispatches")
        counter_inc(f"serve.{self.name}.batched_requests", len(live))
        # Intra-batch dedup: identical canonical requests admitted in the
        # same batch are computed once and fanned out to every waiter
        # (the cross-request LRU only catches repeats across batches).
        # Canonical schema objects expose ``cache_key``; opaque requests
        # (unit tests, ad-hoc dispatchers) fall back to one slot each.
        slots: dict[object, list[_Pending]] = {}
        for k, pending in enumerate(live):
            key = getattr(pending.request, "cache_key", None)
            slots.setdefault(key if key is not None else ("_slot", k),
                             []).append(pending)
        uniques = [group[0] for group in slots.values()]
        dedup_hits = len(live) - len(uniques)
        if dedup_hits:
            self._dedup_hits += dedup_hits
            counter_inc("serve.batch.dedup_hits", dedup_hits)
        try:
            # The whole dispatch runs under the catalog read guard: a
            # mutation event (write guard) waits for the batch to drain,
            # so every request in it completes bit-identically against
            # the epoch it was admitted under — never a half-applied
            # catalog.
            with read_guard():
                epoch = current_epoch()
                with trace(f"serve.batch.{self.name}", size=len(live)):
                    results = list(
                        self._dispatch([p.request for p in uniques]))
            with self._cond:
                self._last_dispatch_epoch = epoch
            if len(results) != len(uniques):
                raise ValidationError(
                    f"{self.name} dispatch returned {len(results)} results "
                    f"for {len(uniques)} requests",
                    context={"got": len(results), "valid": len(uniques)},
                )
        except BaseException as exc:  # noqa: BLE001 — fanned out per future
            for pending in live:
                if not pending.future.done():
                    pending.future.set_exception(exc)
            return
        completed = 0
        for group, result in zip(slots.values(), results):
            for pending in group:
                # A BaseException result is that request's own failure
                # (the planner isolates errors per slot); it fails this
                # future without poisoning its batch-mates.
                if isinstance(result, BaseException):
                    pending.future.set_exception(result)
                else:
                    pending.future.set_result(result)
                    completed += 1
        with self._cond:
            self._completed += completed

    # -- introspection ------------------------------------------------------

    def stats(self) -> dict:
        """Exact queue/batch statistics (JSON-serializable)."""
        with self._cond:
            histogram = {str(size): count
                         for size, count in sorted(self._histogram.items())}
            dispatches = self._dispatches
            total_batched = sum(size * count
                                for size, count in self._histogram.items())
            return {
                "depth": len(self._queue),
                "queue_limit": self.queue_limit,
                "max_batch": self.max_batch,
                "max_wait_ms": self.max_wait_s * 1000.0,
                "dispatches": dispatches,
                "completed": self._completed,
                "expired": self._expired,
                "overflows": self._overflows,
                "dedup_hits": self._dedup_hits,
                "batch_size_histogram": histogram,
                "mean_batch_size": (total_batched / dispatches
                                    if dispatches else 0.0),
                "last_dispatch_epoch": self._last_dispatch_epoch,
            }
