"""Tests for the sensitivity analysis."""

import numpy as np
import pytest

from repro.controllability.index import Classification
from repro.core.sensitivity import (
    bound_sensitivity,
    catalog_uncertainty_sensitivity,
    classification_stability,
    sample_weights,
)


class TestSampleWeights:
    def test_valid_weights(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            w = sample_weights(rng)  # must not raise the sum-to-one check
            total = w.size + w.units + w.channel + w.price + w.scalability
            assert total == pytest.approx(1.0)
            assert w.uncontrollable_below < w.controllable_at

    def test_deterministic_per_rng_state(self):
        a = sample_weights(np.random.default_rng(5))
        b = sample_weights(np.random.default_rng(5))
        assert a == b

    def test_concentration_controls_spread(self):
        rng = np.random.default_rng(1)
        tight = [sample_weights(rng, concentration=500.0).units
                 for _ in range(100)]
        rng = np.random.default_rng(1)
        loose = [sample_weights(rng, concentration=10.0).units
                 for _ in range(100)]
        assert np.std(tight) < np.std(loose)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_weights(rng, concentration=0.0)
        with pytest.raises(ValueError):
            sample_weights(rng, cut_jitter=0.2)


class TestBoundSensitivity:
    def test_paper_band_is_robust(self):
        """The headline 4,000-5,000-Mtops finding survives reasonable
        re-weightings of the controllability factors."""
        bs = bound_sensitivity(n_samples=100)
        assert bs.fraction_in_band(4_000.0, 5_000.0) >= 0.9

    def test_deterministic(self):
        a = bound_sensitivity(n_samples=50, seed=2)
        b = bound_sensitivity(n_samples=50, seed=2)
        assert np.array_equal(a.samples_mtops, b.samples_mtops)

    def test_quantiles_ordered(self):
        bs = bound_sensitivity(n_samples=50)
        assert bs.quantile(0.05) <= bs.median <= bs.quantile(0.95)

    def test_band_validation(self):
        bs = bound_sensitivity(n_samples=10)
        with pytest.raises(ValueError):
            bs.fraction_in_band(5_000.0, 4_000.0)

    def test_samples_validation(self):
        with pytest.raises(ValueError):
            bound_sensitivity(n_samples=0)


class TestCatalogUncertainty:
    def test_median_stays_in_band(self):
        bs = catalog_uncertainty_sensitivity(n_samples=200)
        assert 3_500.0 <= bs.median <= 5_500.0

    def test_interval_widens_with_sigma(self):
        tight = catalog_uncertainty_sensitivity(n_samples=200,
                                                sigma_decades=0.05)
        loose = catalog_uncertainty_sensitivity(n_samples=200,
                                                sigma_decades=0.2)
        tight_width = tight.quantile(0.95) - tight.quantile(0.05)
        loose_width = loose.quantile(0.95) - loose.quantile(0.05)
        assert loose_width > tight_width

    def test_zero_sigma_degenerate(self):
        bs = catalog_uncertainty_sensitivity(n_samples=20, sigma_decades=0.0)
        assert bs.quantile(0.95) == pytest.approx(bs.quantile(0.05))

    def test_prehistory_returns_zeros(self):
        # Before the first uncontrollable product (the VAX-11/780 matures
        # in ~1979.8) the frontier is empty.
        bs = catalog_uncertainty_sensitivity(year=1976.0, n_samples=10)
        assert (bs.samples_mtops == 0.0).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            catalog_uncertainty_sensitivity(sigma_decades=0.9)


class TestClassificationStability:
    def test_covers_table4(self):
        from repro.controllability.index import TABLE4_SYSTEMS

        rows = classification_stability(n_samples=60)
        assert {r.machine_key for r in rows} == set(TABLE4_SYSTEMS)

    def test_extremes_are_stable(self):
        rows = {r.machine_key: r for r in classification_stability(60)}
        assert rows["Cray C916"].agreement == 1.0
        assert rows["Sun SPARCstation 10"].agreement == 1.0

    def test_sp2_is_the_borderline_case(self):
        # The SP2 straddles the cluster/MPP boundary in the paper (note
        # 51); the sensitivity analysis flags exactly that ambiguity.
        rows = {r.machine_key: r for r in classification_stability(100)}
        assert rows["IBM SP2 (16)"].is_borderline
        assert rows["IBM SP2 (16)"].default_classification is (
            Classification.MARGINAL
        )

    def test_headline_verdicts_hold_broadly(self):
        rows = classification_stability(100)
        key_systems = ("Cray C916", "SGI Challenge XL (36)",
                       "Cray CS6400 (64)")
        for r in rows:
            if r.machine_key in key_systems:
                assert r.agreement >= 0.85, r.machine_key

    def test_sorted_descending(self):
        rows = classification_stability(40)
        agreements = [r.agreement for r in rows]
        assert agreements == sorted(agreements, reverse=True)
