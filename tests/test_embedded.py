"""Tests for the embedded size/weight/power model."""

import pytest

from repro.apps.catalog import find_application
from repro.simulate.embedded import (
    Platform,
    assess_deployability,
    embedded_mtops_per_watt,
    swap_limited_mtops,
    year_deployable,
)


class TestEfficiencyTrend:
    def test_anchor(self):
        assert embedded_mtops_per_watt(1992.0) == pytest.approx(1.0)

    def test_doubles_every_two_years(self):
        assert embedded_mtops_per_watt(1994.0) == pytest.approx(2.0)
        assert embedded_mtops_per_watt(1998.0) == pytest.approx(8.0)

    def test_swap_limited_scales_with_power(self):
        assert swap_limited_mtops(1995.5, 2_000.0) == pytest.approx(
            2.0 * swap_limited_mtops(1995.5, 1_000.0)
        )

    def test_year_deployable_inverts(self):
        year = year_deployable(5_000.0, 1_000.0)
        assert swap_limited_mtops(year, 1_000.0) == pytest.approx(5_000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            swap_limited_mtops(1995.5, 0.0)
        with pytest.raises(ValueError):
            year_deployable(0.0, 100.0)


class TestCalibrationAnchors:
    def test_mercury_shipboard_feasible_1995(self):
        # The ~7,400-Mtops Mercury fits a shipboard budget in 1995.
        assert swap_limited_mtops(1995.5, Platform.SHIPBOARD.power_budget_w) \
            > 7_400.0

    def test_f22_avionics_at_the_edge(self):
        # ~9,000 Mtops in a fighter bay: marginal in 1995, comfortable by
        # 1997 — the avionics program's famous squeeze.
        a95 = swap_limited_mtops(1995.5,
                                 Platform.FIGHTER_AVIONICS_BAY.power_budget_w)
        a97 = swap_limited_mtops(1997.5,
                                 Platform.FIGHTER_AVIONICS_BAY.power_budget_w)
        assert 0.7 * 9_000.0 <= a95 <= 1.3 * 9_000.0
        assert a97 > 9_000.0

    def test_naasw_man_pack_not_yet(self):
        # The ~500-Mtops deployed NAASW suite is not man-packable in 1995;
        # it becomes so near the end of the decade.
        assert swap_limited_mtops(1995.5, Platform.MAN_PACK.power_budget_w) \
            < 500.0
        year = year_deployable(500.0, Platform.MAN_PACK.power_budget_w)
        assert 1997.0 <= year <= 2001.0


class TestDeployabilityAssessment:
    def test_sirst_shipboard(self):
        app = find_application("SIRST development (ASCM defense algorithms)")
        a = assess_deployability(app, Platform.SHIPBOARD, 1995.5)
        assert a.deployable  # the Mercury-class deployment is just feasible

    def test_visible_light_not_deployable_1995(self):
        # The 24,000-Mtops visible-light processor fits a shipboard rack
        # but not the "smaller, lighter form" the paper says deployment
        # needs — an airborne pod waits until ~2001.
        app = find_application("Visible-light sensor processing")
        pod = assess_deployability(app, Platform.AIRBORNE_POD, 1995.5)
        assert not pod.deployable
        assert pod.first_deployable_year > 1999.0

    def test_avionics_platform_ordering(self):
        app = find_application("F-22 avionics suite")
        ship = assess_deployability(app, Platform.SHIPBOARD, 1995.5)
        pack = assess_deployability(app, Platform.MAN_PACK, 1995.5)
        assert ship.available_mtops > pack.available_mtops
        assert not pack.deployable

    def test_first_deployable_consistent(self):
        app = find_application("F-22 avionics suite")
        a = assess_deployability(app, Platform.FIGHTER_AVIONICS_BAY, 1995.5)
        later = assess_deployability(app, Platform.FIGHTER_AVIONICS_BAY,
                                     a.first_deployable_year + 0.1)
        assert later.deployable

    def test_platform_budgets_ordered(self):
        budgets = [p.power_budget_w for p in (
            Platform.MAN_PACK, Platform.GROUND_VEHICLE,
            Platform.AIRBORNE_POD, Platform.FIGHTER_AVIONICS_BAY,
            Platform.THEATER_VAN, Platform.SHIPBOARD,
        )]
        assert budgets == sorted(budgets)
