"""Unit tests for repro._util."""

import math

import pytest

from repro._util import (
    as_sorted_unique,
    check_fraction,
    check_non_negative,
    check_positive,
    check_year,
    geometric_interp,
    log_midpoint,
    weighted_mean,
    year_range,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(2.5, "x") == 2.5

    def test_coerces_int(self):
        assert check_positive(3, "x") == 3.0

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_rejects(self, bad):
        with pytest.raises(ValueError, match="x"):
            check_positive(bad, "x")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0.0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative(-0.1, "x")


class TestCheckFraction:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts_bounds(self, ok):
        assert check_fraction(ok, "f") == ok

    @pytest.mark.parametrize("bad", [-0.01, 1.01, float("nan")])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            check_fraction(bad, "f")


class TestCheckYear:
    def test_accepts_study_years(self):
        assert check_year(1995.5) == 1995.5

    @pytest.mark.parametrize("bad", [1900.0, 2100.0, 4088.0])
    def test_rejects_out_of_band(self, bad):
        # 4088.0 is the classic units bug: Mtops passed where a year goes.
        with pytest.raises(ValueError):
            check_year(bad)


class TestGeometricInterp:
    def test_midpoint_is_geometric_mean(self):
        assert geometric_interp(0, 10, 1, 1000, 0.5) == pytest.approx(100.0)

    def test_endpoints(self):
        assert geometric_interp(1990, 10, 1995, 320, 1990) == pytest.approx(10)
        assert geometric_interp(1990, 10, 1995, 320, 1995) == pytest.approx(320)

    def test_extrapolates(self):
        assert geometric_interp(0, 1, 1, 2, 2) == pytest.approx(4.0)

    def test_degenerate_equal_x_same_y(self):
        assert geometric_interp(1, 5, 1, 5, 1) == 5

    def test_degenerate_equal_x_diff_y_raises(self):
        with pytest.raises(ValueError):
            geometric_interp(1, 5, 1, 6, 1)

    def test_rejects_nonpositive_values(self):
        with pytest.raises(ValueError):
            geometric_interp(0, 0.0, 1, 2, 0.5)


class TestLogMidpoint:
    def test_value(self):
        assert log_midpoint(10, 1000) == pytest.approx(100.0)

    def test_symmetry(self):
        assert log_midpoint(3, 7) == pytest.approx(log_midpoint(7, 3))


class TestYearRange:
    def test_inclusive_endpoint(self):
        years = year_range(1993.0, 1995.0, 0.5)
        assert years[0] == 1993.0
        assert years[-1] == pytest.approx(1995.0)
        assert len(years) == 5

    def test_single_point(self):
        assert year_range(1995.0, 1995.0) == [1995.0]

    def test_rejects_reversed(self):
        with pytest.raises(ValueError):
            year_range(1996.0, 1995.0)

    def test_does_not_overshoot(self):
        years = year_range(1993.0, 1994.0, 0.3)
        assert all(y <= 1994.0 + 1e-9 for y in years)


class TestSmallHelpers:
    def test_as_sorted_unique(self):
        assert as_sorted_unique([3.0, 1.0, 3.0, 2.0]) == [1.0, 2.0, 3.0]

    def test_weighted_mean(self):
        assert weighted_mean([1.0, 3.0], [1.0, 1.0]) == pytest.approx(2.0)
        assert weighted_mean([1.0, 3.0], [3.0, 1.0]) == pytest.approx(1.5)

    def test_weighted_mean_rejects_mismatch(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [1.0, 2.0])

    def test_weighted_mean_rejects_zero_weights(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0, 2.0], [0.0, 0.0])

    def test_weighted_mean_nan_free(self):
        assert not math.isnan(weighted_mean([1.0], [0.5]))
